"""Figure 2: galgel versions across the three machines."""

from repro.experiments import fig02_motivation


def test_fig02_motivation(benchmark):
    result = benchmark.pedantic(fig02_motivation.run, rounds=1, iterations=1)
    print("\n" + result.table())
    # The native version must be at worst within noise of the best
    # (Harpertown vs Nehalem versions at equal thread counts come out
    # near-identical in our reproduction; see EXPERIMENTS.md), and the
    # thread-count-mismatched ports must pay a substantial penalty.
    for row_index, native_col in enumerate((1, 2, 3)):
        row = result.rows[row_index]
        assert row[native_col] <= min(row[1:]) + 0.05
    worst = max(v for row in result.rows for v in row[1:])
    assert worst >= 1.15
