"""Figure 17: core-count scaling (12 -> 18 -> 24)."""

from repro.experiments import fig17_cores


def test_fig17_cores(benchmark, apps):
    result = benchmark.pedantic(
        fig17_cores.run, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + result.table())
    ta = result.column("TopologyAware")
    bp = result.column("Base+")
    # TopologyAware beats Base and Base+ at every core count, and its
    # advantage at 24 cores is at least as large as at 12 (the paper sees
    # it grow 29% -> 46%).
    assert all(t < b for t, b in zip(ta, bp))
    assert all(t < 1.0 for t in ta)
    assert ta[-1] <= ta[0] + 0.01
