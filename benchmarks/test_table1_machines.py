"""Table 1: machine parameters."""

from repro.experiments.tables import table1


def test_table1_machines(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    print("\n" + result.table())
    machines = result.column("machine")
    assert machines == ["harpertown", "nehalem", "dunnington"]
    # Table 1 checks: core counts and cache structure.
    assert result.rows[0][1].startswith("8 cores")
    assert result.rows[2][1].startswith("12 cores")
    assert result.rows[0][5] == "-"          # Harpertown has no L3
    assert "12MB" in result.rows[2][5]       # Dunnington L3
