"""Kernel-layer microbenchmarks (the BENCH_kernels.json producer).

Marked ``perf``: excluded from tier-1 runs (``pytest -q -m "not perf"``
— or just ``pytest`` from the repo root, whose testpaths don't include
``benchmarks/``).  Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q -m perf

The tiny-config smoke variant that *does* run under tier-1 lives in
``tests/kernels/test_bench_smoke.py``.
"""

import pathlib

import pytest

pytest.importorskip("numpy")

from repro.kernels.bench import TAGGING_CONFIGS, run_suite, write_report

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def report():
    return run_suite(repeats=7)


def test_tagging_speedup_meets_floor(report):
    """>= 5x numpy-over-scalar tagging on some >= 64x64 two-array nest.

    Every config in TAGGING_CONFIGS is a two-array nest of at least
    64x64 iterations, so the floor may be met by any of them; taking the
    max keeps the assertion robust to machine-load noise on any single
    size.
    """
    tagging = [e for e in report["entries"] if e["kernel"] == "tagging"]
    assert len(tagging) == len(TAGGING_CONFIGS)
    assert all(e["iterations"] >= 64 * 64 for e in tagging)
    best = max(e["speedup"] for e in tagging)
    assert best >= 5.0, f"tagging speedups too low: {tagging}"


def test_vectorized_never_pathologically_slow(report):
    """No kernel may regress the pipeline: the numpy path must stay
    within 2x of scalar even where vectorization pays least."""
    for entry in report["entries"]:
        assert entry["speedup"] >= 0.5, entry


def test_report_written(report):
    out = REPO_ROOT / "BENCH_kernels.json"
    write_report(report, str(out))
    assert out.exists()
    import json

    loaded = json.loads(out.read_text())
    assert loaded["entries"] == report["entries"]
