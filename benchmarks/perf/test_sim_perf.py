"""Simulator-backend microbenchmarks (the BENCH_sim.json producer).

Marked ``perf``: excluded from tier-1 runs.  Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q -m perf

The tiny-config smoke variant that *does* run under tier-1 lives in
``tests/sim/test_sim_backends.py``.
"""

import pathlib

import pytest

pytest.importorskip("numpy")

from repro.sim.bench import SIM_CONFIGS, run_suite

from repro.kernels.bench import write_report

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def report():
    return run_suite(repeats=3)


def test_batched_speedup_meets_floor(report):
    """>= 5x batched-over-oracle on some stencil-256-scale configuration.

    All configs replay the same 262144-access stencil-256 trace; the
    all-private machine at quantum=1 is the most batch-friendly regime
    and comfortably clears the floor, while the shared-hierarchy entries
    document the replay-bound speedups.  Taking the max keeps the
    assertion robust to machine-load noise on any single entry.
    """
    entries = report["entries"]
    assert len(entries) == len(SIM_CONFIGS)
    assert all(e["accesses"] == 256 * 256 * 4 for e in entries)
    best = max(e["speedup"] for e in entries)
    assert best >= 5.0, f"batched speedups too low: {entries}"


def test_batched_never_pathologically_slow(report):
    """The batch engine must never regress the pipeline: every config
    stays clearly faster than the oracle, including the shared-heavy
    replay-bound ones."""
    for entry in report["entries"]:
        assert entry["speedup"] >= 1.2, entry


def test_report_written(report):
    out = REPO_ROOT / "BENCH_sim.json"
    write_report(report, str(out))
    assert out.exists()
    import json

    loaded = json.loads(out.read_text())
    assert loaded["entries"] == report["entries"]
