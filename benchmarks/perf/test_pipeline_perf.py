"""Pipeline stage-reuse benchmarks (the BENCH_pipeline.json producer).

Marked ``perf``: excluded from tier-1 runs.  Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q -m perf

The tiny-config smoke variants that *do* run under tier-1 live in
``tests/pipeline/`` (``perf_smoke``-marked structure checks).
"""

import pathlib

import pytest

from repro.kernels.bench import write_report
from repro.pipeline.bench import KNOB_POINTS, run_suite

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def report():
    return run_suite(repeats=2)


def test_warm_sweep_speedup_meets_floor(report):
    """>= 3x warm-over-cold on the 8-point knob sweep.

    Both entries sweep the same eight knob points; the dependence-heavy
    banded workload is the most reuse-friendly regime (six of eight
    points replay everything but the cheap scheduling stage) and must
    clear the floor.  Taking the max keeps the assertion robust to
    machine-load noise on any single entry.
    """
    entries = report["entries"]
    assert all(e["knob_points"] == len(KNOB_POINTS) for e in entries)
    best = max(e["speedup"] for e in entries)
    assert best >= 3.0, f"stage-reuse speedups too low: {entries}"


def test_reuse_never_pathologically_slow(report):
    """Sharing a store must never regress a sweep: every workload stays
    clearly faster warm than cold."""
    for entry in report["entries"]:
        assert entry["speedup"] >= 1.5, entry


def test_report_written(report):
    out = REPO_ROOT / "BENCH_pipeline.json"
    write_report(report, str(out))
    assert out.exists()
    import json

    loaded = json.loads(out.read_text())
    assert loaded["entries"] == report["entries"]
