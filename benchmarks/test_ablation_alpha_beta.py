"""Ablation: the α/β scheduling weights (Section 4.2 text)."""

from repro.experiments import ablation_alpha_beta


def test_ablation_alpha_beta(benchmark):
    result = benchmark.pedantic(ablation_alpha_beta.run, rounds=1, iterations=1)
    print("\n" + result.table())
    values = dict(result.rows)
    equal = values["a=0.5, b=0.5"]
    # Paper: equal weights are (near-)best; an extreme weighting must not
    # beat them materially.
    assert equal <= min(values.values()) + 0.02
    assert equal < 1.0
