"""Ablation: greedy merge vs KL-refined cuts."""

from repro.experiments import ablation_clustering


def test_ablation_clustering(benchmark):
    result = benchmark.pedantic(ablation_clustering.run, rounds=1, iterations=1)
    print("\n" + result.table())
    mean = result.rows[-1]
    greedy, kl = mean[1], mean[2]
    # Both strategies must beat Base on average, and KL must stay within
    # a few percent of greedy (it refines the same objective).
    assert greedy < 1.0 and kl < 1.0
    assert abs(greedy - kl) < 0.08
