"""Figure 14: foreign versions cost more than native ones."""

from repro.experiments import fig14_cross_machine


def test_fig14_cross_machine(benchmark, apps):
    result = benchmark.pedantic(
        fig14_cross_machine.run, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + result.table())
    degradations = []
    for row in result.rows:
        for cell in row[1:]:
            degradations.append(float(cell.split(": ")[1]))
    # No foreign version may beat the native one beyond noise (Harpertown
    # and Nehalem versions at equal thread counts are near-identical in
    # our reproduction — see EXPERIMENTS.md), and the thread-count-
    # mismatched ports must pay a substantial penalty (paper: 17-31%).
    assert all(d >= 0.97 for d in degradations)
    assert max(degradations) >= 1.15
    mean = sum(degradations) / len(degradations)
    assert mean > 1.05
