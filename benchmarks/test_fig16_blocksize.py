"""Figure 16: data block size sensitivity."""

from repro.experiments import fig16_blocksize


def test_fig16_blocksize(benchmark, apps):
    # The half-size point is expensive (group counts grow); the quick
    # subset keeps this bench to a couple of minutes.
    result = benchmark.pedantic(
        fig16_blocksize.run, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + result.table())
    cycles = result.column("normalized cycles")
    times = result.column("mapping time (s)")
    # Paper: smaller blocks perform better...
    assert cycles[-1] <= cycles[0]
    # ...but compile slower (ours grows like theirs: >80% from 2KB to 256B).
    assert times[-1] > times[0] * 1.8
