"""Figure 15: distribution vs local scheduling vs combined."""

from repro.experiments import fig15_scheduling


def test_fig15_scheduling(benchmark, apps):
    result = benchmark.pedantic(
        fig15_scheduling.run, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + result.table())
    mean = result.rows[-1]
    ta, local, combined = mean[1], mean[2], mean[3]
    # Paper trends: combined is the best configuration on average, and
    # both components improve on Base.
    assert combined <= ta
    assert combined < 1.0 and local <= 1.02
