"""Table 2: the twelve applications."""

from repro.experiments.tables import table2


def test_table2_applications(benchmark):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    print("\n" + result.table())
    assert len(result.rows) == 12
    suites = set(result.column("suite"))
    assert suites == {"SpecOMP", "NAS", "Parsec", "Spec2006", "local"}
    # Four applications arrive sequential, as in the paper.
    assert result.column("origin").count("sequential") == 4
