"""Figure 20: partial hierarchies and the optimal mapping."""

from repro.experiments import fig20_levels_optimal


def test_fig20_levels_optimal(benchmark, apps):
    result = benchmark.pedantic(
        fig20_levels_optimal.run, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + result.table())
    by_version = dict(result.rows)
    # Modeling the full hierarchy must never lose materially to a
    # truncated view (the paper reports it clearly winning — 21.8% over
    # L1+L2; on our workload mix the quick subset reproduces that
    # ordering while the full set is closer to a wash, see
    # EXPERIMENTS.md), and the heuristic must be near the optimal
    # mapping (paper: within 7.6%).
    assert by_version["full"] <= by_version["L1+L2"] + 0.02
    assert by_version["full"] <= by_version["L1+L2+L3"] + 0.02
    assert by_version["full"] <= by_version["optimal"] * 1.08
