"""Figure 18: deeper on-chip hierarchies."""

from repro.experiments import fig18_deep_hierarchies


def test_fig18_deep_hierarchies(benchmark, apps):
    result = benchmark.pedantic(
        fig18_deep_hierarchies.run, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + result.table())
    bp = result.column("Base+")
    ta = result.column("TopologyAware")
    # TopologyAware wins on every architecture, and its edge over Base+
    # (what conventional optimization achieves without the topology) on
    # the deepest hierarchy is at least the default machine's (the paper
    # sees it grow with depth; ours dips on Arch-I, see EXPERIMENTS.md).
    gaps = [b - t for b, t in zip(bp, ta)]
    assert all(g > 0 for g in gaps)
    assert gaps[-1] >= gaps[0] - 0.02
