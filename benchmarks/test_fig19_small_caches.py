"""Figure 19: halved cache capacities."""

from repro.experiments import fig19_small_caches


def test_fig19_small_caches(benchmark, apps):
    result = benchmark.pedantic(
        fig19_small_caches.run, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + result.table())
    full, halved = result.rows
    # Paper: every optimizing scheme's improvement grows when capacities
    # are halved, and the combined scheme stays best.
    for column in (1, 2, 3):
        assert halved[column] < full[column]
    assert halved[3] <= halved[2] <= halved[1]
