"""Figure 13: Base / Base+ / TopologyAware across the three machines."""

from repro.experiments import fig13_main


def test_fig13_main(benchmark, apps):
    result = benchmark.pedantic(
        fig13_main.run, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + result.table())
    mean = result.rows[-1]
    assert mean[0] == "MEAN"
    # Shape: on every machine TopologyAware beats Base on average, and
    # beats Base+ on average (paper: 28-30% / 16-21%).
    for machine_index in range(3):
        base_plus = mean[1 + 2 * machine_index]
        ta = mean[2 + 2 * machine_index]
        assert ta < 1.0, "TopologyAware must beat Base on average"
        assert ta < base_plus, "TopologyAware must beat Base+ on average"


def test_fig13_miss_reductions(benchmark, apps):
    result = benchmark.pedantic(
        fig13_main.miss_reductions, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + result.table())
    # Paper: TopologyAware reduces misses at every level on Dunnington,
    # most strongly at the deeper (shared) levels.
    reductions = [float(v.rstrip("%")) for v in result.column("vs Base")]
    assert all(r >= 0 for r in reductions[1:]), "L2/L3 misses must drop"
    assert max(reductions[1:]) > 10.0
