"""Shared benchmark configuration.

Each benchmark regenerates one table/figure of the paper.  By default the
figure harnesses run on a representative six-application subset so the
whole suite finishes in minutes; set ``REPRO_BENCH_FULL=1`` to run all
twelve applications (the EXPERIMENTS.md numbers were produced that way).
"""

import os

import pytest

#: Representative subset: two mirror-type, one band, one stencil, one
#: transpose, one window kernel.
QUICK_APPS = ("galgel", "equake", "facesim", "namd", "h264", "applu")


def bench_apps():
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        return None  # harnesses interpret None as "all twelve"
    return QUICK_APPS


@pytest.fixture(scope="session")
def apps():
    return bench_apps()
