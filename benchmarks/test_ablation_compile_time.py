"""Ablation: compile-time overhead of the pass (Section 4.1 text)."""

from repro.experiments import ablation_compile_time


def test_ablation_compile_time(benchmark, apps):
    result = benchmark.pedantic(
        ablation_compile_time.run, args=(apps,), rounds=1, iterations=1
    )
    print("\n" + result.table())
    totals = [float(v.rstrip("ms")) for v in result.column("map total")]
    # The pass costs real compile time on every application (the paper
    # reports 65-94% over a parallelizing compilation).
    assert all(t > 0 for t in totals)
