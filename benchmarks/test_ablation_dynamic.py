"""Ablation: dynamic self-scheduling comparison (Section 5 text)."""

from repro.experiments import ablation_dynamic


def test_ablation_dynamic(benchmark):
    result = benchmark.pedantic(ablation_dynamic.run, rounds=1, iterations=1)
    print("\n" + result.table())
    values = dict(result.rows)
    ta = values["TopologyAware (static)"]
    # The paper's observation: static topology-aware mapping beats every
    # dynamic configuration (dispatch cost + sharing-oblivious placement).
    for scheme, ratio in values.items():
        if scheme != "TopologyAware (static)":
            assert ta < ratio
