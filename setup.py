"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs fail; this shim lets ``pip install -e .`` use the
legacy ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.2.0",
    description="Cache topology aware computation mapping for multicores (PLDI 2010 reproduction)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
