"""Handling loop-carried dependencies (Section 3.5.2).

Builds a banded update with genuine flow dependencies, shows the two
policies the paper describes — barrier-based scheduling and co-clustering
(infinite edge weights) — and simulates both.

Run:  python examples/dependent_loops.py
"""

from repro.ir.dependences import iteration_dependences
from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper
from repro.runtime import execute_plan
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode

M = 4096
K = 256

SOURCE = f"""
array B[{M}];
for (j = {K}; j < {M}; j++)
  B[j] = B[j] + B[j - {K}];
"""


def four_core_machine() -> Machine:
    l1 = CacheSpec("L1", 1024, 2, 32, 2)
    l2 = CacheSpec("L2", 8192, 4, 32, 8)
    cores = [TopologyNode.core(i) for i in range(4)]
    l1s = [TopologyNode.cache(l1, [c]) for c in cores]
    l2s = [TopologyNode.cache(l2, l1s[0:2]), TopologyNode.cache(l2, l1s[2:4])]
    return Machine("dep4", 2.0, 90, TopologyNode.memory(l2s), sockets=1)


def main() -> None:
    program = compile_source(SOURCE, name="banded")
    nest = program.nests[0]
    machine = four_core_machine()

    print("== Dependence analysis ==")
    sample = list(iteration_dependences(nest, limit=3))
    for pair in sample:
        print(f"  {pair.kind} dependence: {pair.source} -> {pair.sink} "
              f"(distance {pair.distance})")
    print(f"  ... every iteration depends on the one {K} earlier.\n")

    print("== Policy 1: barrier-based scheduling ==")
    mapper = TopologyAwareMapper(machine, block_size=512, local_scheduling=True,
                                 dependence_policy="barrier")
    barrier_result = mapper.map_nest(program, nest)
    plan = barrier_result.plan()
    plan.verify_complete()
    print(f"  group dependence edges: {barrier_result.graph.num_edges}")
    print(f"  schedule rounds: {plan.num_rounds} "
          f"(a barrier separates consecutive rounds)")
    sim = execute_plan(plan, verify=True)
    print(f"  simulated: {sim.cycles} cycles, {sim.barriers} barriers\n")

    print("== Policy 2: co-clustering (infinite edge weights) ==")
    mapper = TopologyAwareMapper(machine, block_size=512,
                                 dependence_policy="co-cluster")
    co_result = mapper.map_nest(program, nest)
    co_plan = co_result.plan()
    co_plan.verify_complete()
    sizes = co_result.assignment_sizes()
    print(f"  per-core iterations: {sizes}")
    print("  (dependent groups merged; no synchronization needed, but the "
          "dependence chain concentrates work)")
    sim2 = execute_plan(co_plan, verify=True)
    print(f"  simulated: {sim2.cycles} cycles, {sim2.barriers} barriers\n")

    better = "barrier scheduling" if sim.cycles < sim2.cycles else "co-clustering"
    print(f"On this kernel, {better} wins — the paper notes co-clustering "
          "\"may not be very effective when we have a large number of "
          "dependencies\".")


if __name__ == "__main__":
    main()
