"""Porting study: one application, three real machines (Figure 2 scenario).

Maps the galgel workload for each of the paper's Intel machines
(Harpertown, Nehalem, Dunnington), then runs every version on every
machine — the situation the paper's introduction motivates: code tuned
for one cache topology ported naively to another.

Run:  python examples/porting_study.py
"""

from repro.experiments.harness import run_scheme, run_version, sim_machine
from repro.experiments.versions import version_machine
from repro.topology.machines import commercial_machines
from repro.util.tables import format_table
from repro.workloads import workload

VERSIONS = (("harpertown", 8), ("nehalem", 8), ("dunnington", 12))


def main() -> None:
    app = workload("galgel")
    print(f"Application: {app.name} — {app.description}")
    print(f"Data: {app.data_bytes() // 1024}KB, "
          f"{app.nest().iteration_count()} iterations\n")

    rows = []
    for target in commercial_machines():
        target_sim = sim_machine(target)
        base = run_scheme(app, "base", target_sim).cycles
        cells = [target.name]
        for pattern, threads in VERSIONS:
            version = sim_machine(version_machine(pattern, threads))
            cycles = run_version(app, version, target_sim).cycles
            cells.append(round(cycles / base, 3))
        rows.append(tuple(cells))

    print(format_table(
        ["run on"] + [f"{p} version" for p, _ in VERSIONS],
        rows,
        title="Execution time of each tuned version, normalized to Base",
    ))
    print("\nReading the table: the diagonal (native version) should be the"
          "\nsmallest number in each row — topology-tuned code does not port.")


if __name__ == "__main__":
    main()
