"""Quickstart: the paper's running example, end to end.

Compiles the Figure 5 loop, partitions its data into the paper's twelve
blocks, tags the iterations (reproducing the Figure 10(a) tags exactly),
distributes them over the Figure 9 four-core machine, schedules each core,
and simulates the result against the Base distribution.

Run:  python examples/quickstart.py
"""

from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.tagger import tag_iterations
from repro.blocks.tags import render
from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper, base_plan
from repro.runtime import execute_plan
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode

# ---------------------------------------------------------------- the code
K = 4
M = 12 * K  # twelve data blocks of K elements each

SOURCE = f"""
param k = {K};
param m = {M};
array B[{M}];
parallel for (j = 2*k; j < m - 2*k; j++)
  B[j] = B[j] + B[2*k + j] + B[j - 2*k];
"""

# ---------------------------------------------------- the machine (Fig. 9)
def figure9_machine() -> Machine:
    l1 = CacheSpec("L1", 1024, 2, 32, 2)
    l2 = CacheSpec("L2", 4096, 4, 32, 8)
    l3 = CacheSpec("L3", 16384, 8, 32, 20)
    cores = [TopologyNode.core(i) for i in range(4)]
    l1s = [TopologyNode.cache(l1, [c]) for c in cores]
    l2s = [TopologyNode.cache(l2, l1s[0:2]), TopologyNode.cache(l2, l1s[2:4])]
    return Machine("fig9", 2.0, 100, TopologyNode.cache(l3, l2s), sockets=1)


def main() -> None:
    program = compile_source(SOURCE, name="fig5")
    nest = program.nests[0]
    machine = figure9_machine()

    print("== Compiled nest ==")
    print(f"{nest}: {nest.iteration_count()} iterations, "
          f"{len(nest.accesses)} references\n")

    # Tagging (Section 3.3) — reproduces Figure 10(a).
    partition = DataBlockPartition(list(program.arrays.values()), K * 8)
    groups = tag_iterations(nest, partition)
    groups.verify_partition()
    print("== Iteration groups (Figure 10a) ==")
    for g in groups:
        print(f"  tau={render(g.tag, partition.num_blocks)}  "
              f"iterations={g.iterations[0]}..{g.iterations[-1]}")
    print()

    # Distribution + scheduling (Figures 6 and 7).
    mapper = TopologyAwareMapper(machine, block_size=K * 8, local_scheduling=True)
    result = mapper.map_nest(program, nest)
    print("== Per-core assignment and schedule (Figure 11) ==")
    for core, rounds in enumerate(result.group_rounds):
        order = [render(g.tag, partition.num_blocks) for rnd in rounds for g in rnd]
        print(f"  core {core}: {' -> '.join(order)}")
    print()

    # Simulation: TopologyAware vs Base.
    ta = execute_plan(result.plan(), verify=True)
    base = execute_plan(base_plan(nest, machine), verify=True)
    print("== Simulated execution ==")
    print(base.summary())
    print(ta.summary())
    speedup = base.cycles / ta.cycles
    print(f"\nTopologyAware speedup over Base: {speedup:.2f}x")


if __name__ == "__main__":
    main()
