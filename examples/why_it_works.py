"""Explaining the speedup: static analysis of two mappings.

Runs the namd workload under Base and under the combined TopologyAware
scheme, then uses `repro.analysis` to show *why* the topology-aware
mapping wins: replication factors across the cache tree, the share of
cross-core sharing landing on affinity pairs, and the reuse-distance
profile of one core's stream — plus an ASCII chart of the simulated
cycles.

Run:  python examples/why_it_works.py
"""

from repro.analysis import analyze_plan, reuse_distance_profile
from repro.experiments.charts import bar_chart
from repro.experiments.harness import sim_machine
from repro.mapping import TopologyAwareMapper, base_plan
from repro.runtime import execute_plan
from repro.topology.machines import dunnington
from repro.workloads import workload


def main() -> None:
    app = workload("namd")
    program, nest = app.program(), app.nest()
    machine = sim_machine(dunnington())

    base = base_plan(nest, machine)
    mapper = TopologyAwareMapper(
        machine, block_size=app.block_size(), balance_threshold=0.01,
        local_scheduling=True,
    )
    mapping = mapper.map_nest(program, nest)
    ta = mapping.plan()

    print("== Static analysis ==")
    for plan in (base, ta):
        print(analyze_plan(plan, mapping.partition).table())
        print()

    print("== Reuse-distance profile, core 0 (lines of 64B) ==")
    for plan in (base, ta):
        profile = reuse_distance_profile(plan, core=0)
        short = profile.hit_ratio_under(64)
        print(f"  {plan.label:12s}: {100 * short:5.1f}% of reuses within 64 lines "
              f"({profile.first_touches} first touches)")
    print()

    print("== Simulated cycles ==")
    results = {
        plan.label: execute_plan(plan).cycles for plan in (base, ta)
    }
    base_cycles = results["base"]
    print(bar_chart(
        {label: cycles / base_cycles for label, cycles in results.items()},
        title="normalized execution time (| marks Base = 1.0)",
    ))


if __name__ == "__main__":
    main()
