"""Mapping for a custom future machine, and tuning the knobs.

Builds a hypothetical 16-core, 4-level machine through the public
topology API, maps the facesim workload onto it, and sweeps the paper's
tunable parameters (balance threshold, α/β scheduling weights) to show
their effect — the paper's Section 4.2 sensitivity discussion in
miniature.

Run:  python examples/custom_topology.py
"""

from repro.experiments.harness import sim_machine
from repro.mapping import TopologyAwareMapper, base_plan
from repro.runtime import execute_plan
from repro.topology.cache import CacheSpec
from repro.topology.machines import KB, MB, _uniform_tree
from repro.topology.tree import Machine
from repro.util.tables import format_table
from repro.workloads import workload


def future_machine() -> Machine:
    """16 cores, four on-chip levels with binary fan-out."""
    l1 = CacheSpec("L1", 32 * KB, 8, 64, 4)
    l2 = CacheSpec("L2", 256 * KB, 8, 64, 9)
    l3 = CacheSpec("L3", 2 * MB, 16, 64, 22)
    l4 = CacheSpec("L4", 12 * MB, 16, 64, 40)
    root = _uniform_tree(16, [(l1, 1), (l2, 2), (l3, 4), (l4, 8)])
    return Machine("future16", 2.0, 140, root, sockets=2)


def main() -> None:
    machine = sim_machine(future_machine())
    app = workload("facesim")
    program, nest = app.program(), app.nest()

    print(machine.describe(), "\n")
    base = execute_plan(base_plan(nest, machine))
    print(f"Base: {base.cycles} cycles\n")

    rows = []
    for threshold in (0.20, 0.10, 0.02):
        mapper = TopologyAwareMapper(
            machine, block_size=app.block_size(), balance_threshold=threshold
        )
        plan = mapper.map_nest(program, nest).plan()
        cycles = execute_plan(plan).cycles
        rows.append((f"{threshold:.2f}", round(cycles / base.cycles, 3)))
    print(format_table(
        ["balance threshold", "TopologyAware vs Base"],
        rows,
        title="Sensitivity: load-balance threshold",
    ))
    print()

    rows = []
    for alpha, beta in ((1.0, 0.0), (0.5, 0.5), (0.0, 1.0)):
        mapper = TopologyAwareMapper(
            machine,
            block_size=app.block_size(),
            balance_threshold=0.02,
            alpha=alpha,
            beta=beta,
            local_scheduling=True,
        )
        plan = mapper.map_nest(program, nest).plan()
        cycles = execute_plan(plan).cycles
        rows.append((f"a={alpha:g} b={beta:g}", round(cycles / base.cycles, 3)))
    print(format_table(
        ["weights", "Combined vs Base"],
        rows,
        title="Sensitivity: alpha (shared cache) / beta (L1) weights",
    ))


if __name__ == "__main__":
    main()
