"""Inspecting the generated per-core code (Section 3.4).

The paper's pipeline ends with Omega's `codegen` emitting, for each core,
code that enumerates its iterations in schedule order.  This example
shows our equivalent artifacts: the polyhedral loop-nest generator for
convex sets, and the per-core enumerators for a mapped plan.

Run:  python examples/generated_code.py
"""

from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper
from repro.poly import Constraint, IntSet, compile_enumerator, generate_loop_nest
from repro.poly.affine import AffineExpr
from repro.runtime.codeemit import emit_core_sources
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode


def main() -> None:
    # 1. Convex-set codegen: a triangular space with a strided equality.
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    space = IntSet(
        ["i", "j"],
        [
            Constraint.ge(i, 0), Constraint.le(i, 9),
            Constraint.ge(j, 0), Constraint.le(j, i),
        ],
    )
    source = generate_loop_nest(space)
    print("== Generated loop nest for {(i,j) | 0<=i<=9, 0<=j<=i} ==")
    print(source)
    fn = compile_enumerator(source)
    points = list(fn())
    print(f"enumerates {len(points)} points, first {points[:4]}\n")

    # 2. Per-core enumerators for a mapped plan.
    program = compile_source(
        """
        param m = 64;
        array B[64];
        parallel for (j = 0; j < m; j++)
          B[j] = B[j] + B[m - 1 - j];
        """,
        name="mirror",
    )
    l1 = CacheSpec("L1", 512, 2, 32, 2)
    l2 = CacheSpec("L2", 2048, 4, 32, 8)
    cores = [TopologyNode.core(k) for k in range(2)]
    l1s = [TopologyNode.cache(l1, [c]) for c in cores]
    machine = Machine("pair", 1.0, 60, TopologyNode.cache(l2, l1s), sockets=1)

    mapper = TopologyAwareMapper(machine, block_size=64, local_scheduling=True)
    plan = mapper.map_nest(program, program.nests[0]).plan()
    print("== Per-core enumerators (schedule order, barrier markers) ==")
    for source in emit_core_sources(plan):
        print(source)


if __name__ == "__main__":
    main()
