"""Unit tests for array accesses."""

import pytest

from repro.errors import IRError
from repro.ir.accesses import ArrayAccess
from repro.ir.arrays import Array
from repro.poly.affine import AffineExpr

i = AffineExpr.var("i")
j = AffineExpr.var("j")
A = Array("A", (10, 10))
B = Array("B", (64,))


class TestConstruction:
    def test_basic(self):
        acc = ArrayAccess(A, ("i", "j"), [i + 1, j - 1])
        assert acc.element((0, 2)) == (1, 1)

    def test_rank_mismatch(self):
        with pytest.raises(IRError):
            ArrayAccess(A, ("i",), [i])

    def test_foreign_variable(self):
        with pytest.raises(IRError):
            ArrayAccess(B, ("i",), [j])

    def test_coercion(self):
        acc = ArrayAccess(B, ("i",), ["i"])
        assert acc.element((5,)) == (5,)

    def test_is_write_flag(self):
        acc = ArrayAccess(B, ("i",), [i], is_write=True)
        assert acc.is_write


class TestOffsets:
    def test_element_offset(self):
        acc = ArrayAccess(A, ("i", "j"), [i, j])
        assert acc.element_offset((2, 3)) == 23

    def test_offset_form_matches_checked_path(self):
        acc = ArrayAccess(A, ("i", "j"), [i + 1, j * 2])
        const, coeffs = acc.offset_form()
        for point in [(0, 0), (3, 4), (8, 4)]:
            fast = const + sum(c * x for c, x in zip(coeffs, point))
            assert fast == acc.element_offset(point)

    def test_offset_form_1d(self):
        acc = ArrayAccess(B, ("i",), [i * 3 + 2])
        const, coeffs = acc.offset_form()
        assert const == 2 and coeffs == (3,)


class TestUniformity:
    def test_uniform_pair(self):
        a = ArrayAccess(A, ("i", "j"), [i, j])
        b = ArrayAccess(A, ("i", "j"), [i + 1, j - 1])
        assert a.is_uniform_with(b)

    def test_non_uniform_pair(self):
        a = ArrayAccess(A, ("i", "j"), [i, j])
        b = ArrayAccess(A, ("i", "j"), [j, i])
        assert not a.is_uniform_with(b)

    def test_different_arrays_not_uniform(self):
        a = ArrayAccess(A, ("i", "j"), [i, j])
        b = ArrayAccess(Array("C", (10, 10)), ("i", "j"), [i, j])
        assert not a.is_uniform_with(b)


class TestDunder:
    def test_equality(self):
        a = ArrayAccess(B, ("i",), [i], is_write=True)
        b = ArrayAccess(B, ("i",), [AffineExpr.var("i")], is_write=True)
        assert a == b and hash(a) == hash(b)

    def test_write_flag_distinguishes(self):
        a = ArrayAccess(B, ("i",), [i], is_write=True)
        b = ArrayAccess(B, ("i",), [i], is_write=False)
        assert a != b

    def test_repr_shows_kind(self):
        assert repr(ArrayAccess(B, ("i",), [i], is_write=True)).startswith("ArrayAccess(W")
