"""Unit tests for loop nests and programs."""

import pytest

from repro.errors import IRError
from repro.ir.accesses import ArrayAccess
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest, Program
from repro.poly.affine import AffineExpr
from repro.poly.intset import IntSet

i = AffineExpr.var("i")
j = AffineExpr.var("j")


def simple_nest(extent=8, name="n"):
    arr = Array("A", (extent,))
    space = IntSet.box(["i"], [(0, extent - 1)])
    return LoopNest(name, space, [ArrayAccess(arr, ("i",), [i], is_write=True)])


class TestLoopNest:
    def test_basic(self):
        nest = simple_nest()
        assert nest.depth == 1 and nest.iteration_count() == 8

    def test_access_dim_mismatch(self):
        arr = Array("A", (4,))
        space = IntSet.box(["i"], [(0, 3)])
        access = ArrayAccess(arr, ("x",), [AffineExpr.var("x")])
        with pytest.raises(IRError):
            LoopNest("bad", space, [access])

    def test_reads_writes(self, fig5_program):
        nest = fig5_program.nests[0]
        assert len(nest.writes()) == 1 and len(nest.reads()) == 3

    def test_arrays_dedup(self, fig5_program):
        nest = fig5_program.nests[0]
        assert [a.name for a in nest.arrays()] == ["B"]

    def test_touched_elements(self, fig4_program):
        nest = fig4_program.nests[0]
        touched = nest.touched_elements((1, 3))
        assert ("A", (2, 2), True) in touched

    def test_immutable(self):
        nest = simple_nest()
        with pytest.raises(AttributeError):
            nest.name = "other"


class TestBoundsValidation:
    def test_in_bounds_passes(self, fig4_program):
        fig4_program.nests[0].validate_access_bounds()

    def test_out_of_bounds_raises(self):
        arr = Array("A", (4,))
        space = IntSet.box(["i"], [(0, 4)])  # i=4 touches A[4]
        nest = LoopNest("oob", space, [ArrayAccess(arr, ("i",), [i], is_write=True)])
        with pytest.raises(IRError):
            nest.validate_access_bounds()

    def test_negative_subscript_raises(self):
        arr = Array("A", (8,))
        space = IntSet.box(["i"], [(0, 3)])
        nest = LoopNest("neg", space, [ArrayAccess(arr, ("i",), [i - 1])])
        with pytest.raises(IRError):
            nest.validate_access_bounds()


class TestProgram:
    def test_lookup(self, fig5_program):
        assert fig5_program.nest("fig5").name == "fig5"
        with pytest.raises(IRError):
            fig5_program.nest("nope")

    def test_total_data_bytes(self, fig5_program):
        assert fig5_program.total_data_bytes() == 48 * 8

    def test_duplicate_arrays_rejected(self):
        arr = Array("A", (4,))
        with pytest.raises(IRError):
            Program("p", [arr, Array("A", (4,))], [])

    def test_undeclared_array_rejected(self):
        nest = simple_nest()
        with pytest.raises(IRError):
            Program("p", [Array("B", (4,))], [nest])

    def test_declaration_mismatch_rejected(self):
        nest = simple_nest(extent=8)
        with pytest.raises(IRError):
            Program("p", [Array("A", (9,))], [nest])
