"""Unit tests for arrays and data spaces."""

import pytest

from repro.errors import IRError
from repro.ir.arrays import Array


class TestConstruction:
    def test_basic(self):
        a = Array("A", (4, 6))
        assert a.rank == 2 and a.size_elements == 24 and a.size_bytes == 192

    def test_element_size(self):
        assert Array("A", (4,), element_size=4).size_bytes == 16

    def test_empty_extents_rejected(self):
        with pytest.raises(IRError):
            Array("A", ())

    def test_non_positive_extent_rejected(self):
        with pytest.raises(IRError):
            Array("A", (4, 0))

    def test_non_positive_element_size(self):
        with pytest.raises(IRError):
            Array("A", (4,), element_size=0)

    def test_immutable(self):
        a = Array("A", (4,))
        with pytest.raises(AttributeError):
            a.extents = (5,)


class TestLinearization:
    def test_row_major(self):
        a = Array("A", (3, 4))
        assert a.linear_offset((0, 0)) == 0
        assert a.linear_offset((0, 3)) == 3
        assert a.linear_offset((1, 0)) == 4
        assert a.linear_offset((2, 3)) == 11

    def test_roundtrip(self):
        a = Array("A", (3, 4, 5))
        for offset in range(a.size_elements):
            assert a.linear_offset(a.index_of_offset(offset)) == offset

    def test_out_of_bounds(self):
        a = Array("A", (3, 4))
        with pytest.raises(IRError):
            a.linear_offset((3, 0))
        with pytest.raises(IRError):
            a.linear_offset((0, -1))

    def test_rank_mismatch(self):
        with pytest.raises(IRError):
            Array("A", (3, 4)).linear_offset((1,))

    def test_offset_out_of_range(self):
        with pytest.raises(IRError):
            Array("A", (4,)).index_of_offset(4)


class TestDataSpace:
    def test_data_space_count(self):
        a = Array("A", (3, 4))
        assert a.data_space().count() == 12

    def test_data_space_custom_names(self):
        s = Array("A", (2, 2)).data_space(("x", "y"))
        assert s.dims == ("x", "y")

    def test_data_space_name_arity(self):
        with pytest.raises(IRError):
            Array("A", (2, 2)).data_space(("x",))

    def test_contains(self):
        a = Array("A", (3, 4))
        assert a.contains((2, 3)) and not a.contains((2, 4)) and not a.contains((1,))


class TestDunder:
    def test_equality(self):
        assert Array("A", (3,)) == Array("A", (3,))
        assert Array("A", (3,)) != Array("A", (4,))
        assert Array("A", (3,)) != Array("B", (3,))

    def test_hash(self):
        assert hash(Array("A", (3,))) == hash(Array("A", (3,)))

    def test_repr(self):
        assert "A[3][4]" in repr(Array("A", (3, 4)))
