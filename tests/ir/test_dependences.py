"""Unit tests for dependence analysis."""

from repro.ir.accesses import ArrayAccess
from repro.ir.arrays import Array
from repro.ir.dependences import (
    dependence_polyhedron,
    gcd_filter,
    has_loop_carried_dependence,
    iteration_dependences,
)
from repro.lang import compile_source
from repro.poly.affine import AffineExpr

i = AffineExpr.var("i")


class TestGcdFilter:
    def test_different_arrays_never_depend(self):
        a = ArrayAccess(Array("A", (8,)), ("i",), [i], is_write=True)
        b = ArrayAccess(Array("B", (8,)), ("i",), [i])
        assert not gcd_filter(a, b)

    def test_stride_parity_independence(self):
        # A[2i] vs A[2i+1]: even vs odd elements never meet.
        arr = Array("A", (32,))
        w = ArrayAccess(arr, ("i",), [i * 2], is_write=True)
        r = ArrayAccess(arr, ("i",), [i * 2 + 1])
        assert not gcd_filter(w, r)

    def test_compatible_strides_pass(self):
        arr = Array("A", (32,))
        w = ArrayAccess(arr, ("i",), [i * 2], is_write=True)
        r = ArrayAccess(arr, ("i",), [i * 2 + 4])
        assert gcd_filter(w, r)

    def test_constant_subscripts(self):
        arr = Array("A", (8,))
        a = ArrayAccess(arr, ("i",), [3], is_write=True)
        b = ArrayAccess(arr, ("i",), [4])
        assert not gcd_filter(a, b)
        assert gcd_filter(a, ArrayAccess(arr, ("i",), [3]))


class TestLoopCarried:
    def test_fully_parallel(self, fig4_program):
        assert not has_loop_carried_dependence(fig4_program.nests[0])

    def test_banded_dependence(self, fig5_program):
        assert has_loop_carried_dependence(fig5_program.nests[0])

    def test_reduction_dependence(self):
        prog = compile_source("array S[1]; array A[8]; for (i=0;i<8;i++) S[0] = S[0] + A[i];")
        assert has_loop_carried_dependence(prog.nests[0])

    def test_independent_writes(self):
        prog = compile_source("array A[8]; for (i=0;i<8;i++) A[i] = 1;")
        assert not has_loop_carried_dependence(prog.nests[0])

    def test_inner_level_dependence(self):
        prog = compile_source(
            "array A[8][8]; for (i=0;i<8;i++) for (j=1;j<8;j++) A[i][j] = A[i][j-1] + 1;"
        )
        assert has_loop_carried_dependence(prog.nests[0])


class TestDependencePairs:
    def test_flow_direction(self, dependent_program):
        pairs = list(iteration_dependences(dependent_program.nests[0]))
        assert pairs
        for pair in pairs:
            assert pair.source < pair.sink

    def test_distance(self, dependent_program):
        pairs = list(iteration_dependences(dependent_program.nests[0]))
        assert all(p.distance == (4,) for p in pairs if p.kind == "flow")

    def test_limit(self, dependent_program):
        assert len(list(iteration_dependences(dependent_program.nests[0], limit=3))) == 3

    def test_kinds_present(self, fig5_program):
        kinds = {p.kind for p in iteration_dependences(fig5_program.nests[0])}
        assert "flow" in kinds or "anti" in kinds

    def test_no_pairs_for_parallel(self, fig4_program):
        assert list(iteration_dependences(fig4_program.nests[0])) == []

    def test_polyhedron_level_semantics(self, dependent_program):
        nest = dependent_program.nests[0]
        w = nest.writes()[0]
        r = [a for a in nest.reads() if a.subscripts[0].coeff("j") == 1 and a.subscripts[0].constant == -4][0]
        poly = dependence_polyhedron(nest, w, r, 0)
        for point in poly.points():
            src, sink = point[0], point[1]
            assert src < sink and src == sink - 4
