"""Frontend round-trips and structural checks of the workload sources."""

import pytest

from repro.lang.parser import parse
from repro.workloads import all_workloads


@pytest.mark.parametrize("w", all_workloads(), ids=lambda w: w.name)
class TestWorkloadSources:
    def test_printer_fixpoint(self, w):
        once = str(parse(w.source))
        assert str(parse(once)) == once

    def test_single_top_level_nest(self, w):
        assert len(parse(w.source).loops) == 1

    def test_outermost_is_parallel(self, w):
        assert parse(w.source).loops[0].parallel

    def test_kernel_has_comment_header(self, w):
        assert f"// {w.name}" in w.source

    def test_write_target_is_distinct_or_accumulating(self, w):
        """Every kernel writes exactly one array reference per statement."""
        nest = w.nest()
        assert len(nest.writes()) >= 1

    def test_elements_are_doubles(self, w):
        for array in w.program().arrays.values():
            assert array.element_size == 8
