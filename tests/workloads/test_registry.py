"""Unit tests for the workload registry (Table 2 plus the irregular suite)."""

import pytest

from repro.errors import UnknownWorkloadError, WorkloadError
from repro.workloads import (
    IRREGULAR_SUITE,
    all_workloads,
    application_table,
    irregular_workloads,
    paper_workloads,
    suites,
    workload,
)

PAPER_APPS = {
    "applu", "galgel", "equake", "cg", "sp", "bodytrack",
    "facesim", "freqmine", "namd", "povray", "mesa", "h264",
}

IRREGULAR_APPS = {
    "spmv_banded", "spmv_random", "mesh_edge", "histogram", "csr_sweep",
}


class TestRegistry:
    def test_twelve_paper_applications(self):
        assert {w.name for w in paper_workloads()} == PAPER_APPS

    def test_irregular_suite(self):
        assert {w.name for w in irregular_workloads()} == IRREGULAR_APPS
        assert all(w.suite == IRREGULAR_SUITE for w in irregular_workloads())

    def test_all_workloads_is_both_populations(self):
        assert {w.name for w in all_workloads()} == PAPER_APPS | IRREGULAR_APPS

    def test_all_workloads_suite_filter(self):
        assert all_workloads(IRREGULAR_SUITE) == irregular_workloads()
        assert {w.name for w in all_workloads("NAS")} == {"cg", "sp"}

    def test_suites_listing(self):
        names = suites()
        assert names[-1] == IRREGULAR_SUITE  # registry order, irregular last
        assert set(names) == {
            "SpecOMP", "NAS", "Parsec", "Spec2006", "local", IRREGULAR_SUITE,
        }

    def test_lookup(self):
        assert workload("galgel").suite == "SpecOMP"

    def test_unknown_is_usage_error_with_menu(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            workload("linpack")
        assert excinfo.value.name == "linpack"
        assert set(excinfo.value.known) == PAPER_APPS | IRREGULAR_APPS
        # still a WorkloadError for callers catching broadly
        assert isinstance(excinfo.value, WorkloadError)

    def test_suites_match_paper(self):
        by_name = {w.name: w.suite for w in paper_workloads()}
        assert by_name["cg"] == "NAS" and by_name["sp"] == "NAS"
        assert by_name["bodytrack"] == "Parsec"
        assert by_name["namd"] == "Spec2006"
        assert by_name["mesa"] == "local" and by_name["h264"] == "local"

    def test_four_sequential_origin(self):
        # Table 2: namd, povray, mesa, H.264 arrive sequential.
        seq = {w.name for w in paper_workloads() if w.kind == "sequential"}
        assert seq == {"namd", "povray", "mesa", "h264"}


class TestKernels:
    @pytest.mark.parametrize("name", sorted(PAPER_APPS | IRREGULAR_APPS))
    def test_compiles(self, name):
        w = workload(name)
        nest = w.nest()
        assert nest.iteration_count() > 0
        assert nest.accesses

    @pytest.mark.parametrize("name", sorted(PAPER_APPS | IRREGULAR_APPS))
    def test_in_bounds(self, name):
        workload(name).nest().validate_access_bounds()

    @pytest.mark.parametrize("name", sorted(PAPER_APPS | IRREGULAR_APPS))
    def test_fully_parallel_as_declared(self, name):
        # The irregular reductions carry `parallel for` too (commutative
        # accumulation), so every registry nest is parallel.
        assert workload(name).nest().parallel

    @pytest.mark.parametrize("name", sorted(PAPER_APPS | IRREGULAR_APPS))
    def test_block_size_sane(self, name):
        w = workload(name)
        bs = w.block_size()
        assert bs % 64 == 0
        assert 16 <= w.data_bytes() // bs <= 256

    @pytest.mark.parametrize("name", sorted(PAPER_APPS))
    def test_paper_kernels_affine(self, name):
        assert workload(name).nest().is_affine()

    @pytest.mark.parametrize("name", sorted(IRREGULAR_APPS))
    def test_irregular_kernels_not_affine(self, name):
        w = workload(name)
        assert not w.nest().is_affine()
        assert w.index_data  # recorded index arrays travel with the workload

    @pytest.mark.parametrize("name", sorted(IRREGULAR_APPS))
    def test_index_data_deterministic(self, name):
        # Two independent builds record identical index arrays.
        import repro.workloads.kernels as kernels

        builder = getattr(kernels, name)
        _, _, first = builder()
        _, _, second = builder()
        assert first == second

    def test_program_cached(self):
        w = workload("applu")
        assert w.program() is w.program()

    def test_nest_rejects_multi_nest_programs(self):
        # Workload.nest() must not silently pick nests[0].
        from dataclasses import replace

        two = replace(
            workload("applu"),
            name="two_nests",
            source="""
array A[64];
array B[64];
parallel for (i = 0; i < 64; i++)
  A[i] = B[i];
parallel for (i = 0; i < 64; i++)
  B[i] = A[i];
""",
        )
        assert len(two.program().nests) == 2
        with pytest.raises(WorkloadError, match="2 nests"):
            two.nest()

    def test_table_renders(self):
        text = application_table()
        for name in PAPER_APPS | IRREGULAR_APPS:
            assert name in text

    def test_table_suite_filter(self):
        text = application_table(IRREGULAR_SUITE)
        assert "spmv_banded" in text
        assert "galgel" not in text
