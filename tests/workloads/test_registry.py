"""Unit tests for the workload registry (Table 2)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import all_workloads, application_table, workload

PAPER_APPS = {
    "applu", "galgel", "equake", "cg", "sp", "bodytrack",
    "facesim", "freqmine", "namd", "povray", "mesa", "h264",
}


class TestRegistry:
    def test_twelve_applications(self):
        assert {w.name for w in all_workloads()} == PAPER_APPS

    def test_lookup(self):
        assert workload("galgel").suite == "SpecOMP"

    def test_unknown(self):
        with pytest.raises(WorkloadError):
            workload("linpack")

    def test_suites_match_paper(self):
        suites = {w.name: w.suite for w in all_workloads()}
        assert suites["cg"] == "NAS" and suites["sp"] == "NAS"
        assert suites["bodytrack"] == "Parsec"
        assert suites["namd"] == "Spec2006"
        assert suites["mesa"] == "local" and suites["h264"] == "local"

    def test_four_sequential_origin(self):
        # Table 2: namd, povray, mesa, H.264 arrive sequential.
        seq = {w.name for w in all_workloads() if w.kind == "sequential"}
        assert seq == {"namd", "povray", "mesa", "h264"}


class TestKernels:
    @pytest.mark.parametrize("name", sorted(PAPER_APPS))
    def test_compiles(self, name):
        w = workload(name)
        nest = w.nest()
        assert nest.iteration_count() > 0
        assert nest.accesses

    @pytest.mark.parametrize("name", sorted(PAPER_APPS))
    def test_in_bounds(self, name):
        workload(name).nest().validate_access_bounds()

    @pytest.mark.parametrize("name", sorted(PAPER_APPS))
    def test_fully_parallel_as_declared(self, name):
        assert workload(name).nest().parallel

    @pytest.mark.parametrize("name", sorted(PAPER_APPS))
    def test_block_size_sane(self, name):
        w = workload(name)
        bs = w.block_size()
        assert bs % 64 == 0
        assert 16 <= w.data_bytes() // bs <= 256

    def test_program_cached(self):
        w = workload("applu")
        assert w.program() is w.program()

    def test_table_renders(self):
        text = application_table()
        for name in PAPER_APPS:
            assert name in text
