"""Workload sizing invariants: the data-to-cache regime of the paper."""

import pytest

from repro.experiments.harness import sim_machine
from repro.topology.machines import commercial_machines
from repro.workloads import all_workloads


class TestSizingRegime:
    @pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
    def test_data_exceeds_every_llc(self, workload):
        """The paper's regime: working sets exceed the aggregate LLC, so
        placement decides what lives on-chip."""
        data = workload.data_bytes()
        for machine in commercial_machines():
            scaled = sim_machine(machine)
            level = scaled.cache_levels()[-1]
            llc_total = sum(
                n.spec.size_bytes
                for n in scaled.cache_nodes()
                if n.spec.level == level
            )
            assert data > llc_total * 0.8, (
                f"{workload.name} data {data} too small vs {machine.name} "
                f"LLC {llc_total}"
            )

    @pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
    def test_data_not_absurdly_large(self, workload):
        """Simulation tractability: bounded iteration and access counts."""
        nest = workload.nest()
        accesses = nest.iteration_count() * len(nest.accesses)
        assert accesses <= 600_000

    @pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
    def test_tag_width_manageable(self, workload):
        assert workload.data_bytes() // workload.block_size() <= 256
