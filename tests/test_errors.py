"""Unit tests for the exception taxonomy and top-level API surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError), name

    def test_frontend_errors_carry_position(self):
        err = errors.ParseError("boom", line=3, column=7)
        assert "line 3" in str(err) and "col 7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_frontend_error_without_position(self):
        err = errors.LexError("boom")
        assert str(err) == "boom" and err.line is None

    def test_catch_all_boundary(self):
        with pytest.raises(errors.ReproError):
            raise errors.ScheduleError("cycle")

    def test_specific_subclassing(self):
        assert issubclass(errors.ScheduleError, errors.MappingError)
        assert issubclass(errors.EmptySetError, errors.PolyhedralError)
        assert issubclass(errors.SemanticError, errors.FrontendError)


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_compile_and_map_through_top_level(self):
        from repro.topology.cache import CacheSpec
        from repro.topology.tree import Machine, TopologyNode

        program = repro.compile_source(
            "array A[64]; parallel for (i=0;i<64;i++) A[i] = A[63 - i];"
        )
        l1 = CacheSpec("L1", 512, 2, 32, 2)
        cores = [TopologyNode.core(0), TopologyNode.core(1)]
        l1s = [TopologyNode.cache(l1, [c]) for c in cores]
        machine = Machine("t2", 1.0, 40, TopologyNode.memory(l1s), sockets=1)
        mapper = repro.TopologyAwareMapper(machine, block_size=64)
        plan = mapper.map_nest(program, program.nests[0]).plan()
        result = repro.execute_plan(plan, verify=True)
        assert result.cycles > 0
