"""Property tests: indirect-access serialization round-trips exactly.

The wire format grew ``"kind": "indirect"`` subscripts and index-array
``"data"`` for the trace-tagged suite; this file is the
:class:`~repro.ir.accesses.IndirectAccess` counterpart of
``test_serialize_program.py``.  Hypothesis drives randomized nests whose
references gather through a recorded index array, asserting the round
trip preserves the dict, the digest, the concrete per-iteration element
offsets (the only semantics an indirect reference has), and the mapping
the trace-tagging frontend produces.  A final class pins the affine wire
format: programs without indirect references must not grow the new keys.
"""

from hypothesis import given, settings, strategies as st

from repro.ir.accesses import ArrayAccess, IndirectAccess, IndirectExpr
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest, Program
from repro.mapping.distribute import TopologyAwareMapper
from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet
from repro.runtime.serialize import (
    program_digest,
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
)
from tests.runtime.test_serialize_program import EXTENT, MACHINE, programs

#: Index-array length; inner affine subscripts stay within [0, 40] (see
#: the EXTENT comment in test_serialize_program), so 64 entries suffice.
INDEX_LEN = 64


@st.composite
def inner_affine(draw, dims):
    coeffs = {dim: draw(st.integers(min_value=0, max_value=2)) for dim in dims}
    constant = draw(st.integers(min_value=0, max_value=4))
    return AffineExpr(coeffs, constant)


@st.composite
def indirect_programs(draw):
    depth = draw(st.integers(min_value=1, max_value=2))
    dims = tuple(f"i{k}" for k in range(depth))
    constraints = []
    for index, dim in enumerate(dims):
        lo = draw(st.integers(min_value=0, max_value=2))
        extent = draw(st.integers(min_value=4 if index == 0 else 1, max_value=6))
        constraints.append(Constraint(AffineExpr({dim: 1}, -lo)))
        constraints.append(Constraint(AffineExpr({dim: -1}, lo + extent - 1)))
    space = IntSet(dims, constraints)

    idx = Array(
        "idx",
        (INDEX_LEN,),
        data=draw(
            st.lists(
                st.integers(min_value=0, max_value=EXTENT - 1),
                min_size=INDEX_LEN,
                max_size=INDEX_LEN,
            )
        ),
    )
    data_arrays = [Array(name, (EXTENT,)) for name in ("A", "B")]

    accesses = []
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        array = draw(st.sampled_from(data_arrays))
        is_write = index == 0
        if index == 0 or draw(st.booleans()):
            gather = IndirectExpr(idx, [draw(inner_affine(dims))])
            accesses.append(IndirectAccess(array, dims, [gather], is_write))
        else:
            # Plain affine references ride along, mixing the two access
            # classes within one nest.
            accesses.append(
                ArrayAccess(array, dims, [draw(inner_affine(dims))], is_write)
            )
    nest = LoopNest("gather", space, accesses, parallel=True)
    return Program("prog", data_arrays + [idx], [nest], {})


class TestIndirectRoundTrip:
    @settings(max_examples=75, deadline=None)
    @given(indirect_programs())
    def test_dict_round_trip_is_exact(self, program):
        payload = program_to_dict(program)
        restored = program_from_dict(payload)
        assert program_to_dict(restored) == payload
        assert program_digest(restored) == program_digest(program)

    @settings(max_examples=30, deadline=None)
    @given(indirect_programs())
    def test_json_round_trip_is_exact(self, program):
        restored = program_from_json(program_to_json(program))
        assert program_digest(restored) == program_digest(program)

    @settings(max_examples=30, deadline=None)
    @given(indirect_programs())
    def test_index_data_and_offsets_survive(self, program):
        """The semantics of an indirect reference are its concrete
        per-iteration element offsets; they must survive the wire."""
        restored = program_from_dict(program_to_dict(program))
        assert restored.arrays["idx"].data == program.arrays["idx"].data
        original_nest, rebuilt_nest = program.nests[0], restored.nests[0]
        for original, rebuilt in zip(
            original_nest.accesses, rebuilt_nest.accesses
        ):
            assert type(rebuilt) is type(original)
            assert rebuilt.is_affine == original.is_affine
            for point in original_nest.iterations():
                assert rebuilt.element_offset(point) == original.element_offset(
                    point
                )

    @settings(max_examples=15, deadline=None)
    @given(indirect_programs())
    def test_mapping_is_identical(self, program):
        """A deserialized irregular program maps bit-identically — the
        whole trace-tagging frontend runs off the restored IR."""
        restored = program_from_dict(program_to_dict(program))
        expected = (
            TopologyAwareMapper(MACHINE).map_nest(program, program.nests[0]).plan()
        )
        actual = (
            TopologyAwareMapper(MACHINE)
            .map_nest(restored, restored.nests[0])
            .plan()
        )
        assert actual.rounds == expected.rounds


class TestAffineWireFormatUnchanged:
    @settings(max_examples=50, deadline=None)
    @given(programs())
    def test_affine_payload_has_no_indirect_keys(self, program):
        """Pre-seam clients parse these payloads; affine programs must
        serialize without the new optional keys."""
        payload = program_to_dict(program)
        assert not any("data" in raw for raw in payload["arrays"])
        for raw_nest in payload["nests"]:
            for raw_access in raw_nest["accesses"]:
                assert "kind" not in raw_access
                assert not any(
                    isinstance(s, dict) and s.get("kind") == "indirect"
                    for s in raw_access["subscripts"]
                )
