"""Unit tests for the one-call executor."""

from repro.mapping.baselines import base_plan
from repro.mapping.distribute import TopologyAwareMapper
from repro.runtime import execute_plan
from repro.sim.engine import SimConfig


class TestExecutor:
    def test_runs_and_verifies(self, fig5_program, fig9_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        result = execute_plan(plan, verify=True)
        assert result.cycles > 0

    def test_machine_override(self, fig5_program, fig9_machine, two_core_machine):
        plan = base_plan(fig5_program.nests[0], two_core_machine)
        result = execute_plan(plan, machine=fig9_machine)
        assert result.machine_name == "fig9"

    def test_config_passthrough(self, fig5_program, fig9_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        cheap = execute_plan(plan, config=SimConfig(issue_cycles=0))
        costly = execute_plan(plan, config=SimConfig(issue_cycles=10))
        assert costly.cycles > cheap.cycles

    def test_topology_aware_end_to_end(self, fig5_program, fig9_machine):
        mapper = TopologyAwareMapper(fig9_machine, block_size=32)
        plan = mapper.map_nest(fig5_program, fig5_program.nests[0]).plan()
        result = execute_plan(plan, verify=True)
        result.verify_conservation()
