"""Unit tests for multi-nest program mapping and execution."""

from repro.lang import compile_source
from repro.mapping.distribute import TopologyAwareMapper
from repro.runtime import execute_program


def two_nest_program():
    return compile_source(
        """
        array A[512];
        array B[512];
        parallel for (i = 0; i < 512; i++)
          A[i] = B[i] + B[511 - i];
        parallel for (j = 0; j < 512; j++)
          B[j] = A[j] + A[511 - j];
        """,
        name="twophase",
    )


class TestMapProgram:
    def test_one_result_per_nest(self, fig9_machine):
        program = two_nest_program()
        mapper = TopologyAwareMapper(fig9_machine, block_size=512)
        results = mapper.map_program(program)
        assert len(results) == 2
        for result in results:
            result.plan().verify_complete()


class TestExecuteProgram:
    def test_sequential_execution(self, fig9_machine):
        program = two_nest_program()
        mapper = TopologyAwareMapper(fig9_machine, block_size=512)
        plans = [r.plan() for r in mapper.map_program(program)]
        results = execute_program(plans)
        assert len(results) == 2
        for r in results:
            r.verify_conservation()

    def test_warm_caches_help_second_nest(self, fig9_machine):
        program = two_nest_program()
        mapper = TopologyAwareMapper(fig9_machine, block_size=512)
        plans = [r.plan() for r in mapper.map_program(program)]
        warm = execute_program(plans, warm_caches=True)
        cold = execute_program(plans, warm_caches=False)
        # Nest 2 re-reads A, which nest 1 just wrote: warm caches must
        # not be slower, and will typically hit.
        assert warm[1].memory_accesses <= cold[1].memory_accesses

    def test_empty_program(self):
        assert execute_program([]) == []
