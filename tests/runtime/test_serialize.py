"""Unit tests for plan serialization."""

import json

import pytest

from repro.errors import SimulationError
from repro.mapping.distribute import TopologyAwareMapper
from repro.runtime import execute_plan
from repro.runtime.serialize import plan_from_json, plan_to_json, result_to_dict


@pytest.fixture
def plan(fig5_program, fig9_machine):
    mapper = TopologyAwareMapper(fig9_machine, block_size=32, local_scheduling=True)
    return mapper.map_nest(fig5_program, fig5_program.nests[0]).plan()


class TestRoundTrip:
    def test_identical_rounds(self, plan, fig5_program, fig9_machine):
        text = plan_to_json(plan)
        restored = plan_from_json(text, fig5_program, fig9_machine)
        assert restored.rounds == plan.rounds
        assert restored.label == plan.label

    def test_simulates_identically(self, plan, fig5_program, fig9_machine):
        restored = plan_from_json(plan_to_json(plan), fig5_program, fig9_machine)
        assert execute_plan(restored).cycles == execute_plan(plan).cycles

    def test_json_is_plain(self, plan):
        payload = json.loads(plan_to_json(plan))
        assert payload["format"] == 1
        assert isinstance(payload["rounds"], list)


class TestValidation:
    def test_malformed_json(self, fig5_program, fig9_machine):
        with pytest.raises(SimulationError):
            plan_from_json("{not json", fig5_program, fig9_machine)

    def test_wrong_format_version(self, plan, fig5_program, fig9_machine):
        payload = json.loads(plan_to_json(plan))
        payload["format"] = 99
        with pytest.raises(SimulationError):
            plan_from_json(json.dumps(payload), fig5_program, fig9_machine)

    def test_machine_mismatch(self, plan, fig5_program, two_core_machine):
        with pytest.raises(SimulationError):
            plan_from_json(plan_to_json(plan), fig5_program, two_core_machine)

    def test_tampered_rounds_detected(self, plan, fig5_program, fig9_machine):
        payload = json.loads(plan_to_json(plan))
        payload["rounds"][0][0] = payload["rounds"][0][0][1:]  # drop an iteration
        with pytest.raises(Exception):
            plan_from_json(json.dumps(payload), fig5_program, fig9_machine)


class TestResultDict:
    def test_flattens(self, plan):
        result = execute_plan(plan)
        payload = result_to_dict(result)
        assert payload["cycles"] == result.cycles
        assert "L1" in payload["levels"]
        json.dumps(payload)  # fully JSON-serializable
