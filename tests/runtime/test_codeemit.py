"""Unit tests for per-core code emission."""

from repro.mapping.distribute import TopologyAwareMapper
from repro.runtime.codeemit import compile_core, emit_core_sources, emit_plan_module


def make_plan(fig5_program, fig9_machine):
    mapper = TopologyAwareMapper(fig9_machine, block_size=32, local_scheduling=True)
    return mapper.map_nest(fig5_program, fig5_program.nests[0]).plan()


class TestEmission:
    def test_one_source_per_core(self, fig5_program, fig9_machine):
        plan = make_plan(fig5_program, fig9_machine)
        assert len(emit_core_sources(plan)) == 4

    def test_compiled_core_yields_its_iterations(self, fig5_program, fig9_machine):
        plan = make_plan(fig5_program, fig9_machine)
        for core in range(4):
            fn = compile_core(plan, core)
            iters = [payload for kind, payload in fn() if kind == "iter"]
            assert iters == plan.core_iterations(core)

    def test_barrier_markers_match_rounds(self, dependent_program, two_core_machine):
        mapper = TopologyAwareMapper(two_core_machine, block_size=32)
        plan = mapper.map_nest(dependent_program, dependent_program.nests[0]).plan()
        fn = compile_core(plan, 0)
        barriers = [payload for kind, payload in fn() if kind == "barrier"]
        assert len(barriers) == plan.num_rounds - 1

    def test_module_has_dispatch_table(self, fig5_program, fig9_machine):
        plan = make_plan(fig5_program, fig9_machine)
        source = emit_plan_module(plan)
        namespace = {}
        exec(source, namespace)
        assert len(namespace["CORES"]) == 4
        all_iters = []
        for fn in namespace["CORES"]:
            all_iters += [p for kind, p in fn() if kind == "iter"]
        assert sorted(all_iters) == sorted(fig5_program.nests[0].iterations())

    def test_empty_core_emits_empty_generator(self, fig5_program, fig9_machine):
        from repro.mapping.distribute import ExecutablePlan

        nest = fig5_program.nests[0]
        pts = tuple(nest.iterations())
        plan = ExecutablePlan(
            fig9_machine, nest, ((pts,), ((),), ((),), ((),)), "lopsided"
        )
        fn = compile_core(plan, 1)
        assert list(fn()) == []
