"""Property tests: program serialization round-trips exactly.

The service accepts serialized IR as a wire format, so
``program_from_dict(program_to_dict(p))`` must reproduce *p* for any
well-formed program — same canonical dict, same content digest, same
iteration space, and (the property that actually matters downstream) the
same mapping out of the topology-aware pipeline.  Hypothesis drives
randomized rectangular nests with random affine accesses through the
round trip.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.errors import IRError
from repro.ir.accesses import ArrayAccess
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest, Program
from repro.mapping.distribute import TopologyAwareMapper
from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet
from repro.runtime.serialize import (
    program_digest,
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
)
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode


def small_machine() -> Machine:
    """Four cores, two shared L2s — enough topology to make mapping
    decisions without making each hypothesis example expensive."""
    l1 = CacheSpec("L1", 1024, 2, 32, 2)
    l2 = CacheSpec("L2", 4096, 4, 32, 8)
    cores = [TopologyNode.core(i) for i in range(4)]
    l1s = [TopologyNode.cache(l1, [c]) for c in cores]
    l2s = [TopologyNode.cache(l2, l1s[0:2]), TopologyNode.cache(l2, l1s[2:4])]
    root = TopologyNode.cache(CacheSpec("L3", 16384, 8, 32, 20), l2s)
    return Machine("prop4", 2.0, 100, root, sockets=1)


MACHINE = small_machine()

#: Subscript values stay in [0, 2*6*3 + 4] = [0, 40]; extents of 64 keep
#: every randomized access in bounds.
EXTENT = 64


@st.composite
def subscripts(draw, dims, rank):
    exprs = []
    for _ in range(rank):
        coeffs = {
            dim: draw(st.integers(min_value=0, max_value=2)) for dim in dims
        }
        constant = draw(st.integers(min_value=0, max_value=4))
        exprs.append(AffineExpr(coeffs, constant))
    return exprs


@st.composite
def programs(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    dims = tuple(f"i{k}" for k in range(depth))
    constraints = []
    for index, dim in enumerate(dims):
        lo = draw(st.integers(min_value=0, max_value=2))
        # The outer dim alone provides >= num_cores iterations so every
        # generated nest is mappable on MACHINE.
        extent = draw(
            st.integers(min_value=4 if index == 0 else 1, max_value=6)
        )
        constraints.append(Constraint(AffineExpr({dim: 1}, -lo)))
        constraints.append(Constraint(AffineExpr({dim: -1}, lo + extent - 1)))
    space = IntSet(dims, constraints)

    arrays = [
        Array(name, (EXTENT,) * draw(st.integers(min_value=1, max_value=2)))
        for name in draw(
            st.lists(
                st.sampled_from(["A", "B", "C"]),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
    ]
    accesses = []
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        array = draw(st.sampled_from(arrays))
        accesses.append(
            ArrayAccess(
                array,
                dims,
                draw(subscripts(dims, array.rank)),
                is_write=(index == 0),
            )
        )
    nest = LoopNest(
        draw(st.sampled_from(["loop", "kernel"])),
        space,
        accesses,
        parallel=True,
    )
    params = draw(
        st.dictionaries(
            st.sampled_from(["n", "m"]),
            st.integers(min_value=1, max_value=100),
            max_size=2,
        )
    )
    return Program(draw(st.sampled_from(["prog", "bench"])), arrays, [nest], params)


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(programs())
    def test_dict_round_trip_is_exact(self, program):
        payload = program_to_dict(program)
        restored = program_from_dict(payload)
        assert program_to_dict(restored) == payload
        assert program_digest(restored) == program_digest(program)

    @settings(max_examples=50, deadline=None)
    @given(programs())
    def test_json_round_trip_is_exact(self, program):
        restored = program_from_json(program_to_json(program))
        assert program_digest(restored) == program_digest(program)

    @settings(max_examples=50, deadline=None)
    @given(programs())
    def test_iteration_space_survives(self, program):
        restored = program_from_dict(program_to_dict(program))
        for original, rebuilt in zip(program.nests, restored.nests):
            assert rebuilt.dims == original.dims
            assert list(rebuilt.iterations()) == list(original.iterations())
            assert [
                (a.array.name, a.subscripts, a.is_write) for a in rebuilt.accesses
            ] == [
                (a.array.name, a.subscripts, a.is_write) for a in original.accesses
            ]

    @settings(max_examples=25, deadline=None)
    @given(programs())
    def test_mapping_is_identical(self, program):
        """The property the service relies on: a deserialized program
        maps bit-identically to the original."""
        restored = program_from_dict(program_to_dict(program))
        expected = (
            TopologyAwareMapper(MACHINE)
            .map_nest(program, program.nests[0])
            .plan()
        )
        actual = (
            TopologyAwareMapper(MACHINE)
            .map_nest(restored, restored.nests[0])
            .plan()
        )
        assert actual.rounds == expected.rounds


class TestValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(IRError):
            program_from_dict([1, 2])

    def test_rejects_unknown_format(self, fig5_program):
        payload = program_to_dict(fig5_program)
        payload["format"] = 99
        with pytest.raises(IRError):
            program_from_dict(payload)

    def test_rejects_undeclared_array(self, fig5_program):
        payload = program_to_dict(fig5_program)
        payload["nests"][0]["accesses"][0]["array"] = "ghost"
        with pytest.raises(IRError):
            program_from_dict(payload)

    def test_rejects_missing_fields(self, fig5_program):
        payload = program_to_dict(fig5_program)
        del payload["nests"][0]["dims"]
        with pytest.raises(IRError):
            program_from_dict(payload)

    def test_rejects_malformed_json(self):
        with pytest.raises(IRError):
            program_from_json("{not json")

    def test_digest_tracks_content(self, fig5_program):
        payload = program_to_dict(fig5_program)
        payload["nests"][0]["name"] = "renamed"
        changed = program_from_dict(payload)
        assert program_digest(changed) != program_digest(fig5_program)
