"""Unit tests for locality-driven permutation."""

from repro.lang import compile_source
from repro.transforms.permute import (
    best_locality_permutation,
    dimension_stride,
    permutation_cost,
    permuted_order,
)


class TestStride:
    def test_row_major_strides(self):
        prog = compile_source(
            "array A[16][16]; parallel for (i=0;i<16;i++) for (j=0;j<16;j++)"
            " A[i][j] = 1;"
        )
        nest = prog.nests[0]
        assert dimension_stride(nest, "j") == 1
        assert dimension_stride(nest, "i") == 16

    def test_transposed_access(self):
        prog = compile_source(
            "array A[16][16]; parallel for (i=0;i<16;i++) for (j=0;j<16;j++)"
            " A[j][i] = 1;"
        )
        nest = prog.nests[0]
        assert dimension_stride(nest, "j") == 16
        assert dimension_stride(nest, "i") == 1

    def test_absent_dim_zero_stride(self):
        prog = compile_source(
            "array A[16]; parallel for (i=0;i<16;i++) for (j=0;j<16;j++)"
            " A[i] = A[i] + 1;"
        )
        assert dimension_stride(prog.nests[0], "j") == 0


class TestBestPermutation:
    def test_column_scan_gets_interchanged(self):
        prog = compile_source(
            "array A[16][16]; parallel for (i=0;i<16;i++) for (j=0;j<16;j++)"
            " A[j][i] = 1;"
        )
        assert best_locality_permutation(prog.nests[0]) == (1, 0)

    def test_row_scan_stays(self):
        prog = compile_source(
            "array A[16][16]; parallel for (i=0;i<16;i++) for (j=0;j<16;j++)"
            " A[i][j] = 1;"
        )
        assert best_locality_permutation(prog.nests[0]) == (0, 1)

    def test_dependence_blocks_interchange(self):
        # Column-friendly access but an interchange-hostile dependence.
        prog = compile_source(
            "array A[16][16]; for (i=1;i<15;i++) for (j=1;j<15;j++)"
            " A[j][i] = A[j+1][i-1] + 1;"
        )
        perm = best_locality_permutation(prog.nests[0])
        from repro.transforms.unimodular import distance_vectors, is_legal_permutation

        assert is_legal_permutation(perm, distance_vectors(prog.nests[0]))

    def test_depth_one(self):
        prog = compile_source("array A[8]; for (i=0;i<8;i++) A[i] = 1;")
        assert best_locality_permutation(prog.nests[0]) == (0,)

    def test_cost_prefers_unit_stride_inner(self):
        prog = compile_source(
            "array A[16][16]; parallel for (i=0;i<16;i++) for (j=0;j<16;j++)"
            " A[i][j] = 1;"
        )
        nest = prog.nests[0]
        assert permutation_cost(nest, (0, 1)) < permutation_cost(nest, (1, 0))


class TestPermutedOrder:
    def test_reorders_lexicographically_in_permuted_dims(self):
        pts = [(0, 1), (1, 0), (0, 0), (1, 1)]
        assert permuted_order(pts, (1, 0)) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_identity(self):
        pts = [(1, 1), (0, 0)]
        assert permuted_order(pts, (0, 1)) == [(0, 0), (1, 1)]

    def test_empty(self):
        assert permuted_order([], (0, 1)) == []

    def test_arity_mismatch(self):
        import pytest

        from repro.errors import TransformError

        with pytest.raises(TransformError):
            permuted_order([(0, 1)], (0,))
