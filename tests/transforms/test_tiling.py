"""Unit tests for tiling."""

import pytest

from repro.errors import TransformError
from repro.lang import compile_source
from repro.transforms.tiling import select_tile_sizes, tile_footprint_bytes, tiled_order


class TestTiledOrder:
    def test_tile_by_tile(self):
        pts = [(i, j) for i in range(4) for j in range(4)]
        ordered = tiled_order(pts, (2, 2))
        # First tile: (0..1, 0..1) fully before any point of the next tile.
        first_four = ordered[:4]
        assert set(first_four) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_preserves_multiset(self):
        pts = [(i, j) for i in range(5) for j in range(3)]
        assert sorted(tiled_order(pts, (2, 2))) == sorted(pts)

    def test_tile_larger_than_space_is_identity(self):
        pts = [(i,) for i in range(6)]
        assert tiled_order(pts, (100,)) == pts

    def test_permuted_tiling(self):
        pts = [(i, j) for i in range(2) for j in range(4)]
        ordered = tiled_order(pts, (1, 2), perm=(1, 0))
        # Column-tile-major: j-tiles outermost.
        assert ordered[0] == (0, 0) and ordered[1] == (0, 1)
        assert ordered[2] == (1, 0)

    def test_empty(self):
        assert tiled_order([], (2, 2)) == []

    def test_bad_tile_sizes(self):
        with pytest.raises(TransformError):
            tiled_order([(0, 0)], (2,))
        with pytest.raises(TransformError):
            tiled_order([(0, 0)], (0, 2))


class TestFootprint:
    def nest(self):
        return compile_source(
            "array A[32][32]; parallel for (i=0;i<31;i++) for (j=0;j<31;j++)"
            " A[i][j] = A[i+1][j] + 1;"
        ).nests[0]

    def test_monotone_in_tile_size(self):
        nest = self.nest()
        assert tile_footprint_bytes(nest, (4, 4)) < tile_footprint_bytes(nest, (8, 8))

    def test_clipped_at_array_extent(self):
        nest = self.nest()
        assert tile_footprint_bytes(nest, (1000, 1000)) <= 3 * 32 * 32 * 8

    def test_arity_checked(self):
        with pytest.raises(TransformError):
            tile_footprint_bytes(self.nest(), (4,))


class TestSelection:
    def test_selection_fits(self):
        nest = compile_source(
            "array A[64][64]; parallel for (i=0;i<64;i++) for (j=0;j<64;j++)"
            " A[i][j] = 1;"
        ).nests[0]
        small = select_tile_sizes(nest, 1024)
        large = select_tile_sizes(nest, 64 * 1024)
        assert tile_footprint_bytes(nest, small) <= 1024 or small == (4, 4)
        assert large >= small

    def test_invalid_cache(self):
        nest = compile_source("array A[8]; for (i=0;i<8;i++) A[i] = 1;").nests[0]
        with pytest.raises(TransformError):
            select_tile_sizes(nest, 0)
