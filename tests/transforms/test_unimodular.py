"""Unit tests for legality machinery."""

import pytest

from repro.errors import TransformError
from repro.lang import compile_source
from repro.transforms.unimodular import (
    direction_vectors,
    distance_vectors,
    is_legal_permutation,
)


class TestDistanceVectors:
    def test_uniform_stencil(self):
        prog = compile_source(
            "array A[10][10]; for (i=1;i<9;i++) for (j=1;j<9;j++)"
            " A[i][j] = A[i-1][j] + 1;"
        )
        assert (1, 0) in distance_vectors(prog.nests[0])

    def test_parallel_nest_empty(self, fig4_program):
        assert distance_vectors(fig4_program.nests[0]) == set()

    def test_direction_vectors_signs(self):
        prog = compile_source(
            "array A[10][10]; for (i=1;i<9;i++) for (j=1;j<9;j++)"
            " A[i][j] = A[i-1][j+1] + 1;"
        )
        assert (1, -1) in direction_vectors(prog.nests[0])


class TestPermutationLegality:
    def test_empty_distances_all_legal(self):
        assert is_legal_permutation((1, 0), [])

    def test_interchange_illegal_with_negative_inner(self):
        # Distance (1, -1): interchange makes it (-1, 1), lex negative.
        assert is_legal_permutation((0, 1), [(1, -1)])
        assert not is_legal_permutation((1, 0), [(1, -1)])

    def test_interchange_legal_with_nonneg(self):
        assert is_legal_permutation((1, 0), [(1, 0)])
        assert is_legal_permutation((1, 0), [(1, 1)])

    def test_arity_mismatch(self):
        with pytest.raises(TransformError):
            is_legal_permutation((0,), [(1, 0)])

    def test_zero_vector_is_not_positive(self):
        # A zero distance is not loop-carried; treated as illegal input
        # (must stay lex-positive), guarding against bogus callers.
        assert not is_legal_permutation((0, 1), [(0, 0)])
