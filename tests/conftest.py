"""Shared fixtures: small machines and the paper's running examples."""

from __future__ import annotations

import pytest

from repro.blocks.groups import IterationGroup
from repro.lang import compile_source
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode


@pytest.fixture(autouse=True)
def _reset_group_idents():
    """Start every test with a fresh ident sequence.

    Group idents are process-global; without the reset, tests that pin
    ident values (or orders derived from them) would depend on which
    tests ran before them.  The process-wide pipeline artifact store is
    dropped too: its entries reference pre-reset idents (the reset bumps
    the ident epoch, so they would only miss — but letting them pile up
    across thousands of tests wastes memory for nothing).
    """
    from repro.pipeline import reset_default_store

    IterationGroup.reset_idents()
    reset_default_store()
    yield


@pytest.fixture
def fig9_machine() -> Machine:
    """The paper's Figure 9 target: L3 root, two L2s, four cores."""
    l1 = CacheSpec("L1", 1024, 2, 32, 2)
    l2 = CacheSpec("L2", 4096, 4, 32, 8)
    l3 = CacheSpec("L3", 16384, 8, 32, 20)
    cores = [TopologyNode.core(i) for i in range(4)]
    l1s = [TopologyNode.cache(l1, [c]) for c in cores]
    l2s = [TopologyNode.cache(l2, l1s[0:2]), TopologyNode.cache(l2, l1s[2:4])]
    root = TopologyNode.cache(l3, l2s)
    return Machine("fig9", 2.0, 100, root, sockets=1)


@pytest.fixture
def two_core_machine() -> Machine:
    """Minimal machine: two cores sharing one L2, private L1s."""
    l1 = CacheSpec("L1", 512, 2, 32, 2)
    l2 = CacheSpec("L2", 2048, 4, 32, 8)
    cores = [TopologyNode.core(0), TopologyNode.core(1)]
    l1s = [TopologyNode.cache(l1, [c]) for c in cores]
    root = TopologyNode.cache(l2, l1s)
    return Machine("tiny2", 1.0, 50, root, sockets=1)


FIG5_K = 4
FIG5_M = 48


@pytest.fixture
def fig5_program():
    """The paper's Figure 5 loop (banded B updates), in-bounds variant."""
    k, m = FIG5_K, FIG5_M
    source = f"""
    param k = {k};
    param m = {m};
    array B[{m}];
    parallel for (j = 2*k; j < m - 2*k; j++)
      B[j] = B[j] + B[2*k + j] + B[j - 2*k];
    """
    return compile_source(source, name="fig5")


@pytest.fixture
def fig4_program():
    """The paper's Figure 4 fragment (2-D array reference)."""
    source = """
    param Q1 = 4;
    param Q2 = 6;
    array A[10][10];
    parallel for (i1 = 0; i1 < Q1; i1++)
      for (i2 = 2; i2 < Q2 + 2; i2++)
        A[i1 + 1][i2 - 1] = A[i1 + 1][i2 - 1] + 1;
    """
    return compile_source(source, name="fig4")


@pytest.fixture
def stencil_program():
    """A small 2-D stencil used across mapping/sim tests."""
    n = 24
    source = f"""
    array U[{n + 2}][{n + 2}];
    array V[{n + 2}][{n + 2}];
    parallel for (i = 1; i <= {n}; i++)
      for (j = 1; j <= {n}; j++)
        V[i][j] = U[i][j] + U[i - 1][j] + U[i + 1][j];
    """
    return compile_source(source, name="stencil")


@pytest.fixture
def dependent_program():
    """A loop with genuine loop-carried dependencies (flow at distance 2k)."""
    source = """
    param k = 2;
    array B[40];
    for (j = 4; j < 36; j++)
      B[j] = B[j] + B[j - 2*k];
    """
    return compile_source(source, name="dep")
