"""Unit tests for the experiment harness (on the smallest workload)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import (
    FigureResult,
    clear_cache,
    geometric_mean,
    run_scheme,
    scheme_cycles,
    sim_machine,
)
from repro.topology.machines import dunnington, harpertown


@pytest.fixture(scope="module")
def machine():
    return sim_machine(dunnington())


class TestSimMachine:
    def test_capacity_scaled(self):
        full = dunnington()
        scaled = sim_machine(full)
        assert scaled.total_cache_bytes() * 32 == full.total_cache_bytes()

    def test_topology_preserved(self):
        scaled = sim_machine(harpertown())
        assert scaled.num_cores == 8
        assert scaled.clustering_degrees() == harpertown().clustering_degrees()


class TestRunScheme:
    def test_all_schemes_run(self, machine):
        cycles = scheme_cycles("h264", ("base", "base+", "local", "ta", "ta+s"), machine)
        assert all(v > 0 for v in cycles.values())

    def test_unknown_scheme(self, machine):
        with pytest.raises(ExperimentError):
            run_scheme("h264", "magic", machine)

    def test_memoization(self, machine):
        a = run_scheme("h264", "base", machine)
        b = run_scheme("h264", "base", machine)
        assert a is b

    def test_clear_cache(self, machine):
        a = run_scheme("h264", "base", machine)
        clear_cache()
        b = run_scheme("h264", "base", machine)
        assert a is not b and a.cycles == b.cycles


class TestFigureResult:
    def test_table_and_column(self):
        fr = FigureResult("F", ("a", "b"), ((1, 2), (3, 4)), notes="note")
        assert "note" in fr.table()
        assert fr.column("b") == [2, 4]

    def test_unknown_column(self):
        fr = FigureResult("F", ("a",), ((1,),))
        with pytest.raises(ExperimentError):
            fr.column("z")


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_nan(self):
        import math

        assert math.isnan(geometric_mean([]))
