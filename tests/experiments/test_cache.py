"""Unit tests for the persistent result cache and its harness wiring."""

import json
import os

import pytest

from repro import obs
from repro.experiments import harness
from repro.experiments.cache import (
    DiskCache,
    clear,
    code_fingerprint,
    info,
    machine_digest,
)
from repro.obs.sinks import CollectorSink
from repro.sim.stats import LevelStats, SimResult
from repro.topology.machines import dunnington, nehalem


def _result(cycles=100):
    return SimResult(
        label="t",
        machine_name="m",
        cycles=cycles,
        core_cycles=(cycles,),
        levels=(LevelStats("L1", 10, 5), LevelStats("L2", 3, 2)),
        memory_accesses=2,
        total_accesses=15,
        barriers=1,
        barrier_cycles=7,
    )


@pytest.fixture(autouse=True)
def _clean_harness():
    harness.clear_cache()
    harness.disable_disk_cache()
    yield
    harness.clear_cache()
    harness.disable_disk_cache()


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        store = DiskCache(str(tmp_path))
        key = ("h264", "ta", "dunnington", 0.01, None)
        assert store.get(key) is None
        store.put(key, _result())
        assert store.get(key) == _result()
        # A fresh instance reads the same file.
        again = DiskCache(str(tmp_path))
        assert again.get(key) == _result()
        assert len(again) == 1

    def test_knob_change_is_a_miss(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put(("h264", "ta", 0.01), _result())
        assert store.get(("h264", "ta", 0.02)) is None
        assert store.get(("h264", "ta+s", 0.01)) is None

    def test_fingerprint_change_invalidates(self, tmp_path):
        old = DiskCache(str(tmp_path), fingerprint="a" * 64)
        old.put(("k",), _result())
        fresh = DiskCache(str(tmp_path), fingerprint="b" * 64)
        assert fresh.get(("k",)) is None
        assert old.path != fresh.path
        # The old store is intact, not clobbered.
        assert DiskCache(str(tmp_path), fingerprint="a" * 64).get(("k",)) == _result()

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put(("k",), _result())
        with open(store.path, "w") as handle:
            handle.write("{not json")
        recovered = DiskCache(str(tmp_path))
        assert recovered.get(("k",)) is None
        recovered.put(("k2",), _result(5))
        assert DiskCache(str(tmp_path)).get(("k2",)) == _result(5)

    def test_foreign_payload_treated_as_empty(self, tmp_path):
        store = DiskCache(str(tmp_path))
        with open(store.path, "w") as handle:
            json.dump({"fingerprint": "other", "results": {"x": {}}}, handle)
        assert len(DiskCache(str(tmp_path))) == 0

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put(("k",), _result())
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_clear_and_info(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put(("k",), _result())
        entries = info(str(tmp_path))
        assert len(entries) == 1
        assert entries[0]["entries"] == 1
        assert entries[0]["current"] is True
        assert clear(str(tmp_path)) == 1
        assert info(str(tmp_path)) == []
        assert clear(str(tmp_path)) == 0


class TestFingerprints:
    def test_fingerprint_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_machine_digest_ignores_uids(self):
        # Two separately built instances get distinct node uids but must
        # digest identically — digests cross process boundaries.
        assert machine_digest(dunnington()) == machine_digest(dunnington())

    def test_machine_digest_sees_structure(self):
        assert machine_digest(dunnington()) != machine_digest(nehalem())
        scaled = dunnington().with_scaled_caches(0.5)
        assert machine_digest(dunnington()) != machine_digest(scaled)


class TestHarnessWiring:
    def test_run_scheme_persists_and_reloads(self, tmp_path):
        machine = harness.sim_machine(nehalem())
        harness.enable_disk_cache(str(tmp_path))
        first = harness.run_scheme("h264", "base", machine)
        # Wipe the in-memory memo: the second call must come from disk.
        harness.clear_cache()
        sink = CollectorSink()
        with obs.tracing(sink):
            second = harness.run_scheme("h264", "base", machine)
            counters = dict(obs.get_recorder().counters)
        assert first == second
        assert counters.get("cache.disk_hits") == 1
        assert "experiment.scheme" not in {
            r.get("name") for r in sink.records if r.get("type") == "span"
        }

    def test_disk_miss_counter(self, tmp_path):
        machine = harness.sim_machine(nehalem())
        harness.enable_disk_cache(str(tmp_path))
        with obs.tracing():
            harness.run_scheme("h264", "base", machine)
            counters = dict(obs.get_recorder().counters)
        assert counters.get("cache.disk_misses") == 1

    def test_no_cache_without_enable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        machine = harness.sim_machine(nehalem())
        harness.run_scheme("h264", "base", machine)
        assert info(str(tmp_path)) == []

    def test_run_custom_memoizes_and_persists(self, tmp_path):
        machine = harness.sim_machine(nehalem())
        harness.enable_disk_cache(str(tmp_path))
        calls = []

        def compute():
            calls.append(1)
            return _result()

        tag = ("unit", "x", 1)
        first = harness.run_custom(tag, machine, compute)
        assert harness.run_custom(tag, machine, compute) == first
        harness.clear_cache()
        assert harness.run_custom(tag, machine, compute) == first
        assert len(calls) == 1

    def test_recording_collects_specs_without_simulating(self):
        machine = harness.sim_machine(nehalem())
        specs = harness.record_specs(
            lambda: [
                harness.run_scheme("h264", "base", machine),
                harness.run_scheme("h264", "ta", machine),
                harness.run_scheme("h264", "ta", machine),  # dedup
            ]
        )
        assert [s.scheme for s in specs] == ["base", "ta"]
        # Placeholders must not leak into the memo.
        assert not harness._CACHE.results

    def test_recorded_spec_reexecutes(self):
        machine = harness.sim_machine(nehalem())
        specs = harness.record_specs(
            lambda: harness.run_scheme("h264", "base", machine)
        )
        direct = harness.run_scheme("h264", "base", machine)
        harness.clear_cache()
        assert harness.execute_spec(specs[0]) == direct

    def test_seed_result_feeds_memo(self):
        machine = harness.sim_machine(nehalem())
        specs = harness.record_specs(
            lambda: harness.run_scheme("h264", "base", machine)
        )
        harness.seed_result(specs[0], _result())
        assert harness.run_scheme("h264", "base", machine) == _result()


class TestGeometricMean:
    def test_basic(self):
        assert harness.geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_large_values_do_not_overflow(self):
        # The former product form hits inf immediately here.
        assert harness.geometric_mean([1e300] * 10) == pytest.approx(1e300, rel=1e-9)

    def test_small_values_do_not_underflow(self):
        assert harness.geometric_mean([1e-300] * 10) == pytest.approx(1e-300, rel=1e-9)

    def test_empty_is_nan(self):
        import math

        assert math.isnan(harness.geometric_mean([]))

    def test_zero_short_circuits(self):
        assert harness.geometric_mean([3.0, 0.0, 2.0]) == 0.0
