"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.charts import bar_chart, figure_chart
from repro.experiments.harness import FigureResult


class TestBarChart:
    def test_basic(self):
        chart = bar_chart({"base": 1.0, "ta": 0.7})
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")

    def test_reference_tick(self):
        chart = bar_chart({"ta": 0.5}, reference=1.0)
        assert "|" in chart

    def test_title(self):
        chart = bar_chart({"a": 1.0}, title="T")
        assert chart.splitlines()[0] == "T"

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            bar_chart({})

    def test_narrow_rejected(self):
        with pytest.raises(ExperimentError):
            bar_chart({"a": 1.0}, width=2)

    def test_non_positive_rejected(self):
        with pytest.raises(ExperimentError):
            bar_chart({"a": 0.0}, reference=None)

    def test_values_rendered(self):
        assert "0.700" in bar_chart({"ta": 0.7})


class TestFigureChart:
    def test_from_figure_result(self):
        fr = FigureResult("F", ("scheme", "ratio"), (("base", 1.0), ("ta", 0.8)))
        chart = figure_chart(fr, "ratio")
        assert "base" in chart and "ta" in chart

    def test_non_numeric_column(self):
        fr = FigureResult("F", ("scheme", "note"), (("base", "x"),))
        with pytest.raises(ExperimentError):
            figure_chart(fr, "note")
