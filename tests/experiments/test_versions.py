"""Unit tests for cross-machine version machines and plan retargeting."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.versions import retarget_plan, version_machine
from repro.mapping.baselines import base_plan
from repro.topology.machines import dunnington, harpertown


class TestVersionMachines:
    def test_harpertown_pattern(self):
        m = version_machine("harpertown", 12)
        assert m.num_cores == 12
        assert m.cache_levels() == ("L1", "L2")
        assert m.shared_cache(0, 1).spec.level == "L2"

    def test_nehalem_pattern(self):
        m = version_machine("nehalem", 12)
        assert m.shared_cache(0, 1).spec.level == "L3"
        assert m.shared_cache(0, 6) is None

    def test_dunnington_pattern_at_8(self):
        m = version_machine("dunnington", 8)
        assert m.shared_cache(0, 1).spec.level == "L2"
        assert m.shared_cache(0, 2).spec.level == "L3"

    def test_odd_cores_rejected(self):
        with pytest.raises(ExperimentError):
            version_machine("harpertown", 7)

    def test_unknown_pattern(self):
        with pytest.raises(ExperimentError):
            version_machine("zen", 8)


class TestRetarget:
    def test_same_count_identity(self, fig5_program, fig9_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        ported = retarget_plan(plan, fig9_machine)
        assert ported.rounds == plan.rounds

    def test_fold_surplus(self, fig5_program, fig9_machine, two_core_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)  # 4 cores
        ported = retarget_plan(plan, two_core_machine)
        assert len(ported.rounds) == 2
        ported.verify_complete()
        # Core 0 inherits plan cores 0 and 2.
        merged = set(plan.core_iterations(0)) | set(plan.core_iterations(2))
        assert set(ported.core_iterations(0)) == merged

    def test_pad_with_idle(self, fig5_program, fig9_machine, two_core_machine):
        plan = base_plan(fig5_program.nests[0], two_core_machine)  # 2 cores
        ported = retarget_plan(plan, fig9_machine)
        assert len(ported.rounds) == 4
        ported.verify_complete()
        assert ported.core_iterations(2) == []

    def test_fold_preserves_rounds(self, dependent_program, fig9_machine, two_core_machine):
        from repro.mapping.distribute import TopologyAwareMapper

        mapper = TopologyAwareMapper(fig9_machine, block_size=32)
        plan = mapper.map_nest(dependent_program, dependent_program.nests[0]).plan()
        ported = retarget_plan(plan, two_core_machine)
        assert ported.num_rounds == plan.num_rounds
        ported.verify_complete()
