"""Smoke tests for every figure harness (single small workload).

These catch API regressions in the experiment modules without paying for
full figure runs; the benchmarks assert the actual shapes on the real
subsets.  h264 is the smallest workload (14400 iterations).
"""

import pytest

APP = ("h264",)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    from repro.experiments.harness import clear_cache

    clear_cache()
    yield


class TestTableModules:
    def test_table1(self):
        from repro.experiments.tables import table1

        result = table1()
        assert len(result.rows) == 3

    def test_table2(self):
        from repro.experiments.tables import table2

        result = table2()
        assert len(result.rows) == 12


class TestFigureModules:
    def test_fig13(self):
        from repro.experiments import fig13_main

        result = fig13_main.run(APP)
        assert result.rows[-1][0] == "MEAN"
        assert len(result.rows) == 2  # one app + mean
        assert len(result.headers) == 7

    def test_fig13_misses(self):
        from repro.experiments import fig13_main

        result = fig13_main.miss_reductions(APP)
        assert [r[0] for r in result.rows] == ["L1", "L2", "L3"]

    def test_fig15(self):
        from repro.experiments import fig15_scheduling

        result = fig15_scheduling.run(APP)
        assert result.headers == ("application", "TopologyAware", "Local", "Combined")

    def test_fig16(self):
        from repro.experiments import fig16_blocksize

        result = fig16_blocksize.run(APP)
        assert len(result.rows) == 4
        assert all(isinstance(r[1], float) for r in result.rows)

    def test_fig17(self):
        from repro.experiments import fig17_cores

        result = fig17_cores.run(APP)
        assert [r[0] for r in result.rows] == [12, 18, 24]

    def test_fig18(self):
        from repro.experiments import fig18_deep_hierarchies

        result = fig18_deep_hierarchies.run(APP)
        assert len(result.rows) == 3

    def test_fig19(self):
        from repro.experiments import fig19_small_caches

        result = fig19_small_caches.run(APP)
        assert [r[0] for r in result.rows] == ["full capacity", "halved capacity"]

    def test_fig20(self):
        from repro.experiments import fig20_levels_optimal

        result = fig20_levels_optimal.run(APP)
        assert [r[0] for r in result.rows] == ["L1+L2", "L1+L2+L3", "full", "optimal"]

    def test_ablation_alpha_beta(self):
        from repro.experiments import ablation_alpha_beta

        result = ablation_alpha_beta.run(APP)
        assert len(result.rows) == 5

    def test_ablation_compile_time(self):
        from repro.experiments import ablation_compile_time

        result = ablation_compile_time.run(APP)
        assert result.rows[0][0] == "h264"

    def test_ablation_dynamic(self):
        from repro.experiments import ablation_dynamic

        result = ablation_dynamic.run(APP)
        assert result.rows[-1][0] == "TopologyAware (static)"
