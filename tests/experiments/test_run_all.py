"""Unit tests for the run_all driver (steps monkeypatched for speed)."""

import pytest

from repro.experiments import run_all
from repro.experiments.harness import FigureResult


def fake_result():
    return FigureResult("Fake figure", ("scheme", "ratio"), (("base", 1.0), ("ta", 0.8)))


class TestMain:
    def _patch(self, monkeypatch):
        import repro.experiments.tables as tables

        monkeypatch.setattr(tables, "table1", fake_result)
        monkeypatch.setattr(tables, "table2", fake_result)
        for module_name in (
            "fig02_motivation", "fig13_main", "fig14_cross_machine",
            "fig15_scheduling", "fig16_blocksize", "fig17_cores",
            "fig18_deep_hierarchies", "fig19_small_caches",
            "fig20_levels_optimal", "zoo_sweep", "ablation_alpha_beta",
            "ablation_compile_time", "ablation_dynamic", "ablation_clustering",
        ):
            module = getattr(run_all, module_name)
            monkeypatch.setattr(module, "run", lambda *a, **k: fake_result())
        import repro.experiments.fig13_main as f13

        monkeypatch.setattr(f13, "miss_reductions", lambda *a, **k: fake_result())

    def test_runs_all_steps(self, monkeypatch, capsys):
        self._patch(monkeypatch)
        assert run_all.main([]) == 0
        out = capsys.readouterr().out
        assert out.count("Fake figure") >= 15

    def test_quick_flag(self, monkeypatch, capsys):
        self._patch(monkeypatch)
        assert run_all.main(["--quick"]) == 0

    def test_charts_flag(self, monkeypatch, capsys):
        self._patch(monkeypatch)
        assert run_all.main(["--charts"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bar chart rendered


class TestParallelPrewarm:
    """--jobs N must change timing only, never results."""

    def _real_steps(self, monkeypatch, machine):
        from repro.experiments import harness

        def step():
            rows = tuple(
                (scheme, harness.run_scheme("h264", scheme, machine).cycles)
                for scheme in ("base", "ta")
            )
            return FigureResult("Real figure", ("scheme", "cycles"), rows)

        monkeypatch.setattr(run_all, "_steps", lambda *a, **k: [("Real", step)])

    def _invoke(self, argv, capsys):
        from repro.experiments import harness

        harness.clear_cache()
        assert run_all.main(argv) == 0
        out = capsys.readouterr().out
        # Drop timing and prewarm narration; keep the tables.
        return "\n".join(
            line for line in out.splitlines()
            if not line.startswith(("[prewarm", "[Real"))
        )

    def test_jobs_byte_identical_to_serial(self, monkeypatch, capsys, tmp_path):
        from repro.experiments.harness import sim_machine
        from repro.topology.machines import nehalem

        self._real_steps(monkeypatch, sim_machine(nehalem()))
        serial = self._invoke(
            ["--jobs", "1", "--cache-dir", str(tmp_path / "serial")], capsys
        )
        parallel = self._invoke(
            ["--jobs", "2", "--cache-dir", str(tmp_path / "par")], capsys
        )
        assert "Real figure" in serial
        assert serial == parallel

    def test_prewarm_seeds_memo(self, monkeypatch, capsys, tmp_path):
        """After the pool phase the render phase simulates nothing."""
        from repro.experiments import harness
        from repro.experiments.harness import sim_machine
        from repro.topology.machines import nehalem

        self._real_steps(monkeypatch, sim_machine(nehalem()))
        harness.clear_cache()
        from repro import obs
        from repro.obs.sinks import CollectorSink

        sink = CollectorSink()
        with obs.tracing(sink):
            assert run_all.main(
                ["--jobs", "2", "--cache-dir", str(tmp_path)]
            ) == 0
        capsys.readouterr()
        # The parent never opened a simulation span itself; the runs all
        # happened in workers (whose counters were merged back).
        parent_spans = {r.get("name") for r in sink.spans()}
        assert "experiment.scheme" not in parent_spans
        summary = sink.summary()
        assert summary["counters"].get("harness.result_memo_misses", 0) > 0

    def test_only_filter(self, monkeypatch, capsys):
        self._patch_steps_for_only(monkeypatch)
        assert run_all.main(["--only", "figure_13", "--no-cache", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("Fake figure") == 2  # Figure 13 + Figure 13 (misses)

    def test_only_no_match_errors(self, monkeypatch, capsys):
        self._patch_steps_for_only(monkeypatch)
        assert run_all.main(["--only", "zzz", "--no-cache"]) == 2

    def test_only_no_match_lists_available_steps(self, monkeypatch, capsys):
        self._patch_steps_for_only(monkeypatch)
        assert run_all.main(["--only", "zzz", "--no-cache", "--jobs", "4"]) == 2
        err = capsys.readouterr().err
        assert "no step matches --only 'zzz'" in err
        assert "figure_13" in err  # the error names what WOULD match

    @pytest.mark.parametrize(
        "spelling", ["fig13", "fig_13", "figure_13", "Figure 13", "FIGURE 13"]
    )
    def test_only_accepts_short_and_long_spellings(
        self, monkeypatch, capsys, spelling
    ):
        """The documented short form (fig13) and the slug users see in
        trace files (figure_13) both select the Figure 13 steps."""
        self._patch_steps_for_only(monkeypatch)
        assert run_all.main(["--only", spelling, "--no-cache", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("Fake figure") == 2

    def _patch_steps_for_only(self, monkeypatch):
        import repro.experiments.tables as tables

        monkeypatch.setattr(tables, "table1", fake_result)
        monkeypatch.setattr(tables, "table2", fake_result)
        for module_name in (
            "fig02_motivation", "fig13_main", "fig14_cross_machine",
            "fig15_scheduling", "fig16_blocksize", "fig17_cores",
            "fig18_deep_hierarchies", "fig19_small_caches",
            "fig20_levels_optimal", "zoo_sweep", "ablation_alpha_beta",
            "ablation_compile_time", "ablation_dynamic", "ablation_clustering",
        ):
            module = getattr(run_all, module_name)
            monkeypatch.setattr(module, "run", lambda *a, **k: fake_result())
        import repro.experiments.fig13_main as f13

        monkeypatch.setattr(f13, "miss_reductions", lambda *a, **k: fake_result())


class TestMachineFlag:
    def test_unknown_machine_exits_2(self, capsys):
        assert run_all.main(["--machine", "pdp11", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine" in err
        assert "harpertown" in err

    def test_known_zoo_machine_accepted(self, monkeypatch, capsys):
        from repro.experiments import zoo_sweep

        captured = {}

        def fake_run(apps=None, machines=None):
            captured["machines"] = machines
            return fake_result()

        monkeypatch.setattr(zoo_sweep, "run", fake_run)
        monkeypatch.setattr(
            run_all, "_steps",
            lambda apps, machines=None: [
                ("Machine zoo", lambda: zoo_sweep.run(None, machines))
            ],
        )
        assert run_all.main(
            ["--machine", "zoo:unicore", "--no-cache", "--jobs", "1"]
        ) == 0
        assert captured["machines"] == ["zoo:unicore"]
