"""Unit tests for the run_all driver (steps monkeypatched for speed)."""

from repro.experiments import run_all
from repro.experiments.harness import FigureResult


def fake_result():
    return FigureResult("Fake figure", ("scheme", "ratio"), (("base", 1.0), ("ta", 0.8)))


class TestMain:
    def _patch(self, monkeypatch):
        import repro.experiments.tables as tables

        monkeypatch.setattr(tables, "table1", fake_result)
        monkeypatch.setattr(tables, "table2", fake_result)
        for module_name in (
            "fig02_motivation", "fig13_main", "fig14_cross_machine",
            "fig15_scheduling", "fig16_blocksize", "fig17_cores",
            "fig18_deep_hierarchies", "fig19_small_caches",
            "fig20_levels_optimal", "ablation_alpha_beta",
            "ablation_compile_time", "ablation_dynamic", "ablation_clustering",
        ):
            module = getattr(run_all, module_name)
            monkeypatch.setattr(module, "run", lambda *a, **k: fake_result())
        import repro.experiments.fig13_main as f13

        monkeypatch.setattr(f13, "miss_reductions", lambda *a, **k: fake_result())

    def test_runs_all_steps(self, monkeypatch, capsys):
        self._patch(monkeypatch)
        assert run_all.main([]) == 0
        out = capsys.readouterr().out
        assert out.count("Fake figure") >= 14

    def test_quick_flag(self, monkeypatch, capsys):
        self._patch(monkeypatch)
        assert run_all.main(["--quick"]) == 0

    def test_charts_flag(self, monkeypatch, capsys):
        self._patch(monkeypatch)
        assert run_all.main(["--charts"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bar chart rendered
