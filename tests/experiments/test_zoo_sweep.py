"""Tests for the machine-zoo experiment step."""

import pytest

from repro.errors import UnknownMachineError
from repro.experiments import zoo_sweep
from repro.topology.ingest.zoo import zoo_dir

pytestmark = pytest.mark.skipif(zoo_dir() is None, reason="no fixture corpus")


class TestMachineSelection:
    def test_default_is_whole_zoo(self):
        machines = zoo_sweep._machines(None)
        assert len(machines) >= 6
        assert sorted(m.name for m in machines) == [m.name for m in machines]

    def test_explicit_specs(self):
        machines = zoo_sweep._machines(["zoo:unicore", "harpertown"])
        assert [m.name for m in machines] == ["unicore", "harpertown"]

    def test_unknown_spec_raises(self):
        with pytest.raises(UnknownMachineError):
            zoo_sweep._machines(["zoo:cray-1"])


class TestRun:
    def test_single_machine_row(self):
        result = zoo_sweep.run(apps=("galgel",), machines=["zoo:unicore"])
        assert len(result.rows) == 1
        name, cores, shape, caches, speedup = result.rows[0]
        assert name == "unicore"
        assert cores == 1
        assert shape == "uniform"
        # One core: TA cannot beat Base, the ratio must be exactly 1.
        assert speedup == "1.000"


class TestRunIrregular:
    def test_one_row_per_irregular_workload(self):
        from repro.workloads import irregular_workloads

        result = zoo_sweep.run_irregular(machines=["zoo:unicore"])
        assert [row[0] for row in result.rows] == [
            w.name for w in irregular_workloads()
        ]
        for _name, iterations, refs, low, high, geo in result.rows:
            assert iterations > 0 and refs > 0
            # One machine: min == geo == max.  (Unlike the affine sweep,
            # the ratio is not pinned to 1.0 on one core — grouping
            # reorders the iteration stream, which alone moves cache
            # behavior on data-dependent subscripts.)
            assert low == high == geo
            assert float(geo) > 0.0
        assert "trace-tagged" in result.notes
