"""Extra chart coverage: label columns, widths, custom fills."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.charts import bar_chart, figure_chart
from repro.experiments.harness import FigureResult


class TestLabelColumn:
    def test_explicit_label_column(self):
        fr = FigureResult(
            "F", ("id", "name", "ratio"),
            ((1, "base", 1.0), (2, "ta", 0.7)),
        )
        chart = figure_chart(fr, "ratio", label_column="name")
        assert "base" in chart and "ta" in chart

    def test_mixed_numeric_rows_filtered(self):
        fr = FigureResult(
            "F", ("name", "ratio"),
            (("base", 1.0), ("MEAN", "n/a")),
        )
        chart = figure_chart(fr, "ratio")
        assert "base" in chart and "MEAN" not in chart


class TestRendering:
    def test_sequence_input(self):
        chart = bar_chart([("a", 2.0), ("b", 1.0)], reference=None)
        lines = chart.splitlines()
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_custom_fill(self):
        assert "*" in bar_chart({"a": 1.0}, fill="*")

    def test_width_respected(self):
        chart = bar_chart({"a": 1.0}, width=10, reference=None)
        assert chart.count("#") <= 11

    def test_reference_beyond_max(self):
        chart = bar_chart({"a": 0.25}, reference=1.0, width=20)
        # Bar is short, the reference tick sits at the right edge.
        line = chart.splitlines()[0]
        assert line.rstrip().endswith("|")

    def test_negative_values_render_empty_bar(self):
        chart = bar_chart({"a": -1.0, "b": 2.0}, reference=None)
        first = chart.splitlines()[0]
        assert "#" not in first.split("  ")[-1]


class TestErrorsExtra:
    def test_all_non_numeric_column(self):
        fr = FigureResult("F", ("name", "x"), (("a", "u"), ("b", "v")))
        with pytest.raises(ExperimentError):
            figure_chart(fr, "x")
