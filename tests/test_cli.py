"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import main

SOURCE = """
param m = 256;
array Q[256];
array F[256];
parallel for (j = 0; j < m; j++)
  F[j] = F[j] + Q[j] + Q[m - 1 - j];
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "demo.loop"
    path.write_text(SOURCE)
    return str(path)


class TestSubcommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "harpertown" in out and "dunnington" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        assert "galgel" in capsys.readouterr().out

    def test_map(self, program_file, capsys):
        code = main(["map", program_file, "--block-size", "256", "--scale", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "iteration groups" in out and "core" in out

    def test_map_with_schedule(self, program_file, capsys):
        code = main([
            "map", program_file, "--block-size", "256", "--schedule",
            "--machine", "harpertown",
        ])
        assert code == 0
        assert "schedule" in capsys.readouterr().out

    def test_simulate(self, program_file, capsys):
        code = main([
            "simulate", program_file, "--block-size", "256",
            "--scheme", "ta", "--scale", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ta vs base" in out and "speedup" in out

    def test_simulate_base_only(self, program_file, capsys):
        code = main(["simulate", program_file, "--scheme", "base", "--block-size", "256"])
        assert code == 0
        assert "base" in capsys.readouterr().out


class TestTune:
    def test_tune(self, program_file, capsys):
        code = main([
            "tune", program_file, "--candidates", "256,512", "--scale", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best block size" in out

    def test_tune_with_topology_file(self, program_file, tmp_path, capsys):
        topo = tmp_path / "machine.topo"
        topo.write_text("cores=4; mem=80; L1:1K/2/64@2; L2:8K/4/64@8 per 2")
        code = main([
            "tune", program_file, "--topology", str(topo),
            "--candidates", "256", "--scale", "1",
        ])
        assert code == 0
        assert "best block size" in capsys.readouterr().out


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["map", "/nonexistent.loop"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_machine_exits_2_with_menu(self, program_file, capsys):
        assert main(["map", program_file, "--machine", "epyc"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine" in err
        assert "harpertown" in err
        assert "zoo:" in err

    def test_machine_name_case_insensitive(self, program_file, capsys):
        assert main(["map", program_file, "--machine", "HARPERTOWN"]) == 0
        assert "core" in capsys.readouterr().out

    def test_bad_source(self, tmp_path, capsys):
        path = tmp_path / "bad.loop"
        path.write_text("for for for")
        assert main(["map", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


FIXTURES = os.path.join(os.path.dirname(__file__), "topology", "fixtures")
UNICORE_TAR = os.path.join(FIXTURES, "unicore.tar.gz")


class TestTopo:
    def test_list_mixes_builtin_and_zoo(self, capsys):
        assert main(["topo", "list"]) == 0
        out = capsys.readouterr().out
        assert "harpertown" in out
        assert "zoo:biglittle" in out

    def test_show_builtin(self, capsys):
        assert main(["topo", "show", "harpertown"]) == 0
        out = capsys.readouterr().out
        assert "digest" in out and "L2" in out

    def test_show_zoo_json(self, capsys):
        import json

        assert main(["topo", "show", "zoo:unicore", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "unicore"
        assert payload["digest"]

    def test_ingest_fixture_tar(self, capsys):
        assert main(["topo", "ingest", UNICORE_TAR]) == 0
        out = capsys.readouterr().out
        assert "digest" in out and "core" in out

    def test_ingest_writes_json_out(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "machine.json"
        assert main(["topo", "ingest", UNICORE_TAR, "--out", str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["digest"]

    def test_validate_ok(self, capsys):
        assert main(["topo", "validate", "zoo:unicore"]) == 0
        assert capsys.readouterr().out.startswith("OK:")

    def test_validate_bad_dump(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert main(["topo", "validate", str(tmp_path / "empty")]) == 1
        assert "INVALID:" in capsys.readouterr().err

    def test_diff_identical(self, capsys):
        assert main(["topo", "diff", "zoo:unicore", "zoo:unicore"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_different(self, capsys):
        assert main(["topo", "diff", "harpertown", "dunnington"]) == 1
        out = capsys.readouterr().out
        assert "---" in out and "+++" in out

    def test_map_with_zoo_machine(self, program_file, capsys):
        assert main(["map", program_file, "--machine", "zoo:harpertown2s"]) == 0
        assert "core" in capsys.readouterr().out

    def test_map_with_sysfs_dump(self, program_file, capsys):
        assert main(
            ["map", program_file, "--machine", f"sysfs:{UNICORE_TAR}"]
        ) == 0
        assert "core" in capsys.readouterr().out
