"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
param m = 256;
array Q[256];
array F[256];
parallel for (j = 0; j < m; j++)
  F[j] = F[j] + Q[j] + Q[m - 1 - j];
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "demo.loop"
    path.write_text(SOURCE)
    return str(path)


class TestSubcommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "harpertown" in out and "dunnington" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        assert "galgel" in capsys.readouterr().out

    def test_map(self, program_file, capsys):
        code = main(["map", program_file, "--block-size", "256", "--scale", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "iteration groups" in out and "core" in out

    def test_map_with_schedule(self, program_file, capsys):
        code = main([
            "map", program_file, "--block-size", "256", "--schedule",
            "--machine", "harpertown",
        ])
        assert code == 0
        assert "schedule" in capsys.readouterr().out

    def test_simulate(self, program_file, capsys):
        code = main([
            "simulate", program_file, "--block-size", "256",
            "--scheme", "ta", "--scale", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ta vs base" in out and "speedup" in out

    def test_simulate_base_only(self, program_file, capsys):
        code = main(["simulate", program_file, "--scheme", "base", "--block-size", "256"])
        assert code == 0
        assert "base" in capsys.readouterr().out


class TestTune:
    def test_tune(self, program_file, capsys):
        code = main([
            "tune", program_file, "--candidates", "256,512", "--scale", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best block size" in out

    def test_tune_with_topology_file(self, program_file, tmp_path, capsys):
        topo = tmp_path / "machine.topo"
        topo.write_text("cores=4; mem=80; L1:1K/2/64@2; L2:8K/4/64@8 per 2")
        code = main([
            "tune", program_file, "--topology", str(topo),
            "--candidates", "256", "--scale", "1",
        ])
        assert code == 0
        assert "best block size" in capsys.readouterr().out


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["map", "/nonexistent.loop"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_machine(self, program_file, capsys):
        assert main(["map", program_file, "--machine", "epyc"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_source(self, tmp_path, capsys):
        path = tmp_path / "bad.loop"
        path.write_text("for for for")
        assert main(["map", str(path)]) == 1
        assert "error:" in capsys.readouterr().err
