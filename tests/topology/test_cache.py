"""Unit tests for cache specs."""

import pytest

from repro.errors import TopologyError
from repro.topology.cache import CacheSpec


class TestValidation:
    def test_basic(self):
        spec = CacheSpec("L1", 32 * 1024, 8, 64, 4)
        assert spec.num_lines == 512 and spec.num_sets == 64

    def test_non_positive_size(self):
        with pytest.raises(TopologyError):
            CacheSpec("L1", 0, 8, 64, 4)

    def test_non_power_of_two_line(self):
        with pytest.raises(TopologyError):
            CacheSpec("L1", 1024, 4, 48, 4)

    def test_size_not_multiple_of_line(self):
        with pytest.raises(TopologyError):
            CacheSpec("L1", 1000, 4, 64, 4)

    def test_lines_not_divisible_by_ways(self):
        with pytest.raises(TopologyError):
            CacheSpec("L1", 64 * 10, 3, 64, 4)

    def test_non_positive_latency(self):
        with pytest.raises(TopologyError):
            CacheSpec("L1", 1024, 4, 64, 0)


class TestScaling:
    def test_half(self):
        spec = CacheSpec("L2", 6 * 1024 * 1024, 24, 64, 15)
        half = spec.scaled(0.5)
        assert half.size_bytes == 3 * 1024 * 1024
        assert half.associativity == 24 and half.line_size == 64

    def test_floor_never_below_one_chunk(self):
        spec = CacheSpec("L1", 2048, 4, 64, 4)
        tiny = spec.scaled(0.001)
        assert tiny.size_bytes == 4 * 64  # one full set

    def test_scaled_is_valid_spec(self):
        spec = CacheSpec("L3", 12 * 1024 * 1024, 16, 64, 36)
        scaled = spec.scaled(1 / 32)
        assert scaled.num_sets > 0


class TestRendering:
    def test_mb(self):
        assert "6MB" in str(CacheSpec("L2", 6 * 1024 * 1024, 24, 64, 15))

    def test_kb(self):
        assert "32KB" in str(CacheSpec("L1", 32 * 1024, 8, 64, 4))
