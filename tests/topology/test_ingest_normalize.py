"""Tests for the normalizer: SMT policy, laminar validation, defaults."""

import pytest

from repro.errors import TopologyError
from repro.topology.ingest.normalize import (
    NormalizeOptions,
    default_latency,
    normalize,
)
from repro.topology.ingest.raw import RawCache, RawTopology

KB = 1024
MB = 1024 * KB


def raw_two_core(caches=None, **kw):
    base = dict(
        source="sysfs:test",
        cpus=(0, 1),
        core_siblings={0: frozenset({0}), 1: frozenset({1})},
        caches=caches or (
            RawCache(1, "Data", 32 * KB, frozenset({0})),
            RawCache(1, "Data", 32 * KB, frozenset({1})),
            RawCache(2, "Unified", 1 * MB, frozenset({0, 1})),
        ),
    )
    base.update(kw)
    return RawTopology(**base)


def raw_smt4():
    """4 hw threads, siblings (0,2) and (1,3), per-pair L1/L2."""
    pairs = {0: frozenset({0, 2}), 1: frozenset({1, 3}),
             2: frozenset({0, 2}), 3: frozenset({1, 3})}
    caches = []
    for group in (frozenset({0, 2}), frozenset({1, 3})):
        caches.append(RawCache(1, "Data", 32 * KB, group))
        caches.append(RawCache(2, "Unified", 512 * KB, group))
    caches.append(RawCache(3, "Unified", 8 * MB, frozenset(range(4))))
    return RawTopology(
        source="sysfs:smt4",
        cpus=(0, 1, 2, 3),
        core_siblings=pairs,
        caches=tuple(caches),
    )


class TestOptions:
    def test_bad_policy(self):
        with pytest.raises(TopologyError, match="smt policy"):
            NormalizeOptions(smt_policy="fold")

    def test_bad_memory_latency(self):
        with pytest.raises(TopologyError):
            NormalizeOptions(memory_latency=0)


class TestDefaultLatency:
    def test_reference_sizes_hit_base(self):
        assert default_latency(1, 32 * KB) == 4
        assert default_latency(2, 512 * KB) == 12
        assert default_latency(3, 8 * MB) == 30

    def test_bigger_is_slower(self):
        assert default_latency(3, 32 * MB) == 34
        assert default_latency(3, 105 * MB) > default_latency(3, 8 * MB)

    def test_smaller_is_faster_but_floored(self):
        assert default_latency(2, 256 * KB) == 10
        # Floor: half the base, never less.
        assert default_latency(3, 64 * KB) == 16
        assert default_latency(3, 32 * KB) == 15


class TestSmtPolicy:
    def test_merge_folds_siblings(self):
        machine = normalize(raw_smt4(), NormalizeOptions(smt_policy="merge"))
        assert machine.num_cores == 2
        assert machine.cache_levels() == ("L1", "L2", "L3")

    def test_threads_keeps_every_hw_thread(self):
        machine = normalize(raw_smt4(), NormalizeOptions(smt_policy="threads"))
        assert machine.num_cores == 4
        # Sibling threads share their L1: clustering at the first level is 2.
        assert machine.clustering_degrees()[0] == 2

    def test_inconsistent_siblings_closed_transitively(self):
        raw = raw_two_core(core_siblings={
            0: frozenset({0, 1}), 1: frozenset({1})
        })
        machine = normalize(raw, NormalizeOptions(smt_policy="merge"))
        assert machine.num_cores == 1


class TestLaminar:
    def test_same_level_overlap_rejected(self):
        raw = raw_two_core(caches=(
            RawCache(1, "Data", 32 * KB, frozenset({0})),
            RawCache(1, "Data", 32 * KB, frozenset({0, 1})),
        ))
        with pytest.raises(TopologyError, match="non-tree sharing map"):
            normalize(raw)

    def test_non_nested_overlap_rejected(self):
        raw = RawTopology(
            source="sysfs:bad",
            cpus=(0, 1, 2),
            core_siblings={c: frozenset({c}) for c in range(3)},
            caches=(
                RawCache(2, "Unified", 1 * MB, frozenset({0, 1})),
                RawCache(3, "Unified", 8 * MB, frozenset({1, 2})),
            ),
        )
        with pytest.raises(TopologyError, match="non-tree sharing map"):
            normalize(raw)

    def test_inverted_nesting_rejected(self):
        raw = raw_two_core(caches=(
            RawCache(1, "Data", 32 * KB, frozenset({0, 1})),
            RawCache(2, "Unified", 1 * MB, frozenset({0})),
        ))
        with pytest.raises(TopologyError, match="sharing map"):
            normalize(raw)


class TestGeometryRepair:
    def test_fully_associative_ways_zero(self):
        raw = raw_two_core(caches=(
            RawCache(1, "Data", 32 * KB, frozenset({0}), line_size=64, ways=0),
            RawCache(1, "Data", 32 * KB, frozenset({1}), line_size=64, ways=0),
            RawCache(2, "Unified", 1 * MB, frozenset({0, 1})),
        ))
        machine = normalize(raw)
        l1 = machine.cache_path(0)[0].spec
        assert l1.associativity == l1.size_bytes // l1.line_size

    def test_bad_line_size_defaulted(self):
        raw = raw_two_core(caches=(
            RawCache(1, "Data", 32 * KB, frozenset({0}), line_size=48),
            RawCache(1, "Data", 32 * KB, frozenset({1}), line_size=48),
            RawCache(2, "Unified", 1 * MB, frozenset({0, 1})),
        ))
        machine = normalize(raw)
        assert machine.cache_path(0)[0].spec.line_size == 64

    def test_unaligned_size_rounded_down(self):
        raw = raw_two_core(caches=(
            RawCache(1, "Data", 32 * KB + 17, frozenset({0})),
            RawCache(1, "Data", 32 * KB + 17, frozenset({1})),
            RawCache(2, "Unified", 1 * MB, frozenset({0, 1})),
        ))
        machine = normalize(raw)
        assert machine.cache_path(0)[0].spec.size_bytes == 32 * KB

    def test_indivisible_ways_adjusted(self):
        raw = raw_two_core(caches=(
            RawCache(1, "Data", 32 * KB, frozenset({0}), line_size=64, ways=7),
            RawCache(1, "Data", 32 * KB, frozenset({1}), line_size=64, ways=7),
            RawCache(2, "Unified", 1 * MB, frozenset({0, 1})),
        ))
        machine = normalize(raw)
        spec = machine.cache_path(0)[0].spec
        assert (spec.size_bytes // spec.line_size) % spec.associativity == 0


class TestCollapse:
    def test_data_wins_over_unified(self):
        raw = raw_two_core(caches=(
            RawCache(1, "Data", 32 * KB, frozenset({0})),
            RawCache(1, "Unified", 48 * KB, frozenset({0})),
            RawCache(1, "Data", 32 * KB, frozenset({1})),
            RawCache(1, "Unified", 48 * KB, frozenset({1})),
            RawCache(2, "Unified", 1 * MB, frozenset({0, 1})),
        ))
        machine = normalize(raw)
        assert machine.cache_path(0)[0].spec.size_bytes == 32 * KB


class TestMachineShape:
    def test_single_top_cache_is_root(self):
        machine = normalize(raw_two_core())
        assert machine.root.kind == "cache"
        assert machine.root.spec.level == "L2"

    def test_private_llcs_get_memory_root(self):
        raw = raw_two_core(caches=(
            RawCache(1, "Data", 32 * KB, frozenset({0})),
            RawCache(1, "Data", 32 * KB, frozenset({1})),
            RawCache(2, "Unified", 1 * MB, frozenset({0})),
            RawCache(2, "Unified", 1 * MB, frozenset({1})),
        ))
        machine = normalize(raw)
        assert machine.root.kind == "memory"
        assert len(machine.root.children) == 2

    def test_latency_strictly_monotone(self):
        machine = normalize(raw_smt4())
        for core in machine.core_ids():
            path = machine.cache_path(core)
            latencies = [n.spec.latency for n in path]
            assert latencies == sorted(latencies)
            assert len(set(latencies)) == len(latencies)
        assert machine.memory_latency > max(
            n.spec.latency for n in machine.cache_nodes()
        )

    def test_memory_latency_from_ns_and_clock(self):
        machine = normalize(
            raw_two_core(clock_ghz=3.0),
            NormalizeOptions(memory_latency_ns=100.0),
        )
        assert machine.memory_latency == 300

    def test_memory_latency_override(self):
        machine = normalize(raw_two_core(), NormalizeOptions(memory_latency=77))
        assert machine.memory_latency == 77

    def test_holey_numbering_renumbered(self):
        raw = RawTopology(
            source="sysfs:holey",
            cpus=(0, 4, 9),
            core_siblings={c: frozenset({c}) for c in (0, 4, 9)},
            caches=(
                RawCache(2, "Unified", 1 * MB, frozenset({0, 4, 9})),
            ),
        )
        machine = normalize(raw)
        assert machine.core_ids() == (0, 1, 2)

    def test_name_from_source(self):
        machine = normalize(raw_two_core(source="sysfs:/dumps/my box.tar.gz"))
        assert machine.name == "my-box.tar.gz"

    def test_name_override(self):
        machine = normalize(raw_two_core(), NormalizeOptions(name="lab42"))
        assert machine.name == "lab42"

    def test_sockets_from_packages(self):
        raw = raw_two_core(packages={
            0: frozenset({0}), 1: frozenset({1})
        })
        assert normalize(raw).sockets == 2
