"""Tests for the sysfs loader: directories, tars, and real-world gaps."""

import os
import tarfile

import pytest

from repro.errors import TopologyError
from repro.topology.ingest import ingest_sysfs
from repro.topology.ingest.sysfs import load_sysfs

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def write_dump(root, files):
    for rel, value in files.items():
        path = root / "sys" / "devices" / "system" / "cpu" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(f"{value}\n")
    return str(root)


def two_core_files():
    files = {}
    for cpu in (0, 1):
        files[f"cpu{cpu}/topology/physical_package_id"] = 0
        files[f"cpu{cpu}/topology/core_cpus_list"] = str(cpu)
        files[f"cpu{cpu}/cache/index0/level"] = 1
        files[f"cpu{cpu}/cache/index0/type"] = "Data"
        files[f"cpu{cpu}/cache/index0/size"] = "32K"
        files[f"cpu{cpu}/cache/index0/shared_cpu_list"] = str(cpu)
        files[f"cpu{cpu}/cache/index0/coherency_line_size"] = 64
        files[f"cpu{cpu}/cache/index1/level"] = 2
        files[f"cpu{cpu}/cache/index1/type"] = "Unified"
        files[f"cpu{cpu}/cache/index1/size"] = "1M"
        files[f"cpu{cpu}/cache/index1/shared_cpu_list"] = "0-1"
    return files


class TestDirectoryLoading:
    def test_basic(self, tmp_path):
        raw = load_sysfs(write_dump(tmp_path, two_core_files()))
        assert raw.cpus == (0, 1)
        assert raw.offline == ()
        levels = raw.levels()
        assert levels == (1, 2)
        # Two private L1s plus one shared L2, deduplicated.
        assert len(raw.caches) == 3

    def test_rooted_anywhere(self, tmp_path):
        # Pointing at the dump root, at sys/, or at the cpu dir all work.
        root = write_dump(tmp_path, two_core_files())
        for sub in ("", "sys", "sys/devices/system/cpu"):
            raw = load_sysfs(os.path.join(root, sub) if sub else root)
            assert raw.cpus == (0, 1)

    def test_offline_cpu_skipped(self, tmp_path):
        files = two_core_files()
        files["cpu1/online"] = 0
        raw = load_sysfs(write_dump(tmp_path, files))
        assert raw.cpus == (0,)
        assert raw.offline == (1,)
        # The shared L2's sharer list is clipped to online cpus.
        l2 = [c for c in raw.caches if c.level == 2][0]
        assert l2.shared_cpus == frozenset({0})

    def test_instruction_cache_dropped(self, tmp_path):
        files = two_core_files()
        files["cpu0/cache/index2/level"] = 1
        files["cpu0/cache/index2/type"] = "Instruction"
        files["cpu0/cache/index2/size"] = "32K"
        files["cpu0/cache/index2/shared_cpu_list"] = "0"
        raw = load_sysfs(write_dump(tmp_path, files))
        assert all(c.type != "Instruction" for c in raw.caches)

    def test_hex_mask_fallback(self, tmp_path):
        files = two_core_files()
        for cpu in (0, 1):
            del files[f"cpu{cpu}/cache/index1/shared_cpu_list"]
            files[f"cpu{cpu}/cache/index1/shared_cpu_map"] = "3"
        raw = load_sysfs(write_dump(tmp_path, files))
        l2 = [c for c in raw.caches if c.level == 2][0]
        assert l2.shared_cpus == frozenset({0, 1})

    def test_conflicting_sizes_rejected(self, tmp_path):
        files = two_core_files()
        files["cpu1/cache/index1/size"] = "2M"
        with pytest.raises(TopologyError, match="conflicting sizes"):
            load_sysfs(write_dump(tmp_path, files))

    def test_no_cpus_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(TopologyError, match="no cpu"):
            load_sysfs(str(tmp_path / "empty"))

    def test_all_offline_rejected(self, tmp_path):
        files = two_core_files()
        files["cpu0/online"] = 0
        files["cpu1/online"] = 0
        with pytest.raises(TopologyError, match="no online cpus"):
            load_sysfs(write_dump(tmp_path, files))

    def test_malformed_level_names_file(self, tmp_path):
        files = two_core_files()
        files["cpu0/cache/index0/level"] = "one"
        with pytest.raises(TopologyError, match="index0/level"):
            load_sysfs(write_dump(tmp_path, files))

    def test_clock_from_cpufreq(self, tmp_path):
        files = two_core_files()
        files["cpu0/cpufreq/cpuinfo_max_freq"] = 2_600_000
        raw = load_sysfs(write_dump(tmp_path, files))
        assert raw.clock_ghz == 2.6


class TestTarLoading:
    def test_fixture_tar_matches_extracted_dir(self, tmp_path):
        tar_path = os.path.join(FIXTURES, "nehalem-ep.tar.gz")
        raw_tar = load_sysfs(tar_path)
        with tarfile.open(tar_path) as tar:
            tar.extractall(tmp_path)
        raw_dir = load_sysfs(str(tmp_path))
        assert raw_tar.cpus == raw_dir.cpus
        assert raw_tar.packages == raw_dir.packages
        assert sorted(c.describe() for c in raw_tar.caches) == sorted(
            c.describe() for c in raw_dir.caches
        )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TopologyError):
            load_sysfs(str(tmp_path / "nope.tar.gz"))

    def test_not_a_dump(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("hi\n")
        with pytest.raises(TopologyError, match="neither a directory"):
            load_sysfs(str(path))


class TestEndToEnd:
    def test_dir_dump_to_machine(self, tmp_path):
        machine = ingest_sysfs(write_dump(tmp_path, two_core_files()))
        assert machine.num_cores == 2
        assert machine.cache_levels() == ("L1", "L2")
        # Single LLC covering everything: the L2 is the root.
        assert machine.root.kind == "cache"

    def test_live_sys_if_available(self):
        if not os.path.isdir("/sys/devices/system/cpu/cpu0"):
            pytest.skip("no live sysfs")
        machine = ingest_sysfs("/sys")
        assert machine.num_cores >= 1
        assert machine.core_ids() == tuple(range(machine.num_cores))
