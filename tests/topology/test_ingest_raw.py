"""Unit tests for the raw ingestion primitives."""

import pytest

from repro.errors import TopologyError
from repro.topology.ingest.raw import (
    RawCache,
    RawTopology,
    parse_cpu_list,
    parse_cpu_mask,
    parse_size,
)


class TestParseCpuList:
    def test_singletons_and_ranges(self):
        assert parse_cpu_list("0-3,8,10-11") == frozenset({0, 1, 2, 3, 8, 10, 11})

    def test_single(self):
        assert parse_cpu_list("0") == frozenset({0})

    def test_empty_is_empty_set(self):
        assert parse_cpu_list("") == frozenset()
        assert parse_cpu_list("\n") == frozenset()

    def test_whitespace_tolerated(self):
        assert parse_cpu_list(" 0 , 2-3 \n") == frozenset({0, 2, 3})

    def test_reversed_range_rejected(self):
        with pytest.raises(TopologyError):
            parse_cpu_list("5-2")

    def test_garbage_rejected(self):
        with pytest.raises(TopologyError):
            parse_cpu_list("0-3,x")


class TestParseCpuMask:
    def test_simple(self):
        assert parse_cpu_mask("ff") == frozenset(range(8))

    def test_comma_grouped(self):
        assert parse_cpu_mask("1,00000001") == frozenset({0, 32})

    def test_empty(self):
        assert parse_cpu_mask("") == frozenset()

    def test_garbage(self):
        with pytest.raises(TopologyError):
            parse_cpu_mask("zz")


class TestParseSize:
    def test_kernel_style(self):
        assert parse_size("32K") == 32 * 1024
        assert parse_size("6144K") == 6144 * 1024
        assert parse_size("1M") == 1024 * 1024

    def test_lscpu_style(self):
        assert parse_size("48 KiB") == 48 * 1024
        assert parse_size("105 MiB") == 105 * 1024 * 1024
        assert parse_size("1.5 MiB") == 1536 * 1024

    def test_bare_bytes(self):
        assert parse_size("512") == 512

    def test_non_power_of_two_ok(self):
        # Real hardware: 107520K L3s exist.
        assert parse_size("107520K") == 107520 * 1024

    def test_garbage(self):
        with pytest.raises(TopologyError):
            parse_size("lots")


class TestRawCache:
    def test_describe(self):
        cache = RawCache(2, "Unified", 1024, frozenset({0, 1}))
        assert "L2" in cache.describe() and "0,1" in cache.describe()

    def test_bad_level(self):
        with pytest.raises(TopologyError):
            RawCache(0, "Data", 1024, frozenset({0}))

    def test_bad_type(self):
        with pytest.raises(TopologyError):
            RawCache(1, "Victim", 1024, frozenset({0}))

    def test_empty_sharers(self):
        with pytest.raises(TopologyError):
            RawCache(1, "Data", 1024, frozenset())


class TestRawTopologyValidate:
    def _raw(self, **kw):
        base = dict(
            source="test",
            cpus=(0, 1),
            core_siblings={0: frozenset({0}), 1: frozenset({1})},
            caches=(RawCache(1, "Data", 1024, frozenset({0})),),
        )
        base.update(kw)
        return RawTopology(**base)

    def test_valid(self):
        self._raw().validate()

    def test_no_cpus(self):
        with pytest.raises(TopologyError):
            self._raw(cpus=(), core_siblings={}, caches=()).validate()

    def test_online_offline_overlap(self):
        with pytest.raises(TopologyError):
            self._raw(offline=(1,)).validate()

    def test_sibling_self_membership(self):
        with pytest.raises(TopologyError):
            self._raw(core_siblings={0: frozenset({1}), 1: frozenset({1})}).validate()

    def test_stray_cache_cpu(self):
        with pytest.raises(TopologyError):
            self._raw(caches=(RawCache(1, "Data", 1024, frozenset({7})),)).validate()

    def test_level_bytes(self):
        raw = self._raw(caches=(
            RawCache(1, "Data", 1024, frozenset({0})),
            RawCache(1, "Data", 1024, frozenset({1})),
            RawCache(2, "Unified", 4096, frozenset({0, 1})),
        ))
        assert raw.level_bytes() == {1: 2048, 2: 4096}
        assert raw.levels() == (1, 2)
