"""Unit tests for the cache hierarchy tree and machine queries."""

import pytest

from repro.errors import TopologyError
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode

L1 = CacheSpec("L1", 1024, 2, 32, 2)
L2 = CacheSpec("L2", 4096, 4, 32, 8)


class TestNodes:
    def test_core_leaf(self):
        node = TopologyNode.core(3)
        assert node.cores_below() == (3,)

    def test_cache_requires_spec(self):
        with pytest.raises(TopologyError):
            TopologyNode("cache", children=(TopologyNode.core(0),))

    def test_core_requires_id(self):
        with pytest.raises(TopologyError):
            TopologyNode("core")

    def test_cache_requires_children(self):
        with pytest.raises(TopologyError):
            TopologyNode("cache", spec=L1)

    def test_unknown_kind(self):
        with pytest.raises(TopologyError):
            TopologyNode("gpu", core_id=0)

    def test_unique_uids(self):
        a = TopologyNode.core(0)
        b = TopologyNode.core(0)
        assert a.uid != b.uid

    def test_walk_preorder(self):
        leaf = TopologyNode.core(0)
        l1 = TopologyNode.cache(L1, [leaf])
        assert [n.kind for n in l1.walk()] == ["cache", "core"]


class TestMachineQueries:
    def test_core_ids(self, fig9_machine):
        assert fig9_machine.core_ids() == (0, 1, 2, 3)

    def test_cache_levels(self, fig9_machine):
        assert fig9_machine.cache_levels() == ("L1", "L2", "L3")

    def test_cache_path(self, fig9_machine):
        path = fig9_machine.cache_path(0)
        assert [n.spec.level for n in path] == ["L1", "L2", "L3"]

    def test_bad_core_id(self, fig9_machine):
        with pytest.raises(TopologyError):
            fig9_machine.cache_path(9)

    def test_non_contiguous_cores_rejected(self):
        root = TopologyNode.cache(L1, [TopologyNode.core(1)])
        with pytest.raises(TopologyError):
            Machine("bad", 1.0, 10, root)

    def test_total_cache_bytes(self, two_core_machine):
        assert two_core_machine.total_cache_bytes() == 2 * 512 + 2048


class TestAffinity:
    def test_pair_affinity(self, fig9_machine):
        assert fig9_machine.shared_cache(0, 1).spec.level == "L2"
        assert fig9_machine.shared_cache(0, 2).spec.level == "L3"

    def test_affinity_level_latency(self, fig9_machine):
        assert fig9_machine.affinity_level(0, 1) == 8
        assert fig9_machine.affinity_level(0, 3) == 20

    def test_self_affinity_is_l1(self, fig9_machine):
        assert fig9_machine.shared_cache(2, 2).spec.level == "L1"

    def test_no_shared_cache(self):
        # Two cores with only memory in common.
        l1a = TopologyNode.cache(L1, [TopologyNode.core(0)])
        l1b = TopologyNode.cache(L1, [TopologyNode.core(1)])
        m = Machine("split", 1.0, 10, TopologyNode.memory([l1a, l1b]))
        assert m.shared_cache(0, 1) is None
        assert not m.have_affinity(0, 1)

    def test_have_affinity(self, fig9_machine):
        assert fig9_machine.have_affinity(0, 3)


class TestClusteringSupport:
    def test_degrees(self, fig9_machine):
        assert fig9_machine.clustering_degrees() == (2, 2, 1)

    def test_first_shared_groups(self, fig9_machine):
        assert fig9_machine.first_shared_level_groups() == ((0, 1), (2, 3))

    def test_first_shared_groups_private_only(self):
        l1a = TopologyNode.cache(L1, [TopologyNode.core(0)])
        l1b = TopologyNode.cache(L1, [TopologyNode.core(1)])
        m = Machine("split", 1.0, 10, TopologyNode.memory([l1a, l1b]))
        assert m.first_shared_level_groups() == ((0,), (1,))


class TestDerivedMachines:
    def test_truncated_drops_levels(self, fig9_machine):
        t = fig9_machine.truncated(2)
        assert t.cache_levels() == ("L1", "L2")
        assert t.num_cores == fig9_machine.num_cores

    def test_truncated_to_one_level(self, fig9_machine):
        t = fig9_machine.truncated(1)
        assert t.cache_levels() == ("L1",)
        assert t.clustering_degrees()[0] == 4

    def test_scaled_caches(self, fig9_machine):
        s = fig9_machine.with_scaled_caches(0.5)
        assert s.total_cache_bytes() < fig9_machine.total_cache_bytes()
        assert s.num_cores == fig9_machine.num_cores

    def test_describe(self, fig9_machine):
        text = fig9_machine.describe()
        assert "4 cores" in text and "L3" in text
