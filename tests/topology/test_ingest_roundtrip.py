"""Property tests: ingestion is order-insensitive and round-trippable.

The structural digest of an ingested machine must not depend on the
order the dump's files happen to be listed in (tar member order,
directory listing order, dict insertion order) — only on the topology
itself.  And an ingested machine must survive the dict serialization
round-trip and core removal while staying mappable.
"""

import io
import os
import tarfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cache import machine_digest
from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper
from repro.runtime.serialize import machine_from_dict, machine_to_dict
from repro.topology.ingest import NormalizeOptions, ingest_sysfs
from repro.topology.ingest.zoo import zoo_dir, zoo_machine, zoo_names

needs_corpus = pytest.mark.skipif(zoo_dir() is None, reason="no fixture corpus")


def dump_files():
    """A small asymmetric dump as a {relpath: content} dict."""
    files = {}
    for cpu in range(4):
        pkg = 0 if cpu < 2 else 1
        files[f"cpu{cpu}/topology/physical_package_id"] = str(pkg)
        files[f"cpu{cpu}/topology/core_cpus_list"] = str(cpu)
        files[f"cpu{cpu}/cache/index0/level"] = "1"
        files[f"cpu{cpu}/cache/index0/type"] = "Data"
        files[f"cpu{cpu}/cache/index0/size"] = "32K"
        files[f"cpu{cpu}/cache/index0/shared_cpu_list"] = str(cpu)
    # Package 0 shares an L2; package 1 has private L2s plus an L3.
    for cpu in (0, 1):
        files[f"cpu{cpu}/cache/index1/level"] = "2"
        files[f"cpu{cpu}/cache/index1/type"] = "Unified"
        files[f"cpu{cpu}/cache/index1/size"] = "2M"
        files[f"cpu{cpu}/cache/index1/shared_cpu_list"] = "0-1"
    for cpu in (2, 3):
        files[f"cpu{cpu}/cache/index1/level"] = "2"
        files[f"cpu{cpu}/cache/index1/type"] = "Unified"
        files[f"cpu{cpu}/cache/index1/size"] = "512K"
        files[f"cpu{cpu}/cache/index1/shared_cpu_list"] = str(cpu)
        files[f"cpu{cpu}/cache/index2/level"] = "3"
        files[f"cpu{cpu}/cache/index2/type"] = "Unified"
        files[f"cpu{cpu}/cache/index2/size"] = "8M"
        files[f"cpu{cpu}/cache/index2/shared_cpu_list"] = "2-3"
    return files


def tar_from(files, order, tmp_path, tag):
    """Write the dump as a tar whose members appear in the given order."""
    path = str(tmp_path / f"dump-{tag}.tar")
    with tarfile.open(path, "w") as tar:
        for key in order:
            data = (files[key] + "\n").encode()
            info = tarfile.TarInfo(f"sys/devices/system/cpu/{key}")
            info.size = len(data)
            tar.addfile(info, io.BytesIO(data))
    return path


#: Pin the machine name so the digest reflects only the topology, not
#: the dump's filesystem path (the default name derives from the path).
PINNED = NormalizeOptions(name="roundtrip")


class TestOrderInsensitivity:
    @settings(max_examples=20, deadline=None)
    @given(order=st.permutations(sorted(dump_files())))
    def test_tar_member_order_does_not_change_digest(self, tmp_path_factory, order):
        files = dump_files()
        tmp_path = tmp_path_factory.mktemp("shuffle")
        baseline = machine_digest(
            ingest_sysfs(tar_from(files, sorted(files), tmp_path, "sorted"), PINNED)
        )
        shuffled = machine_digest(
            ingest_sysfs(tar_from(files, order, tmp_path, "shuffled"), PINNED)
        )
        assert shuffled == baseline

    def test_dir_vs_tar_digest(self, tmp_path):
        files = dump_files()
        for rel, value in files.items():
            path = tmp_path / "d" / "sys" / "devices" / "system" / "cpu" / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(value + "\n")
        from_dir = machine_digest(ingest_sysfs(str(tmp_path / "d"), PINNED))
        from_tar = machine_digest(
            ingest_sysfs(tar_from(files, sorted(files), tmp_path, "t"), PINNED)
        )
        assert from_dir == from_tar


@needs_corpus
class TestSerializeRoundTrip:
    def test_every_zoo_machine_survives_dict_round_trip(self):
        for name in zoo_names():
            machine = zoo_machine(name)
            rebuilt = machine_from_dict(machine_to_dict(machine))
            assert machine_digest(rebuilt) == machine_digest(machine)
            assert rebuilt.name == machine.name
            assert rebuilt.memory_latency == machine.memory_latency


@needs_corpus
class TestDegradedStillMappable:
    @settings(max_examples=10, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=5), max_size=3))
    def test_without_cores_on_asymmetric_machine(self, dead):
        """Killing any up-to-3 cores of the ingested big.LITTLE machine
        leaves a machine the mapper still schedules completely."""
        machine = zoo_machine("biglittle")
        dead = {d for d in dead if d < machine.num_cores}
        if len(dead) >= machine.num_cores:
            dead.pop()
        degraded = machine.without_cores(sorted(dead))
        assert degraded.num_cores == machine.num_cores - len(dead)
        program = compile_source(
            """
            param n = 48;
            array A[48];
            parallel for (i = 1; i < n - 1; i++)
              A[i] = A[i] + A[i - 1];
            """,
            name="degraded-smoke",
        )
        result = TopologyAwareMapper(degraded, block_size=32).map_nest(
            program, program.nests[0]
        )
        mapped = sum(
            g.size for rounds in result.group_rounds for rnd in rounds for g in rnd
        )
        assert mapped == program.nests[0].iteration_count()


def test_live_sys_digest_is_stable_across_loads():
    if not os.path.isdir("/sys/devices/system/cpu/cpu0"):
        pytest.skip("no live sysfs")
    first = machine_digest(ingest_sysfs("/sys"))
    second = machine_digest(ingest_sysfs("/sys"))
    assert first == second
