"""Pruning machines (core loss) and the level-uniformity predicate."""

import pytest

from repro.errors import TopologyError
from repro.pipeline.bench import bench_machine
from repro.topology.machines import machine_by_name


class TestWithoutCores:
    def test_empty_prune_returns_self(self):
        machine = bench_machine(8)
        assert machine.without_cores([]) is machine

    def test_removes_and_renumbers(self):
        machine = bench_machine(8)
        pruned = machine.without_cores([2, 5])
        assert pruned.num_cores == 6
        assert pruned.core_ids() == tuple(range(6))

    def test_name_records_lost_cores(self):
        pruned = bench_machine(8).without_cores([5, 2])
        assert pruned.name == "bench8-less2,5"

    def test_childless_caches_pruned(self):
        machine = bench_machine(8)
        # Cores 2 and 3 share one L2; losing both removes that L2 node.
        pruned = machine.without_cores([2, 3])
        l2_count = sum(
            1 for child in pruned.root.children if child.kind == "cache"
        )
        assert l2_count == len(machine.root.children) - 1

    def test_unknown_core_rejected(self):
        with pytest.raises(TopologyError, match="no such cores"):
            bench_machine(8).without_cores([42])

    def test_cannot_remove_every_core(self):
        with pytest.raises(TopologyError):
            bench_machine(8).without_cores(list(range(8)))

    def test_survivors_keep_cache_paths(self):
        machine = bench_machine(8)
        pruned = machine.without_cores([0])
        for core in pruned.core_ids():
            path = pruned.cache_path(core)
            assert path and path[0].spec.level == "L1"

    def test_total_cache_shrinks(self):
        machine = bench_machine(8)
        pruned = machine.without_cores([2, 3])
        assert pruned.total_cache_bytes() < machine.total_cache_bytes()


class TestLevelUniform:
    def test_builtin_machines_are_uniform(self):
        for name in ("arch-I", "arch-II", "dunnington"):
            assert machine_by_name(name).is_level_uniform()

    def test_pruning_one_core_breaks_uniformity(self):
        machine = bench_machine(8)
        assert machine.is_level_uniform()
        assert not machine.without_cores([2]).is_level_uniform()

    def test_symmetric_prune_can_stay_uniform(self):
        # Losing one core per L2 pair keeps every level's degree uniform.
        machine = bench_machine(8)
        pruned = machine.without_cores([1, 3, 5, 7])
        assert pruned.is_level_uniform()
        assert pruned.clustering_degrees() == (4, 1, 1)


class TestFirstSharedLevelGroups:
    def test_uniform_machine_unchanged(self):
        machine = bench_machine(8)
        groups = machine.first_shared_level_groups()
        assert groups == ((0, 1), (2, 3), (4, 5), (6, 7))

    def test_straggler_cores_become_singletons(self):
        # Losing core 3 leaves core 2 under a private (1-core) L2: it
        # must still appear in the grouping, as a singleton.
        pruned = bench_machine(8).without_cores([3])
        groups = pruned.first_shared_level_groups()
        covered = sorted(c for g in groups for c in g)
        assert covered == list(pruned.core_ids())
        assert (2,) in groups
