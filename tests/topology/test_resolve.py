"""Tests for the unified machine-spec resolver."""

import pytest

from repro.errors import TopologyError, UnknownMachineError
from repro.topology.ingest.zoo import zoo_dir, zoo_names
from repro.topology.machines import builtin_names, machine_by_name
from repro.topology.resolve import known_machine_names, resolve_machine

needs_corpus = pytest.mark.skipif(zoo_dir() is None, reason="no fixture corpus")


class TestBuiltins:
    def test_exact(self):
        assert resolve_machine("harpertown").name == "harpertown"

    def test_case_insensitive(self):
        assert resolve_machine("HarperTown").name == "harpertown"
        assert machine_by_name("DUNNINGTON").name == "dunnington"

    def test_unknown_raises_with_menu(self):
        with pytest.raises(UnknownMachineError) as info:
            resolve_machine("pdp11")
        assert info.value.spec == "pdp11"
        assert "harpertown" in info.value.known
        assert "harpertown" in str(info.value)

    def test_empty_spec(self):
        with pytest.raises(UnknownMachineError):
            resolve_machine("  ")


class TestMenu:
    def test_builtins_first(self):
        names = known_machine_names()
        n_builtin = len(builtin_names())
        assert names[:n_builtin] == list(builtin_names())
        assert all(n.startswith("zoo:") for n in names[n_builtin:])

    @needs_corpus
    def test_zoo_entries_in_menu(self):
        names = known_machine_names()
        for zoo_name in zoo_names():
            assert f"zoo:{zoo_name}" in names


@needs_corpus
class TestZooScheme:
    def test_resolve(self):
        machine = resolve_machine("zoo:unicore")
        assert machine.num_cores == 1

    def test_scheme_and_name_case_insensitive(self):
        assert resolve_machine("ZOO:UniCore").name == "unicore"

    def test_unknown_zoo_name(self):
        with pytest.raises(UnknownMachineError) as info:
            resolve_machine("zoo:cray-1")
        assert "zoo:unicore" in info.value.known


@needs_corpus
class TestPathSchemes:
    def _fixture(self, name):
        import os

        return os.path.join(zoo_dir(), name)

    def test_sysfs_tar(self):
        machine = resolve_machine("sysfs:" + self._fixture("nehalem-ep.tar.gz"))
        assert machine.num_cores == 8

    def test_smt_policy_threads(self):
        path = self._fixture("smt2server.tar.gz")
        merged = resolve_machine("sysfs:" + path)
        threaded = resolve_machine("sysfs:" + path, smt_policy="threads")
        assert merged.num_cores == 8
        assert threaded.num_cores == 16

    def test_sysfs_missing_path_is_topology_error(self):
        with pytest.raises(TopologyError):
            resolve_machine("sysfs:/no/such/dump")
