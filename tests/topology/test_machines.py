"""Unit tests for the concrete machine descriptions (Table 1, Figure 12)."""

import pytest

from repro.errors import TopologyError
from repro.topology.machines import (
    arch_i,
    arch_ii,
    commercial_machines,
    dunnington,
    dunnington_scaled,
    halve_caches,
    harpertown,
    machine_by_name,
    nehalem,
)


class TestTable1:
    def test_harpertown(self):
        m = harpertown()
        assert m.num_cores == 8
        assert m.cache_levels() == ("L1", "L2")
        # L2 shared per core pair; no cache shared across pairs.
        assert m.shared_cache(0, 1).spec.level == "L2"
        assert m.shared_cache(0, 2) is None
        assert m.memory_latency == 320  # ~100ns at 3.2GHz

    def test_nehalem(self):
        m = nehalem()
        assert m.num_cores == 8
        assert m.cache_levels() == ("L1", "L2", "L3")
        # Private L2, socket-shared L3.
        assert m.shared_cache(0, 1).spec.level == "L3"
        assert m.shared_cache(0, 4) is None

    def test_dunnington(self):
        m = dunnington()
        assert m.num_cores == 12
        assert m.shared_cache(0, 1).spec.level == "L2"
        assert m.shared_cache(0, 2).spec.level == "L3"
        assert m.shared_cache(0, 6) is None

    def test_latencies_ordered(self):
        for m in commercial_machines():
            levels = [n.spec for n in m.cache_path(0)]
            lats = [s.latency for s in levels]
            assert lats == sorted(lats)
            assert m.memory_latency > lats[-1]

    def test_line_size_uniform(self):
        for m in commercial_machines():
            assert {n.spec.line_size for n in m.cache_nodes()} == {64}


class TestScaledAndDeep:
    def test_dunnington_scaling(self):
        for cores in (12, 18, 24):
            m = dunnington_scaled(cores)
            assert m.num_cores == cores
            assert m.sockets == cores // 6

    def test_dunnington_scaling_rejects_odd(self):
        with pytest.raises(TopologyError):
            dunnington_scaled(13)

    def test_arch_i_depth(self):
        assert arch_i().cache_levels() == ("L1", "L2", "L3", "L4")
        assert arch_i().num_cores == 16

    def test_arch_ii_depth(self):
        assert arch_ii().cache_levels() == ("L1", "L2", "L3", "L4", "L5")
        assert arch_ii().num_cores == 32

    def test_clustering_degrees_product_equals_cores(self):
        for m in (harpertown(), nehalem(), dunnington(), arch_i(), arch_ii()):
            product = 1
            for d in m.clustering_degrees():
                product *= d
            assert product == m.num_cores

    def test_halved_capacities(self):
        full = dunnington()
        half = halve_caches(full)
        assert half.total_cache_bytes() * 2 == full.total_cache_bytes()


class TestRegistry:
    def test_lookup(self):
        assert machine_by_name("dunnington").num_cores == 12

    def test_unknown(self):
        with pytest.raises(TopologyError):
            machine_by_name("skylake")
