"""The machine zoo: every fixture ingests, digests are pinned, and the
resulting machines run the mapping pipeline end-to-end."""

import pytest

from repro.errors import TopologyError
from repro.experiments.cache import machine_digest
from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper
from repro.topology.ingest.zoo import zoo_dir, zoo_entries, zoo_machine, zoo_names

pytestmark = pytest.mark.skipif(zoo_dir() is None, reason="no fixture corpus")


def small_program():
    return compile_source(
        """
        param n = 64;
        array A[64];
        parallel for (i = 1; i < n - 1; i++)
          A[i] = A[i] + A[i - 1] + A[i + 1];
        """,
        name="zoo-smoke",
    )


def test_corpus_is_present_and_big_enough():
    assert len(zoo_entries()) >= 6


def test_every_fixture_ingests_and_digest_matches():
    for name, entry in zoo_entries().items():
        machine = zoo_machine(name)
        assert machine.num_cores >= 1
        assert machine.core_ids() == tuple(range(machine.num_cores))
        assert entry.expected_digest, f"{name}: manifest has no pinned digest"
        assert machine_digest(machine) == entry.expected_digest, (
            f"{name}: ingest pipeline changed the machine tree"
        )
        if entry.cores is not None:
            assert machine.num_cores == entry.cores


def test_case_insensitive_lookup():
    name = zoo_names()[0]
    assert machine_digest(zoo_machine(name.upper())) == machine_digest(
        zoo_machine(name)
    )


def test_unknown_name_lists_known():
    with pytest.raises(TopologyError, match="unknown zoo machine"):
        zoo_machine("cray-1")


def test_expected_asymmetry():
    assert not zoo_machine("biglittle").is_level_uniform()
    assert zoo_machine("nehalem-ep").is_level_uniform()


def test_smt_merge_folds_threads():
    entry = zoo_entries()["smt2server"]
    assert entry.smt_policy == "merge"
    machine = zoo_machine("smt2server")
    assert machine.num_cores == 8  # 16 hw threads folded 2:1


@pytest.mark.parametrize("name", zoo_names())
def test_zoo_machine_maps_end_to_end(name):
    machine = zoo_machine(name)
    program = small_program()
    mapper = TopologyAwareMapper(machine, block_size=32)
    result = mapper.map_nest(program, program.nests[0])
    assert len(result.group_rounds) == machine.num_cores
    mapped = sum(
        g.size for rounds in result.group_rounds for rnd in rounds for g in rnd
    )
    assert mapped == program.nests[0].iteration_count()
