"""Tests for the lscpu -J loader and sysfs cross-validation."""

import json

import pytest

from repro.errors import TopologyError
from repro.topology.ingest import ingest_lscpu
from repro.topology.ingest.lscpu import cross_validate, parse_lscpu_text
from repro.topology.ingest.raw import RawCache, RawTopology


def lscpu_doc(fields):
    return json.dumps(
        {"lscpu": [{"field": f"{key}:", "data": value} for key, value in fields.items()]}
    )


BASIC = {
    "CPU(s)": "8",
    "On-line CPU(s) list": "0-7",
    "Thread(s) per core": "1",
    "Core(s) per socket": "4",
    "Socket(s)": "2",
    "Model name": "Test CPU @ 2.90GHz",
    "L1d cache": "256 KiB (8 instances)",
    "L1i cache": "256 KiB (8 instances)",
    "L2 cache": "2 MiB (8 instances)",
    "L3 cache": "16 MiB (2 instances)",
}


class TestParse:
    def test_basic(self):
        raw = parse_lscpu_text(lscpu_doc(BASIC))
        assert raw.cpus == tuple(range(8))
        assert len(raw.packages) == 2
        assert raw.clock_ghz == 2.9
        # L1i dropped; 8 L1d + 8 L2 + 2 L3.
        assert len(raw.caches) == 18
        l3 = [c for c in raw.caches if c.level == 3]
        assert {frozenset(c.shared_cpus) for c in l3} == {
            frozenset(range(0, 4)), frozenset(range(4, 8))
        }
        # Per-instance size: 16 MiB total over 2 instances.
        assert all(c.size_bytes == 8 * 1024 * 1024 for c in l3)

    def test_smt_siblings(self):
        fields = dict(BASIC, **{"Thread(s) per core": "2", "Core(s) per socket": "2"})
        raw = parse_lscpu_text(lscpu_doc(fields))
        assert raw.core_siblings[0] == frozenset({0, 1})

    def test_nested_children(self):
        document = json.dumps({"lscpu": [
            {"field": "CPU(s):", "data": "1"},
            {"field": "Caches:", "data": None, "children": [
                {"field": "L1d cache:", "data": "32 KiB (1 instance)"},
            ]},
        ]})
        raw = parse_lscpu_text(document)
        assert raw.cpus == (0,)
        assert len(raw.caches) == 1

    def test_not_json(self):
        with pytest.raises(TopologyError, match="not valid JSON"):
            parse_lscpu_text("Architecture: x86_64")

    def test_missing_lscpu_key(self):
        with pytest.raises(TopologyError, match="lscpu"):
            parse_lscpu_text("{}")

    def test_no_cpus(self):
        with pytest.raises(TopologyError):
            parse_lscpu_text(lscpu_doc({"Architecture": "x86_64"}))

    def test_clock_from_mhz_field(self):
        fields = dict(BASIC, **{"Model name": "No speed here", "CPU max MHz": "3500.0000"})
        assert parse_lscpu_text(lscpu_doc(fields)).clock_ghz == 3.5


class TestEndToEnd:
    def test_machine(self, tmp_path):
        path = tmp_path / "lscpu.json"
        path.write_text(lscpu_doc(BASIC))
        machine = ingest_lscpu(str(path))
        assert machine.num_cores == 8
        assert machine.sockets == 2
        assert machine.cache_levels() == ("L1", "L2", "L3")


class TestCrossValidate:
    def _sysfs_like(self):
        caches = []
        for cpu in range(8):
            caches.append(RawCache(1, "Data", 32 * 1024, frozenset({cpu})))
            caches.append(RawCache(2, "Unified", 256 * 1024, frozenset({cpu})))
        caches.append(RawCache(3, "Unified", 8 * 1024 * 1024, frozenset(range(0, 4))))
        caches.append(RawCache(3, "Unified", 8 * 1024 * 1024, frozenset(range(4, 8))))
        return RawTopology(
            source="sysfs:test",
            cpus=tuple(range(8)),
            packages={0: frozenset(range(0, 4)), 1: frozenset(range(4, 8))},
            core_siblings={c: frozenset({c}) for c in range(8)},
            caches=tuple(caches),
        )

    def test_agreement(self):
        issues = cross_validate(self._sysfs_like(), parse_lscpu_text(lscpu_doc(BASIC)))
        assert issues == []

    def test_cpu_count_mismatch_is_fatal(self):
        fields = dict(BASIC, **{"CPU(s)": "4", "On-line CPU(s) list": "0-3"})
        with pytest.raises(TopologyError, match="cross-validation"):
            cross_validate(self._sysfs_like(), parse_lscpu_text(lscpu_doc(fields)))

    def test_capacity_mismatch_reported(self):
        fields = dict(BASIC, **{"L3 cache": "64 MiB (2 instances)"})
        issues = cross_validate(self._sysfs_like(), parse_lscpu_text(lscpu_doc(fields)))
        assert any("L3" in issue for issue in issues)

    def test_level_only_on_one_side(self):
        fields = dict(BASIC)
        del fields["L2 cache"]
        issues = cross_validate(self._sysfs_like(), parse_lscpu_text(lscpu_doc(fields)))
        assert any("L2" in issue for issue in issues)
