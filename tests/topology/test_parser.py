"""Unit tests for the topology spec parser."""

import pytest

from repro.errors import TopologyError
from repro.topology.parser import parse_topology

NEHALEM_SPEC = (
    "name=neh; cores=8; clock=2.9; mem=174; "
    "L1:32K/8/64@4 per 1; L2:256K/8/64@10 per 1; L3:8M/16/64@35 per 4"
)


class TestParsing:
    def test_nehalem_equivalent(self):
        machine = parse_topology(NEHALEM_SPEC)
        assert machine.name == "neh"
        assert machine.num_cores == 8
        assert machine.memory_latency == 174
        assert machine.cache_levels() == ("L1", "L2", "L3")
        assert machine.shared_cache(0, 1).spec.level == "L3"

    def test_matches_builtin(self):
        from repro.topology.machines import nehalem

        parsed = parse_topology(NEHALEM_SPEC)
        built = nehalem()
        assert parsed.clustering_degrees() == built.clustering_degrees()
        assert parsed.total_cache_bytes() == built.total_cache_bytes()

    def test_multiline(self):
        spec = "cores=4\nmem=100\nL1:1K/2/32@2\nL2:4K/4/32@8 per 2"
        machine = parse_topology(spec)
        assert machine.first_shared_level_groups() == ((0, 1), (2, 3))

    def test_default_per_is_private(self):
        machine = parse_topology("cores=2; mem=50; L1:1K/2/32@2")
        assert machine.shared_cache(0, 1) is None

    def test_size_units(self):
        machine = parse_topology("cores=2; mem=50; L1:2048/2/32@2 per 2")
        assert machine.cache_nodes()[0].spec.size_bytes == 2048


class TestErrors:
    def test_missing_cores(self):
        with pytest.raises(TopologyError):
            parse_topology("mem=50; L1:1K/2/32@2")

    def test_missing_mem(self):
        with pytest.raises(TopologyError):
            parse_topology("cores=2; L1:1K/2/32@2")

    def test_no_caches(self):
        with pytest.raises(TopologyError):
            parse_topology("cores=2; mem=50")

    def test_garbage_clause(self):
        with pytest.raises(TopologyError):
            parse_topology("cores=2; mem=50; L1=1K")

    def test_non_divisible_per(self):
        with pytest.raises(TopologyError):
            parse_topology("cores=6; mem=50; L1:1K/2/32@2 per 4")

    def test_wrong_level_order(self):
        with pytest.raises(TopologyError):
            parse_topology("cores=4; mem=50; L2:4K/4/32@8 per 4; L1:1K/2/32@2 per 1")
