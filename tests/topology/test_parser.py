"""Unit tests for the topology spec parser."""

import pytest

from repro.errors import TopologyError
from repro.topology.parser import parse_topology

NEHALEM_SPEC = (
    "name=neh; cores=8; clock=2.9; mem=174; "
    "L1:32K/8/64@4 per 1; L2:256K/8/64@10 per 1; L3:8M/16/64@35 per 4"
)


class TestParsing:
    def test_nehalem_equivalent(self):
        machine = parse_topology(NEHALEM_SPEC)
        assert machine.name == "neh"
        assert machine.num_cores == 8
        assert machine.memory_latency == 174
        assert machine.cache_levels() == ("L1", "L2", "L3")
        assert machine.shared_cache(0, 1).spec.level == "L3"

    def test_matches_builtin(self):
        from repro.topology.machines import nehalem

        parsed = parse_topology(NEHALEM_SPEC)
        built = nehalem()
        assert parsed.clustering_degrees() == built.clustering_degrees()
        assert parsed.total_cache_bytes() == built.total_cache_bytes()

    def test_multiline(self):
        spec = "cores=4\nmem=100\nL1:1K/2/32@2\nL2:4K/4/32@8 per 2"
        machine = parse_topology(spec)
        assert machine.first_shared_level_groups() == ((0, 1), (2, 3))

    def test_default_per_is_private(self):
        machine = parse_topology("cores=2; mem=50; L1:1K/2/32@2")
        assert machine.shared_cache(0, 1) is None

    def test_size_units(self):
        machine = parse_topology("cores=2; mem=50; L1:2048/2/32@2 per 2")
        assert machine.cache_nodes()[0].spec.size_bytes == 2048


class TestErrors:
    def test_missing_cores(self):
        with pytest.raises(TopologyError):
            parse_topology("mem=50; L1:1K/2/32@2")

    def test_missing_mem(self):
        with pytest.raises(TopologyError):
            parse_topology("cores=2; L1:1K/2/32@2")

    def test_no_caches(self):
        with pytest.raises(TopologyError):
            parse_topology("cores=2; mem=50")

    def test_garbage_clause(self):
        with pytest.raises(TopologyError):
            parse_topology("cores=2; mem=50; L1=1K")

    def test_non_divisible_per(self):
        with pytest.raises(TopologyError):
            parse_topology("cores=6; mem=50; L1:1K/2/32@2 per 4")

    def test_wrong_level_order(self):
        with pytest.raises(TopologyError):
            parse_topology("cores=4; mem=50; L2:4K/4/32@8 per 4; L1:1K/2/32@2 per 1")


class TestWhitespaceTolerance:
    def test_spaces_around_every_token(self):
        machine = parse_topology(
            "cores = 8 ; clock = 2.9 ; mem = 174 ; "
            "L1 : 32K / 8 / 64 @ 4 per 1 ; L2 : 8M / 16 / 64 @ 35 per 4"
        )
        assert machine.num_cores == 8
        assert machine.cache_levels() == ("L1", "L2")

    def test_tabs_and_blank_clauses(self):
        machine = parse_topology("cores=2;\t; mem=50;\nL1:1K/2/32@2 ;")
        assert machine.num_cores == 2

    def test_whitespace_variants_are_identical(self):
        tight = parse_topology("cores=2; mem=50; L1:1K/2/32@2 per 2")
        loose = parse_topology("cores = 2 ; mem = 50 ; L1 : 1K / 2 / 32 @ 2 per 2")
        assert tight.describe() == loose.describe()


class TestErrorDiagnostics:
    def test_bad_token_named_with_position(self):
        with pytest.raises(TopologyError) as info:
            parse_topology("cores=2; mem=50; L1:1K/2/32@fast per 2")
        message = str(info.value)
        assert "'fast'" in message
        assert "offset" in message
        assert "line 1" in message

    def test_column_points_at_clause(self):
        with pytest.raises(TopologyError) as info:
            parse_topology("cores=2; mem=50; L1=1K")
        message = str(info.value)
        assert "'L1=1K'" in message or "L1" in message
        assert "column" in message

    def test_multiline_reports_right_line(self):
        with pytest.raises(TopologyError) as info:
            parse_topology("cores=2\nmem=50\nL1:1K/2/oops@2")
        message = str(info.value)
        assert "line 3" in message
        assert "'oops'" in message
