"""Extra table renderer coverage."""

from repro.util.tables import format_table


class TestAlignment:
    def test_per_column_align(self):
        text = format_table(["a", "b"], [["x", 1]], align=["c", "l"])
        assert "x" in text

    def test_right_alignment_of_percentages(self):
        text = format_table(["v"], [["50%"], ["100%"]])
        lines = text.splitlines()
        assert lines[-1].endswith("100%")
        assert lines[-2].endswith(" 50%")

    def test_mixed_column_left_aligned(self):
        text = format_table(["v"], [["abc"], [123]])
        body = text.splitlines()[-2:]
        assert body[0].startswith("abc")

    def test_wide_headers_win_width(self):
        text = format_table(["a_very_long_header"], [[1]])
        sep = text.splitlines()[1]
        assert len(sep) >= len("a_very_long_header")

    def test_multiplier_suffix_numeric(self):
        text = format_table(["f"], [["2.0x"], ["10.5x"]])
        assert text.splitlines()[-1].endswith("10.5x")
