"""Unit tests for integer math helpers."""

import pytest

from repro.util.mathutil import ceil_div, floor_div, gcd_list, lcm_list, sign


class TestDivision:
    def test_ceil_div_positive(self):
        assert ceil_div(7, 2) == 4

    def test_ceil_div_negative(self):
        assert ceil_div(-7, 2) == -3

    def test_ceil_div_exact(self):
        assert ceil_div(8, 2) == 4

    def test_floor_div(self):
        assert floor_div(7, 2) == 3
        assert floor_div(-7, 2) == -4

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            ceil_div(1, 0)
        with pytest.raises(ZeroDivisionError):
            floor_div(1, 0)

    def test_ceil_floor_relation(self):
        for a in range(-10, 11):
            for b in (1, 2, 3, 7):
                assert ceil_div(a, b) == -floor_div(-a, b)


class TestGcdLcm:
    def test_gcd_list(self):
        assert gcd_list([12, 18, 24]) == 6

    def test_gcd_empty(self):
        assert gcd_list([]) == 0

    def test_gcd_with_negatives(self):
        assert gcd_list([-4, 6]) == 2

    def test_lcm_list(self):
        assert lcm_list([4, 6]) == 12

    def test_lcm_empty(self):
        assert lcm_list([]) == 1

    def test_lcm_with_zero(self):
        assert lcm_list([3, 0]) == 0


class TestSign:
    def test_values(self):
        assert sign(5) == 1 and sign(-5) == -1 and sign(0) == 0
