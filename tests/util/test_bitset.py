"""Unit tests for bitset helpers."""

import pytest

from repro.util.bitset import (
    bit_count,
    bits_of,
    dot_product,
    from_indices,
    hamming_distance,
    to_bitstring,
)


class TestBitset:
    def test_from_indices(self):
        assert from_indices([0, 3]) == 0b1001

    def test_from_indices_duplicates(self):
        assert from_indices([1, 1, 1]) == 0b10

    def test_from_indices_negative(self):
        with pytest.raises(ValueError):
            from_indices([-1])

    def test_bits_of(self):
        assert list(bits_of(0b1010)) == [1, 3]

    def test_bits_of_zero(self):
        assert list(bits_of(0)) == []

    def test_bits_of_negative(self):
        with pytest.raises(ValueError):
            list(bits_of(-1))

    def test_bit_count(self):
        assert bit_count(0b1011) == 3

    def test_bit_count_negative(self):
        with pytest.raises(ValueError):
            bit_count(-2)

    def test_dot_product(self):
        assert dot_product(0b110, 0b011) == 1

    def test_hamming(self):
        assert hamming_distance(0b110, 0b011) == 2

    def test_to_bitstring_d0_first(self):
        assert to_bitstring(0b1, 4) == "1000"

    def test_to_bitstring_width_too_small(self):
        with pytest.raises(ValueError):
            to_bitstring(0b10000, 4)
