"""Unit tests for the table renderer."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic(self):
        text = format_table(["a", "b"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "-" in lines[1]

    def test_title(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_numeric_right_aligned(self):
        text = format_table(["col"], [[1], [100]])
        rows = text.splitlines()[-2:]
        assert rows[0].endswith("  1")

    def test_explicit_align(self):
        text = format_table(["col"], [["x"]], align="c")
        assert text  # smoke: no error

    def test_align_arity_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1, 2]], align=["l"])

    def test_row_arity_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        assert "0.500" in format_table(["x"], [[0.5]])
