"""The sharded service in-process: routing, caching, aggregation."""

from __future__ import annotations

import json

import pytest

import repro
from repro.service import ServiceClient
from repro.service.shard import ShardConfig, ShardService, shard_key

from tests.service.conftest import BANDED_SOURCE, STENCIL_SOURCE, wait_until


def make_shard(**overrides) -> ShardService:
    defaults = dict(
        port=0,
        workers=2,
        threads=2,
        queue_size=16,
        debug=True,
        drain_timeout_s=15.0,
        health_interval_s=0.1,
    )
    defaults.update(overrides)
    return ShardService(ShardConfig(**defaults))


@pytest.fixture
def shard():
    service = make_shard()
    service.start()
    try:
        yield service
    finally:
        service.stop()


@pytest.fixture
def client(shard):
    c = ServiceClient(port=shard.port)
    c.wait_ready()
    return c


class TestRouting:
    def test_maps_through_a_worker(self, client):
        response = client.submit(source=BANDED_SOURCE, machine="dunnington")
        assert response["ok"]
        assert response["worker"] in ("w0", "w1")
        assert response["scheme"]
        assert sum(response["stats"]["per_core_iterations"]) == (
            response["stats"]["iterations"]
        )

    def test_same_program_same_worker(self, client):
        """Digest affinity: repeats of one program stick to one slot.

        ``no_cache`` bypasses the router cache and the worker tiers, so
        every request is actually proxied.
        """
        owners = {
            client.submit(
                source=BANDED_SOURCE, machine="dunnington", no_cache=True
            )["worker"]
            for _ in range(3)
        }
        assert len(owners) == 1

    def test_routing_matches_the_ring(self, shard, client):
        payload = {"source": BANDED_SOURCE, "machine": "dunnington",
                   "no_cache": True}
        expected = shard.ring.node_for(shard_key(payload))
        status, _headers, body = client.request("POST", "/map", payload)
        assert status == 200
        assert json.loads(body)["worker"] == expected

    def test_malformed_json_is_a_router_400(self, shard, client):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", shard.port)
        try:
            connection.request(
                "POST", "/map", body=b"{nope",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert b"malformed JSON" in response.read()
        finally:
            connection.close()

    def test_worker_errors_pass_through(self, client):
        """Validation failures keep their worker-side status (400)."""
        status, _headers, body = client.request(
            "POST", "/map", {"source": "not a program", "machine": "dunnington"}
        )
        assert status == 400
        assert json.loads(body)["ok"] is False


class TestRouterCache:
    def test_byte_identical_repeat_hits_the_router(self, client):
        payload = {"source": BANDED_SOURCE, "machine": "dunnington"}
        first_status, _h, first_body = client.request("POST", "/map", payload)
        second_status, _h, second_body = client.request("POST", "/map", payload)
        assert first_status == second_status == 200
        first, second = json.loads(first_body), json.loads(second_body)
        assert first["cache"] == "none"
        assert second["cache"] == "router"
        assert second["mapping"] == first["mapping"]
        assert second["worker"] == first["worker"]

    def test_no_cache_requests_bypass_the_router_cache(self, client):
        payload = {"source": BANDED_SOURCE, "machine": "dunnington",
                   "no_cache": True}
        for _ in range(2):
            status, _headers, body = client.request("POST", "/map", payload)
            assert status == 200
            assert json.loads(body)["cache"] == "bypass"

    def test_degraded_responses_are_not_router_cached(self, client):
        payload = {"source": STENCIL_SOURCE, "machine": "nehalem",
                   "scale": 32, "deadline_ms": 0}
        for expected_cache in ("none", "none"):
            status, _headers, body = client.request("POST", "/map", payload)
            assert status == 200
            parsed = json.loads(body)
            assert parsed["degraded"] is True
            assert parsed["cache"] == expected_cache

    def test_disabled_cache_proxies_every_request(self):
        service = make_shard(router_cache_capacity=0)
        service.start()
        try:
            client = ServiceClient(port=service.port)
            client.wait_ready()
            payload = {"source": BANDED_SOURCE, "machine": "dunnington"}
            client.request("POST", "/map", payload)
            _status, _headers, body = client.request("POST", "/map", payload)
            # Second answer comes from the worker's LRU, not the router.
            assert json.loads(body)["cache"] == "memory"
            assert service.stats_payload()["router"]["cache"] is None
        finally:
            service.stop()


class TestAggregation:
    def test_stats_aggregate_across_workers(self, shard, client):
        client.submit(source=BANDED_SOURCE, machine="dunnington")
        client.submit(source=STENCIL_SOURCE, machine="dunnington")
        stats = client.stats()
        assert stats["mode"] == "shard"
        assert stats["version"] == repro.__version__
        assert [w["slot"] for w in stats["workers"]] == ["w0", "w1"]
        assert all(w["alive"] for w in stats["workers"])
        per_worker = sum(
            w["stats"]["counters"].get("requests", 0)
            for w in stats["workers"]
            if w.get("stats")
        )
        assert per_worker == stats["counters"]["requests"] == 2
        assert stats["counters"]["pipeline_runs"] == 2
        assert stats["router"]["counters"]["requests"] == 2
        assert stats["router"]["ring"]["nodes"] == ["w0", "w1"]

    def test_metrics_exposition(self, client):
        client.submit(source=BANDED_SOURCE, machine="dunnington")
        text = client.metrics()
        assert "repro_shard_workers 2" in text
        assert "repro_shard_workers_alive 2" in text
        assert "repro_router_requests_total 1" in text
        assert "repro_service_requests_total 1" in text
        assert 'repro_shard_worker_restarts_total{slot="w0"} 0' in text

    def test_healthz_reports_worker_counts(self, client):
        health = client.health()
        assert health == {"status": "ok", "workers": {"alive": 2, "total": 2}}

    def test_version_reports_shard_mode(self, client):
        assert client.version()["mode"] == "shard"

    def test_unknown_routes_404(self, client):
        status, _headers, _body = client.request("GET", "/nope")
        assert status == 404
        status, _headers, _body = client.request("POST", "/nope", {})
        assert status == 404


class TestSharedPlanTier:
    def test_plan_computed_by_one_worker_serves_another(self, tmp_path):
        """The PlanStore disk tier is one file under all workers.

        Force both workers cold on the same content key by bypassing the
        response caches; the second worker must still find the persisted
        plan (cross-process reload + merge-on-write), visible as
        ``plan_tier: disk`` in its response stats.
        """
        from repro.pipeline.persist import PlanStore

        service = make_shard(
            workers=2, persistent=True, cache_dir=str(tmp_path),
            router_cache_capacity=0,
        )
        service.start()
        try:
            client = ServiceClient(port=service.port)
            client.wait_ready()
            first = client.submit(
                source=BANDED_SOURCE, machine="dunnington", no_cache=True
            )
            assert first["ok"]
            assert len(PlanStore(str(tmp_path))) == 1

            # Ask every *other* worker directly (no_cache skips response
            # tiers but not the plan tier, which keys on content).
            hits = []
            for handle in service.workers:
                if handle.slot == first["worker"]:
                    continue
                sibling = ServiceClient(port=handle.port)
                response = sibling.submit(
                    source=BANDED_SOURCE, machine="dunnington", no_cache=True
                )
                assert response["ok"]
                hits.append(response["stats"].get("plan_tier"))
            assert hits == ["disk"]
        finally:
            service.stop()


class TestDraining:
    def test_draining_router_answers_503(self, shard, client):
        shard.draining = True
        status, headers, body = client.request(
            "POST", "/map",
            {"source": BANDED_SOURCE, "machine": "dunnington", "no_cache": True},
        )
        assert status == 503
        assert headers.get("retry-after") == "1"
        assert "draining" in json.loads(body)["error"]
        shard.draining = False

    def test_stop_reaps_workers_cleanly(self):
        service = make_shard()
        service.start()
        pids = [handle.pid for handle in service.workers]
        assert all(pids)
        ServiceClient(port=service.port).wait_ready()
        service.stop()
        assert all(not handle.alive() for handle in service.workers)
        assert service._worker_exits == {"w0": 0, "w1": 0}
        assert wait_until(
            lambda: all(handle.process.exitcode == 0 for handle in service.workers)
        )
