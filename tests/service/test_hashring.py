"""Property-based tests for the consistent-hash ring.

The two properties that make the ring safe to serve behind:

* **determinism** — routing is a pure function of the node *set*
  (insertion order and construction history are irrelevant), so any two
  routers agree and a restarted router routes identically;
* **minimal disruption** — removing a node only moves the keys that
  node owned, and adding a node only steals keys for itself; every
  other key keeps its owner.  (That is the strong, exact form of the
  "~K/N keys remap" guarantee.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.hashring import HashRing

#: Node-name alphabets kept small so set overlaps happen often.
node_names = st.text(
    alphabet="abcdefgh0123456789-", min_size=1, max_size=12
)
node_sets = st.sets(node_names, min_size=1, max_size=10)
keys = st.lists(
    st.text(min_size=0, max_size=32), min_size=1, max_size=60
)


class TestDeterminism:
    @given(nodes=node_sets, key=st.text(max_size=64))
    @settings(max_examples=120, deadline=None)
    def test_same_key_same_node_across_builds(self, nodes, key):
        ordered = sorted(nodes)
        forward = HashRing(ordered)
        backward = HashRing(list(reversed(ordered)))
        assert forward.node_for(key) == backward.node_for(key)

    @given(nodes=node_sets, key=st.text(max_size=64))
    @settings(max_examples=120, deadline=None)
    def test_history_independence(self, nodes, key):
        """add+remove noise must not change where keys land."""
        direct = HashRing(sorted(nodes))
        churned = HashRing(sorted(nodes))
        churned.add("__transient__")
        churned.remove("__transient__")
        assert direct.node_for(key) == churned.node_for(key)

    @given(nodes=node_sets, key=st.text(max_size=64))
    @settings(max_examples=120, deadline=None)
    def test_routing_targets_a_member(self, nodes, key):
        ring = HashRing(sorted(nodes))
        assert ring.node_for(key) in nodes


class TestMinimalDisruption:
    @given(nodes=st.sets(node_names, min_size=2, max_size=10), ks=keys)
    @settings(max_examples=100, deadline=None)
    def test_remove_only_moves_the_removed_nodes_keys(self, nodes, ks):
        ring = HashRing(sorted(nodes))
        before = {key: ring.node_for(key) for key in ks}
        victim = sorted(nodes)[0]
        ring.remove(victim)
        for key, owner in before.items():
            if owner != victim:
                assert ring.node_for(key) == owner

    @given(nodes=node_sets, ks=keys, new_node=node_names)
    @settings(max_examples=100, deadline=None)
    def test_add_only_steals_for_the_new_node(self, nodes, ks, new_node):
        if new_node in nodes:
            nodes = nodes - {new_node}
            if not nodes:
                return
        ring = HashRing(sorted(nodes))
        before = {key: ring.node_for(key) for key in ks}
        ring.add(new_node)
        for key, owner in before.items():
            after = ring.node_for(key)
            assert after == owner or after == new_node

    @given(nodes=st.sets(node_names, min_size=2, max_size=10), ks=keys)
    @settings(max_examples=60, deadline=None)
    def test_remove_then_add_restores_the_mapping(self, nodes, ks):
        ring = HashRing(sorted(nodes))
        before = {key: ring.node_for(key) for key in ks}
        victim = sorted(nodes)[-1]
        ring.remove(victim)
        ring.add(victim)
        assert {key: ring.node_for(key) for key in ks} == before


class TestBalanceAndErrors:
    def test_expected_share_is_roughly_uniform(self):
        """Deterministic balance check: 8 slots, 4000 keys, replicas=64.

        sha256 placement is fixed, so this is not flaky; the bound is
        loose (no slot above 2x the fair share, none starved).
        """
        ring = HashRing([f"w{i}" for i in range(8)], replicas=64)
        counts = ring.distribution(f"key-{i}" for i in range(4000))
        fair = 4000 / 8
        assert all(count > 0 for count in counts.values())
        assert max(counts.values()) < 2 * fair

    def test_empty_ring_refuses_to_route(self):
        with pytest.raises(ValueError):
            HashRing().node_for("anything")

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")

    def test_remove_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            HashRing(["a"]).remove("b")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
        with pytest.raises(ValueError):
            HashRing([""])

    def test_membership_introspection(self):
        ring = HashRing(["b", "a"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.nodes == ["a", "b"]
