"""Overhead guard: the cache-hit path must stay cheap.

A cached request does HTTP parse + key digest + LRU lookup + JSON
serialize — no pipeline, no simulation.  This pins that overhead under a
fixed budget relative to a direct in-process
:func:`repro.experiments.harness.run_scheme` call (which maps *and*
simulates the same workload): the serving layer must never cost more
than half of the work it saves.  An absolute floor keeps the assertion
meaningful on machines fast enough to make the relative bound tiny.
"""

import time

from repro.experiments.harness import clear_cache, run_scheme, sim_machine
from repro.service import ServiceClient
from repro.topology.machines import dunnington

from tests.service.conftest import STENCIL_SOURCE, make_service

#: Cache hits must cost less than this fraction of a direct run_scheme.
RELATIVE_BUDGET = 0.5
#: ... or less than this many milliseconds, whichever is larger.
ABSOLUTE_FLOOR_MS = 75.0


def test_cache_hit_overhead_within_budget():
    clear_cache()
    machine = sim_machine(dunnington())
    started = time.perf_counter()
    run_scheme("h264", "ta", machine)
    direct_ms = (time.perf_counter() - started) * 1e3

    service = make_service(workers=1)
    service.start()
    try:
        client = ServiceClient(port=service.port)
        client.wait_ready()
        warm = client.submit(source=STENCIL_SOURCE, machine="dunnington", scale=32)
        assert warm["cache"] == "none"

        samples = []
        for _ in range(5):
            t0 = time.perf_counter()
            hit = client.submit(
                source=STENCIL_SOURCE, machine="dunnington", scale=32
            )
            samples.append((time.perf_counter() - t0) * 1e3)
            assert hit["cache"] == "memory"
        hit_ms = min(samples)
    finally:
        service.stop()

    budget_ms = max(RELATIVE_BUDGET * direct_ms, ABSOLUTE_FLOOR_MS)
    assert hit_ms < budget_ms, (
        f"cache-hit round trip took {hit_ms:.1f}ms, budget {budget_ms:.1f}ms "
        f"(direct run_scheme: {direct_ms:.1f}ms)"
    )
