"""The ``POST /remap`` endpoint: single-process and sharded."""

from __future__ import annotations

import pytest

from repro.service import ServiceClient
from repro.service.protocol import BadRequest

from tests.service.conftest import BANDED_SOURCE, STENCIL_SOURCE
from tests.service.test_shard import make_shard

MACHINE = "arch-I"


class TestSingleProcess:
    def test_phase_change_replays_prefix(self, client):
        """After a prime /map, a knob-only event recomputes just the
        dirtied suffix (tagging onward) — the earlier stages replay."""
        client.submit(source=STENCIL_SOURCE, machine=MACHINE)
        response = client.remap(
            source=STENCIL_SOURCE,
            machine=MACHINE,
            event={"kind": "phase_change", "knobs": {"alpha": 0.8, "beta": 0.2}},
        )
        assert response["ok"]
        stanza = response["remap"]
        assert stanza["event"]["kind"] == "phase_change"
        assert stanza["stages_replayed"] >= 1
        assert stanza["pre_machine"] == stanza["machine"]
        assert response["stats"]["rounds"] >= 1

    def test_core_loss_prunes_and_carries(self, client):
        client.submit(source=STENCIL_SOURCE, machine=MACHINE)
        response = client.remap(
            source=STENCIL_SOURCE,
            machine=MACHINE,
            event={"kind": "core_loss", "cores": [2]},
        )
        stanza = response["remap"]
        assert stanza["machine"].endswith("-less2")
        assert stanza["cores"] == response["stats"]["cores"]
        # blocksize/tagging/dependence are machine-independent here
        # (same L1): they carry across the topology change.
        assert stanza["carried"] == 3

    def test_dead_cores_compose_with_hotplug(self, client):
        client.submit(source=STENCIL_SOURCE, machine=MACHINE)
        lost = client.remap(
            source=STENCIL_SOURCE,
            machine=MACHINE,
            event={"kind": "core_loss", "cores": [1]},
        )
        back = client.remap(
            source=STENCIL_SOURCE,
            machine=MACHINE,
            dead_cores=[1],
            event={"kind": "core_hotplug", "cores": [1]},
        )
        assert lost["remap"]["cores"] == back["remap"]["cores"] - 1
        assert back["remap"]["pre_machine"].endswith("-less1")
        assert not back["remap"]["machine"].endswith("-less1")

    def test_post_state_published_to_map_cache(self, client):
        client.remap(
            source=BANDED_SOURCE,
            machine=MACHINE,
            event={"kind": "phase_change", "knobs": {"alpha": 0.7, "beta": 0.3}},
        )
        follow_up = client.submit(
            source=BANDED_SOURCE,
            machine=MACHINE,
            knobs={"alpha": 0.7, "beta": 0.3},
        )
        assert follow_up["cache"] == "memory"
        assert "remap" not in follow_up

    def test_remap_matches_cold_map_of_post_state(self, client):
        remapped = client.remap(
            source=STENCIL_SOURCE,
            machine=MACHINE,
            event={"kind": "core_loss", "cores": [0, 3]},
        )
        cold = client.submit(
            source=STENCIL_SOURCE,
            machine=MACHINE,
            topology=None,
            knobs=None,
            no_cache=True,
        )
        # Same program, but the cold map above is of the *base* machine;
        # re-map the post state explicitly for the comparison.
        assert cold["stats"]["cores"] == remapped["stats"]["cores"] + 2
        post = client.remap(
            source=STENCIL_SOURCE,
            machine=MACHINE,
            event={"kind": "core_loss", "cores": [0, 3]},
            no_cache=True,
        )
        assert post["mapping"] == remapped["mapping"]

    def test_counters(self, client):
        client.submit(source=BANDED_SOURCE, machine=MACHINE)
        for _ in range(2):
            client.remap(
                source=BANDED_SOURCE,
                machine=MACHINE,
                event={"kind": "phase_change", "knobs": {"alpha": 0.6}},
            )
        counters = client.stats()["counters"]
        assert counters["remap_requests"] >= 2
        assert counters["remap_runs"] >= 2

    def test_topology_edit_by_name(self, client):
        client.submit(source=STENCIL_SOURCE, machine=MACHINE)
        response = client.remap(
            source=STENCIL_SOURCE,
            machine=MACHINE,
            event={"kind": "topology_edit", "machine": "arch-II"},
        )
        assert response["remap"]["machine"] == "arch-II"
        assert response["remap"]["pre_machine"] == MACHINE

    def test_bad_event_kind(self, client):
        with pytest.raises(BadRequest, match="unknown event kind"):
            client.remap(
                source=BANDED_SOURCE, machine=MACHINE, event={"kind": "nope"}
            )

    def test_loss_of_unknown_core(self, client):
        with pytest.raises(BadRequest, match="unknown cores"):
            client.remap(
                source=BANDED_SOURCE,
                machine=MACHINE,
                event={"kind": "core_loss", "cores": [99]},
            )

    def test_event_required(self, client):
        status, _headers, _body = client.request(
            "POST", "/remap", {"source": BANDED_SOURCE, "machine": MACHINE}
        )
        assert status == 400


class TestSharded:
    @pytest.fixture
    def shard(self):
        service = make_shard()
        service.start()
        try:
            yield service
        finally:
            service.stop()

    @pytest.fixture
    def client(self, shard):
        c = ServiceClient(port=shard.port)
        c.wait_ready()
        return c

    def test_remap_lands_on_the_owning_worker(self, client):
        """Digest affinity means the remap reuses the warm store the
        prime /map populated on the same worker: stages replay."""
        primed = client.submit(source=STENCIL_SOURCE, machine=MACHINE)
        response = client.remap(
            source=STENCIL_SOURCE,
            machine=MACHINE,
            event={"kind": "phase_change", "knobs": {"alpha": 0.8, "beta": 0.2}},
        )
        assert response["worker"] == primed["worker"]
        assert response["remap"]["stages_replayed"] >= 1

    def test_router_cache_namespaces_remap(self, shard, client):
        """Identical remap bodies hit the router byte-cache; the hit
        count is visible in the aggregated stats."""
        body = {
            "source": BANDED_SOURCE,
            "machine": MACHINE,
            "event": {"kind": "phase_change", "knobs": {"alpha": 0.6}},
        }
        first = client.request("POST", "/remap", body)
        second = client.request("POST", "/remap", body)
        assert first[0] == second[0] == 200
        counters = client.stats()["router"]["counters"]
        assert counters["router_cache.hits"] >= 1
        assert counters["remap_requests"] >= 1
