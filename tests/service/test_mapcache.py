"""The two-tier mapping cache in isolation."""

import json
import multiprocessing
import os
import sys

import pytest

from repro.service.mapcache import MappingCache

KEY_A = ("nest-a", "topo-1", (None, 0.1, 0.5, 0.5, True, "barrier", "greedy"))
KEY_B = ("nest-b", "topo-1", (None, 0.1, 0.5, 0.5, True, "barrier", "greedy"))
KEY_C = ("nest-c", "topo-2", (64, 0.1, 0.5, 0.5, False, "barrier", "kl"))

VALUE = {"scheme": "ta", "mapping": {"rounds": [[[0], [1]]]}}


class TestLRU:
    def test_miss_then_hit(self):
        cache = MappingCache(capacity=4)
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, VALUE)
        value, tier = cache.get(KEY_A)
        assert value == VALUE and tier == "memory"
        assert cache.hits_memory == 1 and cache.misses == 1

    def test_eviction_order_is_lru(self):
        cache = MappingCache(capacity=2)
        cache.put(KEY_A, {"v": 1})
        cache.put(KEY_B, {"v": 2})
        cache.get(KEY_A)  # A becomes most-recent
        cache.put(KEY_C, {"v": 3})  # evicts B
        assert cache.get(KEY_B) is None
        assert cache.get(KEY_A) is not None
        assert cache.evictions == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MappingCache(capacity=0)


class TestPersistentTier:
    def test_survives_restart(self, tmp_path):
        first = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        first.put(KEY_A, VALUE)

        reborn = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        value, tier = reborn.get(KEY_A)
        assert value == VALUE and tier == "disk"
        # Promoted into the LRU: the second lookup is a memory hit.
        _value, tier = reborn.get(KEY_A)
        assert tier == "memory"

    def test_disk_file_is_fingerprinted(self, tmp_path):
        cache = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        cache.put(KEY_A, VALUE)
        (path,) = tmp_path.glob("mappings-*.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == 1
        assert len(payload["mappings"]) == 1

    def test_corrupt_file_reads_as_empty(self, tmp_path):
        cache = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        cache.put(KEY_A, VALUE)
        (path,) = tmp_path.glob("mappings-*.json")
        path.write_text("{not json")
        reborn = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        assert reborn.get(KEY_A) is None

    def test_foreign_fingerprint_ignored(self, tmp_path):
        cache = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        cache.put(KEY_A, VALUE)
        (path,) = tmp_path.glob("mappings-*.json")
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "0" * 64
        path.write_text(json.dumps(payload))
        reborn = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        assert reborn.get(KEY_A) is None

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        cache = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        cache.put(KEY_A, VALUE)
        cache.put(KEY_B, VALUE)
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]

    def test_stats_shape(self, tmp_path):
        cache = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        cache.put(KEY_A, VALUE)
        stats = cache.stats()
        assert stats["persistent"] is True
        assert stats["entries"] == 1 and stats["disk_entries"] == 1
        assert stats["disk_path"].endswith(".json")


class TestWithoutPersistence:
    def test_no_disk_io(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = MappingCache(capacity=4, persistent=False)
        cache.put(KEY_A, VALUE)
        assert list(tmp_path.iterdir()) == []
        assert cache.stats()["persistent"] is False


def _mp_context():
    if sys.platform.startswith("linux"):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")  # pragma: no cover


def _racing_put(directory, key, value, barrier):
    """One writing process: load an (empty) view, sync, then persist."""
    cache = MappingCache(capacity=4, directory=directory, persistent=True)
    barrier.wait(timeout=30)
    cache.put(key, value)


class TestConcurrentWriters:
    """N shard workers share one cache directory; flushes must merge."""

    def test_interleaved_stale_views_merge(self, tmp_path):
        first = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        second = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        first.put(KEY_A, {"v": "a"})
        second.put(KEY_B, {"v": "b"})  # stale view: must merge, not clobber

        fresh = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        assert fresh.get(KEY_A) == ({"v": "a"}, "disk")
        assert fresh.get(KEY_B) == ({"v": "b"}, "disk")

    def test_miss_revalidates_against_sibling_writes(self, tmp_path):
        reader = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        writer = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        writer.put(KEY_A, VALUE)
        # No restart: the miss re-checks the file's stat signature.
        assert reader.get(KEY_A) == (VALUE, "disk")

    def test_two_subprocess_race_keeps_both_entries(self, tmp_path):
        ctx = _mp_context()
        barrier = ctx.Barrier(2)
        children = [
            ctx.Process(
                target=_racing_put,
                args=(str(tmp_path), key, {"v": label}, barrier),
            )
            for key, label in ((KEY_A, "a"), (KEY_B, "b"))
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=60)
            assert child.exitcode == 0
        fresh = MappingCache(capacity=4, directory=str(tmp_path), persistent=True)
        assert fresh.get(KEY_A) == ({"v": "a"}, "disk")
        assert fresh.get(KEY_B) == ({"v": "b"}, "disk")
