"""Shared fixtures for the mapping-service tests.

Services bind port 0 (ephemeral) and run with ``collect_obs=False`` so
tests never install a process-global obs recorder behind the other
suites' backs; the one test that exercises the obs bridge opts back in
explicitly.
"""

from __future__ import annotations

import time

import pytest

from repro.service import MappingService, ServiceClient
from repro.service.server import ServiceConfig

#: A nest big enough that the pipeline visibly costs time (24x24 stencil).
STENCIL_SOURCE = """
array U[26][26];
array V[26][26];
parallel for (i = 1; i <= 24; i++)
  for (j = 1; j <= 24; j++)
    V[i][j] = U[i][j] + U[i - 1][j] + U[i + 1][j];
"""

#: The paper's Figure 5 banded loop — small and fast.
BANDED_SOURCE = """
param k = 4;
param m = 48;
array B[48];
parallel for (j = 2*k; j < m - 2*k; j++)
  B[j] = B[j] + B[2*k + j] + B[j - 2*k];
"""


def make_service(**overrides) -> MappingService:
    defaults = dict(
        port=0,
        queue_size=8,
        workers=2,
        collect_obs=False,
        debug=True,
        drain_timeout_s=10.0,
    )
    defaults.update(overrides)
    return MappingService(ServiceConfig(**defaults))


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def service():
    svc = make_service()
    svc.start()
    try:
        yield svc
    finally:
        svc.stop()


@pytest.fixture
def client(service):
    c = ServiceClient(port=service.port)
    c.wait_ready()
    return c
