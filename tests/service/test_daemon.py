"""The daemon as a real process: CLI verbs, SIGTERM drain-then-exit."""

import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.service import ServiceClient

from tests.service.conftest import BANDED_SOURCE

REPO_SRC = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))


def spawn_daemon(*extra_args, tmp_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(tmp_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    if match is None:
        proc.kill()
        pytest.fail(f"no port in banner {banner!r}: {proc.stderr.read()[:500]}")
    return proc, int(match.group(1))


@pytest.fixture
def daemon():
    proc, port = spawn_daemon("--queue-size", "8", "--debug")
    try:
        yield proc, port
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


class TestDaemon:
    def test_sigterm_drains_in_flight_work(self, daemon):
        proc, port = daemon
        client = ServiceClient(port=port)
        client.wait_ready()
        results = []

        def slow_submit():
            results.append(
                client.submit(
                    source=BANDED_SOURCE, machine="dunnington",
                    no_cache=True, debug_sleep_ms=800,
                )
            )

        worker = threading.Thread(target=slow_submit)
        worker.start()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if client.stats()["queue"]["in_flight"] >= 1:
                break
            time.sleep(0.02)
        else:
            pytest.fail("slow request never reached a worker")

        proc.send_signal(signal.SIGTERM)
        worker.join(timeout=20)
        assert proc.wait(timeout=20) == 0
        assert results and results[0]["ok"], "in-flight request was dropped"
        remaining = proc.stdout.read()
        assert "draining" in remaining and "stopped" in remaining

    def test_sigint_also_exits_cleanly(self):
        proc, port = spawn_daemon()
        client = ServiceClient(port=port)
        client.wait_ready()
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=20) == 0

    def test_cli_submit_and_stats_roundtrip(self, daemon, tmp_path):
        proc, port = daemon
        ServiceClient(port=port).wait_ready()
        source_path = tmp_path / "banded.loop"
        source_path.write_text(BANDED_SOURCE)
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        submit = subprocess.run(
            [sys.executable, "-m", "repro", "submit", str(source_path),
             "--port", str(port), "--machine", "dunnington", "--scale", "32",
             "--schedule"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert submit.returncode == 0, submit.stderr
        assert "32 iterations" in submit.stdout
        assert "core | iterations" in submit.stdout

        stats = subprocess.run(
            [sys.executable, "-m", "repro", "service-stats", "--port", str(port)],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert stats.returncode == 0, stats.stderr
        assert '"pipeline_runs": 1' in stats.stdout

        metrics = subprocess.run(
            [sys.executable, "-m", "repro", "service-stats", "--port", str(port),
             "--metrics"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert metrics.returncode == 0
        assert "repro_service_requests_total" in metrics.stdout

    def test_submit_against_dead_service_fails_cleanly(self, tmp_path):
        source_path = tmp_path / "banded.loop"
        source_path.write_text(BANDED_SOURCE)
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "submit", str(source_path),
             "--port", "1"],  # nothing listens on port 1
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert result.returncode == 1
        assert "error:" in result.stderr
