"""Fault injection against the sharded service.

Two failure modes the router must survive:

* **SIGKILL of a worker** — uncatchable, mid-request: the in-flight
  request gets a clean 503 (never a hang, never a silent retry of a
  maybe-executed compute), the slot is restarted with a fresh pid, and
  the shared plan tier stays readable (the flock + merge-on-write
  protocol means a torn writer cannot corrupt siblings).
* **SIGTERM of the router** — drain: in-flight work completes, workers
  are asked to exit and do so with code 0, the process exits 0.

Synchronization is all barriers and bounded polling against observable
state (in-flight gauges, pids, restart counters) — no bare sleeps.
"""

from __future__ import annotations

import json
import os
import signal
import threading

import pytest

from repro.pipeline import PlanStore
from repro.service import ServiceClient
from repro.service.shard import ShardConfig, ShardService

from tests.service.conftest import BANDED_SOURCE, STENCIL_SOURCE, wait_until
from tests.service.test_daemon import spawn_daemon


def make_shard(**overrides) -> ShardService:
    defaults = dict(
        port=0,
        workers=1,
        threads=2,
        queue_size=8,
        debug=True,
        router_cache_capacity=0,
        health_interval_s=0.05,
        drain_timeout_s=15.0,
    )
    defaults.update(overrides)
    return ShardService(ShardConfig(**defaults))


class TestWorkerSigkill:
    def test_mid_request_kill_is_a_clean_503(self, tmp_path):
        """SIGKILL the worker while it is computing.

        The caller blocked on that request must get a 503 with
        ``Retry-After`` (not a hang), the router must restart the slot,
        a retried request must succeed, and the PlanStore file must
        load cleanly afterwards.
        """
        service = make_shard(persistent=True, cache_dir=str(tmp_path))
        service.start()
        try:
            handle = service.workers[0]
            first_pid = handle.pid
            assert first_pid is not None
            router = ServiceClient(port=service.port)
            router.wait_ready()

            outcome = {}
            started = threading.Event()

            def doomed_request():
                client = ServiceClient(port=service.port)
                started.set()
                status, headers, body = client.request(
                    "POST", "/map",
                    {
                        "source": BANDED_SOURCE,
                        "machine": "dunnington",
                        "no_cache": True,
                        "debug_sleep_ms": 5000,
                    },
                )
                outcome.update(status=status, headers=headers, body=body)

            caller = threading.Thread(target=doomed_request)
            caller.start()
            assert started.wait(timeout=10)

            # Wait until the worker is actually executing the request.
            worker_client = ServiceClient(port=handle.port)
            assert wait_until(
                lambda: worker_client.stats()["queue"]["in_flight"] >= 1,
                timeout=15,
            ), "slow request never reached the worker"

            os.kill(first_pid, signal.SIGKILL)

            caller.join(timeout=30)
            assert not caller.is_alive(), "in-flight request hung after SIGKILL"
            assert outcome["status"] == 503
            assert outcome["headers"].get("retry-after") == "1"
            error = json.loads(outcome["body"])["error"]
            assert "failed mid-request" in error

            # The router restarts the slot with a fresh pid.
            assert wait_until(
                lambda: handle.alive() and handle.pid != first_pid,
                timeout=20,
            ), "worker was never restarted"
            assert handle.restarts >= 1
            snapshot = service.stats_payload()
            assert snapshot["router"]["counters"]["worker_failures"] >= 1
            assert snapshot["workers"][0]["restarts"] >= 1

            # A retried request succeeds against the restarted worker.
            response = None
            for _ in range(100):
                status, _headers, body = router.request(
                    "POST", "/map",
                    {"source": BANDED_SOURCE, "machine": "dunnington",
                     "no_cache": True},
                )
                if status == 200:
                    response = json.loads(body)
                    break
                assert status == 503, f"unexpected status {status}"
            assert response is not None and response["ok"]

            # The shared plan tier survived the kill uncorrupted.
            store = PlanStore(str(tmp_path))
            assert len(store) >= 1
            with open(store.path, encoding="utf-8") as handle_file:
                json.load(handle_file)
        finally:
            service.stop()

    def test_idle_kill_is_healed_by_the_health_loop(self):
        """No request involved: the health sweep alone restarts the slot."""
        service = make_shard()
        service.start()
        try:
            handle = service.workers[0]
            first_pid = handle.pid
            os.kill(first_pid, signal.SIGKILL)
            assert wait_until(
                lambda: handle.alive() and handle.pid != first_pid,
                timeout=20,
            )
            assert handle.restarts >= 1
            client = ServiceClient(port=service.port)
            response = client.submit(
                source=STENCIL_SOURCE, machine="dunnington", no_cache=True
            )
            assert response["ok"]
            assert response["worker"] == "w0"
        finally:
            service.stop()

    def test_dead_on_arrival_worker_is_restarted_before_forwarding(self):
        """Health checks disabled: routing itself discovers the corpse.

        Nothing has executed yet, so restart-and-forward is safe and the
        request succeeds on the first try.
        """
        service = make_shard(health_interval_s=60.0)
        service.start()
        try:
            handle = service.workers[0]
            first_pid = handle.pid
            os.kill(first_pid, signal.SIGKILL)
            assert wait_until(lambda: not handle.process.is_alive(), timeout=10)

            client = ServiceClient(port=service.port)
            response = client.submit(
                source=BANDED_SOURCE, machine="dunnington", no_cache=True
            )
            assert response["ok"]
            assert handle.pid != first_pid
            counters = service.stats_payload()["router"]["counters"]
            assert counters["worker_dead_on_arrival"] >= 1
        finally:
            service.stop()


class TestRemapSigkill:
    def test_remap_racing_worker_restart_is_clean(self):
        """SIGKILL the worker while it is computing a ``/remap``.

        The remapping caller must get the same clean 503 + Retry-After
        contract as ``/map`` — and must never be handed a stale plan:
        the error body carries no mapping, and a retried remap against
        the restarted (cold-store) worker produces the true post-event
        plan, bit-identical to a fresh compute of the post state.
        """
        service = make_shard()
        service.start()
        try:
            handle = service.workers[0]
            first_pid = handle.pid
            router = ServiceClient(port=service.port)
            router.wait_ready()

            remap_body = {
                "source": STENCIL_SOURCE,
                "machine": "dunnington",
                "event": {"kind": "core_loss", "cores": [2]},
                "debug_sleep_ms": 5000,
            }
            outcome = {}
            started = threading.Event()

            def doomed_remap():
                client = ServiceClient(port=service.port)
                started.set()
                status, headers, body = client.request(
                    "POST", "/remap", remap_body
                )
                outcome.update(status=status, headers=headers, body=body)

            caller = threading.Thread(target=doomed_remap)
            caller.start()
            assert started.wait(timeout=10)

            worker_client = ServiceClient(port=handle.port)
            assert wait_until(
                lambda: worker_client.stats()["queue"]["in_flight"] >= 1,
                timeout=15,
            ), "slow remap never reached the worker"

            os.kill(first_pid, signal.SIGKILL)

            caller.join(timeout=30)
            assert not caller.is_alive(), "remap hung after SIGKILL"
            assert outcome["status"] == 503
            assert outcome["headers"].get("retry-after") == "1"
            error_body = json.loads(outcome["body"])
            assert "failed mid-request" in error_body["error"]
            # Never a stale plan: the failure body carries no mapping.
            assert "mapping" not in error_body
            assert "remap" not in error_body

            assert wait_until(
                lambda: handle.alive() and handle.pid != first_pid,
                timeout=20,
            ), "worker was never restarted"

            # A retried remap succeeds and its plan is the honest
            # post-event state (7 cores), identical to a re-run.
            retried = None
            for _ in range(100):
                status, _headers, body = router.request(
                    "POST", "/remap",
                    {k: v for k, v in remap_body.items()
                     if k != "debug_sleep_ms"},
                )
                if status == 200:
                    retried = json.loads(body)
                    break
                assert status == 503, f"unexpected status {status}"
            assert retried is not None and retried["ok"]
            assert retried["remap"]["machine"] == "dunnington-less2"
            assert retried["stats"]["cores"] == retried["remap"]["cores"]
            fresh = ServiceClient(port=service.port).remap(
                source=STENCIL_SOURCE,
                machine="dunnington",
                event={"kind": "core_loss", "cores": [2]},
                no_cache=True,
            )
            assert fresh["mapping"] == retried["mapping"]
        finally:
            service.stop()


class TestRouterSigterm:
    @pytest.fixture
    def shard_daemon(self):
        proc, port = spawn_daemon("--workers", "2", "--debug")
        try:
            yield proc, port
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_sigterm_drains_workers_and_exits_zero(self, shard_daemon):
        proc, port = shard_daemon
        client = ServiceClient(port=port)
        client.wait_ready()
        assert client.stats()["mode"] == "shard"

        outcome = {}

        def slow_submit():
            outcome["response"] = client.submit(
                source=BANDED_SOURCE, machine="dunnington",
                no_cache=True, debug_sleep_ms=800,
            )

        caller = threading.Thread(target=slow_submit)
        caller.start()
        assert wait_until(
            lambda: client.stats()["router"]["inflight"] >= 1, timeout=10
        ), "slow request never became in-flight at the router"

        proc.send_signal(signal.SIGTERM)
        caller.join(timeout=30)
        assert proc.wait(timeout=30) == 0

        # The in-flight request was drained, not dropped.
        assert outcome["response"]["ok"]

        stdout, _stderr = proc.communicate(timeout=10)
        assert "draining" in stdout
        assert "worker w0 exited 0" in stdout
        assert "worker w1 exited 0" in stdout
        assert "stopped" in stdout

    def test_requests_during_drain_get_503(self, shard_daemon):
        proc, port = shard_daemon
        client = ServiceClient(port=port)
        client.wait_ready()

        outcome = {}

        def slow_submit():
            outcome["response"] = client.submit(
                source=STENCIL_SOURCE, machine="dunnington",
                no_cache=True, debug_sleep_ms=1000,
            )

        caller = threading.Thread(target=slow_submit)
        caller.start()
        assert wait_until(
            lambda: client.stats()["router"]["inflight"] >= 1, timeout=10
        )
        proc.send_signal(signal.SIGTERM)

        # While the drain holds the door for the slow request, new work
        # is refused with a clean 503.  The probe body is valid JSON but
        # an invalid request, so pre-drain iterations cost a fast 400
        # at the worker instead of a cold compute.
        late = ServiceClient(port=port)
        saw_refusal = False
        for _ in range(500):
            if proc.poll() is not None:
                break  # drain finished before we caught it refusing
            try:
                status, _headers, _body = late.request(
                    "POST", "/map", {"machine": "dunnington"}
                )
            except OSError:
                break  # router socket already closed: drain finished
            if status == 503:
                saw_refusal = True
                break
        caller.join(timeout=60)
        assert proc.wait(timeout=60) == 0
        assert outcome["response"]["ok"]
        assert saw_refusal or proc.poll() == 0
