"""Request parsing, validation, and cache-key semantics."""

import pytest

from repro.lang import compile_source
from repro.runtime.serialize import program_to_dict
from repro.service.protocol import BadRequest, parse_request

from tests.service.conftest import BANDED_SOURCE


def banded_request(**extra):
    payload = {"source": BANDED_SOURCE, "machine": "dunnington"}
    payload.update(extra)
    return payload


class TestParsing:
    def test_source_request(self):
        request = parse_request(banded_request())
        assert request.nest.iteration_count() == 32
        assert request.machine.name == "dunnington"
        assert request.knobs.local_scheduling is True

    def test_serialized_program_request(self):
        program = compile_source(BANDED_SOURCE, name="banded")
        request = parse_request(
            {"program": program_to_dict(program), "machine": "nehalem"}
        )
        assert request.program.name == "banded"
        assert request.machine.num_cores == 8

    def test_inline_topology(self):
        spec = (
            "name=minibox; cores=4; clock=2.0; mem=100; "
            "L1:1K/2/32@2 per 1; L2:4K/4/32@8 per 2"
        )
        request = parse_request({"source": BANDED_SOURCE, "topology": spec})
        assert request.machine.num_cores == 4
        assert request.machine.name == "minibox"

    def test_scale_divides_capacities(self):
        small = parse_request(banded_request(scale=32))
        full = parse_request(banded_request())
        assert (
            small.machine.total_cache_bytes() < full.machine.total_cache_bytes()
        )

    def test_nest_by_name(self):
        request = parse_request(banded_request(name="banded", nest="banded"))
        assert request.nest.name == "banded"

    def test_knob_overrides(self):
        request = parse_request(
            banded_request(
                knobs={"block_size": 64, "alpha": 0.25, "local_scheduling": False}
            )
        )
        assert request.knobs.block_size == 64
        assert request.knobs.alpha == 0.25
        assert request.knobs.local_scheduling is False

    def test_defaults(self):
        request = parse_request(banded_request())
        assert request.deadline_ms is None
        assert request.no_cache is False
        assert request.debug_sleep_ms == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            [],  # not an object
            {"machine": "dunnington"},  # no program
            {"source": BANDED_SOURCE},  # no machine
            {"source": BANDED_SOURCE, "program": {}, "machine": "dunnington"},
            {"source": BANDED_SOURCE, "machine": "dunnington", "topology": "x"},
            {"source": "not a program", "machine": "dunnington"},
            {"source": BANDED_SOURCE, "machine": "no-such-machine"},
            {"source": BANDED_SOURCE, "machine": "dunnington", "nest": 3},
            {"source": BANDED_SOURCE, "machine": "dunnington", "nest": "zzz"},
            {"source": BANDED_SOURCE, "machine": "dunnington", "scale": -1},
            {"source": BANDED_SOURCE, "machine": "dunnington", "deadline_ms": -5},
            {"source": BANDED_SOURCE, "machine": "dunnington", "knobs": {"zzz": 1}},
            {"source": BANDED_SOURCE, "machine": "dunnington",
             "knobs": {"block_size": -8}},
            {"source": BANDED_SOURCE, "machine": "dunnington",
             "knobs": {"dependence_policy": "punt"}},
            {"source": BANDED_SOURCE, "machine": "dunnington", "no_cache": "yes"},
        ],
    )
    def test_bad_requests_raise(self, payload):
        with pytest.raises(BadRequest):
            parse_request(payload)

    def test_debug_sleep_requires_debug_server(self):
        with pytest.raises(BadRequest, match="debug"):
            parse_request(banded_request(debug_sleep_ms=10))
        request = parse_request(banded_request(debug_sleep_ms=10), allow_debug=True)
        assert request.debug_sleep_ms == 10.0

    def test_default_deadline_applies(self):
        request = parse_request(banded_request(), default_deadline_ms=250.0)
        assert request.deadline_ms == 250.0
        explicit = parse_request(
            banded_request(deadline_ms=50), default_deadline_ms=250.0
        )
        assert explicit.deadline_ms == 50.0


class TestCacheKey:
    def test_key_stable_across_parses(self):
        first = parse_request(banded_request())
        second = parse_request(banded_request())
        assert first.cache_key == second.cache_key

    def test_source_and_serialized_agree(self):
        """The same program keys identically however it was submitted."""
        program = compile_source(BANDED_SOURCE, name="request")
        via_source = parse_request(banded_request())
        via_ir = parse_request(
            {"program": program_to_dict(program), "machine": "dunnington"}
        )
        assert via_source.cache_key == via_ir.cache_key

    def test_key_varies_with_inputs(self):
        base = parse_request(banded_request()).cache_key
        other_machine = parse_request(
            {"source": BANDED_SOURCE, "machine": "nehalem"}
        ).cache_key
        other_knobs = parse_request(
            banded_request(knobs={"alpha": 0.9})
        ).cache_key
        other_scale = parse_request(banded_request(scale=32)).cache_key
        assert len({base, other_machine, other_knobs, other_scale}) == 4

    def test_qos_fields_do_not_change_key(self):
        """Deadline and caching policy are QoS, not content."""
        plain = parse_request(banded_request()).cache_key
        qos = parse_request(
            banded_request(deadline_ms=5, no_cache=True)
        ).cache_key
        assert plain == qos
