"""Request coalescing: a hot cold key costs exactly one compute.

M concurrent identical requests race through ``handle_map``; the
check-and-register against the in-flight table is atomic, so exactly one
becomes the leader and runs the pipeline while every other request
either waits on the leader's job (``cache: "coalesced"``) or — if it
arrives after the leader published — hits the LRU (``cache: "memory"``).
Either way the pipeline runs once, which the obs counter bridge and the
service's own counters both pin down deterministically: the assertion
holds for *every* interleaving, not just the one a sleep happens to
produce.
"""

from __future__ import annotations

import threading

from repro.service import ServiceClient

from tests.service.conftest import STENCIL_SOURCE, make_service


def _fire_concurrently(port, count, **submit_kwargs):
    """``count`` identical submissions, all released together."""
    results = [None] * count
    errors = []
    barrier = threading.Barrier(count)

    def shoot(index):
        client = ServiceClient(port=port)
        barrier.wait(timeout=30)
        try:
            results[index] = client.submit(**submit_kwargs)
        except Exception as error:  # noqa: BLE001 - collected for the assert
            errors.append(error)

    threads = [
        threading.Thread(target=shoot, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    return results, errors


class TestCoalescing:
    def test_m_identical_cold_requests_one_compute(self):
        m = 6
        service = make_service(collect_obs=True, workers=2, queue_size=16)
        service.start()
        try:
            ServiceClient(port=service.port).wait_ready()
            results, errors = _fire_concurrently(
                service.port, m,
                source=STENCIL_SOURCE, machine="dunnington",
                debug_sleep_ms=250,
            )
            assert not errors
            assert all(response["ok"] for response in results)

            # Exactly one pipeline run, however the M requests interleaved.
            counters = service.stats.snapshot()["counters"]
            assert counters["pipeline_runs"] == 1
            # ...and via the obs counter bridge, as /metrics exposes it.
            metrics = ServiceClient(port=service.port).metrics()
            assert 'repro_obs_counter{name="service.pipeline.runs"} 1' in metrics

            # The other M-1 either coalesced onto the in-flight job or hit
            # the cache the leader had just published.
            followers = counters.get("coalesced", 0) + counters.get(
                "cache.memory", 0
            )
            assert followers == m - 1
            # With a 250ms leader and simultaneous release, waiters did
            # actually coalesce (not merely serialize through the LRU).
            assert counters.get("coalesced", 0) >= 1

            # All M responses carry the identical mapping payload.
            reference = results[0]
            for response in results[1:]:
                assert response["mapping"] == reference["mapping"]
                assert response["scheme"] == reference["scheme"]
                assert response["stats"]["per_core_iterations"] == (
                    reference["stats"]["per_core_iterations"]
                )
                assert response["cache"] in ("coalesced", "memory", "none")
        finally:
            service.stop()

    def test_coalesced_responses_have_own_request_ids(self):
        service = make_service(workers=2)
        service.start()
        try:
            ServiceClient(port=service.port).wait_ready()
            results, errors = _fire_concurrently(
                service.port, 4,
                source=STENCIL_SOURCE, machine="dunnington",
                debug_sleep_ms=200,
            )
            assert not errors
            ids = {response["request_id"] for response in results}
            assert len(ids) == 4, "coalesced followers must keep their own ids"
        finally:
            service.stop()

    def test_no_cache_requests_are_never_coalesced(self):
        """Bypass requests demand fresh computes: two in, two runs."""
        service = make_service(workers=2)
        service.start()
        try:
            ServiceClient(port=service.port).wait_ready()
            results, errors = _fire_concurrently(
                service.port, 2,
                source=STENCIL_SOURCE, machine="dunnington",
                no_cache=True, debug_sleep_ms=150,
            )
            assert not errors
            assert all(response["cache"] == "bypass" for response in results)
            counters = service.stats.snapshot()["counters"]
            assert counters["pipeline_runs"] == 2
            assert counters.get("coalesced", 0) == 0
        finally:
            service.stop()

    def test_distinct_keys_do_not_coalesce(self):
        """Different knobs are different keys; both compute."""
        service = make_service(workers=2)
        service.start()
        try:
            client = ServiceClient(port=service.port)
            client.wait_ready()
            first = client.submit(
                source=STENCIL_SOURCE, machine="dunnington",
                knobs={"alpha": 0.25},
            )
            second = client.submit(
                source=STENCIL_SOURCE, machine="dunnington",
                knobs={"alpha": 0.75},
            )
            assert first["ok"] and second["ok"]
            counters = service.stats.snapshot()["counters"]
            assert counters["pipeline_runs"] == 2
            assert counters.get("coalesced", 0) == 0
        finally:
            service.stop()
