"""The daemon end to end: differential equivalence, backpressure,
degradation, cache tiers, introspection endpoints, and drain."""

import json
import threading

import pytest

from repro.lang import compile_source
from repro.mapping.baselines import base_plan
from repro.mapping.distribute import TopologyAwareMapper
from repro.runtime.serialize import plan_from_json
from repro.service import ServiceClient
from repro.service.protocol import BadRequest, Overloaded
from repro.topology.machines import machine_by_name

from tests.service.conftest import (
    BANDED_SOURCE,
    STENCIL_SOURCE,
    make_service,
    wait_until,
)


def reference_machine(name="dunnington", scale=32):
    machine = machine_by_name(name)
    return machine.with_scaled_caches(1.0 / scale) if scale != 1 else machine


class TestDifferential:
    """The service's mapping must be bit-identical to the in-process
    pipeline for the same (nest, topology, knobs)."""

    @pytest.mark.parametrize("source", [BANDED_SOURCE, STENCIL_SOURCE])
    @pytest.mark.parametrize("local_scheduling", [False, True])
    def test_identical_to_in_process(self, client, source, local_scheduling):
        response = client.submit(
            source=source,
            machine="dunnington",
            scale=32,
            knobs={"local_scheduling": local_scheduling},
        )
        assert response["ok"] and not response["degraded"]

        program = compile_source(source, name="request")
        machine = reference_machine()
        expected = (
            TopologyAwareMapper(machine, local_scheduling=local_scheduling)
            .map_nest(program, program.nests[0])
            .plan()
        )
        restored = plan_from_json(
            json.dumps(response["mapping"]), program, machine
        )
        assert restored.rounds == expected.rounds
        assert response["stats"]["iterations"] == expected.total_iterations()

    def test_knobs_reach_the_mapper(self, client):
        response = client.submit(
            source=BANDED_SOURCE,
            machine="dunnington",
            scale=32,
            knobs={"block_size": 64, "local_scheduling": False},
        )
        program = compile_source(BANDED_SOURCE, name="request")
        machine = reference_machine()
        expected = (
            TopologyAwareMapper(machine, block_size=64)
            .map_nest(program, program.nests[0])
            .plan()
        )
        restored = plan_from_json(
            json.dumps(response["mapping"]), program, machine
        )
        assert restored.rounds == expected.rounds
        assert response["stats"]["block_size"] == 64


class TestDegradation:
    def test_zero_deadline_degrades_to_baseline(self, client):
        response = client.submit(
            source=STENCIL_SOURCE, machine="nehalem", deadline_ms=0
        )
        assert response["degraded"] is True
        assert "deadline" in response["degraded_reason"]
        assert response["scheme"] == "base"

        program = compile_source(STENCIL_SOURCE, name="request")
        machine = machine_by_name("nehalem")
        expected = base_plan(program.nests[0], machine)
        restored = plan_from_json(
            json.dumps(response["mapping"]), program, machine
        )
        assert restored.rounds == expected.rounds

    def test_degraded_responses_are_not_cached(self, client, service):
        first = client.submit(
            source=BANDED_SOURCE, machine="nehalem", deadline_ms=0
        )
        assert first["degraded"]
        # Same content key with a generous deadline must recompute the
        # real mapping, not serve the degraded baseline from the cache.
        second = client.submit(
            source=BANDED_SOURCE, machine="nehalem", deadline_ms=60_000
        )
        assert not second["degraded"]
        assert second["cache"] == "none"
        assert second["scheme"] != "base"

    def test_generous_deadline_never_degrades(self, client):
        response = client.submit(
            source=BANDED_SOURCE, machine="dunnington", deadline_ms=60_000
        )
        assert response["degraded"] is False


class TestCaching:
    def test_repeat_request_hits_lru(self, client):
        first = client.submit(source=BANDED_SOURCE, machine="dunnington", scale=32)
        assert first["cache"] == "none"
        second = client.submit(source=BANDED_SOURCE, machine="dunnington", scale=32)
        assert second["cache"] == "memory"
        assert second["mapping"] == first["mapping"]
        stats = client.stats()
        assert stats["cache"]["hits_memory"] == 1
        assert stats["counters"]["cache.memory"] == 1
        assert stats["counters"]["pipeline_runs"] == 1

    def test_no_cache_bypasses_both_tiers(self, client):
        client.submit(source=BANDED_SOURCE, machine="dunnington")
        again = client.submit(source=BANDED_SOURCE, machine="dunnington",
                              no_cache=True)
        assert again["cache"] == "bypass"
        assert client.stats()["counters"]["pipeline_runs"] == 2

    def test_cold_restart_serves_from_disk(self, tmp_path):
        """With the persistent tier on, a restarted service answers a
        previously seen request without re-running the pipeline."""
        first = make_service(persistent=True, cache_dir=str(tmp_path))
        first.start()
        try:
            client = ServiceClient(port=first.port)
            client.wait_ready()
            cold = client.submit(source=BANDED_SOURCE, machine="dunnington")
            assert cold["cache"] == "none"
        finally:
            first.stop()

        reborn = make_service(persistent=True, cache_dir=str(tmp_path))
        reborn.start()
        try:
            client = ServiceClient(port=reborn.port)
            client.wait_ready()
            warm = client.submit(source=BANDED_SOURCE, machine="dunnington")
            assert warm["cache"] == "disk"
            assert warm["mapping"] == cold["mapping"]
            stats = client.stats()
            assert "pipeline_runs" not in stats["counters"]
            assert stats["cache"]["hits_disk"] == 1
        finally:
            reborn.stop()


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self):
        service = make_service(queue_size=1, workers=1)
        service.start()
        try:
            client = ServiceClient(port=service.port)
            client.wait_ready()
            results = []

            def slow_submit():
                results.append(
                    client.submit(
                        source=BANDED_SOURCE,
                        machine="dunnington",
                        no_cache=True,
                        debug_sleep_ms=1500,
                    )
                )

            occupant = threading.Thread(target=slow_submit)
            occupant.start()
            assert wait_until(lambda: service.admission.in_flight() == 1)
            queued = threading.Thread(target=slow_submit)
            queued.start()
            assert wait_until(lambda: service.admission.depth() == 1)

            with pytest.raises(Overloaded) as excinfo:
                client.submit(
                    source=BANDED_SOURCE, machine="dunnington", no_cache=True
                )
            assert excinfo.value.retry_after >= 1

            status, headers, _body = client.request(
                "POST", "/map",
                {"source": BANDED_SOURCE, "machine": "dunnington",
                 "no_cache": True},
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1

            occupant.join(timeout=15)
            queued.join(timeout=15)
            assert len(results) == 2 and all(r["ok"] for r in results)
            assert service.stats.counters["http.429"] == 2
            assert service.admission.rejected == 2
        finally:
            service.stop()

    def test_drain_finishes_admitted_work(self):
        """stop() completes in-flight requests before the sockets die."""
        service = make_service(queue_size=4, workers=1)
        service.start()
        client = ServiceClient(port=service.port)
        client.wait_ready()
        results = []

        def slow_submit():
            results.append(
                client.submit(
                    source=BANDED_SOURCE, machine="dunnington",
                    no_cache=True, debug_sleep_ms=600,
                )
            )

        worker = threading.Thread(target=slow_submit)
        worker.start()
        assert wait_until(lambda: service.admission.in_flight() == 1)
        service.stop()
        worker.join(timeout=15)
        assert results and results[0]["ok"]
        with pytest.raises(OSError):
            client.health()


class TestEndpoints:
    def test_healthz(self, client):
        assert client.health() == {"status": "ok"}

    def test_version_matches_package(self, client):
        import repro

        payload = client.version()
        assert payload["version"] == repro.__version__
        assert payload["plan_format"] == 1
        assert payload["program_format"] == 1

    def test_stats_shape(self, client):
        client.submit(source=BANDED_SOURCE, machine="dunnington")
        stats = client.stats()
        assert stats["queue"]["size"] == 8
        assert stats["counters"]["requests"] == 1
        assert stats["latency"]["count"] == 1
        assert stats["draining"] is False

    def test_metrics_exposition(self, client):
        client.submit(source=BANDED_SOURCE, machine="dunnington")
        text = client.metrics()
        assert "repro_service_requests_total 1" in text
        assert 'repro_service_cache_hits_total{tier="memory"} 0' in text
        assert "repro_service_queue_depth 0" in text

    def test_metrics_bridge_obs_counters(self):
        """With obs collection on, pipeline decision counters surface."""
        service = make_service(collect_obs=True)
        service.start()
        try:
            client = ServiceClient(port=service.port)
            client.wait_ready()
            client.submit(source=BANDED_SOURCE, machine="dunnington")
            text = client.metrics()
            assert 'repro_obs_counter{name="map.nests_mapped"} 1' in text
            assert 'repro_obs_counter{name="service.pipeline.runs"} 1' in text
        finally:
            service.stop()

    def test_unknown_routes_404(self, client):
        status, _headers, _body = client.request("GET", "/nope")
        assert status == 404
        status, _headers, _body = client.request("POST", "/nope", {})
        assert status == 404

    def test_bad_request_maps_to_400(self, client):
        with pytest.raises(BadRequest):
            client.submit(source="not a program", machine="dunnington")
        status, _headers, body = client.request("POST", "/map", {"x": 1})
        assert status == 400
        assert json.loads(body)["ok"] is False


class TestTracing:
    def test_per_request_trace_capture(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        service = make_service()
        service.start()
        try:
            client = ServiceClient(port=service.port)
            client.wait_ready()
            response = client.submit(source=BANDED_SOURCE, machine="dunnington")
            traces = list(tmp_path.glob("request-*.jsonl"))
            assert len(traces) == 1
            assert response["request_id"] in traces[0].name
            names = [
                json.loads(line).get("name")
                for line in traces[0].read_text().splitlines()
            ]
            assert "service.request" in names
            assert "service.pipeline" in names
            # Counters captured per request surface in /metrics too.
            assert 'repro_obs_counter{name="map.nests_mapped"} 1' in (
                client.metrics()
            )
        finally:
            service.stop()
