"""The staged pipeline is bit-identical to the pre-refactor chain.

``reference_map_nest`` below is a verbatim port of the monolithic
``TopologyAwareMapper.map_nest`` body as it existed before the pipeline
extraction (obs spans and timings stripped; they cannot affect the
plan).  The randomized suite drives both implementations over
(program, machine, knob) triples and requires identical
``ExecutablePlan.rounds`` — the strongest equivalence the simulator can
observe.  Two integration checks extend the property to the real
consumers: the experiment harness's ``ta``/``ta+s`` schemes and the
service engine's response payload.
"""

from __future__ import annotations

import random

import pytest

from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.tagger import choose_block_size, tag_iterations
from repro.lang import compile_source
from repro.mapping.balance import Cluster, balance_clusters
from repro.mapping.clustering import hierarchical_distribute
from repro.mapping.dependence import (
    build_group_dependence_graph,
    merge_dependent_groups,
)
from repro.mapping.distribute import ExecutablePlan, TopologyAwareMapper
from repro.mapping.refine import refine_assignment
from repro.mapping.schedule import dependence_only_schedule, schedule_groups
from repro.pipeline import ArtifactStore, Knobs, MappingPipeline
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode


def reference_map_nest(machine, program, nest, knobs: Knobs) -> ExecutablePlan:
    """The pre-pipeline chain, ported verbatim (minus instrumentation)."""
    block_size = knobs.block_size
    if block_size is None:
        l1 = machine.cache_path(0)[0].spec.size_bytes
        block_size = choose_block_size(program, nest, l1)
    arrays = [program.arrays[a.name] for a in nest.arrays()]
    partition = DataBlockPartition(arrays, block_size)

    group_set = tag_iterations(nest, partition, max_groups=knobs.max_groups)

    groups = list(group_set.groups)
    graph = None
    if not nest.parallel:
        raw = build_group_dependence_graph(nest, groups)
        if knobs.dependence_policy == "co-cluster":
            groups = merge_dependent_groups(groups, raw)
        else:
            groups, graph = raw.acyclified(groups)

    assignments = hierarchical_distribute(
        groups, machine, knobs.balance_threshold, knobs.cluster_strategy
    )
    if knobs.refine:
        window = max(knobs.balance_threshold, 0.08)
        assignments = refine_assignment(assignments, machine, window)
        clusters = [Cluster(core_groups) for core_groups in assignments]
        balance_clusters(clusters, knobs.balance_threshold)
        assignments = [list(c.groups) for c in clusters]

    if knobs.local_scheduling:
        group_rounds = schedule_groups(
            assignments, machine, graph, knobs.alpha, knobs.beta
        )
        if graph is None or graph.num_edges == 0:
            group_rounds = [
                [[g for rnd in core_rounds for g in rnd]]
                for core_rounds in group_rounds
            ]
    else:
        group_rounds = dependence_only_schedule(assignments, machine, graph)

    label = "topology-aware+sched" if knobs.local_scheduling else "topology-aware"
    return ExecutablePlan.from_group_rounds(machine, nest, group_rounds, label)


def tree_machine(name: str, cores: int, l2_degree: int) -> Machine:
    """A fig9-style machine: private L1s, shared L2s, one L3 root."""
    l1 = CacheSpec("L1", 1024, 2, 32, 2)
    l2 = CacheSpec("L2", 4096, 4, 32, 8)
    l3 = CacheSpec("L3", 16384, 8, 32, 20)
    leaves = [
        TopologyNode.cache(l1, [TopologyNode.core(i)]) for i in range(cores)
    ]
    l2s = [
        TopologyNode.cache(l2, leaves[i : i + l2_degree])
        for i in range(0, cores, l2_degree)
    ]
    root = TopologyNode.cache(l3, l2s) if len(l2s) > 1 else l2s[0]
    return Machine(name, 2.0, 100, root, sockets=1)


MACHINES = (
    tree_machine("diff2", 2, 2),
    tree_machine("diff4", 4, 2),
    tree_machine("diff8", 8, 2),
    tree_machine("diff6", 6, 3),
)


def banded_program(m: int, k: int, parallel: bool):
    keyword = "parallel for" if parallel else "for"
    source = f"""
    param k = {k};
    array B[{m}];
    {keyword} (j = 2*k; j < {m} - 2*k; j++)
      B[j] = B[j] + B[2*k + j] + B[j - 2*k];
    """
    return compile_source(source, name=f"band{m}k{k}{int(parallel)}")


def stencil_program(n: int):
    source = f"""
    array U[{n + 2}][{n + 2}];
    array V[{n + 2}][{n + 2}];
    parallel for (i = 1; i <= {n}; i++)
      for (j = 1; j <= {n}; j++)
        V[i][j] = U[i][j] + U[i - 1][j] + U[i + 1][j];
    """
    return compile_source(source, name=f"stencil{n}")


PROGRAMS = (
    banded_program(48, 4, True),
    banded_program(64, 2, True),
    banded_program(40, 2, False),
    banded_program(56, 4, False),
    stencil_program(10),
    stencil_program(16),
)


def random_knobs(rng: random.Random) -> Knobs:
    alpha = rng.choice((0.1, 0.3, 0.5, 0.9))
    return Knobs(
        block_size=rng.choice((None, 32, 64)),
        balance_threshold=rng.choice((0.01, 0.05, 0.10, 0.25)),
        alpha=alpha,
        beta=round(1.0 - alpha, 6),
        local_scheduling=rng.random() < 0.5,
        dependence_policy=rng.choice(("barrier", "co-cluster")),
        cluster_strategy=rng.choice(("greedy", "kl")),
        refine=rng.random() < 0.75,
    )


class TestDifferential:
    def test_randomized_triples_bit_identical(self):
        """>= 40 random (program, machine, knobs): identical plan rounds."""
        rng = random.Random(20260806)
        store = ArtifactStore(capacity=1024)
        checked = 0
        for trial in range(48):
            program = rng.choice(PROGRAMS)
            machine = rng.choice(MACHINES)
            knobs = random_knobs(rng)
            nest = program.nests[0]

            expected = reference_map_nest(machine, program, nest, knobs)
            got = MappingPipeline(machine, knobs, store=store).map_nest(
                program, nest
            ).plan()

            context = f"trial {trial}: {program.name}/{machine.name}/{knobs}"
            assert got.label == expected.label, context
            assert got.rounds == expected.rounds, context
            got.verify_complete()
            checked += 1
        assert checked >= 40

    def test_mapper_facade_matches_reference(self, fig9_machine, fig5_program):
        """TopologyAwareMapper (the stable front door) delegates faithfully."""
        for local in (False, True):
            knobs = Knobs(block_size=32, local_scheduling=local)
            expected = reference_map_nest(
                fig9_machine, fig5_program, fig5_program.nests[0], knobs
            )
            got = TopologyAwareMapper(
                fig9_machine, block_size=32, local_scheduling=local
            ).map_nest(fig5_program, fig5_program.nests[0])
            assert got.plan().rounds == expected.rounds
            assert set(got.timings) == {
                "partition", "tagging", "dependence", "clustering", "scheduling",
            }

    def test_harness_schemes_match_reference(self, fig9_machine):
        """run_scheme's ta/ta+s plans come out of the same pipeline."""
        from repro.experiments import harness
        from repro.workloads import workload

        harness.clear_cache()
        app = workload("h264")
        machine = harness.sim_machine(fig9_machine)
        for scheme, local in (("ta", False), ("ta+s", True)):
            mapping = harness.mapping_for(
                app, machine, local_scheduling=local,
                balance_threshold=harness.BALANCE_THRESHOLD,
            )
            knobs = Knobs(
                block_size=app.block_size(),
                balance_threshold=harness.BALANCE_THRESHOLD,
                local_scheduling=local,
            )
            expected = reference_map_nest(
                machine, app.program(), app.nest(), knobs
            )
            assert mapping.plan().rounds == expected.rounds
        harness.clear_cache()

    def test_engine_payload_matches_pipeline(self, fig5_program):
        """compute_mapping ships exactly the pipeline's plan."""
        from repro.runtime.serialize import plan_to_dict, program_to_dict
        from repro.service.engine import compute_mapping
        from repro.service.protocol import parse_request

        request = parse_request(
            {
                "program": program_to_dict(fig5_program),
                "machine": "dunnington",
                "scale": 32.0,
                "knobs": {"block_size": 32, "local_scheduling": True},
            }
        )
        payload = compute_mapping(request)
        expected = reference_map_nest(
            request.machine,
            request.program,
            request.nest,
            request.knobs,
        )
        assert payload["mapping"] == plan_to_dict(expected)
        assert payload["stats"]["per_core_iterations"] == [
            sum(len(rnd) for rnd in core_rounds)
            for core_rounds in expected.rounds
        ]


@pytest.mark.perf_smoke
class TestDifferentialSmoke:
    def test_single_triple_quick(self, two_core_machine):
        program = PROGRAMS[0]
        knobs = Knobs(block_size=32, local_scheduling=True)
        expected = reference_map_nest(
            two_core_machine, program, program.nests[0], knobs
        )
        got = MappingPipeline(two_core_machine, knobs).map_nest(
            program, program.nests[0]
        )
        assert got.plan().rounds == expected.rounds
