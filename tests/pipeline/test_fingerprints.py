"""Artifact fingerprints are identity-free and round-trip stable.

Fingerprints must depend only on content (tags, iteration tuples, group
positions) — never on ``IterationGroup.ident``, a process-local counter
that changes across processes and ident resets.  Hypothesis drives
random group populations through ``group_specs``/``groups_from_specs``
round-trips with an ident reset in between; every artifact type must
fingerprint identically on both sides.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.groups import IterationGroup
from repro.pipeline.artifacts import (
    GroupArtifact,
    PlanArtifact,
    TreeAssignment,
    group_specs,
    groups_from_specs,
)

points = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 40)),
    min_size=1,
    max_size=6,
    unique=True,
)

group_spec = st.tuples(
    st.integers(0, 2**12),  # tag
    st.integers(0, 2**12),  # write tag
    st.integers(0, 2**12),  # read tag
    points,
)

specs_list = st.lists(group_spec, min_size=1, max_size=6)


def rebuild(specs):
    """Fresh groups from specs, at a different point of the ident space."""
    IterationGroup.reset_idents(start=1000)
    return groups_from_specs(specs)


class TestRoundTrip:
    @given(specs_list)
    @settings(max_examples=60, deadline=None)
    def test_group_specs_round_trip(self, specs):
        groups = groups_from_specs(specs)
        assert group_specs(groups) == tuple(
            (tag, wtag, rtag, tuple(sorted(map(tuple, pts))))
            for tag, wtag, rtag, pts in specs
        )

    @given(specs_list)
    @settings(max_examples=60, deadline=None)
    def test_group_artifact_fingerprint_stable(self, specs):
        first = GroupArtifact(tuple(groups_from_specs(specs)))
        second = GroupArtifact(tuple(rebuild(specs)))
        idents_differ = [g.ident for g in first] != [g.ident for g in second]
        assert idents_differ
        assert first.fingerprint() == second.fingerprint()

    @given(specs_list)
    @settings(max_examples=40, deadline=None)
    def test_tree_assignment_fingerprint_stable(self, specs):
        def build():
            groups = groups_from_specs(specs)
            half = (len(groups) + 1) // 2
            return TreeAssignment(
                (tuple(groups[:half]), tuple(groups[half:]))
            )

        first = build()
        IterationGroup.reset_idents(start=5000)
        second = build()
        assert first.fingerprint() == second.fingerprint()

    @given(specs_list)
    @settings(max_examples=40, deadline=None)
    def test_plan_artifact_fingerprint_stable(self, specs):
        def build():
            groups = groups_from_specs(specs)
            return PlanArtifact(
                ((tuple(groups),), ()), "topology-aware"
            )

        first = build()
        IterationGroup.reset_idents(start=7777)
        second = build()
        assert first.fingerprint() == second.fingerprint()
        assert first.point_rounds() == second.point_rounds()

    @given(specs_list)
    @settings(max_examples=40, deadline=None)
    def test_content_change_changes_fingerprint(self, specs):
        groups = groups_from_specs(specs)
        tag, wtag, rtag, pts = specs[0]
        mutated_specs = ((tag + 1, wtag, rtag, pts),) + tuple(specs[1:])
        mutated = groups_from_specs(mutated_specs)
        assert (
            GroupArtifact(tuple(groups)).fingerprint()
            != GroupArtifact(tuple(mutated)).fingerprint()
        )


class TestPipelineArtifactsStable:
    def test_real_chain_fingerprints_survive_reset(
        self, fig9_machine, fig5_program
    ):
        """End-to-end: every stage artifact of a real run fingerprints
        the same after an ident reset (the property the persistent plan
        tier's epoch-free keys rely on)."""
        from repro.pipeline import ArtifactStore, Knobs, MappingPipeline

        knobs = Knobs(block_size=32, local_scheduling=True)
        nest = fig5_program.nests[0]

        def fingerprints():
            store = ArtifactStore()
            pipe = MappingPipeline(fig9_machine, knobs, store=store)
            pipe.map_nest(fig5_program, nest)
            base = pipe._base_key(fig5_program, nest)
            return tuple(
                store.get(pipe.stage_key(stage, base)).fingerprint()
                for stage in ("tagging", "dependence", "distribute", "schedule")
            )

        first = fingerprints()
        IterationGroup.reset_idents(start=123)
        second = fingerprints()
        assert first == second
