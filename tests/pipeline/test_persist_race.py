"""Cross-process safety of the persistent plan tier.

The seed implementation flushed with a blind ``os.replace``: two
processes persisting *different* plans concurrently each rewrote the
whole file from their private in-memory view, so the slower writer
silently erased the faster one's entry (last-writer-wins).  These tests
pin the fix — locked read-merge-replace — both as a deterministic
in-process interleaving (two store instances with stale views) and as a
real two-subprocess race synchronized by a barrier (no sleeps).
"""

from __future__ import annotations

import json
import multiprocessing
import sys

import pytest

from repro.lang import compile_source
from repro.mapping.baselines import base_plan
from repro.pipeline import PlanStore
from repro.topology.machines import machine_by_name

SOURCE = """
param m = 16;
array B[16];
parallel for (i = 0; i < m; i++)
  B[i] = B[i] + B[m - 1 - i];
"""


def _tiny_plan():
    program = compile_source(SOURCE, name="race")
    nest = program.nests[0]
    machine = machine_by_name("dunnington")
    return base_plan(nest, machine), machine, nest


def _mp_context():
    if sys.platform.startswith("linux"):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")  # pragma: no cover


def _racing_writer(directory: str, label: str, barrier) -> None:
    """One writing process: load an (empty) view, sync, then persist."""
    plan, _machine, _nest = _tiny_plan()
    store = PlanStore(directory)  # both processes load before either writes
    barrier.wait(timeout=30)
    store.put(("race", label), plan)


class TestConcurrentWrites:
    def test_interleaved_stale_views_merge(self, tmp_path):
        """Two stale in-memory views must merge, not overwrite."""
        plan, machine, nest = _tiny_plan()
        first = PlanStore(str(tmp_path))
        second = PlanStore(str(tmp_path))  # loaded before first writes
        first.put(("k", "a"), plan)
        second.put(("k", "b"), plan)  # pre-fix: clobbered first's entry

        fresh = PlanStore(str(tmp_path))
        assert fresh.get(("k", "a"), machine, nest) is not None
        assert fresh.get(("k", "b"), machine, nest) is not None

    def test_two_subprocess_race_keeps_both_entries(self, tmp_path):
        """The real thing: two processes, barrier-synchronized flushes."""
        ctx = _mp_context()
        barrier = ctx.Barrier(2)
        children = [
            ctx.Process(
                target=_racing_writer, args=(str(tmp_path), label, barrier)
            )
            for label in ("a", "b")
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=60)
            assert child.exitcode == 0
        _plan, machine, nest = _tiny_plan()
        fresh = PlanStore(str(tmp_path))
        assert len(fresh) == 2
        assert fresh.get(("race", "a"), machine, nest) is not None
        assert fresh.get(("race", "b"), machine, nest) is not None

    def test_reload_sees_sibling_writes(self, tmp_path):
        """A get miss re-reads the file, so sibling writes become visible."""
        plan, machine, nest = _tiny_plan()
        reader = PlanStore(str(tmp_path))
        writer = PlanStore(str(tmp_path))
        writer.put(("k", "w"), plan)
        got = reader.get(("k", "w"), machine, nest)
        assert got is not None
        assert got.rounds == plan.rounds


class TestCompaction:
    def _fill(self, tmp_path, count):
        plan, machine, nest = _tiny_plan()
        store = PlanStore(str(tmp_path))
        for index in range(count):
            store.put(("k", index), plan)
        return store, machine, nest

    def test_compact_drops_malformed_entries(self, tmp_path):
        store, machine, nest = self._fill(tmp_path, 3)
        # Hand-inject a malformed entry the way a torn writer might.
        with open(store.path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["plans"]["garbage"] = {"label": 7}
        with open(store.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

        summary = PlanStore(str(tmp_path)).compact()
        assert summary == {
            "kept": 3, "dropped_invalid": 1, "dropped_overflow": 0,
        }
        fresh = PlanStore(str(tmp_path))
        assert len(fresh) == 3
        assert fresh.get(("k", 0), machine, nest) is not None

    def test_compact_caps_entries_keeping_newest(self, tmp_path):
        store, machine, nest = self._fill(tmp_path, 5)
        summary = store.compact(max_entries=2)
        assert summary["kept"] == 2
        assert summary["dropped_overflow"] == 3
        fresh = PlanStore(str(tmp_path))
        assert fresh.get(("k", 4), machine, nest) is not None
        assert fresh.get(("k", 0), machine, nest) is None

    def test_compact_is_single_writer(self, tmp_path):
        """A second compactor loses the election and returns None."""
        from repro.util.filelock import FileLock

        store, _machine, _nest = self._fill(tmp_path, 1)
        election = FileLock(store.path + ".compact.lock")
        assert election.acquire(blocking=False)
        try:
            assert PlanStore(str(tmp_path)).compact() is None
        finally:
            election.release()
        assert PlanStore(str(tmp_path)).compact() is not None

    def test_compact_rejects_negative_cap(self, tmp_path):
        store, _machine, _nest = self._fill(tmp_path, 1)
        with pytest.raises(ValueError):
            store.compact(max_entries=-1)
