"""Stage-cache reuse and invalidation, asserted through obs counters.

The content-addressed stage keys are cumulative over knobs, so a knob
change invalidates exactly the stages at and after the first stage that
reads it (ISSUE: "changing α/β after a first compile re-runs only the
scheduling stage").  Each test runs the pipeline twice against one
store and reads the per-stage hit/miss counters of the *second* run.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.sinks import CollectorSink
from repro.pipeline import ArtifactStore, Knobs, MappingPipeline

STAGES = ("blocksize", "tagging", "dependence", "distribute", "schedule")


def counters_for_run(machine, knobs, store, program):
    """Map the program's first nest; return that run's counter dict."""
    col = CollectorSink()
    with obs.tracing(col):
        MappingPipeline(machine, knobs, store=store).map_nest(
            program, program.nests[0]
        )
    return col.summary()["counters"]


def hit_pattern(counters) -> dict[str, str]:
    pattern = {}
    for stage in STAGES:
        if counters.get(f"pipeline.{stage}.hits"):
            pattern[stage] = "hit"
        elif counters.get(f"pipeline.{stage}.misses"):
            pattern[stage] = "miss"
        else:
            pattern[stage] = "absent"
    return pattern


class TestStageReuse:
    def test_cold_run_misses_every_stage(self, fig9_machine, fig5_program):
        store = ArtifactStore()
        counters = counters_for_run(
            fig9_machine, Knobs(block_size=32), store, fig5_program
        )
        assert hit_pattern(counters) == {s: "miss" for s in STAGES}
        assert counters["pipeline.stage_misses"] == 5
        assert "pipeline.stage_hits" not in counters

    def test_identical_rerun_hits_every_stage(self, fig9_machine, fig5_program):
        store = ArtifactStore()
        knobs = Knobs(block_size=32)
        counters_for_run(fig9_machine, knobs, store, fig5_program)
        counters = counters_for_run(fig9_machine, knobs, store, fig5_program)
        assert hit_pattern(counters) == {s: "hit" for s in STAGES}
        assert counters["pipeline.stage_hits"] == 5

    def test_alpha_beta_change_reruns_schedule_only(
        self, fig9_machine, fig5_program
    ):
        store = ArtifactStore()
        base = Knobs(block_size=32, local_scheduling=True)
        counters_for_run(fig9_machine, base, store, fig5_program)
        counters = counters_for_run(
            fig9_machine, base.replace(alpha=0.9, beta=0.1), store, fig5_program
        )
        assert hit_pattern(counters) == {
            "blocksize": "hit",
            "tagging": "hit",
            "dependence": "hit",
            "distribute": "hit",
            "schedule": "miss",
        }

    def test_balance_change_reruns_distribute_onward(
        self, fig9_machine, fig5_program
    ):
        store = ArtifactStore()
        base = Knobs(block_size=32, balance_threshold=0.10)
        counters_for_run(fig9_machine, base, store, fig5_program)
        counters = counters_for_run(
            fig9_machine, base.replace(balance_threshold=0.01), store, fig5_program
        )
        assert hit_pattern(counters) == {
            "blocksize": "hit",
            "tagging": "hit",
            "dependence": "hit",
            "distribute": "miss",
            "schedule": "miss",
        }

    def test_block_size_change_invalidates_everything(
        self, fig9_machine, fig5_program
    ):
        store = ArtifactStore()
        counters_for_run(
            fig9_machine, Knobs(block_size=32), store, fig5_program
        )
        counters = counters_for_run(
            fig9_machine, Knobs(block_size=64), store, fig5_program
        )
        assert hit_pattern(counters) == {s: "miss" for s in STAGES}

    def test_topology_change_invalidates_everything(
        self, fig9_machine, two_core_machine, fig5_program
    ):
        store = ArtifactStore()
        knobs = Knobs(block_size=32)
        counters_for_run(fig9_machine, knobs, store, fig5_program)
        counters = counters_for_run(
            two_core_machine, knobs, store, fig5_program
        )
        assert hit_pattern(counters) == {s: "miss" for s in STAGES}

    def test_program_change_invalidates_everything(
        self, fig9_machine, fig5_program, stencil_program
    ):
        store = ArtifactStore()
        knobs = Knobs(block_size=32)
        counters_for_run(fig9_machine, knobs, store, fig5_program)
        counters = counters_for_run(fig9_machine, knobs, store, stencil_program)
        assert hit_pattern(counters) == {s: "miss" for s in STAGES}

    def test_dependence_policy_change_keeps_tagging(
        self, fig9_machine, dependent_program
    ):
        store = ArtifactStore()
        base = Knobs(block_size=32, dependence_policy="barrier")
        counters_for_run(fig9_machine, base, store, dependent_program)
        counters = counters_for_run(
            fig9_machine,
            base.replace(dependence_policy="co-cluster"),
            store,
            dependent_program,
        )
        assert hit_pattern(counters) == {
            "blocksize": "hit",
            "tagging": "hit",
            "dependence": "miss",
            "distribute": "miss",
            "schedule": "miss",
        }

    def test_no_store_emits_no_cache_counters(self, fig9_machine, fig5_program):
        counters = counters_for_run(
            fig9_machine, Knobs(block_size=32), None, fig5_program
        )
        assert not any(k.startswith("pipeline.") for k in counters)

    def test_hit_run_produces_identical_plan(self, fig9_machine, fig5_program):
        store = ArtifactStore()
        knobs = Knobs(block_size=32, local_scheduling=True)
        nest = fig5_program.nests[0]
        cold = MappingPipeline(fig9_machine, knobs, store=store).map_nest(
            fig5_program, nest
        )
        warm = MappingPipeline(fig9_machine, knobs, store=store).map_nest(
            fig5_program, nest
        )
        assert warm.plan().rounds == cold.plan().rounds
        assert warm.timings.keys() == cold.timings.keys()


class TestCachedSpanTags:
    def test_spans_tag_hit_and_miss(self, fig9_machine, fig5_program):
        store = ArtifactStore()
        knobs = Knobs(block_size=32)
        nest = fig5_program.nests[0]
        col = CollectorSink()
        with obs.tracing(col):
            MappingPipeline(fig9_machine, knobs, store=store).map_nest(
                fig5_program, nest
            )
            MappingPipeline(fig9_machine, knobs, store=store).map_nest(
                fig5_program, nest
            )
        tags = [
            r["tags"].get("cache")
            for r in col.spans()
            if r["name"] == "map.tagging"
        ]
        assert tags == ["miss", "hit"]

    def test_dependence_hit_retains_edge_tags(
        self, fig9_machine, dependent_program
    ):
        """A cached dependence artifact still tags policy/edges (trace
        consumers must not see less on a warm run)."""
        store = ArtifactStore()
        knobs = Knobs(block_size=32)
        nest = dependent_program.nests[0]
        col = CollectorSink()
        with obs.tracing(col):
            MappingPipeline(fig9_machine, knobs, store=store).map_nest(
                dependent_program, nest
            )
            MappingPipeline(fig9_machine, knobs, store=store).map_nest(
                dependent_program, nest
            )
        spans = [r for r in col.spans() if r["name"] == "map.dependence"]
        assert len(spans) == 2
        cold, warm = spans
        assert warm["tags"].get("cache") == "hit"
        assert warm["tags"].get("policy") == cold["tags"].get("policy")
        assert warm["tags"].get("edges") == cold["tags"].get("edges")


class TestEpochInvalidation:
    def test_ident_reset_invalidates_store(self, fig9_machine, fig5_program):
        from repro.blocks.groups import IterationGroup

        store = ArtifactStore()
        knobs = Knobs(block_size=32)
        counters_for_run(fig9_machine, knobs, store, fig5_program)
        IterationGroup.reset_idents()
        counters = counters_for_run(fig9_machine, knobs, store, fig5_program)
        assert hit_pattern(counters) == {s: "miss" for s in STAGES}


@pytest.mark.perf_smoke
class TestWarmFasterSmoke:
    def test_warm_rerun_skips_compute(self, fig9_machine, fig5_program):
        """Structure check for the perf benchmark: a warm α/β point
        computes only the scheduling stage."""
        store = ArtifactStore()
        base = Knobs(block_size=32, local_scheduling=True)
        counters_for_run(fig9_machine, base, store, fig5_program)
        counters = counters_for_run(
            fig9_machine, base.replace(alpha=0.7, beta=0.3), store, fig5_program
        )
        assert counters["pipeline.stage_hits"] == 4
        assert counters["pipeline.stage_misses"] == 1
