"""The in-process artifact store and the persistent plan tier."""

from __future__ import annotations

import json
import os

import pytest

from repro.blocks.groups import IterationGroup
from repro.pipeline import (
    ArtifactStore,
    Knobs,
    MappingPipeline,
    PlanStore,
    default_store,
    reset_default_store,
)
from repro.pipeline.store import ident_epoch


class TestArtifactStore:
    def test_get_put_and_stats(self):
        store = ArtifactStore(capacity=4)
        assert store.get(("a",)) is None
        store.put(("a",), "artifact")
        assert store.get(("a",)) == "artifact"
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_lru_evicts_oldest(self):
        store = ArtifactStore(capacity=2)
        store.put(("a",), 1)
        store.put(("b",), 2)
        store.put(("c",), 3)
        assert store.get(("a",)) is None
        assert store.get(("b",)) == 2
        assert store.get(("c",)) == 3
        assert store.stats()["evictions"] == 1

    def test_get_refreshes_recency(self):
        store = ArtifactStore(capacity=2)
        store.put(("a",), 1)
        store.put(("b",), 2)
        store.get(("a",))
        store.put(("c",), 3)
        assert store.get(("a",)) == 1
        assert store.get(("b",)) is None

    def test_put_overwrites_in_place(self):
        store = ArtifactStore(capacity=2)
        store.put(("a",), 1)
        store.put(("a",), 2)
        assert store.get(("a",)) == 2
        assert len(store) == 1

    def test_clear(self):
        store = ArtifactStore()
        store.put(("a",), 1)
        store.clear()
        assert len(store) == 0
        assert store.get(("a",)) is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ArtifactStore(capacity=0)

    def test_default_store_is_a_process_singleton(self):
        first = default_store()
        assert default_store() is first
        reset_default_store()
        assert default_store() is not first


class TestIdentEpoch:
    def test_reset_bumps_epoch(self):
        before = ident_epoch()
        IterationGroup.reset_idents()
        assert ident_epoch() == before + 1

    def test_stage_keys_change_across_epochs(self, fig9_machine, fig5_program):
        pipe = MappingPipeline(fig9_machine, Knobs(block_size=32))
        base = pipe._base_key(fig5_program, fig5_program.nests[0])
        before = pipe.stage_key("tagging", base)
        IterationGroup.reset_idents()
        after = pipe.stage_key("tagging", base)
        assert before != after

    def test_plan_key_is_epoch_free(self, fig9_machine, fig5_program):
        pipe = MappingPipeline(fig9_machine, Knobs(block_size=32))
        before = pipe.plan_key(fig5_program, fig5_program.nests[0])
        IterationGroup.reset_idents()
        assert pipe.plan_key(fig5_program, fig5_program.nests[0]) == before


class TestPlanStore:
    @pytest.fixture
    def plan_and_pipe(self, fig9_machine, fig5_program, tmp_path):
        pipe = MappingPipeline(
            fig9_machine,
            Knobs(block_size=32, local_scheduling=True),
            plans=PlanStore(str(tmp_path)),
        )
        plan = pipe.plan(fig5_program, fig5_program.nests[0])
        return pipe, plan, fig5_program

    def test_round_trip_across_processes(self, plan_and_pipe, fig9_machine,
                                         tmp_path):
        pipe, plan, program = plan_and_pipe
        # A "new process": fresh PlanStore over the same directory, and a
        # different point of the ident sequence.
        IterationGroup.reset_idents(start=999)
        reread = MappingPipeline(
            fig9_machine,
            Knobs(block_size=32, local_scheduling=True),
            plans=PlanStore(str(tmp_path)),
        )
        key = reread.plan_key(program, program.nests[0])
        cached = reread.plans.get(key, fig9_machine, program.nests[0])
        assert cached is not None
        assert cached.rounds == plan.rounds
        assert cached.label == plan.label

    def test_plan_method_serves_disk_hit_without_mapping(
        self, plan_and_pipe, fig9_machine, tmp_path
    ):
        from repro import obs
        from repro.obs.sinks import CollectorSink

        _, plan, program = plan_and_pipe
        warm = MappingPipeline(
            fig9_machine,
            Knobs(block_size=32, local_scheduling=True),
            plans=PlanStore(str(tmp_path)),
        )
        col = CollectorSink()
        with obs.tracing(col):
            served = warm.plan(program, program.nests[0])
        assert served.rounds == plan.rounds
        counters = col.summary()["counters"]
        assert counters["pipeline.plan.disk_hits"] == 1
        assert "map.nests_mapped" not in counters

    def test_knob_change_misses(self, plan_and_pipe, fig9_machine, tmp_path):
        _, _, program = plan_and_pipe
        other = MappingPipeline(
            fig9_machine,
            Knobs(block_size=32, local_scheduling=True, alpha=0.9, beta=0.1),
            plans=PlanStore(str(tmp_path)),
        )
        key = other.plan_key(program, program.nests[0])
        assert other.plans.get(key, fig9_machine, program.nests[0]) is None

    def test_corrupt_file_reads_as_empty(self, plan_and_pipe, tmp_path):
        pipe, _, _ = plan_and_pipe
        path = pipe.plans.path
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        assert len(PlanStore(str(tmp_path))) == 0

    def test_foreign_fingerprint_reads_as_empty(self, plan_and_pipe, tmp_path):
        pipe, _, _ = plan_and_pipe
        path = pipe.plans.path
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["fingerprint"] = "0" * 64
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert len(PlanStore(str(tmp_path))) == 0

    def test_tampered_rounds_are_rejected(self, plan_and_pipe, fig9_machine,
                                          tmp_path):
        """A stored plan that no longer covers the iteration space must
        miss (verify_complete guards the read path)."""
        pipe, _, program = plan_and_pipe
        path = pipe.plans.path
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        entry = next(iter(payload["plans"].values()))
        entry["rounds"] = [[[[0, 0]]]]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        fresh = PlanStore(str(tmp_path))
        key = pipe.plan_key(program, program.nests[0])
        assert fresh.get(key, fig9_machine, program.nests[0]) is None

    def test_file_name_carries_code_fingerprint(self, tmp_path):
        from repro.experiments.cache import code_fingerprint

        store = PlanStore(str(tmp_path))
        assert os.path.basename(store.path) == (
            f"plans-{code_fingerprint()[:12]}.json"
        )
