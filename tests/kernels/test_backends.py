"""Backend selection and graceful-fallback behavior of the kernel layer."""

import pytest

from repro.errors import KernelError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import IterationGroup
from repro.blocks.tagger import resolve_accesses, tag_iterations
from repro.ir.accesses import ArrayAccess
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest
from repro.kernels import (
    BACKENDS,
    DEFAULT_MAX_LANES,
    fits_lane_budget,
    have_numpy,
    resolve_backend,
)
from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet


def square_nest(n=8, block_size=64):
    a = Array("A", (n, n))
    b = Array("B", (n, n))
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    dims = ("i", "j")
    space = IntSet.box(dims, [(0, n - 1), (0, n - 1)])
    accesses = [
        ArrayAccess(a, dims, (i, j), is_write=True),
        ArrayAccess(b, dims, (i, j)),
        ArrayAccess(b, dims, (j, i)),
    ]
    return LoopNest("square", space, accesses), DataBlockPartition((a, b), block_size)


def triangular_nest(n=8, block_size=64):
    """Lower-triangular space: 0 <= j <= i < n (not vectorizable)."""
    a = Array("A", (n, n))
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    dims = ("i", "j")
    space = IntSet(
        dims,
        [
            Constraint.ge(i, 0),
            Constraint.le(i, n - 1),
            Constraint.ge(j, 0),
            Constraint.le(j, i),
        ],
    )
    accesses = [ArrayAccess(a, dims, (i, j), is_write=True)]
    return LoopNest("tri", space, accesses), DataBlockPartition((a,), block_size)


def groupset_fingerprint(gs):
    return [
        (g.ident, g.tag, g.write_tag, g.read_tag, g.iterations) for g in gs.groups
    ]


class TestResolveBackend:
    def test_known_backends(self):
        assert set(BACKENDS) == {"auto", "python", "numpy"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_python_always_resolves(self):
        assert resolve_backend("python") == "python"

    def test_auto_prefers_numpy_when_available(self):
        expected = "numpy" if have_numpy() else "python"
        assert resolve_backend("auto") == expected
        assert resolve_backend() == expected

    def test_numpy_raises_when_unavailable(self, monkeypatch):
        import repro.kernels as kernels

        monkeypatch.setattr(kernels, "_numpy_probe", False)
        kernels.reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="scalar fallback at resolve_backend"):
            assert resolve_backend("auto") == "python"
        with pytest.raises(KernelError, match="numpy is not importable"):
            resolve_backend("numpy")

    def test_probe_cache_is_consulted(self, monkeypatch):
        import repro.kernels as kernels

        monkeypatch.setattr(kernels, "_numpy_probe", True)
        assert resolve_backend("numpy") == "numpy"


class TestLaneBudget:
    def test_boundary(self):
        assert fits_lane_budget(64 * DEFAULT_MAX_LANES)
        assert not fits_lane_budget(64 * DEFAULT_MAX_LANES + 1)

    def test_custom_budget(self):
        assert fits_lane_budget(64, max_lanes=1)
        assert not fits_lane_budget(65, max_lanes=1)


@pytest.mark.skipif(not have_numpy(), reason="fallback paths need numpy present")
class TestGracefulFallback:
    def test_lane_overflow_returns_none(self):
        import repro.kernels as kernels
        from repro.kernels.tagging import tag_iterations_numpy

        nest, part = square_nest(n=8, block_size=64)
        assert part.num_blocks > 1
        resolved = resolve_accesses(nest, part)
        kernels.reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="lane-budget"):
            assert tag_iterations_numpy(nest, part, resolved, max_lanes=0) is None

    def test_non_rectangular_returns_none(self):
        import repro.kernels as kernels
        from repro.kernels.tagging import tag_iterations_numpy

        nest, part = triangular_nest()
        resolved = resolve_accesses(nest, part)
        kernels.reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="non-rectangular"):
            assert tag_iterations_numpy(nest, part, resolved) is None

    def test_numpy_backend_falls_back_silently_on_triangular(self):
        nest, part = triangular_nest()
        IterationGroup.reset_idents()
        scalar = tag_iterations(nest, part, backend="python")
        IterationGroup.reset_idents()
        via_numpy = tag_iterations(nest, part, backend="numpy")
        assert groupset_fingerprint(scalar) == groupset_fingerprint(via_numpy)

    def test_auto_matches_python_on_square(self):
        nest, part = square_nest()
        IterationGroup.reset_idents()
        scalar = tag_iterations(nest, part, backend="python")
        IterationGroup.reset_idents()
        auto = tag_iterations(nest, part, backend="auto")
        assert groupset_fingerprint(scalar) == groupset_fingerprint(auto)

    def test_max_groups_limit_same_error(self):
        from repro.errors import BlockingError

        nest, part = square_nest(n=8, block_size=64)
        with pytest.raises(BlockingError, match="increase the data block size") as e1:
            tag_iterations(nest, part, max_groups=1, backend="python")
        with pytest.raises(BlockingError, match="increase the data block size") as e2:
            tag_iterations(nest, part, max_groups=1, backend="numpy")
        assert str(e1.value) == str(e2.value)

    def test_grid_empty_space(self):
        from repro.kernels.tagging import iteration_grid

        a = Array("A", (4,))
        i = AffineExpr.var("i")
        space = IntSet.box(("i",), [(3, 1)])
        nest = LoopNest("empty", space, [ArrayAccess(a, ("i",), (i,), is_write=True)])
        grid = iteration_grid(nest)
        assert grid is not None and grid.shape == (0, 1)
