"""Differential tests: the numpy backend against the scalar oracle.

Sixty seeded random loop nests (1–3 deep, 2–4 affine accesses over one or
two arrays, random small coefficients and block sizes) run through the
whole pipeline on both backends.  Every stage must agree *exactly*:
tagging must produce byte-identical GroupSets (tags, write/read tags,
iteration order, idents), clustering the identical merge result,
scheduling the identical round structure, and the affinity graph the
identical edge list.
"""

import random

import pytest

pytest.importorskip("numpy", exc_type=ImportError)

from repro.blocks import tagger
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import IterationGroup
from repro.ir.accesses import ArrayAccess
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest
from repro.kernels.tagging import tag_iterations_numpy
from repro.mapping.affinity_graph import AffinityGraph
from repro.mapping.clustering import cluster_one_level, hierarchical_distribute
from repro.mapping.schedule import dependence_only_schedule, schedule_groups
from repro.poly.affine import AffineExpr
from repro.poly.intset import IntSet

NUM_NESTS = 60


def random_nest(rng: random.Random) -> tuple[LoopNest, DataBlockPartition]:
    """A random rectangular nest with in-bounds affine accesses.

    Subscript expressions get random coefficients in [-2, 2]; each
    array's extents are derived from the subscripts' ranges over the
    iteration box (shifting so the minimum lands on index 0), which keeps
    ``validate_access_bounds`` satisfied by construction.
    """
    depth = rng.randint(1, 3)
    dims = tuple(f"i{k}" for k in range(depth))
    bounds = [(0, rng.randint(2, 7)) for _ in range(depth)]
    space = IntSet.box(dims, bounds)

    num_arrays = rng.randint(1, 2)
    ranks = [rng.randint(1, 2) for _ in range(num_arrays)]
    num_accesses = rng.randint(2, 4)
    specs = []
    for index in range(num_accesses):
        arr = rng.randrange(num_arrays)
        subs = []
        for _ in range(ranks[arr]):
            coeffs = [rng.randint(-2, 2) for _ in range(depth)]
            subs.append((rng.randint(-3, 3), coeffs))
        specs.append((arr, subs, index == 0))

    # Subscript range over the box: an affine form is extremal at corners.
    mins: dict[tuple[int, int], int] = {}
    maxs: dict[tuple[int, int], int] = {}
    for arr, subs, _ in specs:
        for d, (constant, coeffs) in enumerate(subs):
            lo = constant + sum(min(c * b[0], c * b[1]) for c, b in zip(coeffs, bounds))
            hi = constant + sum(max(c * b[0], c * b[1]) for c, b in zip(coeffs, bounds))
            key = (arr, d)
            mins[key] = min(mins.get(key, lo), lo)
            maxs[key] = max(maxs.get(key, hi), hi)

    # An array the access draw never picked still needs valid extents.
    arrays = [
        Array(
            f"A{a}",
            tuple(
                maxs.get((a, d), 0) - mins.get((a, d), 0) + 1
                for d in range(ranks[a])
            ),
        )
        for a in range(num_arrays)
    ]
    accesses = []
    for arr, subs, is_write in specs:
        exprs = []
        for d, (constant, coeffs) in enumerate(subs):
            expr = AffineExpr.const(constant - mins[(arr, d)])
            for c, name in zip(coeffs, dims):
                expr = expr + AffineExpr.var(name) * c
            exprs.append(expr)
        accesses.append(ArrayAccess(arrays[arr], dims, exprs, is_write=is_write))
    nest = LoopNest("rand", space, accesses)
    partition = DataBlockPartition(tuple(arrays), rng.choice([64, 128, 256]))
    return nest, partition


def groupset_fingerprint(gs):
    return [
        (g.ident, g.tag, g.write_tag, g.read_tag, g.iterations) for g in gs.groups
    ]


def schedule_fingerprint(rounds):
    return [[[g.ident for g in rnd] for rnd in core] for core in rounds]


@pytest.mark.parametrize("seed", range(NUM_NESTS))
def test_tagging_backends_identical(seed):
    rng = random.Random(seed)
    nest, partition = random_nest(rng)
    nest.validate_access_bounds()

    IterationGroup.reset_idents()
    scalar = tagger.tag_iterations(nest, partition, backend="python")
    IterationGroup.reset_idents()
    vectorized = tag_iterations_numpy(
        nest, partition, tagger.resolve_accesses(nest, partition)
    )
    assert vectorized is not None, "rectangular nest must vectorize"
    assert groupset_fingerprint(scalar) == groupset_fingerprint(vectorized)
    vectorized.verify_partition()


@pytest.mark.parametrize("seed", range(NUM_NESTS))
def test_mapping_backends_identical(seed, fig9_machine):
    rng = random.Random(seed)
    nest, partition = random_nest(rng)
    IterationGroup.reset_idents()
    groups = list(tagger.tag_iterations(nest, partition, backend="python").groups)

    graph_py = AffinityGraph(groups, backend="python")
    graph_np = AffinityGraph(groups, backend="numpy")
    edges_py = [(a.ident, b.ident, w) for a, b, w in graph_py.edges()]
    edges_np = [(a.ident, b.ident, w) for a, b, w in graph_np.edges()]
    assert edges_py == edges_np
    assert graph_py.total_sharing() == graph_np.total_sharing()

    # Load balancing may split groups, which mints new idents; rewind the
    # counter to a common base before each backend run so the fresh
    # idents line up between the two.
    base = 10_000

    if len(groups) >= 2:
        IterationGroup.reset_idents(base)
        merged_py = cluster_one_level(groups, 2, 0.10, backend="python")
        IterationGroup.reset_idents(base)
        merged_np = cluster_one_level(groups, 2, 0.10, backend="numpy")
        assert [[g.ident for g in c.groups] for c in merged_py] == [
            [g.ident for g in c.groups] for c in merged_np
        ]

    if sum(g.size for g in groups) < 2 * fig9_machine.num_cores:
        return
    IterationGroup.reset_idents(base)
    dist_py = hierarchical_distribute(groups, fig9_machine, backend="python")
    IterationGroup.reset_idents(base)
    dist_np = hierarchical_distribute(groups, fig9_machine, backend="numpy")
    assert [[g.ident for g in core] for core in dist_py] == [
        [g.ident for g in core] for core in dist_np
    ]

    sched_py = schedule_groups(dist_py, fig9_machine, backend="python")
    sched_np = schedule_groups(dist_py, fig9_machine, backend="numpy")
    assert schedule_fingerprint(sched_py) == schedule_fingerprint(sched_np)

    dep_py = dependence_only_schedule(dist_py, fig9_machine, backend="python")
    dep_np = dependence_only_schedule(dist_py, fig9_machine, backend="numpy")
    assert schedule_fingerprint(dep_py) == schedule_fingerprint(dep_np)
