"""Tier-1 smoke coverage for the microbenchmark harness.

Runs the full harness machinery on a tiny 16x16 config and checks the
report *structure* — never the timings, which would be flaky on loaded
CI machines.  The real timing assertions live in ``benchmarks/perf/``
behind the ``perf`` marker.
"""

import json

import pytest

pytest.importorskip("numpy", exc_type=ImportError)

from repro.kernels.bench import (
    SMOKE_CONFIGS,
    bench_clustering,
    run_suite,
    write_report,
)

pytestmark = pytest.mark.perf_smoke


def test_smoke_suite_structure(tmp_path):
    report = run_suite(configs=SMOKE_CONFIGS, repeats=1)
    kinds = [e["kernel"] for e in report["entries"]]
    assert kinds == ["tagging", "affinity-matrix", "clustering"]
    for entry in report["entries"]:
        assert entry["python_ms"] > 0
        assert entry["numpy_ms"] > 0
        # Speedup is computed from unrounded seconds; allow the rounding
        # slack of the reported millisecond fields.
        assert entry["speedup"] == pytest.approx(
            entry["python_ms"] / entry["numpy_ms"], rel=0.05
        )

    out = tmp_path / "BENCH_kernels.json"
    write_report(report, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["entries"] == report["entries"]
    assert loaded["timing"].startswith("best of")


def test_bench_cross_checks_backends(monkeypatch):
    """The harness refuses to time backends that disagree."""
    import repro.kernels.bench as bench

    original = bench.cluster_one_level

    def broken_cluster(groups, k, threshold, backend="auto"):
        clusters = original(groups, k, threshold, backend="python")
        if backend == "numpy":
            clusters = list(reversed(clusters))
        return clusters

    monkeypatch.setattr(bench, "cluster_one_level", broken_cluster)
    with pytest.raises(AssertionError, match="disagree"):
        bench_clustering("stencil-16", 16, 256, repeats=1)


def test_main_entry_point(tmp_path, monkeypatch):
    import repro.kernels.bench as bench

    monkeypatch.setattr(bench, "TAGGING_CONFIGS", SMOKE_CONFIGS)
    out = tmp_path / "report.json"
    assert bench.main(["--out", str(out), "--repeats", "1"]) == 0
    assert json.loads(out.read_text())["entries"]
