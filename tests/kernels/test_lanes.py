"""Unit tests for tag lane packing and the bulk affinity primitives."""

import random

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.errors import KernelError
from repro.blocks.tags import dot, hamming, ones
from repro.kernels.affinity import (
    dot_many,
    dot_matrix,
    dot_pairs,
    dot_select,
    hamming_many,
    hamming_matrix,
)
from repro.kernels.lanes import (
    LANE_BITS,
    lanes_for_bits,
    pack_tag,
    pack_tags,
    popcount,
    unpack_tag,
)


def random_tags(rng, count, num_bits):
    return [rng.getrandbits(num_bits) for _ in range(count)]


class TestLanesForBits:
    def test_zero_width_still_one_lane(self):
        assert lanes_for_bits(0) == 1

    def test_exact_lane_boundaries(self):
        assert lanes_for_bits(1) == 1
        assert lanes_for_bits(LANE_BITS) == 1
        assert lanes_for_bits(LANE_BITS + 1) == 2
        assert lanes_for_bits(3 * LANE_BITS) == 3

    def test_negative_width_rejected(self):
        with pytest.raises(KernelError):
            lanes_for_bits(-1)


class TestPacking:
    def test_roundtrip_random_widths(self):
        rng = random.Random(7)
        for num_bits in (1, 63, 64, 65, 128, 200, 1000):
            lanes = lanes_for_bits(num_bits)
            tags = random_tags(rng, 20, num_bits)
            packed = pack_tags(tags, lanes)
            assert packed.shape == (20, lanes)
            assert packed.dtype == np.uint64
            for tag, row in zip(tags, packed):
                assert unpack_tag(row) == tag

    def test_lane_zero_holds_low_bits(self):
        row = pack_tag((1 << 64) | 0b101, 2)
        assert int(row[0]) == 0b101
        assert int(row[1]) == 1

    def test_negative_tag_rejected(self):
        with pytest.raises(KernelError):
            pack_tag(-1, 1)

    def test_oversized_tag_rejected(self):
        with pytest.raises(KernelError):
            pack_tag(1 << 64, 1)

    def test_nonpositive_lane_count_rejected(self):
        with pytest.raises(KernelError):
            pack_tags([1], 0)


class TestPopcount:
    def test_matches_int_bit_count(self):
        rng = random.Random(11)
        values = [rng.getrandbits(64) for _ in range(256)]
        arr = np.array(values, dtype=np.uint64)
        expected = [v.bit_count() for v in values]
        assert popcount(arr).tolist() == expected

    def test_extremes(self):
        arr = np.array([0, 2**64 - 1, 1, 1 << 63], dtype=np.uint64)
        assert popcount(arr).tolist() == [0, 64, 1, 1]

    def test_keeps_shape(self):
        arr = np.arange(12, dtype=np.uint64).reshape(3, 4)
        assert popcount(arr).shape == (3, 4)


class TestAffinityKernels:
    def setup_method(self):
        rng = random.Random(3)
        self.tags = random_tags(rng, 12, 150)
        self.packed = pack_tags(self.tags, lanes_for_bits(150))

    def test_dot_matrix_matches_scalar(self):
        mat = dot_matrix(self.packed)
        for i, a in enumerate(self.tags):
            for j, b in enumerate(self.tags):
                assert mat[i, j] == dot(a, b)
        diag = [ones(t) for t in self.tags]
        assert np.diag(mat).tolist() == diag

    def test_hamming_matrix_matches_scalar(self):
        mat = hamming_matrix(self.packed)
        for i, a in enumerate(self.tags):
            for j, b in enumerate(self.tags):
                assert mat[i, j] == hamming(a, b)

    def test_dot_many_matches_scalar(self):
        row = self.packed[5]
        assert dot_many(row, self.packed).tolist() == [
            dot(self.tags[5], t) for t in self.tags
        ]

    def test_hamming_many_matches_scalar(self):
        row = self.packed[0]
        assert hamming_many(row, self.packed).tolist() == [
            hamming(self.tags[0], t) for t in self.tags
        ]

    def test_dot_pairs_matches_nested_loops(self):
        ii, jj, ww = dot_pairs(self.packed)
        expected = []
        for i in range(len(self.tags)):
            for j in range(i + 1, len(self.tags)):
                w = dot(self.tags[i], self.tags[j])
                if w > 0:
                    expected.append((i, j, w))
        assert list(zip(ii, jj, ww)) == expected
        assert all(isinstance(w, int) for w in ww)

    def test_dot_select_skips_dead_rows(self):
        rows = list(self.packed)
        rows[2] = None
        rows[4] = None
        indices = [0, 1, 3, 5]
        got = dot_select(self.packed[7], rows, indices)
        assert got == [dot(self.tags[7], self.tags[i]) for i in indices]

    def test_dot_select_empty(self):
        assert dot_select(self.packed[0], list(self.packed), []) == []
