"""End-to-end: the instrumented pipeline emits the documented span set.

This is the acceptance check behind ``--trace-out``: mapping plus
simulation of the paper's Figure 5 example must cover the tag /
affinity / cluster / balance / schedule / sim phases with their
decision counters (see docs/OBSERVABILITY.md for the catalogue).
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.experiments import harness
from repro.mapping.distribute import TopologyAwareMapper
from repro.obs.sinks import CollectorSink, read_jsonl
from repro.runtime import execute_plan

PIPELINE_SPANS = {
    "tag.iterations",
    "affinity.pairs",
    "cluster.distribute",
    "cluster.level",
    "balance",
    "schedule",
    "map.nest",
    "map.partition",
    "map.tagging",
    "map.dependence",
    "map.clustering",
    "map.refine",
    "map.scheduling",
    "sim.run",
    "sim.trace_build",
}

PIPELINE_COUNTERS = {
    "tag.groups_formed",
    "cluster.merges",
    "cluster.levels",
    "schedule.rounds",
    "map.nests_mapped",
    "sim.runs",
    "sim.accesses",
}


def _run_pipeline(fig5_program, fig9_machine):
    mapper = TopologyAwareMapper(fig9_machine, block_size=4 * 8, local_scheduling=True)
    result = mapper.map_nest(fig5_program, fig5_program.nests[0])
    execute_plan(result.plan())


class TestPipelineTrace:
    def test_span_set_covers_every_phase(self, fig5_program, fig9_machine):
        col = CollectorSink()
        with obs.tracing(col):
            _run_pipeline(fig5_program, fig9_machine)
        names = {r["name"] for r in col.spans()}
        missing = PIPELINE_SPANS - names
        assert not missing, f"phases without spans: {sorted(missing)}"

    def test_decision_counters_recorded(self, fig5_program, fig9_machine):
        col = CollectorSink()
        with obs.tracing(col):
            _run_pipeline(fig5_program, fig9_machine)
        counters = col.summary()["counters"]
        missing = PIPELINE_COUNTERS - set(counters)
        assert not missing, f"decisions without counters: {sorted(missing)}"
        assert counters["tag.groups_formed"] == 8  # Figure 10(a)
        assert counters["map.nests_mapped"] == 1
        assert counters["sim.runs"] == 1
        assert counters["sim.accesses"] > 0
        backend = [k for k in counters if k.startswith("kernels.backend.")]
        assert backend, "no backend-selection counter recorded"

    def test_cache_level_counters(self, fig5_program, fig9_machine):
        col = CollectorSink()
        with obs.tracing(col):
            _run_pipeline(fig5_program, fig9_machine)
        counters = col.summary()["counters"]
        l1 = [k for k in counters if k.startswith("sim.L1.")]
        assert l1, "no per-level sim hit/miss counters"

    def test_phase_nesting_under_map_nest(self, fig5_program, fig9_machine):
        col = CollectorSink()
        with obs.tracing(col):
            _run_pipeline(fig5_program, fig9_machine)
        by_id = {r["id"]: r for r in col.spans()}
        nest_ids = {r["id"] for r in col.spans() if r["name"] == "map.nest"}
        for phase in ("map.partition", "map.tagging", "map.clustering",
                      "map.scheduling"):
            spans = [r for r in col.spans() if r["name"] == phase]
            assert spans, phase
            for sp in spans:
                assert sp["parent"] in nest_ids
        for sp in col.spans():
            if sp["name"] == "cluster.level":
                assert by_id[sp["parent"]]["name"] == "cluster.distribute"

    def test_affinity_weight_table_span(self, fig5_program, fig9_machine):
        pytest.importorskip("numpy", exc_type=ImportError)
        from repro.blocks.datablocks import DataBlockPartition
        from repro.blocks.tagger import tag_iterations
        from repro.mapping.affinity_graph import AffinityGraph

        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 4 * 8)
        groups = tag_iterations(nest, part).groups
        col = CollectorSink()
        with obs.tracing(col):
            graph = AffinityGraph(groups, backend="numpy")
            assert graph.total_sharing() > 0
        names = {r["name"] for r in col.spans()}
        assert "affinity.weight_table" in names
        assert col.summary()["counters"]["affinity.tables_built"] == 1

    def test_pipeline_untouched_without_recorder(self, fig5_program, fig9_machine):
        # Instrumentation must never require an installed recorder.
        assert not obs.enabled()
        _run_pipeline(fig5_program, fig9_machine)
        assert obs.get_recorder() is None


class TestFigureTrace:
    def test_noop_without_env(self, fig5_program, monkeypatch):
        monkeypatch.delenv(harness.TRACE_DIR_ENV, raising=False)
        with harness.figure_trace("fig13"):
            pass
        assert not obs.enabled()

    def test_writes_per_figure_jsonl(self, fig5_program, fig9_machine, tmp_path,
                                     monkeypatch):
        monkeypatch.setenv(harness.TRACE_DIR_ENV, str(tmp_path))
        with harness.figure_trace("fig13"):
            _run_pipeline(fig5_program, fig9_machine)
        path = os.path.join(str(tmp_path), "fig13.jsonl")
        records = read_jsonl(path)
        names = {r["name"] for r in records if r.get("type") == "span"}
        assert "figure" in names
        assert "map.nest" in names and "sim.run" in names
        assert not obs.enabled()

    def test_outer_recorder_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(harness.TRACE_DIR_ENV, str(tmp_path))
        col = CollectorSink()
        with obs.tracing(col):
            with harness.figure_trace("fig13"):
                obs.count("inside", 1)
        assert not os.path.exists(os.path.join(str(tmp_path), "fig13.jsonl"))
        assert col.summary()["counters"] == {"inside": 1}
        names = {r["name"] for r in col.spans()}
        assert "figure" in names


class TestCliTracing:
    SOURCE = """
    param k = 4;
    param m = 48;
    array B[48];
    parallel for (j = 2*k; j < m - 2*k; j++)
      B[j] = B[j] + B[2*k + j] + B[j - 2*k];
    """

    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "fig5.loop"
        path.write_text(self.SOURCE)
        return str(path)

    def test_map_trace_out(self, program_file, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(["map", program_file, "--block-size", "32",
                     "--trace-out", str(out)])
        assert code == 0
        names = {r["name"] for r in read_jsonl(str(out))
                 if r.get("type") == "span"}
        assert "cli.map" in names and "map.nest" in names

    def test_trace_subcommand_covers_pipeline(self, program_file, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(["trace", program_file, "--block-size", "32",
                     "--out", str(out)])
        assert code == 0
        records = read_jsonl(str(out))
        names = {r["name"] for r in records if r.get("type") == "span"}
        missing = PIPELINE_SPANS - names
        assert not missing, f"trace subcommand missed: {sorted(missing)}"
        printed = capsys.readouterr().out
        assert "Per-phase timings" in printed
        assert "Decision counters" in printed

    def test_trace_subcommand_no_sim(self, program_file, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(["trace", program_file, "--block-size", "32",
                     "--out", str(out), "--no-sim"])
        assert code == 0
        names = {r["name"] for r in read_jsonl(str(out))
                 if r.get("type") == "span"}
        assert "map.nest" in names
        assert "sim.run" not in names

    def test_trace_subcommand_profile(self, program_file, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(["trace", program_file, "--block-size", "32",
                     "--out", str(out), "--profile"])
        assert code == 0
        kinds = {r["type"] for r in read_jsonl(str(out))}
        assert "profile" in kinds
        assert "profile of span" in capsys.readouterr().out
