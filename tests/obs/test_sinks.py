"""JSONL round-trip, tree rendering, and the cProfile hook."""

from __future__ import annotations

import io
import json

from repro import obs
from repro.obs.profile import profiled
from repro.obs.sinks import CollectorSink, JsonlSink, TreeSink, read_jsonl


def _emit_small_trace():
    with obs.span("pipeline", machine="fig9"):
        with obs.span("tag.iterations") as sp:
            sp.tag(groups=6)
            obs.count("tag.groups_formed", 6)
        with obs.span("cluster.distribute"):
            obs.count("cluster.merges", 3)
    obs.gauge("speedup", 1.17)


class TestJsonlSink:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        direct = CollectorSink()
        with obs.tracing(JsonlSink(str(path)), direct):
            _emit_small_trace()
        loaded = read_jsonl(str(path))
        assert loaded == direct.records
        spans = [r for r in loaded if r["type"] == "span"]
        assert {s["name"] for s in spans} == {
            "pipeline",
            "tag.iterations",
            "cluster.distribute",
        }
        (summary,) = [r for r in loaded if r["type"] == "summary"]
        assert summary["counters"] == {"tag.groups_formed": 6, "cluster.merges": 3}
        assert summary["gauges"] == {"speedup": 1.17}

    def test_every_line_is_standalone_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(JsonlSink(str(path))):
            _emit_small_trace()
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 4  # 3 spans + 1 summary
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_stream_target_not_closed(self):
        stream = io.StringIO()
        with obs.tracing(JsonlSink(stream)):
            with obs.span("s"):
                pass
        assert not stream.closed
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert records[0]["name"] == "s"

    def test_non_json_tags_fall_back_to_repr(self, tmp_path):
        class Opaque:
            def __repr__(self):
                return "<opaque thing>"

        path = tmp_path / "trace.jsonl"
        with obs.tracing(JsonlSink(str(path))):
            with obs.span("s", payload=Opaque()):
                pass
        (record, _summary) = read_jsonl(str(path))
        assert record["tags"]["payload"] == "<opaque thing>"

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span", "name": "a"}\n\n{"type": "summary"}\n')
        assert [r["type"] for r in read_jsonl(str(path))] == ["span", "summary"]


class TestTreeSink:
    def test_render_indents_children_under_parents(self):
        sink = TreeSink(stream=io.StringIO())
        with obs.tracing(sink):
            _emit_small_trace()
        text = sink.render()
        lines = text.splitlines()
        assert lines[0].startswith("pipeline")
        assert lines[1].startswith("  tag.iterations")
        assert lines[2].startswith("  cluster.distribute")
        assert "wall=" in lines[0] and "cpu=" in lines[0]
        assert "groups=6" in lines[1]
        assert "cluster.merges=3" in lines[2]

    def test_render_includes_counter_and_gauge_footer(self):
        stream = io.StringIO()
        with obs.tracing(TreeSink(stream)):
            _emit_small_trace()
        text = stream.getvalue()  # close() wrote the render to the stream
        assert "counters:" in text
        assert "tag.groups_formed" in text
        assert "gauges:" in text
        assert "speedup" in text

    def test_siblings_ordered_by_start_time(self):
        sink = TreeSink(stream=io.StringIO())
        with obs.tracing(sink):
            with obs.span("root"):
                with obs.span("zebra"):
                    pass
                with obs.span("aardvark"):
                    pass
        lines = sink.render().splitlines()
        assert lines[1].lstrip().startswith("zebra")
        assert lines[2].lstrip().startswith("aardvark")


class TestProfiled:
    def test_noop_when_disabled(self):
        with profiled("phase") as sp:
            assert sp is obs.NULL_SPAN
        assert obs.get_recorder() is None

    def test_emits_span_and_profile_record(self):
        col = CollectorSink()
        with obs.tracing(col):
            with profiled("hot.loop", limit=5):
                sum(i * i for i in range(2000))
        (span_record,) = col.spans()
        assert span_record["name"] == "hot.loop"
        assert span_record["tags"]["profiled"] is True
        (profile,) = [r for r in col.records if r["type"] == "profile"]
        assert profile["span"] == "hot.loop"
        assert profile["span_id"] == span_record["id"]
        assert "function calls" in profile["stats"]

    def test_profile_survives_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(JsonlSink(str(path))):
            with profiled("phase"):
                pass
        kinds = [r["type"] for r in read_jsonl(str(path))]
        assert kinds == ["span", "profile", "summary"]
