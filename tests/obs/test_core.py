"""Span nesting, timing monotonicity, counters, and no-op defaults."""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.obs.sinks import CollectorSink


class TestDisabledByDefault:
    def test_disabled_unless_configured(self):
        assert not obs.enabled()
        assert obs.get_recorder() is None

    def test_span_returns_shared_null_span(self):
        first = obs.span("a", x=1)
        second = obs.span("b")
        assert first is obs.NULL_SPAN
        assert first is second

    def test_null_span_supports_full_protocol(self):
        with obs.span("phase") as sp:
            assert sp.tag(k=1) is sp
        assert obs.current_span() is None

    def test_count_and_gauge_are_noops(self):
        obs.count("anything", 5)
        obs.gauge("g", 1.0)
        assert obs.get_recorder() is None

    def test_traced_calls_through(self):
        @obs.traced("fn")
        def add(a, b):
            """docstring survives"""
            return a + b

        assert add(2, 3) == 5
        assert add.__doc__ == "docstring survives"
        assert add.__name__ == "add"

    def test_tracing_scope_restores_disabled_state(self):
        with obs.tracing(CollectorSink()):
            assert obs.enabled()
        assert not obs.enabled()

    def test_tracing_scope_restores_on_error(self):
        try:
            with obs.tracing(CollectorSink()):
                raise ValueError("boom")
        except ValueError:
            pass
        assert not obs.enabled()


class TestSpans:
    def test_nesting_parent_child_ids(self):
        col = CollectorSink()
        with obs.tracing(col):
            with obs.span("outer") as outer:
                with obs.span("mid") as mid:
                    with obs.span("inner") as inner:
                        assert obs.current_span() is inner
                    assert obs.current_span() is mid
            assert obs.current_span() is None
        by_name = {r["name"]: r for r in col.spans()}
        assert by_name["outer"]["parent"] is None
        assert by_name["mid"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["parent"] == by_name["mid"]["id"]
        assert [by_name[n]["depth"] for n in ("outer", "mid", "inner")] == [0, 1, 2]

    def test_spans_emitted_in_completion_order(self):
        col = CollectorSink()
        with obs.tracing(col):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        assert [r["name"] for r in col.spans()] == ["inner", "outer"]

    def test_timing_monotonicity(self):
        col = CollectorSink()
        with obs.tracing(col):
            with obs.span("outer"):
                with obs.span("inner"):
                    time.sleep(0.005)
        by_name = {r["name"]: r for r in col.spans()}
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner["wall_ms"] >= 5.0 * 0.5  # sleep floor, generous for CI
        # A child's wall time can never exceed its enclosing parent's.
        assert outer["wall_ms"] >= inner["wall_ms"]
        # Starts are ordered and relative to the recorder epoch.
        assert 0.0 <= outer["start_s"] <= inner["start_s"]
        # CPU time never exceeds wall time for single-threaded bodies
        # (process_time has coarser resolution; allow a tick of slack).
        assert inner["cpu_ms"] <= inner["wall_ms"] + 1.0

    def test_sequential_spans_do_not_nest(self):
        col = CollectorSink()
        with obs.tracing(col):
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        by_name = {r["name"]: r for r in col.spans()}
        assert by_name["first"]["parent"] is None
        assert by_name["second"]["parent"] is None
        assert by_name["first"]["id"] != by_name["second"]["id"]

    def test_tags_recorded_and_merged(self):
        col = CollectorSink()
        with obs.tracing(col):
            with obs.span("phase", machine="fig9") as sp:
                sp.tag(groups=12)
                sp.tag(groups=13, extra=True)
        (record,) = col.spans()
        assert record["tags"] == {"machine": "fig9", "groups": 13, "extra": True}

    def test_span_closed_on_exception_and_tagged_error(self):
        col = CollectorSink()
        with obs.tracing(col):
            try:
                with obs.span("failing"):
                    raise RuntimeError("nope")
            except RuntimeError:
                pass
            assert obs.current_span() is None
        (record,) = col.spans()
        assert record["tags"]["error"] == "RuntimeError"

    def test_traced_decorator_emits_span(self):
        col = CollectorSink()

        @obs.traced("math.add", flavor="test")
        def add(a, b):
            return a + b

        with obs.tracing(col):
            assert add(1, 2) == 3
        (record,) = col.spans()
        assert record["name"] == "math.add"
        assert record["tags"] == {"flavor": "test"}

    def test_traced_default_name_is_qualname(self):
        col = CollectorSink()

        @obs.traced()
        def helper():
            return 7

        with obs.tracing(col):
            helper()
        (record,) = col.spans()
        assert "helper" in record["name"]

    def test_thread_stacks_are_independent(self):
        col = CollectorSink()
        errors = []

        def worker():
            try:
                assert obs.current_span() is None  # main thread's span invisible
                with obs.span("worker.child") as sp:
                    assert obs.current_span() is sp
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        with obs.tracing(col):
            with obs.span("main.parent"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        assert not errors
        by_name = {r["name"]: r for r in col.spans()}
        assert by_name["worker.child"]["parent"] is None
        assert by_name["worker.child"]["depth"] == 0


class TestCounters:
    def test_global_aggregation(self):
        col = CollectorSink()
        with obs.tracing(col) as recorder:
            obs.count("decisions")
            obs.count("decisions", 4)
            obs.count("other", 2)
            assert recorder.counters == {"decisions": 5, "other": 2}
        summary = col.summary()
        assert summary["counters"] == {"decisions": 5, "other": 2}

    def test_counters_attributed_to_innermost_span(self):
        col = CollectorSink()
        with obs.tracing(col):
            with obs.span("outer"):
                obs.count("a", 1)
                with obs.span("inner"):
                    obs.count("a", 2)
                    obs.count("b")
        by_name = {r["name"]: r for r in col.spans()}
        assert by_name["outer"]["counters"] == {"a": 1}
        assert by_name["inner"]["counters"] == {"a": 2, "b": 1}
        assert col.summary()["counters"] == {"a": 3, "b": 1}

    def test_counts_outside_any_span_still_aggregate(self):
        col = CollectorSink()
        with obs.tracing(col):
            obs.count("loose", 3)
        assert col.summary()["counters"] == {"loose": 3}

    def test_gauges_last_value_wins(self):
        col = CollectorSink()
        with obs.tracing(col):
            obs.gauge("speedup", 1.5)
            obs.gauge("speedup", 2.5)
        assert col.summary()["gauges"] == {"speedup": 2.5}


class TestRecorderLifecycle:
    def test_configure_replaces_and_closes_previous(self):
        first = CollectorSink()
        second = CollectorSink()
        obs.configure(first)
        obs.configure(second)
        assert first.closed
        assert obs.get_recorder() is not None
        obs.shutdown()
        assert second.closed

    def test_summary_emitted_exactly_once(self):
        col = CollectorSink()
        recorder = obs.configure(col)
        obs.shutdown()
        recorder.close()  # idempotent
        assert sum(1 for r in col.records if r["type"] == "summary") == 1

    def test_summary_has_total_wall(self):
        col = CollectorSink()
        with obs.tracing(col):
            time.sleep(0.002)
        assert col.summary()["wall_ms"] > 0
