"""Overhead guard: disabled tracing must cost (essentially) nothing.

Two bounds:

* a micro-bound on the per-call cost of the disabled fast path
  (``span``/``count`` when no recorder is installed), and
* the acceptance bound — the instrumented pipeline with tracing
  *disabled* runs within 2% of the same pipeline with every obs call
  stubbed out to literal no-ops (the closest measurable stand-in for
  un-instrumented code).

Timing comparisons at the 2% level are noise-sensitive, so both sides
use min-of-N and the check retries a few times before failing; a real
regression (a disabled path that allocates or locks) fails every
attempt.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.mapping.distribute import TopologyAwareMapper
from repro.runtime import execute_plan

pytestmark = pytest.mark.perf_smoke


class _StubSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def tag(self, **tags):
        return self


_STUB = _StubSpan()


def _stub_span(name, **tags):
    return _STUB


def _stub_count(name, n=1):
    pass


def _stub_gauge(name, value):
    pass


def _pipeline(program, machine):
    mapper = TopologyAwareMapper(machine, block_size=4 * 8, local_scheduling=True)
    result = mapper.map_nest(program, program.nests[0])
    execute_plan(result.plan())


def _min_of(n, fn, *args):
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledFastPath:
    def test_span_call_is_cheap(self):
        assert not obs.enabled()
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            obs.span("x", a=1)
        per_call = (time.perf_counter() - start) / calls
        # One None-check plus returning a shared singleton; 5µs is ~20x
        # slack over what this costs on any supported interpreter.
        assert per_call < 5e-6, f"disabled span() costs {per_call * 1e6:.2f}µs/call"

    def test_count_call_is_cheap(self):
        assert not obs.enabled()
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            obs.count("x", 2)
        per_call = (time.perf_counter() - start) / calls
        assert per_call < 5e-6, f"disabled count() costs {per_call * 1e6:.2f}µs/call"

    def test_disabled_span_allocates_nothing(self):
        spans = {id(obs.span("a")), id(obs.span("b", k=1)), id(obs.span("c"))}
        assert spans == {id(obs.NULL_SPAN)}


class TestPipelineOverhead:
    LIMIT = 0.02  # the acceptance bound: <2% slowdown with tracing disabled
    REPS = 3
    ATTEMPTS = 5

    def test_disabled_overhead_under_two_percent(self, fig5_program, fig9_machine,
                                                 monkeypatch):
        assert not obs.enabled()
        _pipeline(fig5_program, fig9_machine)  # warm caches/imports

        ratios = []
        for _ in range(self.ATTEMPTS):
            disabled = _min_of(self.REPS, _pipeline, fig5_program, fig9_machine)
            with pytest.MonkeyPatch.context() as patch:
                patch.setattr(obs, "span", _stub_span)
                patch.setattr(obs, "count", _stub_count)
                patch.setattr(obs, "gauge", _stub_gauge)
                stubbed = _min_of(self.REPS, _pipeline, fig5_program, fig9_machine)
            ratio = disabled / stubbed - 1.0
            ratios.append(ratio)
            if ratio < self.LIMIT:
                return
        pytest.fail(
            f"disabled tracing stayed above {self.LIMIT:.0%} overhead in "
            f"{self.ATTEMPTS} attempts: {[f'{r:.2%}' for r in ratios]}"
        )
