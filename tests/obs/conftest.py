"""Obs-layer test isolation: never leak a recorder between tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.shutdown()
    yield
    obs.shutdown()
