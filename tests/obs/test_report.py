"""The report tool: phase table, counter table, and CLI entry point."""

from __future__ import annotations

from repro import obs
from repro.obs.report import (
    counter_table,
    main,
    phase_table,
    render_report,
    tree_view,
)
from repro.obs.sinks import CollectorSink, JsonlSink, read_jsonl


def _row_cells(table_text, first_cell):
    """Cells of the table row whose first column is ``first_cell``."""
    for line in table_text.splitlines():
        cells = [c.strip() for c in line.split("|")]
        if cells and cells[0] == first_cell:
            return cells
    raise AssertionError(f"no row {first_cell!r} in table:\n{table_text}")


def _trace_records():
    col = CollectorSink()
    with obs.tracing(col):
        with obs.span("map.nest"):
            with obs.span("map.tagging"):
                obs.count("tag.groups_formed", 8)
            with obs.span("map.clustering"):
                obs.count("cluster.merges", 5)
        with obs.span("map.nest"):  # second call of the same phase
            pass
        obs.gauge("balance.final_spread", 0.01)
    return col.records


class TestPhaseTable:
    def test_aggregates_calls_per_name(self):
        text = phase_table(_trace_records())
        cells = _row_cells(text, "map.nest")
        assert cells[1] == "2"  # two calls aggregated into one row

    def test_self_time_excludes_direct_children(self):
        records = _trace_records()
        spans = {
            (r["name"], r["id"]): r for r in records if r.get("type") == "span"
        }
        nests = [r for r in records if r.get("type") == "span" and r["name"] == "map.nest"]
        children = [
            r
            for r in records
            if r.get("type") == "span" and r.get("parent") == nests[0]["id"]
        ]
        expected_self = sum(n["wall_ms"] for n in nests) - sum(
            c["wall_ms"] for c in children
        )
        text = phase_table(records)
        reported_self = float(_row_cells(text, "map.nest")[3])
        assert abs(reported_self - expected_self) < 0.01
        assert spans  # sanity: trace was non-empty

    def test_all_phases_present(self):
        text = phase_table(_trace_records())
        for name in ("map.nest", "map.tagging", "map.clustering"):
            assert name in text


class TestCounterTable:
    def test_uses_summary_record(self):
        text = counter_table(_trace_records())
        assert "tag.groups_formed" in text
        assert "cluster.merges" in text
        assert "balance.final_spread" in text  # gauge section

    def test_falls_back_to_span_sum_without_summary(self):
        truncated = [r for r in _trace_records() if r["type"] == "span"]
        text = counter_table(truncated)
        assert "tag.groups_formed" in text
        assert "cluster.merges" in text

    def test_empty_for_counterless_trace(self):
        col = CollectorSink()
        with obs.tracing(col):
            with obs.span("quiet"):
                pass
        records = [r for r in col.records if r["type"] == "span"]
        assert counter_table(records) == ""


class TestRenderReport:
    def test_default_sections(self):
        text = render_report(_trace_records())
        assert "Per-phase timings" in text
        assert "Decision counters" in text

    def test_tree_and_profiles_opt_in(self):
        text = render_report(_trace_records(), tree=True, profiles=True)
        assert "map.tagging" in tree_view(_trace_records())
        assert "(no profile records in trace)" in text


class TestMain:
    def _write_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.tracing(JsonlSink(str(path))):
            with obs.span("map.nest"):
                obs.count("map.nests_mapped")
        return str(path)

    def test_prints_report(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "Per-phase timings" in out
        assert "map.nests_mapped" in out

    def test_tree_flag(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main([path, "--tree"]) == 0
        assert "wall=" in capsys.readouterr().out

    def test_missing_file_errors(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_file_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 1
        assert "no trace records" in capsys.readouterr().err

    def test_round_trip_matches_in_memory_render(self, tmp_path):
        path = self._write_trace(tmp_path)
        records = read_jsonl(path)
        assert render_report(records) == render_report(read_jsonl(path))
