"""Unit tests for the lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def types(source):
    return [t.type for t in tokenize(source)]


class TestBasics:
    def test_empty_input_gives_eof(self):
        assert types("") == [TokenType.EOF]

    def test_number(self):
        tok = tokenize("42")[0]
        assert tok.type is TokenType.NUMBER and tok.value == 42

    def test_identifier(self):
        tok = tokenize("foo_1")[0]
        assert tok.type is TokenType.IDENT and tok.text == "foo_1"

    def test_keywords(self):
        assert types("param array for parallel")[:-1] == [
            TokenType.PARAM,
            TokenType.ARRAY,
            TokenType.FOR,
            TokenType.PARALLEL,
        ]

    def test_int_keyword_is_array(self):
        assert tokenize("int")[0].type is TokenType.ARRAY

    def test_keyword_prefix_is_ident(self):
        assert tokenize("formula")[0].type is TokenType.IDENT


class TestOperators:
    def test_maximal_munch_increment(self):
        assert types("i++")[:-1] == [TokenType.IDENT, TokenType.INCREMENT]

    def test_maximal_munch_le(self):
        assert types("i<=j")[:-1] == [TokenType.IDENT, TokenType.LE, TokenType.IDENT]

    def test_plus_assign(self):
        assert TokenType.PLUS_ASSIGN in types("i += 2")

    def test_eq_vs_assign(self):
        assert types("a == b = c")[:-1] == [
            TokenType.IDENT, TokenType.EQ, TokenType.IDENT,
            TokenType.ASSIGN, TokenType.IDENT,
        ]

    def test_brackets(self):
        assert types("A[i][j]")[:-1] == [
            TokenType.IDENT, TokenType.LBRACKET, TokenType.IDENT, TokenType.RBRACKET,
            TokenType.LBRACKET, TokenType.IDENT, TokenType.RBRACKET,
        ]


class TestCommentsWhitespace:
    def test_line_comment(self):
        assert types("a // comment\n b")[:-1] == [TokenType.IDENT, TokenType.IDENT]

    def test_block_comment(self):
        assert types("a /* x\ny */ b")[:-1] == [TokenType.IDENT, TokenType.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]
        assert toks[2].column == 3

    def test_block_comment_advances_lines(self):
        toks = tokenize("/* a\nb */ x")
        assert toks[0].line == 2


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_number_followed_by_letter(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("\n  @")
        assert exc.value.line == 2

    def test_value_of_non_number(self):
        tok = tokenize("x")[0]
        with pytest.raises(ValueError):
            tok.value
