"""Unit tests for AST -> IR lowering."""

import pytest

from repro.errors import SemanticError
from repro.lang import compile_source


class TestBasicLowering:
    def test_fig4(self, fig4_program):
        nest = fig4_program.nests[0]
        assert nest.dims == ("i1", "i2")
        assert nest.iteration_count() == 4 * 6
        assert nest.parallel

    def test_access_mapping(self, fig4_program):
        nest = fig4_program.nests[0]
        # A[i1+1][i2-1] at iteration (0, 2) touches A[1][1].
        assert nest.accesses[0].element((0, 2)) == (1, 1)

    def test_write_read_split(self, fig4_program):
        nest = fig4_program.nests[0]
        assert len(nest.writes()) == 1
        assert len(nest.reads()) == 1

    def test_compound_assign_adds_read(self):
        prog = compile_source("array A[4]; for (i=0;i<4;i++) A[i] += 1;")
        nest = prog.nests[0]
        assert len(nest.writes()) == 1 and len(nest.reads()) == 1

    def test_plain_assign_no_self_read(self):
        prog = compile_source("array A[4]; array B[4]; for (i=0;i<4;i++) A[i] = B[i];")
        nest = prog.nests[0]
        assert len(nest.reads()) == 1
        assert nest.reads()[0].array.name == "B"

    def test_multiple_nests(self):
        prog = compile_source(
            "array A[4]; array B[4];"
            "for (i=0;i<4;i++) A[i] = 1;"
            "for (j=0;j<4;j++) B[j] = 2;",
            name="two",
        )
        assert len(prog.nests) == 2
        assert prog.nests[0].name == "two_nest0"

    def test_params_recorded(self):
        prog = compile_source("param N = 6; array A[6]; for (i=0;i<N;i++) A[i] = 1;")
        assert prog.params == {"N": 6}


class TestStrideNormalization:
    def test_strided_elements(self):
        prog = compile_source("array C[30]; for (i = 4; i < 20; i += 3) C[i] = 1;")
        nest = prog.nests[0]
        elems = [nest.accesses[0].element(p)[0] for p in nest.iterations()]
        assert elems == [4, 7, 10, 13, 16, 19]

    def test_strided_le_bound(self):
        prog = compile_source("array C[30]; for (i = 0; i <= 10; i += 5) C[i] = 1;")
        nest = prog.nests[0]
        elems = [nest.accesses[0].element(p)[0] for p in nest.iterations()]
        assert elems == [0, 5, 10]

    def test_strided_inner_loop_bound_sees_source_value(self):
        # Inner bound references the *source* value of the outer strided var.
        prog = compile_source(
            "array A[40][40];"
            "for (i = 0; i < 12; i += 4) for (j = 0; j < i + 1; j++) A[i][j] = 1;"
        )
        nest = prog.nests[0]
        pts = list(nest.iterations())
        elems = [nest.accesses[0].element(p) for p in pts]
        assert (0, 0) in elems and (8, 8) in elems and (8, 9) not in elems


class TestShapeRestrictions:
    def test_imperfect_nest_rejected(self):
        with pytest.raises(SemanticError):
            compile_source(
                "array A[4][4];"
                "for (i=0;i<4;i++) { A[i][0] = 1; for (j=0;j<4;j++) A[i][j] = 2; }"
            )

    def test_sibling_loops_rejected(self):
        with pytest.raises(SemanticError):
            compile_source(
                "array A[4][4];"
                "for (i=0;i<4;i++) { for (j=0;j<4;j++) A[i][j] = 1;"
                " for (k=0;k<4;k++) A[i][k] = 2; }"
            )

    def test_multiple_statements_innermost_ok(self):
        prog = compile_source(
            "array A[4]; array B[4];"
            "for (i=0;i<4;i++) { A[i] = 1; B[i] = A[i]; }"
        )
        assert len(prog.nests[0].accesses) == 3

    def test_element_size(self):
        prog = compile_source("array A[4]; for (i=0;i<4;i++) A[i] = 1;", element_size=4)
        assert prog.arrays["A"].element_size == 4
