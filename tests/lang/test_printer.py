"""Unit tests for AST rendering (the `__str__` printers)."""

from repro.lang.ast_nodes import (
    ArrayDeclNode,
    ArrayRef,
    Assign,
    BinOp,
    ForLoop,
    Name,
    Num,
    ParamDecl,
    UnaryOp,
)
from repro.lang.parser import parse


class TestExpressionPrinting:
    def test_binop(self):
        e = BinOp(1, "+", Num(1, 2), Name(1, "i"))
        assert str(e) == "(2 + i)"

    def test_unary(self):
        assert str(UnaryOp(1, "-", Name(1, "i"))) == "(-i)"

    def test_array_ref(self):
        ref = ArrayRef(1, "A", (Num(1, 0), Name(1, "j")))
        assert str(ref) == "A[0][j]"


class TestStatementPrinting:
    def test_assign(self):
        ref = ArrayRef(1, "A", (Name(1, "i"),))
        stmt = Assign(1, ref, Num(1, 1), "+=")
        assert str(stmt) == "A[i] += 1;"

    def test_for_strict(self):
        ref = ArrayRef(1, "A", (Name(1, "i"),))
        loop = ForLoop(1, "i", Num(1, 0), Num(1, 8), True, 1,
                       (Assign(1, ref, Num(1, 1)),), parallel=True)
        text = str(loop)
        assert text.startswith("parallel for (i = 0; i < 8; i++)")

    def test_for_step(self):
        ref = ArrayRef(1, "A", (Name(1, "i"),))
        loop = ForLoop(1, "i", Num(1, 0), Num(1, 8), False, 2,
                       (Assign(1, ref, Num(1, 1)),))
        assert "i <= 8; i += 2" in str(loop)

    def test_decls(self):
        assert str(ParamDecl(1, "N", Num(1, 4))) == "param N = 4;"
        assert str(ArrayDeclNode(1, "A", (Num(1, 4), Num(1, 5)))) == "array A[4][5];"


class TestRoundtrip:
    SOURCES = [
        "param N = 8;\narray A[8];\nfor (i = 0; i < N; i++) A[i] = A[i] + 1;",
        "array B[16];\nparallel for (j = 2; j <= 14; j += 3) B[j] -= 2;",
        "array C[4][4];\nfor (i = 0; i < 4; i++) for (j = 0; j < i + 1; j++) C[i][j] = C[j][i];",
    ]

    def test_print_parse_fixpoint(self):
        for source in self.SOURCES:
            once = str(parse(source))
            twice = str(parse(once))
            assert once == twice
