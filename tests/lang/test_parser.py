"""Unit tests for the parser."""

import pytest

from repro.errors import ParseError
from repro.lang.ast_nodes import ArrayRef, Assign, BinOp, ForLoop, Num
from repro.lang.parser import parse


def single_loop(body="A[i] = A[i] + 1;", header="for (i = 0; i < 10; i++)"):
    return parse(f"array A[10];\n{header} {body}")


class TestDeclarations:
    def test_param(self):
        prog = parse("param N = 4; array A[4]; for (i=0;i<N;i++) A[i] = 1;")
        assert prog.params[0].name == "N"

    def test_param_expression(self):
        prog = parse("param N = 2 * 3 + 1; array A[7];")
        assert isinstance(prog.params[0].value, BinOp)

    def test_array_multi_dim(self):
        prog = parse("array A[4][5][6];")
        assert len(prog.arrays[0].extents) == 3

    def test_int_keyword(self):
        prog = parse("int A[4];")
        assert prog.arrays[0].name == "A"

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("param N = 4")


class TestForLoops:
    def test_basic(self):
        loop = single_loop().loops[0]
        assert loop.var == "i" and loop.step == 1 and loop.upper_strict

    def test_le_condition(self):
        loop = single_loop(header="for (i = 0; i <= 9; i++)").loops[0]
        assert not loop.upper_strict

    def test_step(self):
        loop = single_loop(header="for (i = 0; i < 10; i += 3)").loops[0]
        assert loop.step == 3

    def test_parallel(self):
        prog = parse("array A[4]; parallel for (i=0;i<4;i++) A[i] = 1;")
        assert prog.loops[0].parallel

    def test_nested(self):
        prog = parse(
            "array A[4][4]; for (i=0;i<4;i++) for (j=0;j<4;j++) A[i][j] = 1;"
        )
        inner = prog.loops[0].body[0]
        assert isinstance(inner, ForLoop) and inner.var == "j"

    def test_braced_body(self):
        prog = parse(
            "array A[4]; for (i=0;i<4;i++) { A[i] = 1; A[i] = A[i] + 1; }"
        )
        assert len(prog.loops[0].body) == 2

    def test_condition_var_mismatch(self):
        with pytest.raises(ParseError):
            parse("array A[4]; for (i=0; j<4; i++) A[i] = 1;")

    def test_increment_var_mismatch(self):
        with pytest.raises(ParseError):
            parse("array A[4]; for (i=0; i<4; j++) A[i] = 1;")

    def test_negative_step_rejected(self):
        with pytest.raises(ParseError):
            parse("array A[4]; for (i=0; i<4; i += 0) A[i] = 1;")

    def test_wrong_comparison(self):
        with pytest.raises(ParseError):
            parse("array A[4]; for (i=0; i>4; i++) A[i] = 1;")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("array A[4]; for (i=0;i<4;i++) { A[i] = 1;")

    def test_top_level_assignment_rejected(self):
        with pytest.raises(ParseError):
            parse("array A[4]; A[0] = 1;")


class TestAssignments:
    def test_plain(self):
        stmt = single_loop().loops[0].body[0]
        assert isinstance(stmt, Assign) and stmt.op == "="

    def test_compound_plus(self):
        stmt = single_loop(body="A[i] += 2;").loops[0].body[0]
        assert stmt.op == "+="

    def test_compound_minus(self):
        stmt = single_loop(body="A[i] -= 2;").loops[0].body[0]
        assert stmt.op == "-="

    def test_target_is_array_ref(self):
        stmt = single_loop().loops[0].body[0]
        assert isinstance(stmt.target, ArrayRef)

    def test_missing_operator(self):
        with pytest.raises(ParseError):
            parse("array A[4]; for (i=0;i<4;i++) A[i] 1;")


class TestExpressions:
    def expr(self, text):
        prog = parse(f"array A[100]; for (i=0;i<10;i++) A[i] = {text};")
        return prog.loops[0].body[0].value

    def test_precedence(self):
        e = self.expr("1 + 2 * 3")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_parentheses(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_unary_minus(self):
        e = self.expr("-i + 1")
        assert e.op == "+"

    def test_left_associativity(self):
        e = self.expr("10 - 3 - 2")
        assert e.op == "-" and isinstance(e.left, BinOp)

    def test_array_ref_in_expr(self):
        e = self.expr("A[i + 1] + 1")
        assert isinstance(e.left, ArrayRef)

    def test_nested_subscript(self):
        e = self.expr("A[2 * i + 1]")
        assert isinstance(e, ArrayRef) and isinstance(e.subscripts[0], BinOp)

    def test_number(self):
        assert isinstance(self.expr("7"), Num)

    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            parse("array A[4]; for (i=0;i<4;i++) A[i] = ;")


class TestRendering:
    def test_program_str_roundtrips_through_parser(self):
        src = "param N = 4;\narray A[8];\nfor (i = 0; i < N; i++) A[i + 1] = A[i] + 1;"
        prog = parse(src)
        reparsed = parse(str(prog))
        assert str(reparsed) == str(prog)
