"""Unit tests for static semantics."""

import pytest

from repro.errors import SemanticError
from repro.lang.parser import parse
from repro.lang.semantic import analyze, to_affine
from repro.lang.ast_nodes import Num
from repro.poly.affine import AffineExpr


def check(source):
    return analyze(parse(source))


class TestParams:
    def test_param_binding(self):
        info = check("param N = 4; param M = N * 2; array A[8];")
        assert info.params == {"N": 4, "M": 8}

    def test_duplicate_param(self):
        with pytest.raises(SemanticError):
            check("param N = 1; param N = 2;")

    def test_param_must_be_constant(self):
        with pytest.raises(SemanticError):
            check("param N = M;")

    def test_param_division(self):
        info = check("param N = 7 / 2; array A[3];")
        assert info.params["N"] == 3


class TestArrays:
    def test_extents_folded(self):
        info = check("param N = 3; array A[N + 1][2 * N];")
        assert info.array_extents["A"] == (4, 6)

    def test_duplicate_array(self):
        with pytest.raises(SemanticError):
            check("array A[4]; array A[5];")

    def test_non_positive_extent(self):
        with pytest.raises(SemanticError):
            check("param N = 0; array A[N];")

    def test_array_shadows_param(self):
        with pytest.raises(SemanticError):
            check("param A = 4; array A[4];")


class TestLoops:
    def test_loop_var_shadows_outer(self):
        with pytest.raises(SemanticError):
            check("array A[4][4]; for (i=0;i<4;i++) for (i=0;i<4;i++) A[i][i] = 1;")

    def test_loop_var_shadows_param(self):
        with pytest.raises(SemanticError):
            check("param i = 4; array A[4]; for (i=0;i<4;i++) A[i] = 1;")

    def test_loop_var_shadows_array(self):
        with pytest.raises(SemanticError):
            check("array A[4]; for (A=0;A<4;A++) A[A] = 1;")

    def test_bound_uses_inner_var(self):
        with pytest.raises(SemanticError):
            check("array A[4][4]; for (i=0;i<j;i++) for (j=0;j<4;j++) A[i][j] = 1;")

    def test_bound_uses_outer_var_ok(self):
        info = check("array A[8][8]; for (i=0;i<8;i++) for (j=0;j<i+1;j++) A[i][j] = 1;")
        assert info.loop_vars[0] == ("i", "j")

    def test_parallel_only_outermost(self):
        with pytest.raises(SemanticError):
            check(
                "array A[4][4]; for (i=0;i<4;i++) parallel for (j=0;j<4;j++) A[i][j] = 1;"
            )


class TestReferences:
    def test_undeclared_array(self):
        with pytest.raises(SemanticError):
            check("array A[4]; for (i=0;i<4;i++) B[i] = 1;")

    def test_rank_mismatch(self):
        with pytest.raises(SemanticError):
            check("array A[4][4]; for (i=0;i<4;i++) A[i] = 1;")

    def test_rhs_refs_checked(self):
        with pytest.raises(SemanticError):
            check("array A[4]; for (i=0;i<4;i++) A[i] = C[i];")

    def test_subscript_undeclared_name(self):
        with pytest.raises(SemanticError):
            check("array A[4]; for (i=0;i<4;i++) A[z] = 1;")


class TestToAffine:
    def make(self, text):
        prog = parse(f"array A[100]; for (i=0;i<10;i++) A[{text}] = 1;")
        return prog.loops[0].body[0].target.subscripts[0]

    def test_linear(self):
        e = to_affine(self.make("2 * i + 3"), {}, {"i"})
        assert e == AffineExpr({"i": 2}, 3)

    def test_param_folded(self):
        e = to_affine(self.make("i + N"), {"N": 5}, {"i"})
        assert e == AffineExpr({"i": 1}, 5)

    def test_nonlinear_product(self):
        with pytest.raises(SemanticError):
            to_affine(self.make("i * i"), {}, {"i"})

    def test_symbolic_division(self):
        with pytest.raises(SemanticError):
            to_affine(self.make("i / 2"), {}, {"i"})

    def test_constant_division(self):
        e = to_affine(self.make("7 / 2"), {}, set())
        assert e == AffineExpr.const(3)

    def test_constant_modulo(self):
        e = to_affine(self.make("7 % 3"), {}, set())
        assert e == AffineExpr.const(1)

    def test_division_by_zero(self):
        with pytest.raises(SemanticError):
            to_affine(self.make("4 / 0"), {}, set())

    def test_array_ref_in_affine_position(self):
        with pytest.raises(SemanticError):
            to_affine(self.make("A[i]"), {}, {"i"})

    def test_unary_minus(self):
        e = to_affine(self.make("-i"), {}, {"i"})
        assert e == AffineExpr({"i": -1})

    def test_error_on_number_node_ok(self):
        assert to_affine(Num(1, 9), {}, set()) == AffineExpr.const(9)
