"""Unit tests for result accounting and conservation invariants."""

import pytest

from repro.errors import SimulationError
from repro.sim.stats import LevelStats, SimResult


def make_result(levels, total=100, memory=None):
    memory = memory if memory is not None else levels[-1].misses
    return SimResult(
        label="t",
        machine_name="m",
        cycles=1000,
        core_cycles=(1000,),
        levels=tuple(levels),
        memory_accesses=memory,
        total_accesses=total,
        barriers=0,
        barrier_cycles=0,
    )


class TestLevelStats:
    def test_miss_rate(self):
        stats = LevelStats("L1", hits=75, misses=25)
        assert stats.accesses == 100 and stats.miss_rate == 0.25

    def test_zero_accesses(self):
        assert LevelStats("L1", 0, 0).miss_rate == 0.0

    def test_str(self):
        assert "L1" in str(LevelStats("L1", 1, 1))


class TestConservation:
    def test_valid_chain(self):
        result = make_result(
            [LevelStats("L1", 80, 20), LevelStats("L2", 5, 15)], total=100
        )
        result.verify_conservation()

    def test_l1_mismatch(self):
        result = make_result([LevelStats("L1", 80, 20)], total=99)
        with pytest.raises(SimulationError):
            result.verify_conservation()

    def test_inter_level_mismatch(self):
        result = make_result(
            [LevelStats("L1", 80, 20), LevelStats("L2", 5, 14)], total=100
        )
        with pytest.raises(SimulationError):
            result.verify_conservation()

    def test_memory_mismatch(self):
        result = make_result(
            [LevelStats("L1", 80, 20), LevelStats("L2", 5, 15)],
            total=100,
            memory=14,
        )
        with pytest.raises(SimulationError):
            result.verify_conservation()

    def test_empty_levels_ok(self):
        make_result([LevelStats("L1", 0, 0)], total=0).verify_conservation()


class TestLookup:
    def test_level(self):
        result = make_result([LevelStats("L1", 1, 0), LevelStats("L2", 0, 0)], total=1)
        assert result.level("L2").level == "L2"

    def test_unknown_level(self):
        result = make_result([LevelStats("L1", 1, 0)], total=1)
        with pytest.raises(SimulationError):
            result.level("L9")

    def test_summary(self):
        result = make_result([LevelStats("L1", 1, 0)], total=1)
        assert "cycles" in result.summary()
