"""Unit tests for a single cache component."""

from repro.sim.cachesim import SetAssociativeCache
from repro.topology.cache import CacheSpec


def cache(size=256, ways=2, line=32, latency=2):
    return SetAssociativeCache(CacheSpec("L1", size, ways, line, latency))


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = cache()
        assert not c.access(0)
        assert c.access(0)
        assert c.hits == 1 and c.misses == 1

    def test_geometry(self):
        c = cache(size=256, ways=2, line=32)
        assert c.num_sets == 4 and c.ways == 2

    def test_set_indexing(self):
        c = cache()
        c.access(0)
        # Line 4 maps to set 0 too (4 sets); line 1 maps to set 1.
        assert not c.access(1)
        assert c.contains(0) and c.contains(1)

    def test_contains_no_side_effects(self):
        c = cache()
        c.access(0)
        hits, misses = c.hits, c.misses
        assert c.contains(0)
        assert (c.hits, c.misses) == (hits, misses)


class TestLru:
    def test_eviction_order(self):
        c = cache(size=128, ways=2, line=32)  # 2 sets, 2 ways
        c.access(0)
        c.access(2)  # same set 0 (line % 2)
        c.access(4)  # evicts line 0
        assert not c.contains(0)
        assert c.contains(2) and c.contains(4)

    def test_touch_refreshes(self):
        c = cache(size=128, ways=2, line=32)
        c.access(0)
        c.access(2)
        c.access(0)  # 0 now MRU
        c.access(4)  # evicts 2
        assert c.contains(0) and not c.contains(2)

    def test_evictions_counted(self):
        c = cache(size=128, ways=2, line=32)
        for line in (0, 2, 4, 6):
            c.access(line)
        assert c.evictions == 2

    def test_occupancy_bounded(self):
        c = cache(size=256, ways=2, line=32)
        for line in range(100):
            c.access(line)
        assert c.occupancy() <= c.num_sets * c.ways


class TestMaintenance:
    def test_reset_stats_keeps_contents(self):
        c = cache()
        c.access(5)
        c.reset_stats()
        assert c.hits == 0 and c.misses == 0
        assert c.contains(5)

    def test_flush_keeps_stats(self):
        c = cache()
        c.access(5)
        c.flush()
        assert not c.contains(5)
        assert c.misses == 1

    def test_accesses_property(self):
        c = cache()
        c.access(0)
        c.access(0)
        assert c.accesses == 2
