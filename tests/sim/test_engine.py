"""Unit tests for the multicore simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.mapping.baselines import base_plan
from repro.mapping.distribute import ExecutablePlan, TopologyAwareMapper
from repro.sim.engine import SimConfig, simulate_plan


class TestConfig:
    def test_defaults_valid(self):
        SimConfig()

    def test_bad_quantum(self):
        with pytest.raises(SimulationError):
            SimConfig(quantum=0)

    def test_negative_costs(self):
        with pytest.raises(SimulationError):
            SimConfig(issue_cycles=-1)


class TestSimulation:
    def test_conservation(self, fig5_program, fig9_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        result = simulate_plan(plan)
        result.verify_conservation()

    def test_total_accesses(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        plan = base_plan(nest, fig9_machine)
        result = simulate_plan(plan)
        assert result.total_accesses == nest.iteration_count() * len(nest.accesses)

    def test_deterministic(self, fig5_program, fig9_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        assert simulate_plan(plan).cycles == simulate_plan(plan).cycles

    def test_cycles_at_least_issue_cost(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        plan = base_plan(nest, fig9_machine)
        result = simulate_plan(plan, config=SimConfig(issue_cycles=1))
        per_core = nest.iteration_count() * len(nest.accesses) / 4
        assert result.cycles >= per_core

    def test_machine_override(self, fig5_program, fig9_machine, two_core_machine):
        nest = fig5_program.nests[0]
        plan = base_plan(nest, two_core_machine)
        result = simulate_plan(plan, machine=fig9_machine)
        assert result.machine_name == "fig9"

    def test_plan_larger_than_machine_rejected(self, fig5_program, fig9_machine, two_core_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        with pytest.raises(SimulationError):
            simulate_plan(plan, machine=two_core_machine)

    def test_empty_plan(self, fig5_program, fig9_machine):
        plan = ExecutablePlan(fig9_machine, fig5_program.nests[0], ((), (), (), ()), "empty")
        result = simulate_plan(plan)
        assert result.cycles == 0 and result.total_accesses == 0


class TestBarriers:
    def test_rounds_produce_barriers(self, dependent_program, two_core_machine):
        mapper = TopologyAwareMapper(two_core_machine, block_size=32)
        result = mapper.map_nest(dependent_program, dependent_program.nests[0])
        plan = result.plan()
        if plan.num_rounds > 1:
            sim = simulate_plan(plan)
            assert sim.barriers == plan.num_rounds - 1

    def test_barrier_overhead_increases_cycles(self, dependent_program, two_core_machine):
        mapper = TopologyAwareMapper(two_core_machine, block_size=32)
        plan = mapper.map_nest(dependent_program, dependent_program.nests[0]).plan()
        if plan.num_rounds > 1:
            cheap = simulate_plan(plan, config=SimConfig(barrier_overhead=0)).cycles
            costly = simulate_plan(plan, config=SimConfig(barrier_overhead=500)).cycles
            assert costly > cheap


class TestSharingEffects:
    """The physical effects the paper's motivation (Figure 3) describes."""

    def test_colocated_sharers_beat_separated(self, fig9_machine, fig5_program):
        """Figure 3(b): sharers on affinity cores avoid replication."""
        nest = fig5_program.nests[0]
        pts = list(nest.iterations())
        half = len(pts) // 2
        # Same iterations, two distributions: interleaved (sharers split
        # across non-affinity cores 0 and 2) vs paired (sharers on 0, 1).
        split = ExecutablePlan(
            fig9_machine, nest,
            ((tuple(pts[:half]),), (tuple(),), (tuple(pts[half:]),), (tuple(),)),
            "split",
        )
        paired = ExecutablePlan(
            fig9_machine, nest,
            ((tuple(pts[:half]),), (tuple(pts[half:]),), (tuple(),), (tuple(),)),
            "paired",
        )
        r_split = simulate_plan(split)
        r_paired = simulate_plan(paired)
        # The paired placement can share the L2; it must not lose.
        assert r_paired.level("L2").misses <= r_split.level("L2").misses

    def test_quantum_insensitivity(self, stencil_program, fig9_machine):
        # Interleaving granularity must not change the outcome materially
        # once traces are much longer than the quantum.
        plan = base_plan(stencil_program.nests[0], fig9_machine)
        a = simulate_plan(plan, config=SimConfig(quantum=1)).cycles
        b = simulate_plan(plan, config=SimConfig(quantum=16)).cycles
        assert abs(a - b) / max(a, 1) < 0.15
