"""Unit tests for dynamic self-scheduling simulation."""

import pytest

from repro.errors import SimulationError
from repro.sim.dynamic import simulate_dynamic
from repro.sim.engine import SimConfig


class TestDynamic:
    def test_processes_every_access(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        result = simulate_dynamic(nest, fig9_machine, chunk_iterations=4)
        assert result.total_accesses == nest.iteration_count() * len(nest.accesses)
        result.verify_conservation()

    def test_dispatch_overhead_costs(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        cheap = simulate_dynamic(nest, fig9_machine, chunk_iterations=4, dispatch_overhead=0)
        costly = simulate_dynamic(nest, fig9_machine, chunk_iterations=4, dispatch_overhead=1000)
        assert costly.cycles > cheap.cycles

    def test_smaller_chunks_more_overhead(self, stencil_program, fig9_machine):
        nest = stencil_program.nests[0]
        fine = simulate_dynamic(nest, fig9_machine, chunk_iterations=2, dispatch_overhead=500)
        coarse = simulate_dynamic(nest, fig9_machine, chunk_iterations=64, dispatch_overhead=500)
        assert fine.cycles > coarse.cycles

    def test_invalid_args(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        with pytest.raises(SimulationError):
            simulate_dynamic(nest, fig9_machine, chunk_iterations=0)
        with pytest.raises(SimulationError):
            simulate_dynamic(nest, fig9_machine, dispatch_overhead=-1)

    def test_deterministic(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        a = simulate_dynamic(nest, fig9_machine, chunk_iterations=4)
        b = simulate_dynamic(nest, fig9_machine, chunk_iterations=4)
        assert a.cycles == b.cycles

    def test_config_issue_cycles(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        slow = simulate_dynamic(
            nest, fig9_machine, config=SimConfig(issue_cycles=10)
        )
        fast = simulate_dynamic(
            nest, fig9_machine, config=SimConfig(issue_cycles=0)
        )
        assert slow.cycles > fast.cycles

    def test_label(self, fig5_program, fig9_machine):
        assert simulate_dynamic(fig5_program.nests[0], fig9_machine).label == "dynamic"
