"""Additional engine coverage: level ordering, deep machines, reuse of sims."""

from repro.mapping.baselines import base_plan
from repro.sim.engine import SimConfig, simulate_plan
from repro.sim.hierarchy import MachineSim


class TestDeepMachines:
    def test_four_level_ordering(self, fig5_program):
        from repro.experiments.harness import sim_machine
        from repro.topology.machines import arch_i

        machine = sim_machine(arch_i())
        plan = base_plan(fig5_program.nests[0], machine)
        result = simulate_plan(plan)
        assert [s.level for s in result.levels] == ["L1", "L2", "L3", "L4"]
        result.verify_conservation()

    def test_idle_cores_allowed(self, fig5_program, fig9_machine, two_core_machine):
        # A 2-core plan on a 4-core machine: extra cores idle.
        plan = base_plan(fig5_program.nests[0], two_core_machine)
        result = simulate_plan(plan, machine=fig9_machine)
        assert result.cycles > 0


class TestWarmSimReuse:
    def test_second_run_hits_warm_caches(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        plan = base_plan(nest, fig9_machine)
        shared = MachineSim(fig9_machine)
        cold = simulate_plan(plan, machine_sim=shared)
        shared.reset_stats()
        warm = simulate_plan(plan, machine_sim=shared)
        assert warm.memory_accesses <= cold.memory_accesses
        assert warm.cycles <= cold.cycles

    def test_fresh_sim_each_call_by_default(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        plan = base_plan(nest, fig9_machine)
        a = simulate_plan(plan)
        b = simulate_plan(plan)
        assert a.memory_accesses == b.memory_accesses


class TestBarrierAccounting:
    def test_barrier_cycles_counted(self, dependent_program, two_core_machine):
        from repro.mapping.distribute import TopologyAwareMapper

        mapper = TopologyAwareMapper(two_core_machine, block_size=32)
        plan = mapper.map_nest(dependent_program, dependent_program.nests[0]).plan()
        if plan.num_rounds > 1:
            result = simulate_plan(plan, config=SimConfig(barrier_overhead=0))
            # barrier_cycles counts wait time only (slowest minus each).
            assert result.barrier_cycles >= 0
            assert result.barriers == plan.num_rounds - 1
