"""Differential tests: the batched simulation backend vs the oracle.

Every test here asserts *bit-identity* — full :class:`SimResult`
equality plus final per-component cache state (hits, misses, evictions
and the resident dicts with their LRU order) — between the per-access
oracle engine (``backend="python"``) and the batched engine, across
machines with shared and fully private hierarchies, randomized plans and
quantum settings.  The kernel-level tests additionally compare the
vectorized LRU pass against the dict reference on adversarial streams.

These run under tier-1 with and without numpy (the no-numpy CI job
exercises the batched *scalar* engine through the same assertions).
"""

import random

import pytest

from repro import kernels
from repro.errors import KernelError, SimulationError
from repro.kernels import cachesim as kc
from repro.mapping.baselines import base_plan, base_plus_plan, chunk_iterations
from repro.mapping.distribute import ExecutablePlan
from repro.runtime import execute_program
from repro.sim.cachesim import SetAssociativeCache
from repro.sim.engine import SIM_BACKENDS, SimConfig, simulate_plan
from repro.sim.hierarchy import MachineSim
from repro.topology.cache import CacheSpec
from repro.topology.machines import harpertown
from repro.topology.tree import Machine, TopologyNode

HAVE_NUMPY = kernels.have_numpy()
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def _private_machine() -> Machine:
    """Four cores, private L1+L2, memory root — the pure-batch regime."""
    l1 = CacheSpec("L1", 1024, 2, 32, 2)
    l2 = CacheSpec("L2", 4096, 4, 32, 8)
    cores = [TopologyNode.core(i) for i in range(4)]
    l1s = [TopologyNode.cache(l1, [c]) for c in cores]
    l2s = [TopologyNode.cache(l2, [n]) for n in l1s]
    return Machine("priv4", 1.0, 60, TopologyNode.memory(l2s), sockets=1)


def _machine_state(msim: MachineSim):
    return [
        (cache.hits, cache.misses, cache.evictions,
         [list(bucket) for bucket in cache.sets])
        for cache in msim.components.values()
    ]


def assert_engines_agree(plan, machine, **config_kwargs):
    """Oracle vs batched: same result, same final cache state."""
    oracle_sim = MachineSim(machine)
    batched_sim = MachineSim(machine)
    oracle = simulate_plan(
        plan, machine=machine,
        config=SimConfig(backend="python", **config_kwargs),
        machine_sim=oracle_sim,
    )
    batched = simulate_plan(
        plan, machine=machine,
        config=SimConfig(backend="auto", **config_kwargs),
        machine_sim=batched_sim,
    )
    assert oracle == batched
    assert _machine_state(oracle_sim) == _machine_state(batched_sim)
    return oracle


CONFIGS = (
    {},
    {"quantum": 1},
    {"quantum": 3, "issue_cycles": 0, "barrier_overhead": 7},
)


class TestBackendSelection:
    def test_backends_exported(self):
        assert SIM_BACKENDS == ("auto", "python", "numpy")

    def test_bad_backend_rejected(self):
        with pytest.raises(SimulationError):
            SimConfig(backend="bogus")

    def test_numpy_backend_without_numpy_raises(
        self, fig5_program, fig9_machine, monkeypatch
    ):
        monkeypatch.setattr(kernels, "_numpy_probe", False)
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        with pytest.raises(KernelError):
            simulate_plan(plan, config=SimConfig(backend="numpy"))

    def test_port_occupancy_rejects_numpy_backend(
        self, fig5_program, fig9_machine
    ):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        with pytest.raises(SimulationError):
            simulate_plan(
                plan, config=SimConfig(port_occupancy=2, backend="numpy")
            )

    def test_port_occupancy_auto_uses_oracle(self, fig5_program, fig9_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        via_auto = simulate_plan(
            plan, config=SimConfig(port_occupancy=2, backend="auto")
        )
        via_python = simulate_plan(
            plan, config=SimConfig(port_occupancy=2, backend="python")
        )
        assert via_auto == via_python


class TestDifferential:
    @pytest.mark.parametrize("config_kwargs", CONFIGS)
    @pytest.mark.parametrize("scheme", ["base", "base+"])
    def test_shared_hierarchy(
        self, fig5_program, fig9_machine, scheme, config_kwargs
    ):
        nest = fig5_program.nests[0]
        builder = base_plan if scheme == "base" else base_plus_plan
        plan = builder(nest, fig9_machine)
        result = assert_engines_agree(plan, fig9_machine, **config_kwargs)
        result.verify_conservation()

    @pytest.mark.parametrize("config_kwargs", CONFIGS)
    def test_private_hierarchy(self, stencil_program, config_kwargs):
        machine = _private_machine()
        plan = base_plan(stencil_program.nests[0], machine)
        result = assert_engines_agree(plan, machine, **config_kwargs)
        result.verify_conservation()

    def test_two_core_shared(self, stencil_program, two_core_machine):
        plan = base_plus_plan(stencil_program.nests[0], two_core_machine)
        assert_engines_agree(plan, two_core_machine)

    def test_commercial_machine(self, stencil_program):
        machine = harpertown().with_scaled_caches(1.0 / 256)
        plan = base_plan(stencil_program.nests[0], machine)
        assert_engines_agree(plan, machine, quantum=2)

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_plans(self, stencil_program, fig9_machine, seed):
        """Shuffled iteration orders split into random multi-round plans."""
        nest = stencil_program.nests[0]
        rng = random.Random(seed)
        points = list(chunk_iterations(nest, 1)[0])
        rng.shuffle(points)
        num_cores = fig9_machine.num_cores
        num_rounds = rng.randrange(1, 4)
        rounds = [[[] for _ in range(num_rounds)] for _ in range(num_cores)]
        for point in points:
            rounds[rng.randrange(num_cores)][rng.randrange(num_rounds)].append(point)
        plan = ExecutablePlan(
            fig9_machine,
            nest,
            tuple(tuple(tuple(rnd) for rnd in core) for core in rounds),
            f"random-{seed}",
        )
        config = rng.choice(CONFIGS)
        assert_engines_agree(plan, fig9_machine, **config)

    def test_warm_caches_program(self, stencil_program, fig9_machine):
        """Back-to-back plans on one shared MachineSim (warm-start path)."""
        nest = stencil_program.nests[0]
        plans = [base_plan(nest, fig9_machine), base_plus_plan(nest, fig9_machine)]

        def run(backend):
            return execute_program(
                plans, machine=fig9_machine,
                config=SimConfig(backend=backend), warm_caches=True,
            )

        assert run("python") == run("auto")


class TestScalarBatchedEngine:
    """The batched engine with numpy unavailable (the no-numpy CI path)."""

    def test_matches_oracle(self, stencil_program, fig9_machine, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_probe", False)
        plan = base_plus_plan(stencil_program.nests[0], fig9_machine)
        assert_engines_agree(plan, fig9_machine, quantum=2)

    def test_private_machine(self, stencil_program, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_probe", False)
        machine = _private_machine()
        plan = base_plan(stencil_program.nests[0], machine)
        assert_engines_agree(plan, machine)


@needs_numpy
class TestKernelDifferential:
    """The vectorized LRU pass vs the dict reference, stream by stream."""

    def _random_case(self, rng):
        ways = rng.choice([1, 2, 4])
        num_sets = rng.choice([1, 2, 4, 8])
        spec = CacheSpec("L1", num_sets * ways * 32, ways, 32, 2)
        return SetAssociativeCache(spec), SetAssociativeCache(spec)

    def _check(self, ref, vec, lines):
        import numpy as np

        ref_hits = [ref.access(line) for line in lines]
        vec_hits = kc.simulate_level(
            vec, np.array(lines, dtype=np.int64), use_numpy=True
        )
        assert list(vec_hits) == ref_hits
        assert (ref.hits, ref.misses, ref.evictions) == (
            vec.hits, vec.misses, vec.evictions,
        )
        assert [list(b) for b in ref.sets] == [list(b) for b in vec.sets]

    @pytest.mark.parametrize("seed", range(8))
    def test_random_streams(self, seed, monkeypatch):
        monkeypatch.setattr(kc, "MIN_NUMPY_STREAM", 0)
        rng = random.Random(seed)
        ref, vec = self._random_case(rng)
        universe = rng.randrange(3, 50)
        lines = [rng.randrange(universe) for _ in range(rng.randrange(1, 500))]
        self._check(ref, vec, lines)

    @pytest.mark.parametrize("seed", range(4))
    def test_warm_start(self, seed, monkeypatch):
        """A second stream sees the first stream's resident state."""
        monkeypatch.setattr(kc, "MIN_NUMPY_STREAM", 0)
        rng = random.Random(1000 + seed)
        ref, vec = self._random_case(rng)
        for _ in range(3):
            lines = [rng.randrange(40) for _ in range(rng.randrange(1, 200))]
            self._check(ref, vec, lines)

    def test_guard_decline_is_exact(self, monkeypatch):
        """With the work guard forced to trip, the fallback still matches."""
        monkeypatch.setattr(kc, "MIN_NUMPY_STREAM", 0)
        monkeypatch.setattr(kc, "UNRESOLVED_WORK_FACTOR", 0)
        rng = random.Random(7)
        ref, vec = self._random_case(rng)
        # Medium-distance reuse mix: maximizes unresolved filter leftovers.
        lines = [rng.randrange(12) for _ in range(300)]
        kernels.reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="sim-unresolved"):
            self._check(ref, vec, lines)

    def test_short_stream_uses_scalar(self):
        """Below MIN_NUMPY_STREAM the scalar loop runs — still exact."""
        spec = CacheSpec("L1", 256, 2, 32, 2)
        ref, vec = SetAssociativeCache(spec), SetAssociativeCache(spec)
        lines = [1, 2, 3, 1, 2, 9, 1, 17, 1]
        self._check(ref, vec, lines)


@needs_numpy
class TestBenchSmoke:
    """Tiny-config structure check for the perf suite (fast, tier-1)."""

    def test_entry_structure(self):
        from repro.sim.bench import SMOKE_N, bench_sim

        entry = bench_sim("private-l1l2", 8, n=SMOKE_N, repeats=1)
        assert entry["accesses"] == SMOKE_N * SMOKE_N * 4
        assert entry["cycles"] > 0
        assert entry["speedup"] > 0
        assert set(entry) == {
            "machine", "quantum", "accesses", "cycles",
            "python_ms", "numpy_ms", "speedup",
        }
