"""Unit tests for the machine-level cache instantiation."""

import pytest

from repro.errors import SimulationError
from repro.sim.hierarchy import MachineSim
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode


class TestWiring:
    def test_one_component_per_cache_node(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        assert len(sim.components) == 4 + 2 + 1

    def test_shared_component_is_same_object(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        l2_of_0 = sim.core_paths[0][1][0]
        l2_of_1 = sim.core_paths[1][1][0]
        l2_of_2 = sim.core_paths[2][1][0]
        assert l2_of_0 is l2_of_1
        assert l2_of_0 is not l2_of_2

    def test_path_latencies(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        assert [entry[1] for entry in sim.core_paths[0]] == [2, 8, 20]

    def test_shared_flags(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        # L1 private, L2 and L3 shared.
        assert [entry[3] for entry in sim.core_paths[0]] == [False, True, True]

    def test_mixed_line_sizes_rejected(self):
        l1 = CacheSpec("L1", 512, 2, 32, 2)
        l2 = CacheSpec("L2", 2048, 4, 64, 8)
        core = TopologyNode.core(0)
        root = TopologyNode.cache(l2, [TopologyNode.cache(l1, [core])])
        machine = Machine("mixed", 1.0, 50, root, sockets=1)
        with pytest.raises(SimulationError):
            MachineSim(machine)


class TestAccessSemantics:
    def test_fill_path(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        assert sim.access(0, 0) == fig9_machine.memory_latency
        # Second access hits L1.
        assert sim.access(0, 0) == 2

    def test_sibling_hits_shared_l2(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        sim.access(0, 7)
        # Core 1 misses its L1 but hits the shared L2.
        assert sim.access(1, 7) == 8

    def test_non_sibling_hits_l3(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        sim.access(0, 7)
        assert sim.access(2, 7) == 20

    def test_line_of(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        assert sim.line_of(0) == 0
        assert sim.line_of(31) == 0
        assert sim.line_of(32) == 1

    def test_level_components(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        by_level = sim.level_components()
        assert len(by_level["L1"]) == 4
        assert len(by_level["L2"]) == 2
        assert len(by_level["L3"]) == 1

    def test_flush_and_reset(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        sim.access(0, 0)
        sim.flush()
        assert sim.access(0, 0) == fig9_machine.memory_latency
        sim.reset_stats()
        assert all(c.accesses == 0 for c in sim.components.values())
