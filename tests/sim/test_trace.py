"""Unit tests for memory layout and trace generation."""

import pytest

from repro.errors import SimulationError
from repro.ir.arrays import Array
from repro.mapping.baselines import base_plan
from repro.sim.trace import MemoryLayout, build_traces


class TestLayout:
    def test_line_aligned_bases(self):
        layout = MemoryLayout([Array("A", (10,), 8), Array("B", (4,), 8)], 64)
        assert layout.bases["A"] == 0
        assert layout.bases["B"] % 64 == 0
        assert layout.bases["B"] >= 80

    def test_no_overlap(self):
        arrays = [Array("A", (100,), 8), Array("B", (100,), 8)]
        layout = MemoryLayout(arrays, 64)
        assert layout.bases["B"] >= layout.bases["A"] + 800

    def test_duplicate_rejected(self):
        with pytest.raises(SimulationError):
            MemoryLayout([Array("A", (4,)), Array("A", (4,))], 64)

    def test_bad_line_size(self):
        with pytest.raises(SimulationError):
            MemoryLayout([Array("A", (4,))], 48)

    def test_address_of(self):
        layout = MemoryLayout([Array("A", (10,), 8)], 64)
        assert layout.address_of(Array("A", (10,), 8), 3) == 24

    def test_start_offset(self):
        layout = MemoryLayout([Array("A", (4,), 8)], 64, start=100)
        assert layout.bases["A"] == 128


class TestTraces:
    def test_trace_shape(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        plan = base_plan(nest, fig9_machine)
        layout = MemoryLayout.for_nest(nest, 32)
        traces = build_traces(plan, layout, 5)
        assert len(traces) == 4
        total = sum(len(lines) for core in traces for lines in core)
        assert total == nest.iteration_count() * len(nest.accesses)

    def test_addresses_match_accesses(self, fig4_program, fig9_machine):
        nest = fig4_program.nests[0]
        plan = base_plan(nest, fig9_machine)
        layout = MemoryLayout.for_nest(nest, 32)
        traces = build_traces(plan, layout, 5)
        # Reconstruct expected line for the first iteration of core 0.
        first = plan.core_iterations(0)[0]
        array = nest.accesses[0].array
        expected = (
            layout.bases[array.name]
            + nest.accesses[0].element_offset(first) * array.element_size
        ) >> 5
        assert traces[0][0][0] == expected

    def test_program_order_within_iteration(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        plan = base_plan(nest, fig9_machine)
        layout = MemoryLayout.for_nest(nest, 32)
        traces = build_traces(plan, layout, 5)
        refs = len(nest.accesses)
        first = plan.core_iterations(0)[0]
        got = traces[0][0][:refs]
        expected = [
            (layout.bases["B"] + a.element_offset(first) * 8) >> 5
            for a in nest.accesses
        ]
        assert got == expected
