"""Unit tests for shared-port contention modeling."""

from repro.mapping.baselines import base_plan
from repro.sim.engine import SimConfig, simulate_plan
from repro.sim.hierarchy import MachineSim


class TestAccessTimed:
    def test_no_contention_matches_plain(self, fig9_machine):
        a = MachineSim(fig9_machine)
        b = MachineSim(fig9_machine)
        for line in (0, 7, 0, 9):
            plain = a.access(0, line)
            timed = b.access_timed(0, line, now=10_000, occupancy=0)
            assert plain == timed

    def test_queueing_adds_delay(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        # Two sibling cores probe the shared L2 at the same instant: the
        # second must queue behind the first.
        first = sim.access_timed(0, 100, now=0, occupancy=4)
        second = sim.access_timed(1, 200, now=0, occupancy=4)
        assert second > sim.memory_latency  # memory miss + queue wait

    def test_private_l1_never_queues(self, fig9_machine):
        sim = MachineSim(fig9_machine)
        sim.access_timed(0, 0, now=0, occupancy=4)
        # An L1 hit by the same core shortly after pays only L1 latency.
        hit = sim.access_timed(0, 0, now=1, occupancy=4)
        assert hit == 2


class TestEngineContention:
    def test_contention_increases_cycles(self, stencil_program, fig9_machine):
        plan = base_plan(stencil_program.nests[0], fig9_machine)
        free = simulate_plan(plan, config=SimConfig(port_occupancy=0))
        contended = simulate_plan(plan, config=SimConfig(port_occupancy=4))
        assert contended.cycles > free.cycles

    def test_hit_miss_counts_unchanged(self, stencil_program, fig9_machine):
        plan = base_plan(stencil_program.nests[0], fig9_machine)
        free = simulate_plan(plan, config=SimConfig(port_occupancy=0))
        contended = simulate_plan(plan, config=SimConfig(port_occupancy=4))
        # Contention shifts time, not cache behaviour (same interleaving
        # granularity, same traces).
        assert contended.total_accesses == free.total_accesses
        assert contended.verify_conservation() is None
