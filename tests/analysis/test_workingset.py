"""Unit tests for working-set / replication analysis."""

import pytest

from repro.blocks.datablocks import DataBlockPartition
from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper, base_plan
from repro.analysis import analyze_plan, replication_factor, sharing_matrix


@pytest.fixture(scope="module")
def mirror_setup():
    m = 1024
    program = compile_source(
        f"""
        array Q[{m}];
        array F[{m}];
        parallel for (j = 0; j < {m}; j++)
          F[j] = F[j] + Q[j] + Q[{m - 1} - j];
        """,
        name="mirror",
    )
    partition = DataBlockPartition(list(program.arrays.values()), 512)
    return program, partition


class TestReplication:
    def test_base_replicates_mirror_reads(self, mirror_setup, fig9_machine):
        program, partition = mirror_setup
        nest = program.nests[0]
        base = base_plan(nest, fig9_machine)
        mapper = TopologyAwareMapper(fig9_machine, block_size=512, balance_threshold=0.02)
        ta = mapper.map_nest(program, nest).plan()
        base_rep = replication_factor(base, partition, "L2")
        ta_rep = replication_factor(ta, partition, "L2")
        # The mirrored Q reads force Base to pull each Q block under both
        # L2s; TopologyAware co-locates the mirror pairs.
        assert base_rep > ta_rep
        assert ta_rep == pytest.approx(1.0, abs=0.2)

    def test_replication_at_least_one(self, mirror_setup, fig9_machine):
        program, partition = mirror_setup
        plan = base_plan(program.nests[0], fig9_machine)
        for level in ("L1", "L2", "L3"):
            assert replication_factor(plan, partition, level) >= 1.0

    def test_single_shared_level_is_one(self, mirror_setup, fig9_machine):
        program, partition = mirror_setup
        plan = base_plan(program.nests[0], fig9_machine)
        # Everything sits under the single L3: no replication possible.
        assert replication_factor(plan, partition, "L3") == pytest.approx(1.0)


class TestSharingMatrix:
    def test_symmetric_with_self_counts(self, mirror_setup, fig9_machine):
        program, partition = mirror_setup
        plan = base_plan(program.nests[0], fig9_machine)
        matrix = sharing_matrix(plan, partition)
        n = len(matrix)
        for a in range(n):
            for b in range(n):
                assert matrix[a][b] == matrix[b][a]
            assert matrix[a][a] >= max(matrix[a])


class TestAnalyzePlan:
    def test_alignment_improves_with_topology_aware(self, mirror_setup, fig9_machine):
        program, partition = mirror_setup
        nest = program.nests[0]
        base = analyze_plan(base_plan(nest, fig9_machine), partition)
        mapper = TopologyAwareMapper(fig9_machine, block_size=512, balance_threshold=0.02)
        ta = analyze_plan(mapper.map_nest(program, nest).plan(), partition)
        assert ta.sharing_alignment >= base.sharing_alignment

    def test_table_renders(self, mirror_setup, fig9_machine):
        program, partition = mirror_setup
        analysis = analyze_plan(base_plan(program.nests[0], fig9_machine), partition)
        text = analysis.table()
        assert "replication" in text and "alignment" in text

    def test_core_block_counts(self, mirror_setup, fig9_machine):
        program, partition = mirror_setup
        analysis = analyze_plan(base_plan(program.nests[0], fig9_machine), partition)
        assert len(analysis.core_block_counts) == 4
        assert all(c > 0 for c in analysis.core_block_counts)
