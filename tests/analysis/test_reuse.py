"""Unit tests for reuse-distance profiles."""

import pytest

from repro.errors import SimulationError
from repro.analysis import reuse_distance_profile
from repro.analysis.reuse import _distances
from repro.lang import compile_source
from repro.mapping import TopologyAwareMapper, base_plan


class TestDistances:
    def test_first_touches(self):
        first, hist = _distances([1, 2, 3])
        assert first == 3 and hist == {}

    def test_immediate_reuse(self):
        first, hist = _distances([1, 1])
        assert first == 1 and hist == {0: 1}

    def test_distance_counts_distinct(self):
        # 1 .. 2 2 3 .. 1: between the two 1s, distinct lines {2, 3}.
        first, hist = _distances([1, 2, 2, 3, 1])
        assert hist[2] == 1  # the second 1
        assert hist[0] == 1  # the second 2

    def test_empty(self):
        assert _distances([]) == (0, {})


class TestProfile:
    @pytest.fixture(scope="class")
    def setup(self, ):
        m = 512
        program = compile_source(
            f"""
            array Q[{m}];
            array F[{m}];
            parallel for (j = 0; j < {m}; j++)
              F[j] = F[j] + Q[j] + Q[{m - 1} - j];
            """,
            name="mirror",
        )
        return program

    def test_accounting(self, setup, fig9_machine):
        plan = base_plan(setup.nests[0], fig9_machine)
        profile = reuse_distance_profile(plan, core=0, line_size=32)
        bucketed = sum(count for _, count in profile.histogram)
        assert profile.first_touches + bucketed == profile.total_accesses

    def test_hits_monotone_in_capacity(self, setup, fig9_machine):
        plan = base_plan(setup.nests[0], fig9_machine)
        profile = reuse_distance_profile(plan, core=0, line_size=32)
        assert profile.hits_under(16) <= profile.hits_under(256)

    def test_scheduling_shortens_distances(self, setup, fig9_machine):
        """The combined scheme chains mirror pairs: far more short-distance
        reuse than Base's order at small capacities."""
        nest = setup.nests[0]
        base = base_plan(nest, fig9_machine)
        mapper = TopologyAwareMapper(
            fig9_machine, block_size=256, balance_threshold=0.02, local_scheduling=True
        )
        ta = mapper.map_nest(setup, nest).plan()
        base_profile = reuse_distance_profile(base, core=0, line_size=32)
        ta_profile = reuse_distance_profile(ta, core=0, line_size=32)
        assert ta_profile.hit_ratio_under(64) >= base_profile.hit_ratio_under(64)

    def test_bad_core(self, setup, fig9_machine):
        plan = base_plan(setup.nests[0], fig9_machine)
        with pytest.raises(SimulationError):
            reuse_distance_profile(plan, core=99)
