"""Shared fixtures for the remapper tests: one small parallel stencil
and one sequential banded loop on the 8-core bench machine."""

from __future__ import annotations

import pytest

from repro.lang import compile_source
from repro.pipeline.bench import bench_machine
from repro.pipeline.knobs import Knobs

STENCIL_SOURCE = """
array U[14][14];
array V[14][14];
parallel for (i = 1; i <= 12; i++)
  for (j = 1; j <= 12; j++)
    V[i][j] = U[i][j] + U[i - 1][j] + U[i + 1][j] + U[i][j - 1];
"""

# 192 elements: the smallest banded size whose group dependence graph
# schedules across every machine state the differential histories visit
# (some smaller sizes hit cross-core cycles — a mapper property).
BANDED_SOURCE = """
param k = 2;
array B[192];
for (j = 4; j < 188; j++)
  B[j] = B[j] + B[j - 2*2];
"""


@pytest.fixture
def stencil_program():
    return compile_source(STENCIL_SOURCE, name="stencil")


@pytest.fixture
def banded_program():
    return compile_source(BANDED_SOURCE, name="banded")


@pytest.fixture
def machine():
    return bench_machine(8)


@pytest.fixture
def knobs():
    return Knobs(block_size=64, alpha=0.5, beta=0.5, local_scheduling=True)
