"""Wire codec and validation of remap events."""

from __future__ import annotations

import pytest

from repro.errors import RemapError
from repro.remap.events import (
    CoreHotplug,
    CoreLoss,
    PhaseChange,
    TopologyEdit,
    event_kind,
    event_to_dict,
    parse_event,
)


class TestPhaseChange:
    def test_of_sorts_and_exposes_changes(self):
        event = PhaseChange.of(beta=0.2, alpha=0.8)
        assert event.knobs == (("alpha", 0.8), ("beta", 0.2))
        assert event.knob_changes == {"alpha": 0.8, "beta": 0.2}
        assert event.nest is None

    def test_unknown_knob_rejected(self):
        with pytest.raises(RemapError, match="unknown knobs"):
            PhaseChange.of(warp_speed=9)

    def test_round_trip(self):
        event = PhaseChange.of(nest="kernel", alpha=0.8)
        decoded = parse_event(event_to_dict(event))
        assert decoded == event

    def test_parse_requires_knobs_object(self):
        with pytest.raises(RemapError, match="knobs"):
            parse_event({"kind": "phase_change"})
        with pytest.raises(RemapError, match="knobs"):
            parse_event({"kind": "phase_change", "knobs": [1, 2]})

    def test_parse_validates_nest_type(self):
        with pytest.raises(RemapError, match="nest"):
            parse_event(
                {"kind": "phase_change", "knobs": {"alpha": 0.5}, "nest": 3}
            )


class TestCoreEvents:
    @pytest.mark.parametrize("cls", [CoreLoss, CoreHotplug])
    def test_validation(self, cls):
        with pytest.raises(RemapError, match="at least one"):
            cls(())
        with pytest.raises(RemapError, match="non-negative"):
            cls((-1,))
        with pytest.raises(RemapError, match="duplicate"):
            cls((1, 1))

    def test_round_trip(self):
        for event in (CoreLoss((0, 3)), CoreHotplug((5,))):
            assert parse_event(event_to_dict(event)) == event

    def test_parse_requires_list(self):
        with pytest.raises(RemapError, match="cores"):
            parse_event({"kind": "core_loss", "cores": 3})


class TestTopologyEdit:
    def test_parse_by_machine_name(self):
        event = parse_event({"kind": "topology_edit", "machine": "arch-I"})
        assert isinstance(event, TopologyEdit)
        assert event.machine.name == "arch-I"

    def test_parse_by_spec_with_scale(self):
        spec = "cores=2; mem=100; L1:1K/2/32@2 per 1; L2:4K/4/32@8 per 2"
        full = parse_event({"kind": "topology_edit", "topology": spec})
        halved = parse_event(
            {"kind": "topology_edit", "topology": spec, "scale": 2}
        )
        assert halved.machine.total_cache_bytes() * 2 == full.machine.total_cache_bytes()

    def test_parse_exactly_one_source(self):
        with pytest.raises(RemapError, match="exactly one"):
            parse_event({"kind": "topology_edit"})
        with pytest.raises(RemapError, match="exactly one"):
            parse_event(
                {"kind": "topology_edit", "machine": "arch-I", "topology": "core"}
            )

    def test_bad_scale(self):
        with pytest.raises(RemapError, match="scale"):
            parse_event(
                {"kind": "topology_edit", "machine": "arch-I", "scale": -2}
            )


def test_event_kind_covers_all():
    from repro.topology.machines import machine_by_name

    assert event_kind(PhaseChange.of(alpha=0.5)) == "phase_change"
    assert event_kind(CoreLoss((1,))) == "core_loss"
    assert event_kind(CoreHotplug((1,))) == "core_hotplug"
    assert event_kind(TopologyEdit(machine_by_name("arch-I"))) == "topology_edit"
    with pytest.raises(RemapError):
        event_kind("not an event")


def test_parse_rejects_unknown_kind():
    with pytest.raises(RemapError, match="unknown event kind"):
        parse_event({"kind": "restart"})
    with pytest.raises(RemapError, match="object"):
        parse_event("core_loss")
