"""State-machine behaviour of the Remapper and the carry-prefix guards."""

from __future__ import annotations

import pytest

from repro.errors import RemapError
from repro.pipeline.bench import bench_machine
from repro.pipeline.core import MappingPipeline
from repro.pipeline.knobs import Knobs
from repro.pipeline.store import ArtifactStore
from repro.remap.core import CARRY_STAGES, Remapper, carry_prefix
from repro.remap.events import (
    CoreHotplug,
    CoreLoss,
    PhaseChange,
    TopologyEdit,
)


class TestTransitions:
    def test_prime_maps_every_nest(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        assert set(remapper.plans) == {n.name for n in stencil_program.nests}

    def test_empty_program_rejected(self, machine):
        from repro.ir.loops import Program

        with pytest.raises(RemapError, match="no loop nests"):
            Remapper(Program("empty", (), ()), machine)

    def test_core_loss_prunes_view(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        outcome = remapper.apply(CoreLoss((2, 5)))
        assert outcome.machine.num_cores == machine.num_cores - 2
        assert remapper.dead == {2, 5}
        assert outcome.kind == "core_loss"

    def test_loss_of_unknown_core(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        with pytest.raises(RemapError, match="unknown or already-dead"):
            remapper.apply(CoreLoss((99,)))

    def test_double_loss_rejected(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        remapper.apply(CoreLoss((2,)))
        with pytest.raises(RemapError, match="already-dead"):
            remapper.apply(CoreLoss((2,)))

    def test_cannot_lose_every_core(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        with pytest.raises(RemapError, match="every core"):
            remapper.apply(CoreLoss(tuple(machine.core_ids())))

    def test_hotplug_restores_base_ids(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        remapper.apply(CoreLoss((2,)))
        outcome = remapper.apply(CoreHotplug((2,)))
        assert outcome.machine.num_cores == machine.num_cores
        assert remapper.dead == set()

    def test_hotplug_of_live_core_rejected(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        with pytest.raises(RemapError, match="never went away"):
            remapper.apply(CoreHotplug((2,)))

    def test_phase_change_is_per_nest(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        name = stencil_program.nests[0].name
        remapper.apply(PhaseChange.of(nest=name, alpha=0.9, beta=0.1))
        assert remapper.knobs_for(name).alpha == 0.9

    def test_phase_change_unknown_nest(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        with pytest.raises(RemapError, match="no nest"):
            remapper.apply(PhaseChange.of(nest="nope", alpha=0.9))

    def test_topology_edit_clears_dead_set(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        remapper.apply(CoreLoss((2,)))
        outcome = remapper.apply(TopologyEdit(bench_machine(4)))
        assert remapper.dead == set()
        assert outcome.machine.num_cores == 4


class TestStageAccounting:
    def test_late_knob_change_replays_prefix(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        outcome = remapper.apply(PhaseChange.of(alpha=0.9, beta=0.1))
        # alpha/beta only feed the scheduling stage.
        assert outcome.stages_recomputed == 1
        assert outcome.stages_replayed == 4

    def test_core_loss_carries_prefix(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        outcome = remapper.apply(CoreLoss((2,)))
        assert outcome.carried == len(CARRY_STAGES)
        assert outcome.stages_replayed == len(CARRY_STAGES)
        assert outcome.stages_recomputed == 2  # distribute + schedule

    def test_revisited_state_is_pure_replay(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        remapper.apply(CoreLoss((2,)))
        remapper.apply(CoreHotplug((2,)))
        outcome = remapper.apply(CoreLoss((2,)))
        assert outcome.stages_recomputed == 0
        assert outcome.stages_replayed == 5


class TestCarryPrefix:
    def _primed_store(self, program, machine, knobs):
        store = ArtifactStore(capacity=64)
        pipeline = MappingPipeline(machine, knobs, store=store)
        pipeline.map_nest(program, program.nests[0])
        return store

    def test_refuses_on_l1_mismatch_without_pinned_block(
        self, stencil_program, machine
    ):
        knobs = Knobs(alpha=0.5, beta=0.5)  # block_size unpinned
        store = self._primed_store(stencil_program, machine, knobs)
        bigger_l1 = machine.with_scaled_caches(2.0)
        carried = carry_prefix(
            store, stencil_program, stencil_program.nests[0],
            machine, bigger_l1, knobs, knobs,
        )
        assert carried == 0

    def test_carries_with_pinned_block_despite_l1_mismatch(
        self, stencil_program, machine
    ):
        knobs = Knobs(block_size=64, alpha=0.5, beta=0.5)
        store = self._primed_store(stencil_program, machine, knobs)
        bigger_l1 = machine.with_scaled_caches(2.0)
        carried = carry_prefix(
            store, stencil_program, stencil_program.nests[0],
            machine, bigger_l1, knobs, knobs,
        )
        assert carried == len(CARRY_STAGES)

    def test_carries_nothing_from_cold_store(self, stencil_program, machine, knobs):
        carried = carry_prefix(
            ArtifactStore(capacity=8), stencil_program,
            stencil_program.nests[0], machine,
            machine.without_cores([2]), knobs, knobs,
        )
        assert carried == 0

    def test_stops_at_changed_early_knob(self, stencil_program, machine):
        knobs = Knobs(block_size=64)
        store = self._primed_store(stencil_program, machine, knobs)
        changed = knobs.replace(block_size=32)
        carried = carry_prefix(
            store, stencil_program, stencil_program.nests[0],
            machine, machine.without_cores([2]), knobs, changed,
        )
        assert carried == 0
