"""Smoke test of the remap benchmark at tiny sizes.

The bit-identity assertion lives *inside* the bench (cold re-map of
every post-event state), so a passing run is itself a differential
check; here we pin the report structure the CI gate consumes."""

from __future__ import annotations

import pytest

from repro.remap.bench import run_suite


@pytest.fixture(scope="module")
def report():
    # Smallest sizes whose every (machine, knobs) state in the two
    # schedules maps cleanly (the sequential banded loop has sizes whose
    # group dependence graph cannot be scheduled across 8 cores at all —
    # a mapper property, nothing remap-specific).
    return run_suite(stencil_n=6, band_m=192)


def test_report_structure(report):
    assert report["suite"].startswith("repro.remap")
    assert report["target_speedup"] == 10.0
    assert {e["driver"] for e in report["entries"]} == {"scripted", "watched"}
    for entry in report["entries"]:
        assert entry["events"] > 0
        assert entry["remap_ms"] > 0
        assert entry["cold_ms"] > 0
        assert entry["speedup"] == pytest.approx(
            entry["cold_ms"] / entry["remap_ms"], rel=0.01
        )
        assert sum(entry["by_kind"].values()) == entry["events"]
        assert entry["stages_replayed"] > 0


def test_overall_totals(report):
    overall = report["overall"]
    assert overall["events"] == sum(e["events"] for e in report["entries"])
    assert overall["cold_ms"] == pytest.approx(
        sum(e["cold_ms"] for e in report["entries"]), abs=0.01
    )


def test_event_mix_mostly_replays(report):
    """The schedules are revisit-heavy by design: replayed stage count
    dominates recomputed (that is where the 10x comes from)."""
    for entry in report["entries"]:
        assert entry["stages_replayed"] > 3 * entry["stages_recomputed"]
