"""ExecutionWatcher: behaviour samples in, remap events out."""

from __future__ import annotations

import pytest

from repro.pipeline.knobs import Knobs
from repro.remap.core import Remapper
from repro.remap.watch import ExecutionWatcher, WatchPolicy, knobs_for_signals
from repro.sim.dynamic import BehaviorModel, CoreEvent, ExecutionSample, PhaseSpec


def _sample(step, cores, cycles, sharing, nest="stencil"):
    return ExecutionSample(
        step=step,
        nest=nest,
        phase="p",
        active_cores=tuple(cores),
        core_cycles=tuple(cycles),
        sharing=sharing,
    )


class TestKnobsForSignals:
    def test_high_sharing_raises_alpha(self):
        policy = WatchPolicy()
        changes = knobs_for_signals(policy, Knobs(), imbalance=0.02, sharing=0.9)
        assert changes["alpha"] > 0.5
        assert changes["beta"] == round(1 - changes["alpha"], 1)

    def test_quantization_suppresses_drift(self):
        policy = WatchPolicy()
        current = Knobs()
        first = knobs_for_signals(policy, current, 0.02, 0.52)
        settled = current.replace(**first) if first else current
        # A tiny drift in sharing quantizes to the same knobs: no event.
        assert knobs_for_signals(policy, settled, 0.02, 0.53) == {}

    def test_high_imbalance_tightens_balance(self):
        policy = WatchPolicy()
        changes = knobs_for_signals(policy, Knobs(), imbalance=0.5, sharing=0.38)
        assert changes["balance_threshold"] == policy.tight_balance

    def test_local_scheduling_only_turns_on(self):
        policy = WatchPolicy()
        off = Knobs(local_scheduling=False)
        changes = knobs_for_signals(policy, off, imbalance=0.0, sharing=0.9)
        assert changes["local_scheduling"] is True
        on = Knobs(local_scheduling=True)
        changes = knobs_for_signals(policy, on, imbalance=0.0, sharing=0.1)
        assert "local_scheduling" not in changes

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            WatchPolicy(imbalance_jump=0.0)


class TestWatcher:
    def test_core_disappearance_emits_loss(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        watcher = ExecutionWatcher(remapper)
        nest = stencil_program.nests[0].name
        all_cores = machine.core_ids()
        watcher.feed(_sample(0, all_cores, [100] * len(all_cores), 0.2, nest))
        without_3 = [c for c in all_cores if c != 3]
        outcomes = watcher.feed(
            _sample(1, without_3, [100] * len(without_3), 0.2, nest)
        )
        kinds = [o.kind for o in outcomes]
        assert "core_loss" in kinds
        assert remapper.dead == {3}

    def test_core_return_emits_hotplug(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        watcher = ExecutionWatcher(remapper)
        nest = stencil_program.nests[0].name
        all_cores = machine.core_ids()
        without_3 = [c for c in all_cores if c != 3]
        watcher.feed(_sample(0, all_cores, [100] * len(all_cores), 0.2, nest))
        watcher.feed(_sample(1, without_3, [100] * len(without_3), 0.2, nest))
        outcomes = watcher.feed(
            _sample(2, all_cores, [100] * len(all_cores), 0.2, nest)
        )
        assert [o.kind for o in outcomes] == ["core_hotplug"]
        assert remapper.dead == set()

    def test_steady_signals_cause_no_churn(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        watcher = ExecutionWatcher(remapper)
        nest = stencil_program.nests[0].name
        cores = machine.core_ids()
        watcher.feed(_sample(0, cores, [100] * len(cores), 0.2, nest))
        applied_before = remapper.events_applied
        for step in range(1, 6):
            watcher.feed(_sample(step, cores, [100] * len(cores), 0.2, nest))
        assert remapper.events_applied == applied_before

    def test_signal_jump_emits_phase_change(self, stencil_program, machine, knobs):
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        watcher = ExecutionWatcher(remapper)
        nest = stencil_program.nests[0].name
        cores = machine.core_ids()
        watcher.feed(_sample(0, cores, [100] * len(cores), 0.2, nest))
        outcomes = watcher.feed(
            _sample(1, cores, [100] * len(cores), 0.9, nest)
        )
        assert [o.kind for o in outcomes] == ["phase_change"]
        assert remapper.knobs_for(nest).alpha > 0.5


class TestBehaviorModelIntegration:
    def test_model_stream_drives_remapper(self, stencil_program, machine, knobs):
        nest = stencil_program.nests[0].name
        phases = (
            PhaseSpec("smooth", steps=2, imbalance=0.02, sharing=0.20),
            PhaseSpec("hot", steps=2, imbalance=0.50, sharing=0.70),
            PhaseSpec("smooth2", steps=2, imbalance=0.02, sharing=0.20),
        )
        lost = machine.core_ids()[1]
        model = BehaviorModel(
            nest_name=nest,
            machine=machine,
            phases=phases,
            core_events=(
                CoreEvent(step=1, kind="loss", cores=(lost,)),
                CoreEvent(step=5, kind="hotplug", cores=(lost,)),
            ),
            seed=3,
        )
        remapper = Remapper(stencil_program, machine, knobs=knobs)
        watcher = ExecutionWatcher(remapper)
        outcomes = watcher.run(model.samples())
        kinds = {o.kind for o in outcomes}
        assert "core_loss" in kinds and "core_hotplug" in kinds
        assert "phase_change" in kinds
        assert watcher.samples_seen == model.total_steps()
        assert remapper.dead == set()

    def test_same_seed_same_events(self, stencil_program, machine, knobs):
        nest = stencil_program.nests[0].name
        phases = (
            PhaseSpec("a", steps=2, imbalance=0.05, sharing=0.2),
            PhaseSpec("b", steps=2, imbalance=0.6, sharing=0.7),
        )

        def run_once():
            model = BehaviorModel(nest, machine, phases, seed=11)
            remapper = Remapper(stencil_program, machine, knobs=knobs)
            return [
                o.kind for o in ExecutionWatcher(remapper).run(model.samples())
            ]

        assert run_once() == run_once()
