"""The remapper's contract: every remapped plan is bit-identical to a
cold map of the post-event state.

Each case applies a short event history and compares the remapper's
plan for every affected nest against a store-less pipeline run of the
exact same (program, nest, machine, knobs) state.
"""

from __future__ import annotations

import pytest

from repro.pipeline.bench import bench_machine
from repro.remap.core import Remapper, cold_plan
from repro.remap.events import (
    CoreHotplug,
    CoreLoss,
    PhaseChange,
    TopologyEdit,
)

HISTORIES = {
    "phase_only": [
        PhaseChange.of(alpha=0.8, beta=0.2),
        PhaseChange.of(alpha=0.2, beta=0.8),
        PhaseChange.of(alpha=0.8, beta=0.2),
    ],
    "balance_change": [
        PhaseChange.of(balance_threshold=0.05),
    ],
    "loss_then_phase": [
        CoreLoss((2,)),
        PhaseChange.of(alpha=0.9, beta=0.1),
    ],
    "loss_hotplug_cycle": [
        CoreLoss((1, 6)),
        CoreHotplug((1,)),
        CoreHotplug((6,)),
        CoreLoss((1, 6)),
    ],
    "topology_edits": [
        TopologyEdit(bench_machine(4)),
        TopologyEdit(bench_machine(8)),
    ],
    "edit_after_loss": [
        CoreLoss((3,)),
        TopologyEdit(bench_machine(4)),
        CoreLoss((0,)),
    ],
}


def _check_history(program, machine, knobs, events):
    remapper = Remapper(program, machine, knobs=knobs)
    for event in events:
        outcome = remapper.apply(event)
        for name in outcome.affected:
            nest = next(n for n in program.nests if n.name == name)
            cold = cold_plan(program, nest, outcome.machine, outcome.knobs[name])
            assert cold.rounds == outcome.plans[name].rounds, (
                f"remap diverged from cold map after {outcome.kind}"
            )
            assert cold.label == outcome.plans[name].label


@pytest.mark.parametrize("history", sorted(HISTORIES))
def test_stencil_remap_matches_cold(history, stencil_program, machine, knobs):
    _check_history(stencil_program, machine, knobs, HISTORIES[history])


@pytest.mark.parametrize(
    "history", ["phase_only", "loss_hotplug_cycle", "edit_after_loss"]
)
def test_banded_remap_matches_cold(history, banded_program, machine, knobs):
    _check_history(banded_program, machine, knobs, HISTORIES[history])


def test_unpinned_block_size_across_l1_change(stencil_program, machine):
    """A topology edit that changes L1 capacity with block_size unpinned
    must still match cold: the carry is refused, everything recomputes."""
    from repro.pipeline.knobs import Knobs

    knobs = Knobs(alpha=0.5, beta=0.5)
    remapper = Remapper(stencil_program, machine, knobs=knobs)
    edited = machine.with_scaled_caches(0.5)
    outcome = remapper.apply(TopologyEdit(edited))
    assert outcome.carried == 0
    name = outcome.affected[0]
    nest = next(n for n in stencil_program.nests if n.name == name)
    cold = cold_plan(stencil_program, nest, edited, knobs)
    assert cold.rounds == outcome.plans[name].rounds
