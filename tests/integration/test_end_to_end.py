"""Integration: all schemes execute the same iterations; sane outcomes."""

import pytest

from repro.blocks.datablocks import DataBlockPartition
from repro.mapping import TopologyAwareMapper, base_plan, base_plus_plan, local_plan
from repro.runtime import execute_plan
from repro.sim.engine import SimConfig


@pytest.fixture(scope="module")
def reflected_program():
    from repro.lang import compile_source

    m = 4096
    return compile_source(
        f"""
        array Q[{m}];
        array F[{m}];
        parallel for (j = 0; j < {m}; j++)
          F[j] = F[j] + Q[j] + Q[{m - 1} - j];
        """,
        name="mini-namd",
    )


class TestSchemeAgreement:
    def test_same_iteration_multiset(self, reflected_program, fig9_machine):
        nest = reflected_program.nests[0]
        part = DataBlockPartition(list(reflected_program.arrays.values()), 1024)
        mapper = TopologyAwareMapper(fig9_machine, block_size=1024)
        plans = [
            base_plan(nest, fig9_machine),
            base_plus_plan(nest, fig9_machine),
            local_plan(nest, fig9_machine, part),
            mapper.map_nest(reflected_program, nest).plan(),
        ]
        reference = sorted(nest.iterations())
        for plan in plans:
            flat = sorted(
                p for core_rounds in plan.rounds for rnd in core_rounds for p in rnd
            )
            assert flat == reference, plan.label

    def test_same_access_count(self, reflected_program, fig9_machine):
        nest = reflected_program.nests[0]
        mapper = TopologyAwareMapper(fig9_machine, block_size=1024)
        counts = set()
        for plan in (base_plan(nest, fig9_machine), mapper.map_nest(reflected_program, nest).plan()):
            counts.add(execute_plan(plan).total_accesses)
        assert len(counts) == 1


class TestSharingOutcome:
    def test_topology_aware_improves_cache_behavior(self, reflected_program, fig9_machine):
        """On the reflected kernel, TopologyAware must not increase memory
        traffic and must convert some of it into cache hits (the mirrored
        sharers are co-located instead of replicated).  Blocks are sized
        well under the shared L2 so a group's working set fits."""
        nest = reflected_program.nests[0]
        base = execute_plan(base_plan(nest, fig9_machine))
        mapper = TopologyAwareMapper(
            fig9_machine,
            block_size=256,
            balance_threshold=0.02,
            local_scheduling=True,  # chains each mirror pair back to back
        )
        ta = execute_plan(mapper.map_nest(reflected_program, nest).plan())
        # Mirror sharers co-located and chained: second touches hit on-chip,
        # so memory traffic drops to (near) compulsory and cycles improve.
        assert ta.memory_accesses < base.memory_accesses
        assert ta.cycles < base.cycles

    def test_issue_cost_dominates_when_caches_huge(self, reflected_program, fig9_machine):
        big = fig9_machine.with_scaled_caches(64.0)
        nest = reflected_program.nests[0]
        result = execute_plan(base_plan(nest, big), config=SimConfig(issue_cycles=1))
        # Everything fits: misses are compulsory only.
        lines_touched = result.memory_accesses
        assert lines_touched <= (2 * 4096 * 8) // 32 + 2


class TestDependentEndToEnd:
    def test_dependent_loop_runs_with_barriers(self, dependent_program, two_core_machine):
        mapper = TopologyAwareMapper(two_core_machine, block_size=32, local_scheduling=True)
        result = mapper.map_nest(dependent_program, dependent_program.nests[0])
        plan = result.plan()
        plan.verify_complete()
        sim = execute_plan(plan, verify=True)
        assert sim.barriers == plan.num_rounds - 1

    def test_schedule_respects_group_dag(self, dependent_program, two_core_machine):
        mapper = TopologyAwareMapper(two_core_machine, block_size=32)
        result = mapper.map_nest(dependent_program, dependent_program.nests[0])
        graph = result.graph
        assert graph is not None
        round_of = {}
        for rounds in result.group_rounds:
            for idx, rnd in enumerate(rounds):
                for g in rnd:
                    round_of[g.ident] = idx
        core_of = {}
        for core, groups in enumerate(result.assignments):
            for g in groups:
                core_of[g.ident] = core
        for a in graph.nodes:
            for b in graph.succs[a]:
                if core_of.get(a) == core_of.get(b):
                    assert round_of[a] <= round_of[b]
                else:
                    assert round_of[a] < round_of[b]
