"""Integration: the irregular suite maps and simulates end to end.

The registry's trace-tagged kernels (data-dependent subscripts through
recorded index arrays) must flow through the unmodified downstream
stages: tag from a trace, cluster, distribute, schedule, execute on the
simulator.  These tests pin the contract on a real registry workload —
same iteration multiset as Base, same access count, trace counters
emitted — rather than a synthetic nest, so a regression anywhere in the
frontend seam or the registry data shows up here.
"""

import pytest

from repro import obs
from repro.mapping import TopologyAwareMapper, base_plan
from repro.runtime import execute_plan
from repro.workloads import workload


@pytest.fixture(scope="module")
def spmv():
    """The cheapest irregular registry workload (16K iterations)."""
    return workload("spmv_random")


class TestIrregularMapping:
    def test_same_iteration_multiset_as_base(self, spmv, fig9_machine):
        nest = spmv.nest()
        mapper = TopologyAwareMapper(fig9_machine, block_size=spmv.block_size())
        ta = mapper.map_nest(spmv.program(), nest).plan()
        base = base_plan(nest, fig9_machine)
        reference = sorted(nest.iterations())
        for plan in (base, ta):
            flat = sorted(
                p for core_rounds in plan.rounds for rnd in core_rounds for p in rnd
            )
            assert flat == reference, plan.label

    def test_simulates_with_same_access_count(self, spmv, fig9_machine):
        nest = spmv.nest()
        mapper = TopologyAwareMapper(fig9_machine, block_size=spmv.block_size())
        ta = execute_plan(mapper.map_nest(spmv.program(), nest).plan())
        base = execute_plan(base_plan(nest, fig9_machine))
        assert ta.total_accesses == base.total_accesses
        assert ta.cycles > 0 and base.cycles > 0

    def test_trace_counters_emitted(self, spmv, fig9_machine):
        nest = spmv.nest()
        events = nest.iteration_count() * len(nest.accesses)
        with obs.tracing() as recorder:
            TopologyAwareMapper(
                fig9_machine, block_size=spmv.block_size()
            ).map_nest(spmv.program(), nest)
            counters = dict(recorder.counters)
        assert counters.get("tagging.trace.nests") == 1
        assert counters.get("tagging.trace.events") == events
        assert counters.get("tagging.trace.declined_affine", 0) >= 1
        assert counters.get("kernels.backend.trace") == 1
