"""Integration: the paper's running example (Figures 5, 9, 10, 11).

Source code -> frontend -> tagging -> clustering -> scheduling -> codegen
-> simulation, checked against what the paper shows at each stage.
"""

from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.tagger import tag_iterations
from repro.blocks.tags import bitwise_sum, dot, render
from repro.mapping.clustering import hierarchical_distribute
from repro.mapping.distribute import TopologyAwareMapper
from repro.mapping.schedule import schedule_groups
from repro.runtime import execute_plan
from repro.runtime.codeemit import compile_core

FIG10_TAGS = [
    "101010000000", "010101000000", "001010100000", "000101010000",
    "000010101000", "000001010100", "000000101010", "000000010101",
]


class TestFigure10:
    def test_stage_a_tags(self, fig5_program):
        """Figure 10(a): eight iteration groups with the published tags."""
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 4 * 8)
        gs = tag_iterations(nest, part)
        gs.verify_partition()
        assert [render(g.tag, 12) for g in gs.groups] == FIG10_TAGS

    def test_stage_b_first_level_split(self, fig5_program, fig9_machine):
        """Figure 10(b): the L2-level cut separates the two sharing chains
        (even-block chain vs odd-block chain share no data blocks)."""
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 4 * 8)
        gs = tag_iterations(nest, part)
        assignment = hierarchical_distribute(gs.groups, fig9_machine, 0.10)
        side_a = bitwise_sum(*(g.tag for g in assignment[0] + assignment[1]))
        side_b = bitwise_sum(*(g.tag for g in assignment[2] + assignment[3]))
        assert dot(side_a, side_b) == 0

    def test_stage_c_per_core_chains(self, fig5_program, fig9_machine):
        """Figure 10(c)/11: each core receives two chained groups (their
        tags share data blocks), the way the paper assigns ΦM2+ΦM4 etc."""
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 4 * 8)
        gs = tag_iterations(nest, part)
        assignment = hierarchical_distribute(gs.groups, fig9_machine, 0.10)
        for groups in assignment:
            assert len(groups) == 2
            assert dot(groups[0].tag, groups[1].tag) >= 1

    def test_stage_d_schedule_is_legal_permutation(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 4 * 8)
        gs = tag_iterations(nest, part)
        assignment = hierarchical_distribute(gs.groups, fig9_machine, 0.10)
        rounds = schedule_groups(assignment, fig9_machine)
        for core, groups in enumerate(assignment):
            flat = [g.ident for rnd in rounds[core] for g in rnd]
            assert sorted(flat) == sorted(g.ident for g in groups)

    def test_stage_e_generated_code_runs(self, fig5_program, fig9_machine):
        mapper = TopologyAwareMapper(fig9_machine, block_size=4 * 8, local_scheduling=True)
        plan = mapper.map_nest(fig5_program, fig5_program.nests[0]).plan()
        covered = []
        for core in range(4):
            fn = compile_core(plan, core)
            covered += [p for kind, p in fn() if kind == "iter"]
        assert sorted(covered) == sorted(fig5_program.nests[0].iterations())

    def test_stage_f_simulation(self, fig5_program, fig9_machine):
        mapper = TopologyAwareMapper(fig9_machine, block_size=4 * 8)
        plan = mapper.map_nest(fig5_program, fig5_program.nests[0]).plan()
        result = execute_plan(plan, verify=True)
        result.verify_conservation()
        assert result.cycles > 0
