"""Cross-validation: static analysis predictions vs simulator measurements.

The analysis module predicts *why* a mapping should win; the simulator
measures *that* it wins.  These tests pin the connection: across the
mirror-style workloads, lower predicted replication / higher sharing
alignment must co-occur with fewer measured memory accesses.
"""

import pytest

from repro.analysis import analyze_plan
from repro.experiments.harness import BALANCE_THRESHOLD, sim_machine
from repro.mapping import TopologyAwareMapper, base_plan
from repro.runtime import execute_plan
from repro.topology.machines import dunnington
from repro.workloads import workload

MIRROR_APPS = ("namd", "galgel", "bodytrack")


@pytest.mark.parametrize("name", MIRROR_APPS)
def test_predicted_replication_matches_measured_traffic(name):
    app = workload(name)
    machine = sim_machine(dunnington())
    nest = app.nest()

    base = base_plan(nest, machine)
    mapper = TopologyAwareMapper(
        machine, block_size=app.block_size(), balance_threshold=BALANCE_THRESHOLD
    )
    mapping = mapper.map_nest(app.program(), nest)
    ta = mapping.plan()

    base_static = analyze_plan(base, mapping.partition)
    ta_static = analyze_plan(ta, mapping.partition)
    base_measured = execute_plan(base)
    ta_measured = execute_plan(ta)

    # Static prediction: TA co-locates sharers (alignment up, L3-level
    # replication down)...
    assert ta_static.sharing_alignment >= base_static.sharing_alignment
    assert ta_static.replication["L3"] <= base_static.replication["L3"] + 1e-9
    # ...and the simulator confirms the traffic consequence.
    assert ta_measured.memory_accesses <= base_measured.memory_accesses


def test_alignment_orders_the_two_schemes_consistently():
    """Across the mirror apps, the scheme with better alignment never has
    more memory traffic."""
    machine = sim_machine(dunnington())
    for name in MIRROR_APPS:
        app = workload(name)
        nest = app.nest()
        mapper = TopologyAwareMapper(
            machine, block_size=app.block_size(), balance_threshold=BALANCE_THRESHOLD
        )
        mapping = mapper.map_nest(app.program(), nest)
        pairs = [
            (analyze_plan(p, mapping.partition).sharing_alignment,
             execute_plan(p).memory_accesses)
            for p in (base_plan(nest, machine), mapping.plan())
        ]
        pairs.sort()
        alignments = [a for a, _ in pairs]
        traffic = [t for _, t in pairs]
        if alignments[0] < alignments[1]:
            assert traffic[0] >= traffic[1]
