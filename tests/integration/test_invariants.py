"""Property-based invariants over randomly generated loop nests.

Hypothesis generates small affine kernels (random extents, strides,
mirror/shift taps); the DESIGN.md invariants must hold on all of them:

* iteration groups partition K;
* the distribution covers every group exactly once across N cores;
* schedules are permutations of the assignment;
* plan completeness and simulator conservation.
"""

from hypothesis import given, settings, strategies as st

from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.tagger import tag_iterations
from repro.lang import compile_source
from repro.mapping.clustering import hierarchical_distribute
from repro.mapping.distribute import TopologyAwareMapper
from repro.runtime import execute_plan
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode


def small_machine():
    l1 = CacheSpec("L1", 256, 2, 32, 2)
    l2 = CacheSpec("L2", 1024, 4, 32, 8)
    cores = [TopologyNode.core(i) for i in range(4)]
    l1s = [TopologyNode.cache(l1, [c]) for c in cores]
    l2s = [TopologyNode.cache(l2, l1s[:2]), TopologyNode.cache(l2, l1s[2:])]
    return Machine("prop4", 1.0, 40, TopologyNode.memory(l2s), sockets=1)


MACHINE = small_machine()


@st.composite
def kernels(draw):
    """A random 1-D multi-tap kernel over one array."""
    m = draw(st.integers(24, 96)) * 2
    tap_kind = draw(st.sampled_from(["mirror", "shift", "both"]))
    shift = draw(st.integers(1, m // 4))
    taps = ["B[j]"]
    if tap_kind in ("mirror", "both"):
        taps.append(f"B[{m - 1} - j]")
    if tap_kind in ("shift", "both"):
        taps.append(f"B[j + {shift}]")
    lower, upper = 0, m - (shift if tap_kind in ("shift", "both") else 0)
    body = " + ".join(taps)
    src = f"""
    array B[{m}];
    parallel for (j = {lower}; j < {upper}; j++)
      B[j] = {body};
    """
    block_elems = draw(st.sampled_from([4, 8, 16]))
    return compile_source(src, name="prop"), block_elems * 8


@settings(max_examples=25, deadline=None)
@given(kernels())
def test_groups_partition_iteration_space(kernel):
    program, block_size = kernel
    nest = program.nests[0]
    part = DataBlockPartition(list(program.arrays.values()), block_size)
    gs = tag_iterations(nest, part)
    gs.verify_partition()


@settings(max_examples=25, deadline=None)
@given(kernels())
def test_distribution_covers_exactly_once(kernel):
    program, block_size = kernel
    nest = program.nests[0]
    part = DataBlockPartition(list(program.arrays.values()), block_size)
    gs = tag_iterations(nest, part)
    assignment = hierarchical_distribute(list(gs.groups), MACHINE, 0.10)
    assert len(assignment) == MACHINE.num_cores
    covered = sorted(p for core in assignment for g in core for p in g.iterations)
    assert covered == sorted(nest.iterations())


@settings(max_examples=20, deadline=None)
@given(kernels(), st.sampled_from([0.02, 0.10, 0.25]))
def test_balance_threshold_honored(kernel, threshold):
    program, block_size = kernel
    nest = program.nests[0]
    mapper = TopologyAwareMapper(
        MACHINE, block_size=block_size, balance_threshold=threshold
    )
    result = mapper.map_nest(program, nest)
    sizes = result.assignment_sizes()
    avg = sum(sizes) / len(sizes)
    # Balancing is per tree level, so the window compounds across the
    # levels with fan-out > 1 (two for this machine), plus the +-1
    # quantization each split can leave behind.
    levels = sum(1 for d in MACHINE.clustering_degrees() if d > 1)
    ratio = (1 + threshold) ** levels - 1
    slack = max(2.0, avg * ratio + 2 * levels)
    assert max(sizes) <= avg + slack
    assert min(sizes) >= avg - slack


@settings(max_examples=15, deadline=None)
@given(kernels(), st.booleans())
def test_plan_complete_and_simulation_conserves(kernel, local_scheduling):
    program, block_size = kernel
    nest = program.nests[0]
    mapper = TopologyAwareMapper(
        MACHINE, block_size=block_size, local_scheduling=local_scheduling
    )
    plan = mapper.map_nest(program, nest).plan()
    result = execute_plan(plan, verify=True)
    assert result.total_accesses == nest.iteration_count() * len(nest.accesses)


@settings(max_examples=15, deadline=None)
@given(kernels())
def test_kl_strategy_preserves_invariants(kernel):
    program, block_size = kernel
    nest = program.nests[0]
    mapper = TopologyAwareMapper(
        MACHINE, block_size=block_size, cluster_strategy="kl"
    )
    plan = mapper.map_nest(program, nest).plan()
    plan.verify_complete()


@settings(max_examples=15, deadline=None)
@given(kernels())
def test_mapping_deterministic(kernel):
    program, block_size = kernel
    nest = program.nests[0]

    def run():
        mapper = TopologyAwareMapper(MACHINE, block_size=block_size)
        return mapper.map_nest(program, nest).plan().rounds

    assert run() == run()
