"""Unit tests for Base / Base+ / Local plans."""

import pytest

from repro.errors import MappingError
from repro.blocks.datablocks import DataBlockPartition
from repro.mapping.baselines import base_plan, base_plus_plan, chunk_iterations, local_plan


class TestChunking:
    def test_balanced_chunks(self, fig5_program):
        chunks = chunk_iterations(fig5_program.nests[0], 4)
        sizes = [len(c) for c in chunks]
        assert sum(sizes) == 32 and max(sizes) - min(sizes) <= 1

    def test_remainder_distribution(self, fig4_program):
        chunks = chunk_iterations(fig4_program.nests[0], 5)
        sizes = [len(c) for c in chunks]
        assert sum(sizes) == 24 and max(sizes) - min(sizes) <= 1

    def test_contiguous_lexicographic(self, fig5_program):
        chunks = chunk_iterations(fig5_program.nests[0], 4)
        flat = [p for c in chunks for p in c]
        assert flat == sorted(flat)

    def test_zero_cores(self, fig5_program):
        with pytest.raises(MappingError):
            chunk_iterations(fig5_program.nests[0], 0)


class TestBase:
    def test_complete(self, fig5_program, fig9_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        plan.verify_complete()
        assert plan.label == "base"

    def test_single_round(self, fig5_program, fig9_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        assert plan.num_rounds == 1

    def test_original_order_within_core(self, fig5_program, fig9_machine):
        plan = base_plan(fig5_program.nests[0], fig9_machine)
        for core in range(4):
            pts = plan.core_iterations(core)
            assert pts == sorted(pts)


class TestBasePlus:
    def test_complete_same_distribution(self, stencil_program, fig9_machine):
        nest = stencil_program.nests[0]
        base = base_plan(nest, fig9_machine)
        plus = base_plus_plan(nest, fig9_machine)
        plus.verify_complete()
        for core in range(4):
            assert set(plus.core_iterations(core)) == set(base.core_iterations(core))

    def test_explicit_tile_sizes(self, stencil_program, fig9_machine):
        nest = stencil_program.nests[0]
        plan = base_plus_plan(nest, fig9_machine, tile_sizes=(4, 4))
        plan.verify_complete()

    def test_label(self, stencil_program, fig9_machine):
        assert base_plus_plan(stencil_program.nests[0], fig9_machine).label == "base+"


class TestLocal:
    def test_complete_same_distribution(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        base = base_plan(nest, fig9_machine)
        local = local_plan(nest, fig9_machine, part)
        local.verify_complete()
        for core in range(4):
            assert set(local.core_iterations(core)) == set(base.core_iterations(core))

    def test_dependent_nest(self, dependent_program, two_core_machine):
        nest = dependent_program.nests[0]
        part = DataBlockPartition(list(dependent_program.arrays.values()), 32)
        plan = local_plan(nest, two_core_machine, part)
        plan.verify_complete()

    def test_label(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        assert local_plan(nest, fig9_machine, part).label == "local"
