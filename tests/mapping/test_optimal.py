"""Unit tests for the optimal-mapping search."""

import pytest

from repro.errors import MappingError
from repro.blocks.groups import IterationGroup
from repro.mapping.optimal import (
    anneal_assignment,
    exhaustive_assignment,
    optimal_assignment,
    sharing_cost,
)


def group(tag, size=2, start=0):
    return IterationGroup(tag, [(start + k,) for k in range(size)])


class TestSharingCost:
    def test_colocated_sharers_cheaper(self, two_core_machine):
        a = group(0b11, start=0)
        b = group(0b11, start=10)
        c = group(0b1100, start=20)
        d = group(0b1100, start=30)
        together = sharing_cost([[a, b], [c, d]], two_core_machine)
        apart = sharing_cost([[a, c], [b, d]], two_core_machine)
        assert together < apart

    def test_imbalance_penalized(self, two_core_machine):
        a = group(0b01, size=10, start=0)
        b = group(0b10, size=10, start=100)
        balanced = sharing_cost([[a], [b]], two_core_machine)
        skewed = sharing_cost([[a, b], []], two_core_machine)
        assert skewed > balanced * 0.99  # replication saved, imbalance paid

    def test_empty_cores_allowed(self, two_core_machine):
        assert sharing_cost([[], []], two_core_machine) == 0.0


class TestExhaustive:
    def test_finds_colocated_optimum(self, two_core_machine):
        a, b = group(0b11, start=0), group(0b11, start=10)
        c, d = group(0b1100, start=20), group(0b1100, start=30)
        best = exhaustive_assignment([a, b, c, d], two_core_machine)
        tags = sorted(
            tuple(sorted(g.tag for g in core)) for core in best if core
        )
        assert tags == [(0b11, 0b11), (0b1100, 0b1100)]

    def test_cap_enforced(self, fig9_machine):
        groups = [group(1 << k, start=10 * k) for k in range(12)]
        with pytest.raises(MappingError):
            exhaustive_assignment(groups, fig9_machine, max_states=100)

    def test_at_least_as_good_as_any_manual(self, two_core_machine):
        groups = [group(0b11, start=0), group(0b110, start=10), group(0b1100, start=20)]
        best = exhaustive_assignment(groups, two_core_machine)
        manual = [[groups[0], groups[2]], [groups[1]]]
        assert sharing_cost(best, two_core_machine) <= sharing_cost(manual, two_core_machine)


class TestAnnealing:
    def test_never_worse_than_start(self, fig9_machine):
        groups = [group((0b11 << (k % 4)), start=10 * k) for k in range(8)]
        start = [groups[0:2], groups[2:4], groups[4:6], groups[6:8]]
        result = anneal_assignment(groups, fig9_machine, start=start, iterations=500)
        assert sharing_cost(result, fig9_machine) <= sharing_cost(start, fig9_machine)

    def test_deterministic_given_seed(self, fig9_machine):
        groups = [group(0b101 << k, start=10 * k) for k in range(6)]
        a = anneal_assignment(groups, fig9_machine, iterations=300, seed=7)
        b = anneal_assignment(groups, fig9_machine, iterations=300, seed=7)
        assert [[g.ident for g in core] for core in a] == [
            [g.ident for g in core] for core in b
        ]

    def test_preserves_group_multiset(self, fig9_machine):
        groups = [group(1 << k, start=10 * k) for k in range(8)]
        result = anneal_assignment(groups, fig9_machine, iterations=200)
        flat = sorted(g.ident for core in result for g in core)
        assert flat == sorted(g.ident for g in groups)

    def test_wrong_start_shape(self, fig9_machine):
        with pytest.raises(MappingError):
            anneal_assignment([group(1)], fig9_machine, start=[[]])


class TestDispatch:
    def test_small_goes_exhaustive(self, two_core_machine):
        groups = [group(0b11, start=0), group(0b11, start=10)]
        result = optimal_assignment(groups, two_core_machine)
        assert sharing_cost(result, two_core_machine) <= sharing_cost(
            [[groups[0]], [groups[1]]], two_core_machine
        )

    def test_large_goes_annealing(self, fig9_machine):
        groups = [group(1 << (k % 6), start=10 * k) for k in range(20)]
        result = optimal_assignment(groups, fig9_machine, exhaustive_cap=10)
        assert sum(len(c) for c in result) == 20
