"""Property tests: the scheduler on random assignments and random DAGs."""

from hypothesis import given, settings, strategies as st

from repro.blocks.groups import IterationGroup
from repro.mapping.dependence import GroupDependenceGraph
from repro.mapping.schedule import schedule_groups
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode


def make_machine() -> Machine:
    l1 = CacheSpec("L1", 256, 2, 32, 2)
    l2 = CacheSpec("L2", 1024, 4, 32, 8)
    cores = [TopologyNode.core(i) for i in range(4)]
    l1s = [TopologyNode.cache(l1, [c]) for c in cores]
    l2s = [TopologyNode.cache(l2, l1s[:2]), TopologyNode.cache(l2, l1s[2:])]
    return Machine("prop4s", 1.0, 40, TopologyNode.memory(l2s), sockets=1)


MACHINE = make_machine()


@st.composite
def assignments_with_dag(draw):
    """Random groups spread over 4 cores plus a random DAG over them."""
    n = draw(st.integers(2, 14))
    groups = []
    start = 0
    for k in range(n):
        size = draw(st.integers(1, 5))
        tag = draw(st.integers(1, 255))
        groups.append(IterationGroup(tag, [(start + j,) for j in range(size)]))
        start += size + 1
    cores: list[list[IterationGroup]] = [[], [], [], []]
    for g in groups:
        cores[draw(st.integers(0, 3))].append(g)
    # Random forward edges (i -> j with i < j) keep the graph acyclic.
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()) and draw(st.booleans()):
                edges.append((groups[i].ident, groups[j].ident))
    graph = GroupDependenceGraph([g.ident for g in groups], edges)
    return cores, graph, groups


@settings(max_examples=40, deadline=None)
@given(assignments_with_dag(), st.floats(0, 1), st.floats(0, 1))
def test_schedule_is_permutation(data, alpha, beta):
    cores, graph, groups = data
    rounds = schedule_groups([list(c) for c in cores], MACHINE, graph, alpha, beta)
    for core_index, assigned in enumerate(cores):
        flat = [g.ident for rnd in rounds[core_index] for g in rnd]
        assert sorted(flat) == sorted(g.ident for g in assigned)


@settings(max_examples=40, deadline=None)
@given(assignments_with_dag())
def test_schedule_respects_dag(data):
    cores, graph, groups = data
    rounds = schedule_groups([list(c) for c in cores], MACHINE, graph)
    round_of = {}
    core_of = {}
    position = {}
    for core_index, core_rounds in enumerate(rounds):
        order = 0
        for rnd_index, rnd in enumerate(core_rounds):
            for g in rnd:
                round_of[g.ident] = rnd_index
                core_of[g.ident] = core_index
                position[g.ident] = order
                order += 1
    for a in graph.nodes:
        for b in graph.succs[a]:
            if core_of[a] == core_of[b]:
                # Same core: program order suffices.
                assert (round_of[a], position[a]) < (round_of[b], position[b])
            else:
                # Cross-core: the barrier between rounds must separate them.
                assert round_of[a] < round_of[b]


@settings(max_examples=30, deadline=None)
@given(assignments_with_dag())
def test_round_structure_aligned(data):
    cores, graph, _ = data
    rounds = schedule_groups([list(c) for c in cores], MACHINE, graph)
    assert len({len(core_rounds) for core_rounds in rounds}) == 1
