"""Unit tests for the group dependence graph (Section 3.5.2)."""

import pytest

from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import IterationGroup
from repro.blocks.tagger import tag_iterations
from repro.mapping.dependence import (
    GroupDependenceGraph,
    build_group_dependence_graph,
    merge_dependent_groups,
)


def groups_of(program, block_size=32):
    nest = program.nests[0]
    part = DataBlockPartition(list(program.arrays.values()), block_size)
    return nest, list(tag_iterations(nest, part).groups)


class TestGraphBasics:
    def test_no_dependences_for_parallel(self, fig4_program):
        nest = fig4_program.nests[0]
        part = DataBlockPartition(list(fig4_program.arrays.values()), 80)
        groups = list(tag_iterations(nest, part).groups)
        graph = build_group_dependence_graph(nest, groups)
        assert graph.num_edges == 0

    def test_banded_dependences_found(self, dependent_program):
        nest, groups = groups_of(dependent_program)
        graph = build_group_dependence_graph(nest, groups)
        assert graph.num_edges > 0

    def test_self_edges_dropped(self):
        g = GroupDependenceGraph([1, 2], [(1, 1), (1, 2)])
        assert g.num_edges == 1

    def test_foreign_edges_ignored(self):
        g = GroupDependenceGraph([1], [(1, 99)])
        assert g.num_edges == 0


class TestSccMerging:
    def test_acyclic_graph_unchanged(self):
        a = IterationGroup(0b01, [(0,)])
        b = IterationGroup(0b10, [(1,)])
        graph = GroupDependenceGraph([a.ident, b.ident], [(a.ident, b.ident)])
        merged, dag = graph.acyclified([a, b])
        assert {g.ident for g in merged} == {a.ident, b.ident}
        assert dag.num_edges == 1

    def test_cycle_merges(self):
        a = IterationGroup(0b01, [(0,)])
        b = IterationGroup(0b10, [(1,)])
        graph = GroupDependenceGraph(
            [a.ident, b.ident], [(a.ident, b.ident), (b.ident, a.ident)]
        )
        merged, dag = graph.acyclified([a, b])
        assert len(merged) == 1
        assert merged[0].tag == 0b11
        assert merged[0].size == 2
        assert dag.num_edges == 0

    def test_chain_with_back_edge(self):
        a = IterationGroup(0b001, [(0,)])
        b = IterationGroup(0b010, [(1,)])
        c = IterationGroup(0b100, [(2,)])
        edges = [(a.ident, b.ident), (b.ident, a.ident), (b.ident, c.ident)]
        graph = GroupDependenceGraph([a.ident, b.ident, c.ident], edges)
        merged, dag = graph.acyclified([a, b, c])
        assert len(merged) == 2
        assert not dag.has_cycle()

    def test_has_cycle(self):
        g = GroupDependenceGraph([1, 2], [(1, 2), (2, 1)])
        assert g.has_cycle()
        assert not GroupDependenceGraph([1, 2], [(1, 2)]).has_cycle()


class TestTopologicalOrder:
    def test_order_respects_edges(self):
        g = GroupDependenceGraph([1, 2, 3], [(3, 2), (2, 1)])
        order = g.topological_order()
        assert order.index(3) < order.index(2) < order.index(1)

    def test_cycle_raises(self):
        from repro.errors import ScheduleError

        g = GroupDependenceGraph([1, 2], [(1, 2), (2, 1)])
        with pytest.raises(ScheduleError):
            g.topological_order()


class TestCoClusterPolicy:
    def test_connected_components_merge(self):
        a = IterationGroup(0b001, [(0,)])
        b = IterationGroup(0b010, [(1,)])
        c = IterationGroup(0b100, [(2,)])
        graph = GroupDependenceGraph(
            [a.ident, b.ident, c.ident], [(a.ident, b.ident)]
        )
        merged = merge_dependent_groups([a, b, c], graph)
        assert len(merged) == 2
        sizes = sorted(g.size for g in merged)
        assert sizes == [1, 2]

    def test_no_edges_identity(self):
        a = IterationGroup(0b01, [(0,)])
        b = IterationGroup(0b10, [(1,)])
        graph = GroupDependenceGraph([a.ident, b.ident], [])
        merged = merge_dependent_groups([a, b], graph)
        assert {g.ident for g in merged} == {a.ident, b.ident}

    def test_dependences_internal_after_merge(self, dependent_program):
        nest, groups = groups_of(dependent_program)
        graph = build_group_dependence_graph(nest, groups)
        merged = merge_dependent_groups(groups, graph)
        regraph = build_group_dependence_graph(nest, merged)
        assert regraph.num_edges == 0
