"""Per-node tree descent for non-level-uniform machines
(weighted clustering + targeted balancing)."""

import pytest

from repro.blocks.groups import IterationGroup
from repro.errors import MappingError
from repro.mapping.balance import Cluster, balance_to_targets
from repro.mapping.clustering import (
    cluster_weighted,
    hierarchical_distribute,
    tree_distribute,
)
from repro.pipeline.bench import bench_machine


def group(tag, size=4, start=0):
    return IterationGroup(tag, [(start + k,) for k in range(size)])


def many_groups(n, size=4):
    return [group(1 << (k % 8), size=size, start=100 * k) for k in range(n)]


class TestBalanceToTargets:
    def test_proportional_targets_respected(self):
        clusters = [
            Cluster([group(0b1, 30, 0)]),
            Cluster([group(0b10, 30, 100)]),
        ]
        balance_to_targets(clusters, targets=[2.0, 1.0], threshold=0.10)
        total = sum(c.size for c in clusters)
        assert total == 60
        # Cluster 0 should land near 2/3 of the weight.
        assert clusters[0].size == pytest.approx(40, abs=40 * 0.11)

    def test_target_count_mismatch(self):
        with pytest.raises(MappingError, match="targets"):
            balance_to_targets([Cluster()], targets=[1.0, 1.0], threshold=0.1)

    def test_nonpositive_target_rejected(self):
        clusters = [Cluster([group(0b1, 4)]), Cluster([group(0b10, 4, 50)])]
        with pytest.raises(MappingError, match="positive"):
            balance_to_targets(clusters, targets=[1.0, 0.0], threshold=0.1)

    def test_bad_threshold(self):
        clusters = [Cluster([group(0b1, 4)]), Cluster([group(0b10, 4, 50)])]
        with pytest.raises(MappingError, match="threshold"):
            balance_to_targets(clusters, targets=[1.0, 1.0], threshold=1.0)

    def test_single_cluster_noop(self):
        cluster = Cluster([group(0b1, 8)])
        balance_to_targets([cluster], targets=[1.0], threshold=0.1)
        assert cluster.size == 8

    def test_splits_when_group_too_large(self):
        clusters = [
            Cluster([group(0b1, 60, 0)]),
            Cluster([group(0b10, 3, 100)]),
        ]
        balance_to_targets(clusters, targets=[1.0, 1.0], threshold=0.10)
        sizes = sorted(c.size for c in clusters)
        assert sum(sizes) == 63
        assert sizes[0] >= 63 / 2 * 0.9 - 1


class TestClusterWeighted:
    def test_sizes_follow_weights(self):
        groups = many_groups(12, size=5)
        clusters = cluster_weighted(groups, weights=[3, 1], threshold=0.10)
        assert len(clusters) == 2
        total = sum(c.size for c in clusters)
        assert clusters[0].size > clusters[1].size
        assert clusters[0].size == pytest.approx(total * 0.75, rel=0.15)

    def test_equal_weights_match_plain_count(self):
        groups = many_groups(8)
        clusters = cluster_weighted(groups, weights=[1, 1], threshold=0.10)
        assert len(clusters) == 2
        assert abs(clusters[0].size - clusters[1].size) <= sum(
            c.size for c in clusters
        ) * 0.11

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(MappingError, match="positive"):
            cluster_weighted(many_groups(4), weights=[1, -1], threshold=0.1)


class TestTreeDistribute:
    def test_uniform_tree_matches_flat_descent(self):
        machine = bench_machine(8)
        groups = many_groups(16)
        flat = hierarchical_distribute(groups, machine, threshold=0.10)
        tree = tree_distribute(groups, machine, threshold=0.10)
        assert [sorted(g.ident for g in c) for c in tree] == [
            sorted(g.ident for g in c) for c in flat
        ]

    def test_pruned_machine_covers_all_cores(self):
        machine = bench_machine(8).without_cores([2])
        groups = many_groups(21)
        sets = tree_distribute(groups, machine, threshold=0.10)
        assert len(sets) == machine.num_cores
        distributed = sorted(g.ident for s in sets for g in s)
        assert distributed == sorted(g.ident for g in groups)

    def test_unequal_subtrees_get_proportional_load(self):
        # bench8 minus one core: one L2 pair becomes a singleton.
        machine = bench_machine(8).without_cores([3])
        groups = many_groups(28, size=3)
        sets = tree_distribute(groups, machine, threshold=0.10)
        sizes = [sum(g.size for g in s) for s in sets]
        total = sum(sizes)
        # Every core's share should be within a loose window of 1/7.
        for size in sizes:
            assert size == pytest.approx(total / machine.num_cores, rel=0.6)

    def test_dispatch_from_hierarchical(self):
        machine = bench_machine(8).without_cores([2])
        groups = many_groups(14)
        via_dispatch = hierarchical_distribute(groups, machine, threshold=0.10)
        direct = tree_distribute(groups, machine, threshold=0.10)
        assert [sorted(g.ident for g in c) for c in via_dispatch] == [
            sorted(g.ident for g in c) for c in direct
        ]

    def test_empty_groups_rejected(self):
        with pytest.raises(MappingError):
            tree_distribute([], bench_machine(4))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(MappingError, match="strategy"):
            tree_distribute(many_groups(4), bench_machine(4), strategy="anneal")

    def test_kl_strategy_works_on_pruned_tree(self):
        machine = bench_machine(8).without_cores([6])
        groups = many_groups(14)
        sets = tree_distribute(groups, machine, threshold=0.10, strategy="kl")
        assert len(sets) == machine.num_cores
