"""Unit tests for the affinity graph."""

from repro.blocks.groups import IterationGroup
from repro.mapping.affinity_graph import AffinityGraph


def group(tag, n=1):
    return IterationGroup(tag, [(k,) for k in range(n)])


class TestAffinityGraph:
    def test_weight_is_common_ones(self):
        g = AffinityGraph([group(0b1100), group(0b0110)])
        assert g.weight(g.groups[0], g.groups[1]) == 1

    def test_edges_filter_by_weight(self):
        graph = AffinityGraph([group(0b11), group(0b10), group(0b100)])
        edges = list(graph.edges(min_weight=1))
        assert len(edges) == 1
        assert edges[0][2] == 1

    def test_neighbors(self):
        a, b, c = group(0b111), group(0b100), group(0b1000)
        graph = AffinityGraph([a, b, c])
        neighbors = graph.neighbors(a)
        assert [n.ident for n, _ in neighbors] == [b.ident]

    def test_total_sharing(self):
        graph = AffinityGraph([group(0b11), group(0b11), group(0b11)])
        # 3 pairs, each sharing 2 blocks.
        assert graph.total_sharing() == 6

    def test_disconnected(self):
        graph = AffinityGraph([group(0b1), group(0b10)])
        assert graph.total_sharing() == 0

    def test_len(self):
        assert len(AffinityGraph([group(1), group(2)])) == 2
