"""Unit tests for the simulation-guided autotuner."""

import pytest

from repro.errors import MappingError
from repro.mapping.autotune import autotune_block_size


class TestAutotune:
    def test_picks_minimum_cycles(self, fig5_program, fig9_machine):
        result = autotune_block_size(
            fig5_program, fig5_program.nests[0], fig9_machine,
            candidates=(32, 64, 96),
        )
        assert result.best.cycles == min(t.cycles for t in result.trials)
        assert len(result.trials) == 3

    def test_weights_swept(self, fig5_program, fig9_machine):
        result = autotune_block_size(
            fig5_program, fig5_program.nests[0], fig9_machine,
            candidates=(32,),
            weights=((1.0, 0.0), (0.0, 1.0)),
            local_scheduling=True,
        )
        assert len(result.trials) == 2
        assert {(t.alpha, t.beta) for t in result.trials} == {(1.0, 0.0), (0.0, 1.0)}

    def test_empty_candidates(self, fig5_program, fig9_machine):
        with pytest.raises(MappingError):
            autotune_block_size(
                fig5_program, fig5_program.nests[0], fig9_machine, candidates=()
            )

    def test_invalid_candidate(self, fig5_program, fig9_machine):
        with pytest.raises(MappingError):
            autotune_block_size(
                fig5_program, fig5_program.nests[0], fig9_machine, candidates=(0,)
            )

    def test_table_renders(self, fig5_program, fig9_machine):
        result = autotune_block_size(
            fig5_program, fig5_program.nests[0], fig9_machine, candidates=(32, 64)
        )
        assert "best" in result.table()

    def test_deterministic(self, fig5_program, fig9_machine):
        def run():
            return autotune_block_size(
                fig5_program, fig5_program.nests[0], fig9_machine, candidates=(32, 64)
            ).best

        assert run() == run()
