"""Unit tests for the end-to-end TopologyAwareMapper."""

import pytest

from repro.errors import MappingError
from repro.mapping.distribute import ExecutablePlan, TopologyAwareMapper


class TestMapper:
    def test_fig5_on_fig9(self, fig5_program, fig9_machine):
        mapper = TopologyAwareMapper(fig9_machine, block_size=32)
        result = mapper.map_nest(fig5_program, fig5_program.nests[0])
        plan = result.plan()
        plan.verify_complete()
        assert len(result.assignments) == 4

    def test_default_block_size_uses_heuristic(self, fig5_program, fig9_machine):
        mapper = TopologyAwareMapper(fig9_machine)
        result = mapper.map_nest(fig5_program, fig5_program.nests[0])
        assert result.partition.block_size >= 64

    def test_balance(self, fig5_program, fig9_machine):
        mapper = TopologyAwareMapper(fig9_machine, block_size=32, balance_threshold=0.10)
        result = mapper.map_nest(fig5_program, fig5_program.nests[0])
        sizes = result.assignment_sizes()
        avg = sum(sizes) / len(sizes)
        assert max(sizes) - min(sizes) <= max(4, avg * 0.25)

    def test_timings_recorded(self, fig5_program, fig9_machine):
        mapper = TopologyAwareMapper(fig9_machine, block_size=32)
        result = mapper.map_nest(fig5_program, fig5_program.nests[0])
        assert set(result.timings) == {
            "partition", "tagging", "dependence", "clustering", "scheduling",
        }
        assert result.compile_time >= 0

    def test_local_scheduling_flattens_parallel(self, fig5_program, fig9_machine):
        mapper = TopologyAwareMapper(fig9_machine, block_size=32, local_scheduling=True)
        result = mapper.map_nest(fig5_program, fig5_program.nests[0])
        plan = result.plan()
        plan.verify_complete()
        # Parallel nest: no barriers even with scheduling on.
        assert plan.num_rounds == 1

    def test_dependent_nest_gets_rounds(self, dependent_program, two_core_machine):
        mapper = TopologyAwareMapper(two_core_machine, block_size=32)
        result = mapper.map_nest(dependent_program, dependent_program.nests[0])
        plan = result.plan()
        plan.verify_complete()
        assert result.graph is not None

    def test_co_cluster_policy(self, dependent_program, two_core_machine):
        mapper = TopologyAwareMapper(
            two_core_machine, block_size=32, dependence_policy="co-cluster"
        )
        result = mapper.map_nest(dependent_program, dependent_program.nests[0])
        result.plan().verify_complete()
        assert result.graph is None

    def test_unknown_policy(self, fig9_machine):
        with pytest.raises(MappingError):
            TopologyAwareMapper(fig9_machine, dependence_policy="yolo")

    def test_refine_flag(self, fig5_program, fig9_machine):
        for refine in (False, True):
            mapper = TopologyAwareMapper(fig9_machine, block_size=32, refine=refine)
            result = mapper.map_nest(fig5_program, fig5_program.nests[0])
            result.plan().verify_complete()

    def test_deterministic(self, fig5_program, fig9_machine):
        def run():
            mapper = TopologyAwareMapper(fig9_machine, block_size=32)
            result = mapper.map_nest(fig5_program, fig5_program.nests[0])
            return result.plan().rounds

        assert run() == run()


class TestExecutablePlan:
    def make_plan(self, fig5_program, fig9_machine, block=32):
        mapper = TopologyAwareMapper(fig9_machine, block_size=block)
        return mapper.map_nest(fig5_program, fig5_program.nests[0]).plan()

    def test_total_iterations(self, fig5_program, fig9_machine):
        plan = self.make_plan(fig5_program, fig9_machine)
        assert plan.total_iterations() == fig5_program.nests[0].iteration_count()

    def test_core_iterations(self, fig5_program, fig9_machine):
        plan = self.make_plan(fig5_program, fig9_machine)
        assert sum(len(plan.core_iterations(c)) for c in range(4)) == plan.total_iterations()

    def test_verify_detects_duplicates(self, fig5_program, fig9_machine):
        plan = self.make_plan(fig5_program, fig9_machine)
        dup = plan.rounds[0][0][0]
        rounds = ((plan.rounds[0][0] + (dup,),),) + plan.rounds[1:]
        bad = ExecutablePlan(plan.machine, plan.nest, rounds, "bad")
        with pytest.raises(MappingError):
            bad.verify_complete()

    def test_verify_detects_missing(self, fig5_program, fig9_machine):
        plan = self.make_plan(fig5_program, fig9_machine)
        rounds = ((plan.rounds[0][0][1:],),) + plan.rounds[1:]
        bad = ExecutablePlan(plan.machine, plan.nest, rounds, "bad")
        with pytest.raises(MappingError):
            bad.verify_complete()

    def test_num_rounds(self, fig5_program, fig9_machine):
        plan = self.make_plan(fig5_program, fig9_machine)
        assert plan.num_rounds >= 1
