"""Unit tests for cluster load balancing."""

import pytest

from repro.errors import MappingError
from repro.blocks.groups import IterationGroup
from repro.mapping.balance import Cluster, balance_clusters, balance_limits, verify_balance


def group(tag, size, start=0):
    return IterationGroup(tag, [(start + k,) for k in range(size)])


class TestCluster:
    def test_add_remove(self):
        c = Cluster()
        g = group(0b11, 4)
        c.add(g)
        assert c.size == 4 and c.tag == 0b11
        c.remove(g)
        assert c.size == 0 and c.tag == 0

    def test_tag_recomputed_on_remove(self):
        a, b = group(0b01, 2), group(0b10, 2, start=10)
        c = Cluster([a, b])
        c.remove(b)
        assert c.tag == 0b01


class TestLimits:
    def test_window(self):
        low, up = balance_limits(100, 4, 0.10)
        assert low == pytest.approx(22.5) and up == pytest.approx(27.5)

    def test_bad_threshold(self):
        with pytest.raises(MappingError):
            balance_limits(100, 4, 1.5)

    def test_bad_k(self):
        with pytest.raises(MappingError):
            balance_limits(100, 0, 0.1)


class TestBalancing:
    def test_whole_group_moves(self):
        clusters = [
            Cluster([group(0b1, 10, 0), group(0b1, 10, 100)]),
            Cluster([group(0b1, 2, 200)]),
        ]
        balance_clusters(clusters, threshold=0.10)
        assert verify_balance(clusters, 0.10)

    def test_split_when_needed(self):
        # One giant group must be split to balance.
        clusters = [Cluster([group(0b1, 100)]), Cluster([group(0b10, 2, 500)])]
        balance_clusters(clusters, threshold=0.10)
        assert verify_balance(clusters, 0.10)
        total = sum(c.size for c in clusters)
        assert total == 102

    def test_preserves_total_iterations(self):
        clusters = [
            Cluster([group(0b1, 33)]),
            Cluster([group(0b10, 5, 100)]),
            Cluster([group(0b100, 7, 200)]),
        ]
        balance_clusters(clusters, threshold=0.05)
        assert sum(c.size for c in clusters) == 45

    def test_already_balanced_untouched(self):
        a = group(0b1, 10)
        b = group(0b10, 10, 100)
        clusters = [Cluster([a]), Cluster([b])]
        balance_clusters(clusters, threshold=0.10)
        assert clusters[0].groups == [a] and clusters[1].groups == [b]

    def test_single_cluster_noop(self):
        clusters = [Cluster([group(0b1, 5)])]
        balance_clusters(clusters, threshold=0.10)
        assert clusters[0].size == 5

    def test_dot_product_preference(self):
        # Donor has two movable groups; recipient shares blocks with one.
        donor = Cluster([group(0b001, 10, 0), group(0b110, 10, 100)])
        recipient = Cluster([group(0b100, 2, 200)])
        balance_clusters([donor, recipient], threshold=0.10)
        # The 0b110 group shares a block with the recipient's 0b100.
        assert any(g.tag == 0b110 for g in recipient.groups)

    def test_tight_threshold(self):
        clusters = [
            Cluster([group(0b1, 50)]),
            Cluster([group(0b10, 1, 100)]),
            Cluster([group(0b100, 1, 200)]),
        ]
        balance_clusters(clusters, threshold=0.01)
        sizes = sorted(c.size for c in clusters)
        assert sizes[-1] - sizes[0] <= 2
