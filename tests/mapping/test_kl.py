"""Unit tests for Kernighan-Lin bipartition refinement."""

from repro.blocks.groups import IterationGroup
from repro.mapping.kl import cluster_one_level_kl, cut_weight, kl_bipartition


def group(tag, size=2, start=0):
    return IterationGroup(tag, [(start + k,) for k in range(size)])


class TestCutWeight:
    def test_zero_cut(self):
        assert cut_weight([group(0b1)], [group(0b10, start=10)]) == 0

    def test_counts_shared_bits(self):
        assert cut_weight([group(0b11)], [group(0b110, start=10)]) == 1


class TestKlBipartition:
    def test_fixes_crossed_pairs(self):
        a1, a2 = group(0b0011, start=0), group(0b0011, start=10)
        b1, b2 = group(0b1100, start=20), group(0b1100, start=30)
        # Start from the worst cut: one of each pair on each side.
        left, right = kl_bipartition([a1, b1], [a2, b2])
        assert cut_weight(left, right) == 0

    def test_never_worsens(self):
        groups_a = [group(0b101 << k, start=20 * k) for k in range(4)]
        groups_b = [group(0b11 << k, start=300 + 20 * k) for k in range(4)]
        before = cut_weight(groups_a, groups_b)
        left, right = kl_bipartition(list(groups_a), list(groups_b))
        assert cut_weight(left, right) <= before

    def test_preserves_groups(self):
        a = [group(1 << k, start=10 * k) for k in range(3)]
        b = [group(1 << k, start=200 + 10 * k) for k in range(3)]
        left, right = kl_bipartition(list(a), list(b))
        assert sorted(g.ident for g in left + right) == sorted(
            g.ident for g in a + b
        )

    def test_size_tolerance_blocks_lopsided_swaps(self):
        big = group(0b11, size=50, start=0)
        small = group(0b11, size=1, start=100)
        other = group(0b1100, size=50, start=200)
        left, right = kl_bipartition([big], [small, other], size_tolerance=0.05)
        sizes = (sum(g.size for g in left), sum(g.size for g in right))
        assert abs(sizes[0] - sizes[1]) <= 60  # no swap made things extreme

    def test_empty_side(self):
        a, b = kl_bipartition([], [group(0b1)])
        assert a == [] and len(b) == 1


class TestClusterOneLevel:
    def test_produces_balanced_pair(self):
        groups = [group((0b11 << (k % 4)), size=3, start=20 * k) for k in range(8)]
        clusters = cluster_one_level_kl(groups, threshold=0.10)
        assert len(clusters) == 2
        sizes = [c.size for c in clusters]
        assert abs(sizes[0] - sizes[1]) <= 4

    def test_no_worse_than_greedy(self):
        from repro.mapping.clustering import cluster_one_level

        groups = [group((0b10101 << (k % 3)), size=2, start=20 * k) for k in range(10)]
        greedy = cluster_one_level(list(groups), 2, 0.10)
        kl = cluster_one_level_kl(list(groups), 0.10)
        assert cut_weight(kl[0].groups, kl[1].groups) <= cut_weight(
            greedy[0].groups, greedy[1].groups
        ) + 1
