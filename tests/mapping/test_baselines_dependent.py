"""Baseline behavior on dependence-heavy nests (cycle-merge paths)."""

import pytest

from repro.blocks.datablocks import DataBlockPartition
from repro.lang import compile_source
from repro.mapping.baselines import local_plan
from repro.runtime import execute_plan


@pytest.fixture
def bidirectional_program():
    """Flow + anti dependences in both directions => cyclic group graph."""
    return compile_source(
        """
        param k = 4;
        array B[64];
        for (j = 4; j < 60; j++)
          B[j] = B[j - k] + B[j + k];
        """,
        name="bidir",
    )


class TestLocalPlanWithCycles:
    def test_plan_complete(self, bidirectional_program, two_core_machine):
        program = bidirectional_program
        nest = program.nests[0]
        partition = DataBlockPartition(list(program.arrays.values()), 32)
        plan = local_plan(nest, two_core_machine, partition)
        plan.verify_complete()

    def test_simulates(self, bidirectional_program, two_core_machine):
        program = bidirectional_program
        nest = program.nests[0]
        partition = DataBlockPartition(list(program.arrays.values()), 64)
        plan = local_plan(nest, two_core_machine, partition)
        result = execute_plan(plan, verify=True)
        assert result.total_accesses == nest.iteration_count() * len(nest.accesses)

    def test_mapper_handles_cycles(self, bidirectional_program, two_core_machine):
        from repro.mapping.distribute import TopologyAwareMapper

        program = bidirectional_program
        mapper = TopologyAwareMapper(two_core_machine, block_size=32)
        result = mapper.map_nest(program, program.nests[0])
        result.plan().verify_complete()
        # Acyclification must have produced a DAG.
        assert result.graph is not None
        assert not result.graph.has_cycle()

    def test_co_cluster_merges_cycles(self, bidirectional_program, two_core_machine):
        from repro.mapping.distribute import TopologyAwareMapper

        program = bidirectional_program
        mapper = TopologyAwareMapper(
            two_core_machine, block_size=32, dependence_policy="co-cluster"
        )
        result = mapper.map_nest(program, program.nests[0])
        result.plan().verify_complete()
