"""Unit tests for hierarchical clustering (Figure 6)."""

import pytest

from repro.errors import MappingError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import IterationGroup
from repro.blocks.tagger import tag_iterations
from repro.blocks.tags import bitwise_sum, dot
from repro.mapping.clustering import cluster_one_level, hierarchical_distribute


def group(tag, size=4, start=0):
    return IterationGroup(tag, [(start + k,) for k in range(size)])


class TestClusterOneLevel:
    def test_count(self):
        groups = [group(1 << k, start=10 * k) for k in range(8)]
        clusters = cluster_one_level(groups, 3, 0.10)
        assert len(clusters) == 3

    def test_sharers_merge_first(self):
        # Two pairs of sharers; clustering into 2 must keep pairs together.
        a1, a2 = group(0b0011, start=0), group(0b0011, start=10)
        b1, b2 = group(0b1100, start=20), group(0b1100, start=30)
        clusters = cluster_one_level([a1, b1, a2, b2], 2, 0.10)
        tags = sorted(c.tag for c in clusters)
        assert tags == [0b0011, 0b1100]

    def test_split_single_group(self):
        clusters = cluster_one_level([group(0b1, size=20)], 2, 0.10)
        assert len(clusters) == 2
        assert sum(c.size for c in clusters) == 20

    def test_split_indivisible_pads_idle_clusters(self):
        # A single unsplittable iteration still yields k clusters: the
        # surplus ones are empty (their cores idle) instead of the whole
        # mapping failing on a degenerate-but-legal nest.
        clusters = cluster_one_level([group(0b1, size=1)], 2, 0.10)
        assert len(clusters) == 2
        assert sorted(c.size for c in clusters) == [0, 1]

    def test_invalid_k(self):
        with pytest.raises(MappingError):
            cluster_one_level([group(0b1)], 0, 0.10)

    def test_zero_affinity_fallback_packs_by_size(self):
        groups = [group(1 << k, size=2 + k, start=100 * k) for k in range(4)]
        clusters = cluster_one_level(groups, 2, 0.25)
        assert len(clusters) == 2
        assert sum(c.size for c in clusters) == sum(g.size for g in groups)

    def test_power_of_two_bisection(self):
        # 8 chain groups into 4 clusters: chain neighbors share a block.
        groups = [group(0b11 << k, start=10 * k) for k in range(8)]
        clusters = cluster_one_level(groups, 4, 0.10)
        assert len(clusters) == 4

    def test_deterministic(self):
        def build():
            groups = [group((1 << k) | 1, start=10 * k) for k in range(6)]
            return [sorted(g.iterations[0] for g in c.groups)
                    for c in cluster_one_level(groups, 3, 0.10)]

        assert build() == build()


class TestHierarchicalDistribute:
    def test_paper_example_assignment(self, fig5_program, fig9_machine):
        """Figure 10(b)/(c): even-tag and odd-tag chains split across L2s."""
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 4 * 8)
        gs = tag_iterations(nest, part)
        assignment = hierarchical_distribute(gs.groups, fig9_machine, 0.10)
        assert len(assignment) == 4
        # Cores 0 and 1 share an L2; their groups' tags must not straddle
        # the even/odd chain boundary (the two chains share no blocks).
        left = bitwise_sum(*(g.tag for g in assignment[0] + assignment[1]))
        right = bitwise_sum(*(g.tag for g in assignment[2] + assignment[3]))
        assert dot(left, right) == 0

    def test_covers_all_groups(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        gs = tag_iterations(nest, part)
        assignment = hierarchical_distribute(gs.groups, fig9_machine, 0.10)
        total = sum(g.size for core in assignment for g in core)
        assert total == nest.iteration_count()

    def test_balanced(self, fig5_program, fig9_machine):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        gs = tag_iterations(nest, part)
        assignment = hierarchical_distribute(gs.groups, fig9_machine, 0.10)
        sizes = [sum(g.size for g in core) for core in assignment]
        avg = sum(sizes) / len(sizes)
        assert max(sizes) <= avg * 1.1 + 2 and min(sizes) >= avg * 0.9 - 2

    def test_empty_groups_rejected(self, fig9_machine):
        with pytest.raises(MappingError):
            hierarchical_distribute([], fig9_machine, 0.10)

    def test_one_cluster_per_core(self, fig9_machine):
        groups = [group(1 << k, size=6, start=10 * k) for k in range(12)]
        assignment = hierarchical_distribute(groups, fig9_machine, 0.10)
        assert len(assignment) == fig9_machine.num_cores
