"""Mapper options: clustering strategy selection and validation."""

import pytest

from repro.errors import MappingError
from repro.mapping.clustering import hierarchical_distribute
from repro.mapping.distribute import TopologyAwareMapper


class TestStrategyOption:
    def test_unknown_strategy_rejected(self, fig9_machine):
        with pytest.raises(MappingError):
            TopologyAwareMapper(fig9_machine, cluster_strategy="spectral")

    def test_distribute_unknown_strategy(self, fig9_machine, fig5_program):
        from repro.blocks.datablocks import DataBlockPartition
        from repro.blocks.tagger import tag_iterations

        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        groups = list(tag_iterations(nest, part).groups)
        with pytest.raises(MappingError):
            hierarchical_distribute(groups, fig9_machine, 0.1, "magic")

    def test_kl_covers_iterations(self, fig9_machine, fig5_program):
        mapper = TopologyAwareMapper(
            fig9_machine, block_size=32, cluster_strategy="kl"
        )
        result = mapper.map_nest(fig5_program, fig5_program.nests[0])
        result.plan().verify_complete()

    def test_kl_keeps_chain_separation(self, fig9_machine, fig5_program):
        """The Figure 10(b) property must survive KL refinement: the two
        sharing chains stay on opposite L2s."""
        from repro.blocks.tags import bitwise_sum, dot

        mapper = TopologyAwareMapper(
            fig9_machine, block_size=32, cluster_strategy="kl"
        )
        result = mapper.map_nest(fig5_program, fig5_program.nests[0])
        left = bitwise_sum(*(g.tag for g in result.assignments[0] + result.assignments[1]))
        right = bitwise_sum(*(g.tag for g in result.assignments[2] + result.assignments[3]))
        assert dot(left, right) == 0

    def test_strategies_comparable_quality(self, fig9_machine, fig5_program):
        from repro.mapping.optimal import sharing_cost

        costs = {}
        for strategy in ("greedy", "kl"):
            mapper = TopologyAwareMapper(
                fig9_machine, block_size=32, cluster_strategy=strategy
            )
            result = mapper.map_nest(fig5_program, fig5_program.nests[0])
            costs[strategy] = sharing_cost(result.assignments, fig9_machine)
        # KL never materially worse on the paper's example.
        assert costs["kl"] <= costs["greedy"] * 1.05
