"""Unit tests for assignment refinement."""

from repro.blocks.groups import IterationGroup
from repro.mapping.optimal import sharing_cost
from repro.mapping.refine import refine_assignment


def group(tag, size=4, start=0):
    return IterationGroup(tag, [(start + k,) for k in range(size)])


class TestRefinement:
    def test_separated_sharers_reunited(self, two_core_machine):
        a, b = group(0b11, start=0), group(0b11, start=10)
        c, d = group(0b1100, start=20), group(0b1100, start=30)
        bad = [[a, c], [b, d]]
        refined = refine_assignment(bad, two_core_machine, balance_threshold=0.10)
        tags = sorted(tuple(sorted(g.tag for g in core)) for core in refined)
        assert tags == [(0b11, 0b11), (0b1100, 0b1100)]

    def test_never_increases_cost(self, fig9_machine):
        groups = [group((0b11 << (k % 5)), start=10 * k) for k in range(12)]
        start = [groups[0:3], groups[3:6], groups[6:9], groups[9:12]]
        refined = refine_assignment(start, fig9_machine, balance_threshold=0.10)
        assert sharing_cost(refined, fig9_machine) <= sharing_cost(start, fig9_machine) + 1e-9

    def test_preserves_groups(self, fig9_machine):
        groups = [group(1 << k, start=10 * k) for k in range(8)]
        start = [groups[0:2], groups[2:4], groups[4:6], groups[6:8]]
        refined = refine_assignment(start, fig9_machine)
        flat = sorted(g.ident for core in refined for g in core)
        assert flat == sorted(g.ident for g in groups)

    def test_respects_balance_window(self, two_core_machine):
        a, b = group(0b11, size=10, start=0), group(0b11, size=10, start=100)
        # Perfectly sharing pair, but moving either would empty a core.
        refined = refine_assignment([[a], [b]], two_core_machine, balance_threshold=0.10)
        sizes = sorted(sum(g.size for g in core) for core in refined)
        assert sizes == [10, 10]

    def test_input_not_mutated(self, two_core_machine):
        a, b = group(0b11, start=0), group(0b11, start=10)
        start = [[a], [b]]
        refine_assignment(start, two_core_machine, balance_threshold=0.9)
        assert start == [[a], [b]]

    def test_single_core_noop(self):
        from repro.topology.cache import CacheSpec
        from repro.topology.tree import Machine, TopologyNode

        l1 = CacheSpec("L1", 512, 2, 32, 2)
        m = Machine("one", 1.0, 10,
                    TopologyNode.cache(l1, [TopologyNode.core(0)]), sockets=1)
        start = [[group(0b1)]]
        assert refine_assignment(start, m) == start
