"""Unit tests for the Figure 7 scheduler."""

import pytest

from repro.errors import ScheduleError
from repro.blocks.groups import IterationGroup
from repro.mapping.dependence import GroupDependenceGraph
from repro.mapping.schedule import dependence_only_schedule, schedule_groups


def group(tag, size=2, start=0):
    return IterationGroup(tag, [(start + k,) for k in range(size)])


def flatten(rounds):
    return [g for rnd in rounds for g in rnd]


class TestBasicScheduling:
    def test_schedules_everything_once(self, fig9_machine):
        assignments = [
            [group(0b11, start=0), group(0b110, start=10)],
            [group(0b1100, start=20)],
            [group(0b11000, start=30)],
            [group(0b110000, start=40), group(0b1100000, start=50)],
        ]
        result = schedule_groups(assignments, fig9_machine)
        for core, groups in enumerate(assignments):
            scheduled = flatten(result[core])
            assert {g.ident for g in scheduled} == {g.ident for g in groups}

    def test_round_counts_aligned(self, fig9_machine):
        assignments = [[group(1, start=10 * k)] for k in range(4)]
        result = schedule_groups(assignments, fig9_machine)
        assert len({len(rounds) for rounds in result}) == 1

    def test_wrong_core_count(self, fig9_machine):
        with pytest.raises(ScheduleError):
            schedule_groups([[], []], fig9_machine)

    def test_empty_core_allowed(self, fig9_machine):
        assignments = [[group(1)], [], [], []]
        result = schedule_groups(assignments, fig9_machine)
        assert flatten(result[1]) == []

    def test_first_pick_is_fewest_ones(self, two_core_machine):
        sparse = group(0b1, start=0)
        dense = group(0b111, start=10)
        result = schedule_groups([[dense, sparse], []], two_core_machine)
        assert flatten(result[0])[0].ident == sparse.ident

    def test_vertical_chaining(self, two_core_machine):
        # After scheduling 0b0011, beta should prefer 0b0110 over 0b1100.
        first = group(0b0011, start=0)
        shared = group(0b0110, start=10)
        unrelated = group(0b11000, start=20)
        result = schedule_groups(
            [[first, unrelated, shared], []], two_core_machine, alpha=0.0, beta=1.0
        )
        order = [g.ident for g in flatten(result[0])]
        assert order.index(shared.ident) < order.index(unrelated.ident)


class TestDependenceAware:
    def test_dependences_respected_across_rounds(self, fig9_machine):
        a = group(0b1, start=0)
        b = group(0b10, start=10)
        graph = GroupDependenceGraph([a.ident, b.ident], [(a.ident, b.ident)])
        # b (dependent) on core 0, a (prerequisite) on core 1.
        result = schedule_groups([[b], [a], [], []], fig9_machine, graph)
        round_of = {}
        for core, rounds in enumerate(result):
            for rnd_idx, rnd in enumerate(rounds):
                for g in rnd:
                    round_of[g.ident] = rnd_idx
        assert round_of[a.ident] < round_of[b.ident]

    def test_chain_forces_multiple_rounds(self, two_core_machine):
        chain = [group(1 << k, start=10 * k) for k in range(4)]
        edges = [(chain[k].ident, chain[k + 1].ident) for k in range(3)]
        graph = GroupDependenceGraph([g.ident for g in chain], edges)
        result = schedule_groups(
            [[chain[0], chain[2]], [chain[1], chain[3]]], two_core_machine, graph
        )
        round_of = {}
        for rounds in result:
            for rnd_idx, rnd in enumerate(rounds):
                for g in rnd:
                    round_of[g.ident] = rnd_idx
        for a, b in edges:
            assert round_of[a] < round_of[b]

    def test_cross_core_cycle_raises(self, two_core_machine):
        a = group(0b1, start=0)
        b = group(0b10, start=10)
        graph = GroupDependenceGraph(
            [a.ident, b.ident], [(a.ident, b.ident), (b.ident, a.ident)]
        )
        with pytest.raises(ScheduleError):
            schedule_groups([[a], [b]], two_core_machine, graph)


class TestDependenceOnlySchedule:
    def test_no_graph_single_round(self, fig9_machine):
        assignments = [[group(1, start=10 * k), group(2, start=100 + 10 * k)] for k in range(4)]
        result = dependence_only_schedule(assignments, fig9_machine, None)
        assert all(len(rounds) == 1 for rounds in result)

    def test_orders_by_first_iteration(self, fig9_machine):
        late = group(0b1, start=50)
        early = group(0b10, start=0)
        result = dependence_only_schedule([[late, early], [], [], []], fig9_machine, None)
        assert [g.ident for g in result[0][0]] == [early.ident, late.ident]

    def test_with_graph_produces_rounds(self, two_core_machine):
        a = group(0b1, start=0)
        b = group(0b10, start=10)
        graph = GroupDependenceGraph([a.ident, b.ident], [(a.ident, b.ident)])
        result = dependence_only_schedule([[b], [a]], two_core_machine, graph)
        assert max(len(r) for r in result) >= 2
