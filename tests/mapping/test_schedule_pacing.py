"""Deeper scheduler behavior tests: pacing, α/β interplay, shared sets."""

from repro.blocks.groups import IterationGroup
from repro.mapping.schedule import schedule_groups


def group(tag, size=2, start=0):
    return IterationGroup(tag, [(start + k,) for k in range(size)])


class TestPacing:
    def test_counts_stay_roughly_aligned(self, fig9_machine):
        # Unequal group sizes: the quota rules keep scheduled-iteration
        # counts across a shared-cache pair within one group of each other
        # at every round boundary.
        assignments = [
            [group(0b1, size=4, start=0), group(0b1, size=4, start=100)],
            [group(0b10, size=2, start=200), group(0b10, size=2, start=300),
             group(0b10, size=2, start=400), group(0b10, size=2, start=500)],
            [group(0b100, size=8, start=600)],
            [group(0b1000, size=8, start=700)],
        ]
        rounds = schedule_groups(assignments, fig9_machine)
        counts = [0, 0, 0, 0]
        num_rounds = max(len(r) for r in rounds)
        for rnd in range(num_rounds):
            for core in range(4):
                if rnd < len(rounds[core]):
                    counts[core] += sum(g.size for g in rounds[core][rnd])
            # Cores 0/1 share an L2: their cumulative counts may differ by
            # at most the largest single group they own.
            assert abs(counts[0] - counts[1]) <= 4

    def test_alpha_aligns_neighbors(self, fig9_machine):
        # Core 1 should pick the group sharing blocks with core 0's last
        # scheduled group when alpha dominates.
        a = group(0b0011, start=0)
        partner = group(0b0010, start=100)
        loner = group(0b1000, start=200)
        assignments = [[a], [loner, partner], [], []]
        rounds = schedule_groups(assignments, fig9_machine, alpha=1.0, beta=0.0)
        first_on_core1 = rounds[1][0][0]
        assert first_on_core1.ident == partner.ident

    def test_alpha_zero_ignores_neighbor(self, fig9_machine):
        a = group(0b0011, start=0)
        partner = group(0b0010, start=100)
        sparse = group(0b1000, start=200)
        assignments = [[a], [partner, sparse], [], []]
        rounds = schedule_groups(assignments, fig9_machine, alpha=0.0, beta=0.0)
        # Without alpha, the first pick on core 1 falls back to the
        # fewest-ones tie-break — both have one bit, lower ident wins.
        first = rounds[1][0][0]
        assert first.ident == min(partner.ident, sparse.ident)

    def test_each_shared_set_schedules_independently(self, fig9_machine):
        # Groups on cores 2/3 (second L2) must not affect the order on
        # cores 0/1 (first L2).
        left = [[group(0b1, start=0)], [group(0b10, start=100)]]
        for extra in ([group(0b100, start=200)], [group(0b1100, start=300)]):
            assignments = left + [extra, [group(0b1000, start=400)]]
            rounds = schedule_groups([list(a) for a in assignments], fig9_machine)
            assert rounds[0][0][0].tag == 0b1
            assert rounds[1][0][0].tag == 0b10
