"""Differential tests for the access-analysis seam.

The trace-based fallback must be a drop-in for the affine path: on the
twelve paper kernels — all affine — :class:`TraceAnalysis` has to produce
the *same* ``GroupSet`` as :class:`AffineAnalysis`, down to the
``TagArtifact`` fingerprint.  That bit-identity is what lets one artifact
fingerprint space (and one disk cache) serve both frontends, and it pins
the fallback against drift: any divergence in bucketing, write/read tag
accumulation, or group order fails here before it can corrupt a mapping.
"""

import pytest

from repro.blocks.analysis import (
    AffineAnalysis,
    TraceAnalysis,
    select_analysis,
)
from repro.blocks.datablocks import DataBlockPartition
from repro.errors import BlockingError
from repro.pipeline.artifacts import TagArtifact
from repro.workloads import irregular_workloads, paper_workloads, workload

PAPER = sorted(w.name for w in paper_workloads())
IRREGULAR = sorted(w.name for w in irregular_workloads())


def _partition(app):
    program = app.program()
    nest = app.nest()
    arrays = [program.arrays[a.name] for a in nest.arrays()]
    return nest, DataBlockPartition(arrays, app.block_size())


class TestAffineTraceEquivalence:
    @pytest.mark.parametrize("name", PAPER)
    def test_trace_reproduces_affine_groups(self, name):
        nest, partition = _partition(workload(name))
        affine = AffineAnalysis().tag(nest, partition)
        trace = TraceAnalysis().tag(nest, partition)
        assert len(affine.groups) == len(trace.groups)
        for a, t in zip(affine.groups, trace.groups):
            assert a.tag == t.tag
            assert a.iterations == t.iterations
            assert a.write_tag == t.write_tag
            assert a.read_tag == t.read_tag

    @pytest.mark.parametrize("name", PAPER)
    def test_trace_reproduces_affine_fingerprint(self, name):
        # The acceptance bar: one TagArtifact fingerprint space.
        nest, partition = _partition(workload(name))
        affine = TagArtifact(AffineAnalysis().tag(nest, partition))
        trace = TagArtifact(TraceAnalysis().tag(nest, partition))
        assert affine.fingerprint() == trace.fingerprint()


class TestSelection:
    @pytest.mark.parametrize("name", PAPER)
    def test_paper_kernels_take_static_path(self, name):
        assert select_analysis(workload(name).nest()).name == "affine"

    @pytest.mark.parametrize("name", IRREGULAR)
    def test_irregular_kernels_take_trace_path(self, name):
        assert select_analysis(workload(name).nest()).name == "trace"

    @pytest.mark.parametrize("name", IRREGULAR)
    def test_affine_declines_irregular(self, name):
        assert not AffineAnalysis().analyzes(workload(name).nest())


class TestTraceBudget:
    def test_over_budget_nest_is_rejected(self):
        app = workload("histogram")
        nest, partition = _partition(app)
        events = nest.iteration_count() * len(nest.accesses)
        tight = TraceAnalysis(max_events=events - 1)
        with pytest.raises(BlockingError, match="budget"):
            tight.tag(nest, partition)
        # The real budget admits every registry kernel.
        assert events <= TraceAnalysis().max_events
