"""Unit tests for the data-block partition."""

import pytest

from repro.errors import BlockingError
from repro.blocks.datablocks import DataBlockPartition
from repro.ir.arrays import Array


def parts(extents=(64,), block=64, element=8):
    return DataBlockPartition([Array("A", extents, element)], block)


class TestConstruction:
    def test_block_count(self):
        # 64 elements x 8B = 512B; 64B blocks of 8 elements -> 8 blocks.
        assert parts().num_blocks == 8

    def test_partial_last_block(self):
        p = DataBlockPartition([Array("A", (10,), 8)], 64)
        assert p.num_blocks == 2  # 8 + 2 elements

    def test_blocks_never_cross_arrays(self):
        p = DataBlockPartition([Array("A", (9,), 8), Array("B", (4,), 8)], 64)
        # A: 2 blocks (8 + 1), B starts a fresh block.
        assert p.blocks_of_array("A") == range(0, 2)
        assert p.blocks_of_array("B") == range(2, 3)

    def test_sequential_numbering(self):
        p = DataBlockPartition(
            [Array("A", (16,), 8), Array("B", (16,), 8)], 64
        )
        assert list(p.blocks_of_array("A")) == [0, 1]
        assert list(p.blocks_of_array("B")) == [2, 3]

    def test_non_positive_block_size(self):
        with pytest.raises(BlockingError):
            parts(block=0)

    def test_block_not_multiple_of_element(self):
        with pytest.raises(BlockingError):
            DataBlockPartition([Array("A", (8,), 8)], 20)

    def test_empty_arrays(self):
        with pytest.raises(BlockingError):
            DataBlockPartition([], 64)

    def test_duplicate_names(self):
        with pytest.raises(BlockingError):
            DataBlockPartition([Array("A", (8,)), Array("A", (8,))], 64)


class TestLookup:
    def test_block_of(self):
        p = parts()
        assert p.block_of("A", 0) == 0
        assert p.block_of("A", 7) == 0
        assert p.block_of("A", 8) == 1

    def test_block_of_second_array(self):
        p = DataBlockPartition([Array("A", (8,), 8), Array("B", (8,), 8)], 64)
        assert p.block_of("B", 0) == 1

    def test_block_of_unknown_array(self):
        with pytest.raises(BlockingError):
            parts().block_of("Z", 0)

    def test_negative_offset(self):
        with pytest.raises(BlockingError):
            parts().block_of("A", -1)

    def test_array_of_block(self):
        p = DataBlockPartition([Array("A", (8,), 8), Array("B", (8,), 8)], 64)
        assert p.array_of_block(0).name == "A"
        assert p.array_of_block(1).name == "B"

    def test_array_of_block_out_of_range(self):
        with pytest.raises(BlockingError):
            parts().array_of_block(99)

    def test_elements_per_block(self):
        assert parts().elements_per_block("A") == 8

    def test_paper_example_twelve_blocks(self):
        # Figure 5: m = 12k elements, blocks of k elements -> 12 blocks.
        k = 4
        p = DataBlockPartition([Array("B", (12 * k,), 8)], k * 8)
        assert p.num_blocks == 12
