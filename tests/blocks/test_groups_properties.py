"""Property tests: IterationGroup.split and GroupSet.verify_partition.

Randomized invariants over the group structures the whole mapping pass
leans on: splits must conserve iterations, tags and order, and the
partition checker must accept exactly the well-formed GroupSets.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BlockingError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import GroupSet, IterationGroup
from repro.blocks.tagger import tag_iterations
from repro.ir.accesses import ArrayAccess
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest
from repro.poly.affine import AffineExpr
from repro.poly.intset import IntSet


@st.composite
def groups(draw, min_size=1):
    depth = draw(st.integers(min_value=1, max_value=3))
    points = draw(
        st.lists(
            st.tuples(*[st.integers(min_value=0, max_value=9)] * depth),
            min_size=min_size,
            max_size=24,
            unique=True,
        )
    )
    tag = draw(st.integers(min_value=1, max_value=2**96 - 1))
    write_mask = draw(st.integers(min_value=0, max_value=2**96 - 1))
    write_tag = tag & write_mask
    read_tag = tag & ~write_mask
    return IterationGroup(tag, points, write_tag, read_tag)


@st.composite
def splittable_group_and_index(draw):
    group = draw(groups(min_size=2))
    at = draw(st.integers(min_value=1, max_value=group.size - 1))
    return group, at


class TestSplitProperties:
    @settings(max_examples=100)
    @given(splittable_group_and_index())
    def test_split_conserves_everything(self, case):
        group, at = case
        first, second = group.split(at)
        # Sizes sum, and the halves are the exact prefix/suffix of the
        # lexicographically sorted iterations.
        assert first.size == at
        assert first.size + second.size == group.size
        assert first.iterations + second.iterations == group.iterations
        assert first.iterations == group.iterations[:at]
        # All three tag classes survive on both halves.
        for half in (first, second):
            assert half.tag == group.tag
            assert half.write_tag == group.write_tag
            assert half.read_tag == group.read_tag
            assert half.iterations == tuple(sorted(half.iterations))
        # Fresh groups get fresh idents.
        assert len({group.ident, first.ident, second.ident}) == 3

    @settings(max_examples=50)
    @given(groups())
    def test_split_rejects_degenerate_indices(self, group):
        with pytest.raises(BlockingError):
            group.split(0)
        with pytest.raises(BlockingError):
            group.split(group.size)
        with pytest.raises(BlockingError):
            group.split(-1)

    @settings(max_examples=50)
    @given(splittable_group_and_index())
    def test_resplit_first_half(self, case):
        group, at = case
        first, second = group.split(at)
        if first.size >= 2:
            a, b = first.split(first.size - 1)
            assert a.iterations + b.iterations + second.iterations == group.iterations


def tagged_nest(n, block_size):
    array_a = Array("A", (n,))
    array_b = Array("B", (n,))
    i = AffineExpr.var("i")
    space = IntSet.box(("i",), [(0, n - 1)])
    accesses = [
        ArrayAccess(array_a, ("i",), (i,), is_write=True),
        ArrayAccess(array_b, ("i",), (i,)),
    ]
    nest = LoopNest("prop", space, accesses)
    return nest, DataBlockPartition((array_a, array_b), block_size)


class TestVerifyPartitionProperties:
    @settings(max_examples=40)
    @given(
        st.integers(min_value=2, max_value=64),
        st.sampled_from([64, 128, 256]),
        st.sampled_from(["python", "auto"]),
    )
    def test_fresh_tagging_always_verifies(self, n, block_size, backend):
        nest, partition = tagged_nest(n, block_size)
        gs = tag_iterations(nest, partition, backend=backend)
        gs.verify_partition()
        assert gs.total_iterations() == nest.iteration_count()

    @settings(max_examples=30)
    @given(st.integers(min_value=8, max_value=64), st.integers(min_value=0, max_value=7))
    def test_dropping_a_point_is_caught(self, n, victim):
        nest, partition = tagged_nest(n, 64)
        gs = tag_iterations(nest, partition)
        groups = list(gs.groups)
        victim %= len(groups)
        damaged = []
        for index, group in enumerate(groups):
            if index == victim:
                if group.size == 1:
                    continue  # drop the whole group instead
                group = IterationGroup(
                    group.tag, group.iterations[1:], group.write_tag, group.read_tag
                )
            damaged.append(group)
        bad = GroupSet(nest, partition, damaged)
        with pytest.raises(BlockingError, match="missing"):
            bad.verify_partition()

    @settings(max_examples=30)
    @given(st.integers(min_value=8, max_value=64))
    def test_duplicated_group_is_caught(self, n):
        nest, partition = tagged_nest(n, 64)
        gs = tag_iterations(nest, partition)
        groups = list(gs.groups)
        bad = GroupSet(nest, partition, groups + [groups[0]])
        with pytest.raises(BlockingError, match="two groups"):
            bad.verify_partition()

    @settings(max_examples=30)
    @given(st.integers(min_value=8, max_value=64))
    def test_foreign_point_is_caught(self, n):
        nest, partition = tagged_nest(n, 64)
        gs = tag_iterations(nest, partition)
        groups = list(gs.groups)
        outside = IterationGroup(
            max(g.tag for g in groups) << 1, [(n + 5,)]
        )
        bad = GroupSet(nest, partition, groups + [outside])
        with pytest.raises(BlockingError, match="extra"):
            bad.verify_partition()

    @settings(max_examples=20)
    @given(st.integers(min_value=8, max_value=32))
    def test_duplicate_tags_are_caught(self, n):
        nest, partition = tagged_nest(n, 64)
        gs = tag_iterations(nest, partition)
        groups = list(gs.groups)
        if len(groups) < 2:
            return
        # Re-tag the second group with the first group's tag; iterations
        # still partition K, so only the tag-uniqueness check can object.
        clone = IterationGroup(
            groups[0].tag,
            groups[1].iterations,
            groups[1].write_tag,
            groups[1].read_tag,
        )
        bad = GroupSet(nest, partition, [groups[0], clone] + groups[2:])
        with pytest.raises(BlockingError, match="duplicate tags"):
            bad.verify_partition()
