"""Equivalence of the two enumerator artifacts on irregular groups.

``IterationGroup.enumerator_source`` can emit either an explicit point
table (``"points"``) or a union of loop nests (``"boxes"``).  Both are
executable Python; for any group — convex or not — they must enumerate
exactly the same point set.  The point table additionally preserves
global lexicographic order, while box mode only guarantees order within
each box.
"""

import pytest

from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import IterationGroup
from repro.blocks.tagger import tag_iterations
from repro.ir.accesses import ArrayAccess
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest
from repro.poly.affine import AffineExpr
from repro.poly.codegen import compile_enumerator
from repro.poly.intset import IntSet


def enumerate_both(group):
    points_fn = compile_enumerator(group.enumerator_source(mode="points"))
    boxes_fn = compile_enumerator(group.enumerator_source(mode="boxes"))
    return list(points_fn()), list(boxes_fn())


L_SHAPE = [(i, j) for i in range(6) for j in range(6) if i < 2 or j < 2]
CHECKERBOARD = [(i, j) for i in range(6) for j in range(6) if (i + j) % 2 == 0]
CROSS = [(i, 3) for i in range(7)] + [(3, j) for j in range(7) if j != 3]
DIAGONAL_BAND = [(i, j) for i in range(8) for j in range(8) if abs(i - j) <= 1]
SCATTER_3D = [
    (0, 0, 0), (0, 0, 3), (0, 2, 1), (1, 1, 1), (1, 1, 2),
    (2, 0, 0), (2, 2, 2), (3, 1, 0), (3, 1, 3), (3, 3, 3),
]


@pytest.mark.parametrize(
    "points",
    [L_SHAPE, CHECKERBOARD, CROSS, DIAGONAL_BAND, SCATTER_3D],
    ids=["l-shape", "checkerboard", "cross", "diagonal-band", "scatter-3d"],
)
def test_points_and_boxes_enumerate_same_set(points):
    group = IterationGroup(0b1, points)
    from_points, from_boxes = enumerate_both(group)
    assert set(from_points) == set(from_boxes) == set(group.iterations)
    # No artifact may duplicate a point.
    assert len(from_points) == len(set(from_points))
    assert len(from_boxes) == len(set(from_boxes))
    # The point table preserves global lexicographic order exactly.
    assert from_points == list(group.iterations)
    # Box mode is lexicographic within each box, so sorting recovers the
    # full order.
    assert sorted(from_boxes) == list(group.iterations)


def test_transpose_tagging_groups_are_irregular_and_equivalent():
    """Groups from an A[i,j]/A[j,i] nest are unions of a row and a column
    segment — genuinely non-convex — and both artifacts must agree on
    every one of them."""
    n = 16
    array = Array("A", (n, n))
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    dims = ("i", "j")
    space = IntSet.box(dims, [(0, n - 1), (0, n - 1)])
    accesses = [
        ArrayAccess(array, dims, (i, j), is_write=True),
        ArrayAccess(array, dims, (j, i)),
    ]
    nest = LoopNest("transpose", space, accesses)
    partition = DataBlockPartition((array,), 256)
    gs = tag_iterations(nest, partition)
    irregular = 0
    for group in gs.groups:
        from_points, from_boxes = enumerate_both(group)
        assert set(from_points) == set(from_boxes) == set(group.iterations)
        assert from_points == list(group.iterations)
        source = group.enumerator_source(mode="boxes")
        if source.count("for ") > group.iterations[0].__len__():
            irregular += 1
    # The transpose pattern must actually have produced multi-box groups,
    # otherwise this test exercises nothing interesting.
    assert irregular > 0


def test_auto_mode_matches_explicit_artifacts():
    group = IterationGroup(0b1, CROSS)
    auto_fn = compile_enumerator(group.enumerator_source(mode="auto"))
    from_points, _ = enumerate_both(group)
    assert sorted(auto_fn()) == sorted(from_points)
