"""Unit tests for iteration groups and group sets."""

import pytest

from repro.errors import BlockingError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import GroupSet, IterationGroup
from repro.blocks.tagger import tag_iterations
from repro.poly.codegen import compile_enumerator


class TestIterationGroup:
    def test_size(self):
        g = IterationGroup(0b11, [(0,), (1,), (2,)])
        assert g.size == 3

    def test_iterations_sorted(self):
        g = IterationGroup(0b1, [(2,), (0,), (1,)])
        assert g.iterations == ((0,), (1,), (2,))

    def test_empty_rejected(self):
        with pytest.raises(BlockingError):
            IterationGroup(0b1, [])

    def test_split(self):
        g = IterationGroup(0b1, [(0,), (1,), (2,), (3,)], write_tag=0b1)
        a, b = g.split(1)
        assert a.size == 1 and b.size == 3
        assert a.tag == b.tag == g.tag
        assert a.write_tag == g.write_tag

    def test_split_bounds(self):
        g = IterationGroup(0b1, [(0,), (1,)])
        with pytest.raises(BlockingError):
            g.split(0)
        with pytest.raises(BlockingError):
            g.split(2)

    def test_unique_idents(self):
        a = IterationGroup(0b1, [(0,)])
        b = IterationGroup(0b1, [(0,)])
        assert a.ident != b.ident

    def test_enumerator_source_compiles(self):
        g = IterationGroup(0b1, [(0, 1), (2, 3)])
        fn = compile_enumerator(g.enumerator_source())
        assert list(fn()) == [(0, 1), (2, 3)]

    def test_enumerator_box_mode(self):
        # A contiguous run decomposes into one box -> a loop, not a table.
        g = IterationGroup(0b1, [(k,) for k in range(16)])
        source = g.enumerator_source(mode="boxes")
        assert "range(" in source and "_points = (" not in source
        fn = compile_enumerator(source)
        assert list(fn()) == list(g.iterations)

    def test_enumerator_auto_prefers_boxes_for_runs(self):
        g = IterationGroup(0b1, [(k,) for k in range(32)])
        assert "range(" in g.enumerator_source(mode="auto")

    def test_enumerator_auto_falls_back_for_scattered(self):
        g = IterationGroup(0b1, [(3 * k,) for k in range(8)])
        assert "_points = (" in g.enumerator_source(mode="auto")

    def test_enumerator_unknown_mode(self):
        g = IterationGroup(0b1, [(0,)])
        with pytest.raises(BlockingError):
            g.enumerator_source(mode="magic")

    def test_immutable(self):
        g = IterationGroup(0b1, [(0,)])
        with pytest.raises(AttributeError):
            g.tag = 5


class TestGroupSet:
    def test_partition_verifies(self, fig5_program):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        gs = tag_iterations(nest, part)
        gs.verify_partition()

    def test_total_iterations(self, fig5_program):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        gs = tag_iterations(nest, part)
        assert gs.total_iterations() == nest.iteration_count()

    def test_duplicate_iteration_detected(self, fig5_program):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        g = IterationGroup(0b1, [(8,)])
        bad = GroupSet(nest, part, [g, IterationGroup(0b10, [(8,)])])
        with pytest.raises(BlockingError):
            bad.verify_partition()

    def test_incomplete_cover_detected(self, fig5_program):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        bad = GroupSet(nest, part, [IterationGroup(0b1, [(8,)])])
        with pytest.raises(BlockingError):
            bad.verify_partition()

    def test_describe(self, fig5_program):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        gs = tag_iterations(nest, part)
        text = gs.describe(max_rows=2)
        assert "tau=" in text and "more" in text

    def test_iterable(self, fig5_program):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        gs = tag_iterations(nest, part)
        assert len(list(gs)) == len(gs)


class TestIdentCounter:
    """Regression tests for the global ident sequence (once a bare
    ``_next_ident`` class attribute incremented under no discipline, which
    made idents depend on test execution order)."""

    def test_fixture_resets_before_each_test(self):
        # The autouse fixture in conftest rewinds the counter, so the
        # first group minted inside any test owns ident 0 regardless of
        # which tests ran earlier in the session.
        assert IterationGroup(0b1, [(0,)]).ident == 0

    def test_reset_restarts_sequence(self):
        IterationGroup(0b1, [(0,)])
        IterationGroup(0b1, [(0,)])
        IterationGroup.reset_idents()
        assert IterationGroup(0b1, [(0,)]).ident == 0
        assert IterationGroup(0b1, [(0,)]).ident == 1

    def test_reset_with_base(self):
        IterationGroup.reset_idents(500)
        assert IterationGroup(0b1, [(0,)]).ident == 500
        IterationGroup.reset_idents()

    def test_idents_deterministic_across_resets(self):
        def mint():
            IterationGroup.reset_idents()
            return [IterationGroup(0b1, [(k,)]).ident for k in range(5)]

        assert mint() == mint() == [0, 1, 2, 3, 4]

    def test_parallel_creation_yields_unique_idents(self):
        import threading

        IterationGroup.reset_idents()
        minted = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            local = [IterationGroup(0b1, [(0,)]).ident for _ in range(200)]
            minted.append(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        all_idents = [i for chunk in minted for i in chunk]
        assert len(all_idents) == len(set(all_idents)) == 1600
