"""Unit tests for iteration tagging and block-size selection."""

import pytest

from repro.errors import BlockingError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.tagger import choose_block_size, tag_iterations
from repro.blocks.tags import render
from repro.lang import compile_source


class TestFigure10:
    """The paper's running example must reproduce exactly."""

    def test_tags_match_figure_10a(self, fig5_program):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 4 * 8)
        gs = tag_iterations(nest, part)
        expected = [
            "101010000000", "010101000000", "001010100000", "000101010000",
            "000010101000", "000001010100", "000000101010", "000000010101",
        ]
        assert [render(g.tag, 12) for g in gs.groups] == expected

    def test_group_sizes_are_k(self, fig5_program):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 4 * 8)
        gs = tag_iterations(nest, part)
        assert all(g.size == 4 for g in gs.groups)


class TestTagging:
    def test_write_and_read_tags(self):
        prog = compile_source(
            "array A[16]; array B[16]; parallel for (i=0;i<16;i++) A[i] = B[i];"
        )
        nest = prog.nests[0]
        part = DataBlockPartition(list(prog.arrays.values()), 64)
        gs = tag_iterations(nest, part)
        for g in gs.groups:
            # A blocks are 0..1, B blocks 2..3: writes go to A only.
            assert g.write_tag and g.write_tag < 4
            assert g.read_tag >= 4

    def test_tag_is_union_of_read_write(self):
        prog = compile_source(
            "array A[32]; parallel for (i=0;i<16;i++) A[i] = A[i + 16];"
        )
        nest = prog.nests[0]
        part = DataBlockPartition(list(prog.arrays.values()), 64)
        for g in tag_iterations(nest, part).groups:
            assert g.tag == (g.read_tag | g.write_tag)

    def test_deterministic_group_order(self, fig5_program):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        a = tag_iterations(nest, part)
        b = tag_iterations(nest, part)
        assert [g.tag for g in a.groups] == [g.tag for g in b.groups]

    def test_max_groups_guard(self, fig5_program):
        nest = fig5_program.nests[0]
        part = DataBlockPartition(list(fig5_program.arrays.values()), 8)
        with pytest.raises(BlockingError):
            tag_iterations(nest, part, max_groups=3)

    def test_no_accesses_rejected(self, fig5_program):
        from repro.ir.loops import LoopNest

        nest = fig5_program.nests[0]
        empty = LoopNest("empty", nest.space, [])
        part = DataBlockPartition(list(fig5_program.arrays.values()), 32)
        with pytest.raises(BlockingError):
            tag_iterations(empty, part)

    def test_out_of_bounds_nest_rejected(self):
        from repro.errors import IRError

        prog = compile_source("array A[8]; parallel for (i=0;i<8;i++) A[i] = 1;")
        nest = prog.nests[0]
        # Build a partition for a *smaller* clone of A to force a mismatch
        # is not possible via the frontend; instead check the validation
        # path directly with a hand-built nest.
        from repro.ir.accesses import ArrayAccess
        from repro.ir.arrays import Array
        from repro.ir.loops import LoopNest
        from repro.poly.affine import AffineExpr
        from repro.poly.intset import IntSet

        arr = Array("A", (4,))
        bad = LoopNest(
            "bad",
            IntSet.box(["i"], [(0, 7)]),
            [ArrayAccess(arr, ("i",), [AffineExpr.var("i")], is_write=True)],
        )
        part = DataBlockPartition([arr], 32)
        with pytest.raises(IRError):
            tag_iterations(bad, part)


class TestBlockSizeHeuristic:
    def prog(self, refs=2):
        body = " + ".join(f"A[i + {k}]" for k in range(refs - 1)) or "1"
        return compile_source(
            f"array A[64]; parallel for (i=0;i<32;i++) A[i] = {body};"
        )

    def test_capped_at_default(self):
        prog = self.prog()
        size = choose_block_size(prog, prog.nests[0], l1_capacity=1 << 20)
        assert size == 2048  # the paper's 2KB default

    def test_shrinks_with_small_l1(self):
        prog = self.prog(refs=4)
        size = choose_block_size(prog, prog.nests[0], l1_capacity=1024)
        assert size * len(prog.nests[0].accesses) <= 1024

    def test_minimum_floor(self):
        prog = self.prog(refs=4)
        assert choose_block_size(prog, prog.nests[0], l1_capacity=128) == 64

    def test_power_of_two(self):
        prog = self.prog(refs=3)
        size = choose_block_size(prog, prog.nests[0], l1_capacity=5000)
        assert size & (size - 1) == 0

    def test_invalid_l1(self):
        prog = self.prog()
        with pytest.raises(BlockingError):
            choose_block_size(prog, prog.nests[0], l1_capacity=0)
