"""Unit tests for tag algebra."""

from hypothesis import given, strategies as st

from repro.blocks.tags import (
    bitwise_sum,
    blocks_in,
    dot,
    hamming,
    ones,
    render,
    tag_from_blocks,
)

tags = st.integers(min_value=0, max_value=2**24 - 1)


class TestBasics:
    def test_tag_from_blocks(self):
        assert tag_from_blocks([0, 2]) == 0b101

    def test_blocks_in(self):
        assert blocks_in(0b1011) == [0, 1, 3]

    def test_ones(self):
        assert ones(0b1011) == 3

    def test_dot(self):
        assert dot(0b1100, 0b0110) == 1
        assert dot(0b1100, 0b0011) == 0

    def test_bitwise_sum(self):
        assert bitwise_sum(0b01, 0b10, 0b10) == 0b11

    def test_bitwise_sum_empty(self):
        assert bitwise_sum() == 0

    def test_hamming(self):
        assert hamming(0b1100, 0b1010) == 2

    def test_render_paper_style(self):
        # tau = 1100 means blocks {0, 1} accessed (d0 printed first).
        assert render(tag_from_blocks([0, 1]), 4) == "1100"

    def test_render_figure10_tag(self):
        assert render(tag_from_blocks([0, 2, 4]), 12) == "101010000000"


class TestProperties:
    @given(tags, tags)
    def test_dot_commutes(self, a, b):
        assert dot(a, b) == dot(b, a)

    @given(tags, tags)
    def test_dot_bounded_by_ones(self, a, b):
        assert dot(a, b) <= min(ones(a), ones(b))

    @given(tags)
    def test_self_dot_is_ones(self, a):
        assert dot(a, a) == ones(a)

    @given(tags, tags)
    def test_hamming_triangle_with_zero(self, a, b):
        assert hamming(a, b) <= hamming(a, 0) + hamming(0, b)

    @given(tags, tags)
    def test_sum_covers_both(self, a, b):
        s = bitwise_sum(a, b)
        assert dot(s, a) == ones(a) and dot(s, b) == ones(b)

    @given(tags, tags)
    def test_inclusion_exclusion(self, a, b):
        assert ones(a) + ones(b) == ones(bitwise_sum(a, b)) + dot(a, b)

    @given(st.lists(st.integers(0, 63), max_size=12))
    def test_roundtrip(self, blocks):
        tag = tag_from_blocks(blocks)
        assert blocks_in(tag) == sorted(set(blocks))
