"""One version string, everywhere.

``repro.__version__`` is the single source of truth; the packaging
metadata and the CLI must agree with it.  (The service's ``/version``
endpoint is covered in ``tests/service/test_server.py``.)
"""

import os
import re

import pytest

import repro
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_version_is_pep440ish():
    assert re.fullmatch(r"\d+\.\d+\.\d+([a-z0-9.+-]*)?", repro.__version__)


def test_pyproject_agrees():
    text = open(os.path.join(REPO_ROOT, "pyproject.toml")).read()
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    assert match, "pyproject.toml has no version field"
    assert match.group(1) == repro.__version__


def test_setup_py_agrees():
    text = open(os.path.join(REPO_ROOT, "setup.py")).read()
    match = re.search(r'version\s*=\s*"([^"]+)"', text)
    assert match, "setup.py has no version field"
    assert match.group(1) == repro.__version__


def test_cli_dash_dash_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert repro.__version__ in capsys.readouterr().out
