"""Unit tests for convex integer sets."""

import pytest

from repro.errors import EmptySetError, PolyhedralError, UnboundedSetError
from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet

i = AffineExpr.var("i")
j = AffineExpr.var("j")
k = AffineExpr.var("k")


def triangle(n: int = 4) -> IntSet:
    """0 <= i <= n, 0 <= j <= i."""
    return IntSet(
        ["i", "j"],
        [Constraint.ge(i, 0), Constraint.le(i, n), Constraint.ge(j, 0), Constraint.le(j, i)],
    )


class TestConstruction:
    def test_duplicate_dims_rejected(self):
        with pytest.raises(PolyhedralError):
            IntSet(["i", "i"])

    def test_foreign_variable_rejected(self):
        with pytest.raises(PolyhedralError):
            IntSet(["i"], [Constraint.ge(j, 0)])

    def test_tautologies_dropped(self):
        s = IntSet(["i"], [Constraint.ge(AffineExpr.const(5), 0)])
        assert s.constraints == ()

    def test_duplicate_constraints_dropped(self):
        s = IntSet(["i"], [Constraint.ge(i, 0), Constraint.ge(i * 2, 0)])
        assert len(s.constraints) == 1

    def test_box(self):
        s = IntSet.box(["i", "j"], [(0, 2), (1, 3)])
        assert s.count() == 3 * 3

    def test_box_arity_mismatch(self):
        with pytest.raises(PolyhedralError):
            IntSet.box(["i"], [(0, 1), (0, 1)])

    def test_immutable(self):
        s = IntSet.universe(["i"])
        with pytest.raises(AttributeError):
            s.dims = ("j",)


class TestMembership:
    def test_contains_sequence(self):
        assert triangle().contains((2, 1))
        assert not triangle().contains((1, 2))

    def test_contains_mapping(self):
        assert triangle().contains({"i": 3, "j": 3})

    def test_contains_wrong_arity(self):
        with pytest.raises(PolyhedralError):
            triangle().contains((1,))


class TestEnumeration:
    def test_triangle_count(self):
        assert triangle(4).count() == 15

    def test_lexicographic_order(self):
        pts = list(triangle(3).points())
        assert pts == sorted(pts)

    def test_every_point_satisfies_constraints(self):
        s = triangle(5)
        for p in s.points():
            assert s.contains(p)

    def test_empty_set(self):
        assert IntSet.empty(["i", "j"]).count() == 0

    def test_zero_dims_universe(self):
        assert list(IntSet.universe([]).points()) == [()]

    def test_equality_constraint_pins_value(self):
        s = IntSet(["i"], [Constraint.eq(i, 7)])
        assert list(s.points()) == [(7,)]

    def test_equality_indivisible_gives_empty(self):
        s = IntSet(
            ["i", "j"],
            [Constraint.ge(i, 0), Constraint.le(i, 5), Constraint.eq(j * 2, i),
             Constraint.ge(j, 0), Constraint.le(j, 5)],
        )
        # Only even i yield integer j.
        assert [p[0] for p in s.points()] == [0, 2, 4]

    def test_diagonal_strip(self):
        # |i - j| <= 1 within a box.
        s = IntSet.box(["i", "j"], [(0, 3), (0, 3)]).with_constraints(
            [Constraint.le(i - j, 1), Constraint.le(j - i, 1)]
        )
        pts = set(s.points())
        assert (0, 0) in pts and (2, 3) in pts and (0, 2) not in pts

    def test_unbounded_raises(self):
        s = IntSet(["i"], [Constraint.ge(i, 0)])
        with pytest.raises(UnboundedSetError):
            list(s.points())

    def test_first_point(self):
        assert triangle().first_point() == (0, 0)

    def test_first_point_empty_raises(self):
        with pytest.raises(EmptySetError):
            IntSet.empty(["i"]).first_point()

    def test_is_empty(self):
        assert IntSet.empty(["i"]).is_empty()
        assert not triangle().is_empty()

    def test_rational_nonintegral_set_is_empty(self):
        # 1 <= 2i <= 1 has the rational solution 1/2 but no integer point.
        s = IntSet(["i"], [Constraint.ge(i * 2, 1), Constraint.le(i * 2, 1)])
        assert s.is_empty()


class TestAlgebra:
    def test_intersect(self):
        a = IntSet.box(["i"], [(0, 10)])
        b = IntSet.box(["i"], [(5, 20)])
        assert a.intersect(b).count() == 6

    def test_intersect_dim_mismatch(self):
        with pytest.raises(PolyhedralError):
            IntSet.universe(["i"]).intersect(IntSet.universe(["j"]))

    def test_fix(self):
        s = triangle(4).fix("i", 2)
        assert list(s.points()) == [(2, 0), (2, 1), (2, 2)]

    def test_fix_unknown_dim(self):
        with pytest.raises(PolyhedralError):
            triangle().fix("z", 0)

    def test_rename_dims(self):
        s = triangle(2).rename_dims({"i": "x", "j": "y"})
        assert s.dims == ("x", "y")
        assert s.count() == triangle(2).count()

    def test_eliminate_is_sound(self):
        s = triangle(4)
        shadow = s.eliminate("j")
        for p in s.points():
            assert shadow.contains((p[0],))

    def test_project_onto_reorders(self):
        s = triangle(4)
        proj = s.project_onto(["j"])
        assert proj.dims == ("j",)
        for p in s.points():
            assert proj.contains((p[1],))

    def test_project_unknown_dim(self):
        with pytest.raises(PolyhedralError):
            triangle().project_onto(["z"])

    def test_bounding_box(self):
        box = triangle(4).bounding_box()
        assert box[0] == (0, 4)
        assert box[1][0] <= 0 and box[1][1] >= 4

    def test_bounding_box_empty(self):
        with pytest.raises(EmptySetError):
            IntSet(
                ["i"], [Constraint.ge(i, 5), Constraint.le(i, 3)]
            ).bounding_box()


class TestStrided:
    def test_strided_set(self):
        # i = 3t, 0 <= t <= 4 encoded as 0 <= i, 3t == i.
        t = AffineExpr.var("t")
        s = IntSet(
            ["t", "i"],
            [Constraint.ge(t, 0), Constraint.le(t, 4), Constraint.eq(i, t * 3)],
        )
        assert [p[1] for p in s.points()] == [0, 3, 6, 9, 12]

    def test_coefficient_bounds(self):
        # 3i <= 10 means i <= 3.
        s = IntSet(["i"], [Constraint.ge(i, 0), Constraint.le(i * 3, 10)])
        assert s.count() == 4


class TestDunder:
    def test_equality(self):
        assert triangle(3) == triangle(3)
        assert triangle(3) != triangle(4)

    def test_hash(self):
        assert hash(triangle(3)) == hash(triangle(3))

    def test_repr(self):
        assert "i" in repr(triangle())
