"""Unit tests for loop-nest code generation (the Omega codegen analogue)."""

import pytest

from repro.errors import PolyhedralError
from repro.poly.affine import AffineExpr
from repro.poly.codegen import (
    compile_enumerator,
    generate_loop_nest,
    generate_point_list_enumerator,
)
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet
from repro.poly.unions import UnionSet

i = AffineExpr.var("i")
j = AffineExpr.var("j")


def roundtrip(space):
    return list(compile_enumerator(generate_loop_nest(space))())


class TestConvex:
    def test_box(self):
        s = IntSet.box(["i", "j"], [(0, 3), (1, 2)])
        assert roundtrip(s) == list(s.points())

    def test_triangle(self):
        s = IntSet(
            ["i", "j"],
            [Constraint.ge(i, 0), Constraint.le(i, 6), Constraint.ge(j, 0), Constraint.le(j, i)],
        )
        assert roundtrip(s) == list(s.points())

    def test_single_dim_tuple_shape(self):
        s = IntSet.box(["i"], [(2, 4)])
        assert roundtrip(s) == [(2,), (3,), (4,)]

    def test_coefficient_bounds_use_ceil_floor(self):
        # 2 <= 3i <= 14  =>  i in {1, ..., 4}.
        s = IntSet(["i"], [Constraint.ge(i * 3, 2), Constraint.le(i * 3, 14)])
        assert roundtrip(s) == [(1,), (2,), (3,), (4,)]

    def test_equality_generates_divisibility_check(self):
        s = IntSet(
            ["i", "j"],
            [Constraint.ge(i, 0), Constraint.le(i, 9), Constraint.eq(j * 3, i),
             Constraint.ge(j, 0), Constraint.le(j, 3)],
        )
        assert roundtrip(s) == [(0, 0), (3, 1), (6, 2), (9, 3)]

    def test_empty_range(self):
        s = IntSet(["i"], [Constraint.ge(i, 5), Constraint.le(i, 3)])
        assert roundtrip(s) == []

    def test_zero_dims(self):
        s = IntSet.universe([])
        assert roundtrip(s) == [()]

    def test_unbounded_raises(self):
        s = IntSet(["i"], [Constraint.ge(i, 0)])
        with pytest.raises(PolyhedralError):
            generate_loop_nest(s)

    def test_generated_source_is_self_contained(self):
        source = generate_loop_nest(IntSet.box(["i"], [(0, 2)]))
        namespace = {}
        exec(source, namespace)  # no imports needed
        assert list(namespace["enumerate_points"]()) == [(0,), (1,), (2,)]


class TestUnion:
    def test_union_dedup(self):
        a = IntSet.box(["i"], [(0, 4)])
        b = IntSet.box(["i"], [(3, 7)])
        u = UnionSet.from_set(a).union(b)
        got = roundtrip(u)
        assert sorted(got) == [(v,) for v in range(8)]
        assert len(got) == len(set(got))

    def test_empty_union(self):
        u = UnionSet(["i"])
        assert roundtrip(u) == []


class TestPointList:
    def test_point_list(self):
        pts = [(3, 1), (0, 0), (2, 2)]
        fn = compile_enumerator(generate_point_list_enumerator(pts))
        assert list(fn()) == pts

    def test_empty_point_list(self):
        fn = compile_enumerator(generate_point_list_enumerator([]))
        assert list(fn()) == []


class TestCompile:
    def test_missing_function_name(self):
        with pytest.raises(PolyhedralError):
            compile_enumerator("x = 1\n", "nope")

    def test_custom_name(self):
        src = generate_loop_nest(IntSet.box(["i"], [(0, 0)]), func_name="enum0")
        assert list(compile_enumerator(src, "enum0")()) == [(0,)]
