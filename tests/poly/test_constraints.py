"""Unit tests for constraints and their normalization."""

import pytest

from repro.errors import PolyhedralError
from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint

i = AffineExpr.var("i")
j = AffineExpr.var("j")


class TestConstructors:
    def test_ge(self):
        c = Constraint.ge(i, 3)
        assert c.satisfied_by({"i": 3}) and not c.satisfied_by({"i": 2})

    def test_le(self):
        c = Constraint.le(i, 3)
        assert c.satisfied_by({"i": 3}) and not c.satisfied_by({"i": 4})

    def test_lt_is_integer_strict(self):
        c = Constraint.lt(i, 3)
        assert c.satisfied_by({"i": 2}) and not c.satisfied_by({"i": 3})

    def test_gt_is_integer_strict(self):
        c = Constraint.gt(i, 3)
        assert c.satisfied_by({"i": 4}) and not c.satisfied_by({"i": 3})

    def test_eq(self):
        c = Constraint.eq(i + j, 5)
        assert c.satisfied_by({"i": 2, "j": 3})
        assert not c.satisfied_by({"i": 2, "j": 4})

    def test_unknown_kind(self):
        with pytest.raises(PolyhedralError):
            Constraint(i, "<=")

    def test_immutable(self):
        c = Constraint.ge(i, 0)
        with pytest.raises(AttributeError):
            c.kind = "=="


class TestNormalization:
    def test_gcd_divided_out(self):
        assert Constraint.ge(i * 4, 8) == Constraint.ge(i, 2)

    def test_ge_constant_floors_to_feasible_side(self):
        # 2i - 3 >= 0  <=>  i >= 2 over the integers (i >= 1.5 rounded up).
        c = Constraint.ge(i * 2, 3)
        assert not c.satisfied_by({"i": 1})
        assert c.satisfied_by({"i": 2})

    def test_eq_indivisible_is_contradiction(self):
        c = Constraint.eq(i * 2, 3)
        assert c.is_contradiction()

    def test_eq_divisible_normalizes(self):
        assert Constraint.eq(i * 2, 4) == Constraint.eq(i, 2)

    def test_tautology(self):
        assert Constraint.ge(AffineExpr.const(1), 0).is_tautology()
        assert Constraint.eq(AffineExpr.const(0), 0).is_tautology()

    def test_contradiction(self):
        assert Constraint.ge(AffineExpr.const(-1), 0).is_contradiction()
        assert Constraint.eq(AffineExpr.const(1), 0).is_contradiction()

    def test_non_constant_is_neither(self):
        c = Constraint.ge(i, 0)
        assert not c.is_tautology() and not c.is_contradiction()


class TestOperations:
    def test_variables(self):
        assert Constraint.ge(i + j * 2, 1).variables() == frozenset({"i", "j"})

    def test_substitute(self):
        c = Constraint.ge(i, 2).substitute({"i": AffineExpr.var("t") + 1})
        assert c.satisfied_by({"t": 1}) and not c.satisfied_by({"t": 0})

    def test_rename(self):
        c = Constraint.ge(i, 0).rename({"i": "x"})
        assert c.variables() == frozenset({"x"})

    def test_equality_hash(self):
        a = Constraint.ge(i * 2, 4)
        b = Constraint.ge(i, 2)
        assert a == b and hash(a) == hash(b)

    def test_str(self):
        assert ">= 0" in str(Constraint.ge(i, 1))
