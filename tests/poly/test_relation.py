"""Unit tests for affine maps (access relations)."""

import pytest

from repro.errors import PolyhedralError
from repro.poly.affine import AffineExpr
from repro.poly.intset import IntSet
from repro.poly.relation import AffineMap

i = AffineExpr.var("i")
j = AffineExpr.var("j")


class TestConstruction:
    def test_paper_example(self):
        # R = {(i1,i2) -> (d1,d2) | d1 = i1+1, d2 = i2-1} from Section 3.2.
        m = AffineMap(["i1", "i2"], ["d1", "d2"],
                      [AffineExpr.var("i1") + 1, AffineExpr.var("i2") - 1])
        assert m.apply((0, 2)) == (1, 1)

    def test_arity_mismatch(self):
        with pytest.raises(PolyhedralError):
            AffineMap(["i"], ["d1", "d2"], [i])

    def test_foreign_variable(self):
        with pytest.raises(PolyhedralError):
            AffineMap(["i"], ["d"], [j])

    def test_coercion(self):
        m = AffineMap(["i"], ["d"], [5])
        assert m.apply((99,)) == (5,)

    def test_identity(self):
        m = AffineMap.identity(["i", "j"], ["a", "b"])
        assert m.apply((3, 4)) == (3, 4)

    def test_immutable(self):
        m = AffineMap.identity(["i"], ["o"])
        with pytest.raises(AttributeError):
            m.exprs = ()


class TestApply:
    def test_apply_mapping(self):
        m = AffineMap(["i"], ["d"], [i * 2 + 1])
        assert m.apply({"i": 3}) == (7,)

    def test_apply_wrong_arity(self):
        m = AffineMap(["i", "j"], ["d"], [i + j])
        with pytest.raises(PolyhedralError):
            m.apply((1,))


class TestCompose:
    def test_compose(self):
        inner = AffineMap(["t"], ["i"], [AffineExpr.var("t") * 2])
        outer = AffineMap(["i"], ["d"], [i + 1])
        composed = outer.compose(inner)
        assert composed.apply((3,)) == (7,)

    def test_compose_dim_mismatch(self):
        inner = AffineMap(["t"], ["x"], [AffineExpr.var("t")])
        outer = AffineMap(["i"], ["d"], [i])
        with pytest.raises(PolyhedralError):
            outer.compose(inner)


class TestImage:
    def test_image_contains_applied_points(self):
        domain = IntSet.box(["i"], [(0, 5)])
        m = AffineMap(["i"], ["d"], [i * 3])
        img = m.image(domain)
        for p in domain.points():
            assert img.contains(m.apply(p))

    def test_image_domain_mismatch(self):
        m = AffineMap(["i"], ["d"], [i])
        with pytest.raises(PolyhedralError):
            m.image(IntSet.box(["x"], [(0, 1)]))

    def test_image_dim_clash(self):
        m = AffineMap(["i"], ["i"], [i])
        with pytest.raises(PolyhedralError):
            m.image(IntSet.box(["i"], [(0, 1)]))

    def test_graph_set(self):
        domain = IntSet.box(["i"], [(0, 3)])
        m = AffineMap(["i"], ["d"], [i + 10])
        graph = m.as_graph_set(domain)
        assert graph.contains((2, 12))
        assert not graph.contains((2, 11))


class TestDunder:
    def test_equality(self):
        a = AffineMap(["i"], ["d"], [i + 1])
        b = AffineMap(["i"], ["d"], [AffineExpr.var("i") + 1])
        assert a == b and hash(a) == hash(b)

    def test_repr(self):
        assert "->" in repr(AffineMap(["i"], ["d"], [i]))
