"""Algebraic law property tests for maps, renames and unions."""

from hypothesis import given, settings, strategies as st

from repro.poly.affine import AffineExpr
from repro.poly.codegen import compile_enumerator, generate_loop_nest
from repro.poly.intset import IntSet
from repro.poly.relation import AffineMap
from repro.poly.unions import UnionSet

coeffs = st.integers(-3, 3)
consts = st.integers(-6, 6)


@st.composite
def maps_1d(draw):
    return AffineMap(
        ["t"], [draw(st.sampled_from(["u", "v", "w"]))],
        [AffineExpr({"t": draw(coeffs)}, draw(consts))],
    )


class TestCompositionLaws:
    @settings(max_examples=50, deadline=None)
    @given(maps_1d(), st.integers(-10, 10))
    def test_identity_is_neutral(self, m, x):
        ident = AffineMap.identity(["t"], ["t'"])
        renamed = AffineMap(["t'"], m.out_dims, [e.rename({"t": "t'"}) for e in m.exprs])
        assert renamed.compose(ident).apply((x,)) == m.apply((x,))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(-3, 3), st.integers(-6, 6), st.integers(-3, 3),
           st.integers(-6, 6), st.integers(-10, 10))
    def test_composition_is_function_composition(self, a1, b1, a2, b2, x):
        inner = AffineMap(["t"], ["u"], [AffineExpr({"t": a1}, b1)])
        outer = AffineMap(["u"], ["v"], [AffineExpr({"u": a2}, b2)])
        composed = outer.compose(inner)
        assert composed.apply((x,)) == outer.apply(inner.apply((x,)))


class TestRenameLaws:
    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.sampled_from(["i", "j"]), coeffs), consts)
    def test_rename_roundtrip(self, cs, c):
        e = AffineExpr(cs, c)
        there = e.rename({"i": "x", "j": "y"})
        back = there.rename({"x": "i", "y": "j"})
        assert back == e

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 5), st.integers(6, 12))
    def test_set_rename_preserves_count(self, lo, hi):
        s = IntSet.box(["i", "j"], [(lo, hi), (0, 3)])
        renamed = s.rename_dims({"i": "a", "j": "b"})
        assert renamed.count() == s.count()


class TestUnionCodegenOverlap:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 4), st.integers(2, 6), st.integers(0, 4), st.integers(2, 6))
    def test_overlapping_2d_pieces_dedup(self, ax, aw, bx, bw):
        a = IntSet.box(["i", "j"], [(ax, ax + aw), (0, 2)])
        b = IntSet.box(["i", "j"], [(bx, bx + bw), (1, 3)])
        union = UnionSet.from_set(a).union(b)
        fn = compile_enumerator(generate_loop_nest(union))
        produced = list(fn())
        assert len(produced) == len(set(produced))
        assert set(produced) == set(union.points())

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 4)), min_size=1, max_size=4))
    def test_union_count_never_exceeds_sum(self, boxes):
        pieces = [IntSet.box(["i"], [(lo, lo + w)]) for lo, w in boxes]
        union = UnionSet(("i",), pieces)
        assert union.count() <= sum(p.count() for p in pieces)
