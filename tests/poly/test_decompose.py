"""Unit + property tests for box decomposition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PolyhedralError
from repro.poly.decompose import (
    boxes_from_points,
    cover_is_exact,
    runs_1d,
    union_from_points,
)


class TestRuns:
    def test_single_run(self):
        assert runs_1d([3, 1, 2]) == [(1, 3)]

    def test_multiple_runs(self):
        assert runs_1d([0, 1, 5, 7, 8]) == [(0, 1), (5, 5), (7, 8)]

    def test_duplicates_collapse(self):
        assert runs_1d([2, 2, 3]) == [(2, 3)]

    def test_empty(self):
        assert runs_1d([]) == []


class TestBoxes:
    def test_1d(self):
        boxes = boxes_from_points([(0,), (1,), (2,), (9,)])
        assert boxes == [((0, 2),), ((9, 9),)]

    def test_perfect_rectangle(self):
        pts = [(i, j) for i in range(3) for j in range(4)]
        assert boxes_from_points(pts) == [((0, 2), (0, 3))]

    def test_two_stacked_rectangles(self):
        pts = [(i, j) for i in range(2) for j in range(4)]
        pts += [(i, j) for i in range(2, 4) for j in range(2)]
        boxes = boxes_from_points(pts)
        assert cover_is_exact(pts, boxes)
        assert len(boxes) == 2

    def test_l_shape(self):
        pts = [(0, 0), (0, 1), (0, 2), (1, 0)]
        boxes = boxes_from_points(pts)
        assert cover_is_exact(pts, boxes)
        assert len(boxes) == 2

    def test_empty(self):
        assert boxes_from_points([]) == []

    def test_3d(self):
        pts = [(i, j, k) for i in range(2) for j in range(2) for k in range(3)]
        assert boxes_from_points(pts) == [((0, 1), (0, 1), (0, 2))]

    def test_mixed_dims_rejected(self):
        with pytest.raises(PolyhedralError):
            boxes_from_points([(0,), (0, 1)])

    def test_deterministic(self):
        pts = [(1, 1), (0, 0), (1, 0), (3, 3)]
        assert boxes_from_points(pts) == boxes_from_points(list(reversed(pts)))


class TestUnion:
    def test_union_matches_points(self):
        pts = [(0, 0), (0, 1), (2, 0), (2, 1), (2, 2)]
        union = union_from_points(("i", "j"), pts)
        assert list(union.points()) == sorted(pts)


@settings(max_examples=60, deadline=None)
@given(st.sets(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=24))
def test_cover_exact_property(point_set):
    pts = sorted(point_set)
    boxes = boxes_from_points(pts)
    assert cover_is_exact(pts, boxes)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(0, 40), max_size=20))
def test_1d_cover_is_minimal(values):
    pts = [(v,) for v in sorted(values)]
    boxes = boxes_from_points(pts)
    # For 1-D the greedy cover is the run decomposition, which is minimal.
    assert len(boxes) == len(runs_1d(sorted(values)))
    assert cover_is_exact(pts, boxes)
