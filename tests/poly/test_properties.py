"""Property-based tests for the polyhedral substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.poly.affine import AffineExpr
from repro.poly.codegen import compile_enumerator, generate_loop_nest
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet

VARS = ("i", "j")

coeffs = st.integers(min_value=-4, max_value=4)
consts = st.integers(min_value=-10, max_value=10)


@st.composite
def affine_exprs(draw):
    return AffineExpr(
        {v: draw(coeffs) for v in VARS},
        draw(consts),
    )


@st.composite
def bounded_sets(draw):
    """A box over (i, j) intersected with up to 3 random constraints."""
    ranges = [
        (draw(st.integers(-5, 0)), draw(st.integers(1, 6))) for _ in VARS
    ]
    base = IntSet.box(list(VARS), ranges)
    extra = []
    for _ in range(draw(st.integers(0, 3))):
        expr = draw(affine_exprs())
        kind = draw(st.sampled_from([Constraint.GE, Constraint.EQ]))
        extra.append(Constraint(expr, kind))
    return base.with_constraints(extra)


class TestAffineAlgebra:
    @given(affine_exprs(), affine_exprs())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(affine_exprs(), affine_exprs(), affine_exprs())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(affine_exprs())
    def test_double_negation(self, a):
        assert -(-a) == a

    @given(affine_exprs(), st.integers(-5, 5))
    def test_scaling_distributes_over_eval(self, a, factor):
        env = {"i": 2, "j": -3}
        assert (a * factor).evaluate(env) == factor * a.evaluate(env)

    @given(affine_exprs(), affine_exprs())
    def test_eval_homomorphism(self, a, b):
        env = {"i": 1, "j": 4}
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)


class TestSetSemantics:
    @settings(max_examples=60, deadline=None)
    @given(bounded_sets())
    def test_enumeration_matches_membership(self, s):
        """Every enumerated point is a member; brute force agrees."""
        pts = set(s.points())
        box = IntSet.box(list(VARS), [(-5, 6), (-5, 6)])
        brute = {p for p in box.points() if s.contains(p)}
        assert pts == brute

    @settings(max_examples=60, deadline=None)
    @given(bounded_sets())
    def test_enumeration_is_sorted_unique(self, s):
        pts = list(s.points())
        assert pts == sorted(set(pts))

    @settings(max_examples=40, deadline=None)
    @given(bounded_sets())
    def test_codegen_equals_enumeration(self, s):
        fn = compile_enumerator(generate_loop_nest(s))
        assert list(fn()) == list(s.points())

    @settings(max_examples=40, deadline=None)
    @given(bounded_sets())
    def test_projection_is_sound(self, s):
        proj = s.project_onto(["i"])
        for p in s.points():
            assert proj.contains((p[0],))

    @settings(max_examples=40, deadline=None)
    @given(bounded_sets(), bounded_sets())
    def test_intersection_semantics(self, a, b):
        inter = a.intersect(b)
        pts_a = set(a.points())
        pts_b = set(b.points())
        assert set(inter.points()) == (pts_a & pts_b)
