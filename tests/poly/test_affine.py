"""Unit tests for affine expressions."""

import pytest

from repro.errors import PolyhedralError
from repro.poly.affine import AffineExpr


class TestConstruction:
    def test_var(self):
        e = AffineExpr.var("i")
        assert e.coeff("i") == 1
        assert e.constant == 0

    def test_const(self):
        e = AffineExpr.const(7)
        assert e.is_constant()
        assert e.constant == 7

    def test_zero_coefficients_dropped(self):
        e = AffineExpr({"i": 0, "j": 2})
        assert e.variables() == frozenset({"j"})

    def test_coerce_int(self):
        assert AffineExpr.coerce(5) == AffineExpr.const(5)

    def test_coerce_str(self):
        assert AffineExpr.coerce("x") == AffineExpr.var("x")

    def test_coerce_passthrough(self):
        e = AffineExpr.var("i")
        assert AffineExpr.coerce(e) is e

    def test_coerce_rejects_float(self):
        with pytest.raises(PolyhedralError):
            AffineExpr.coerce(1.5)

    def test_non_int_coefficient_rejected(self):
        with pytest.raises(PolyhedralError):
            AffineExpr({"i": 1.5})

    def test_non_int_constant_rejected(self):
        with pytest.raises(PolyhedralError):
            AffineExpr({}, 2.5)

    def test_immutable(self):
        e = AffineExpr.var("i")
        with pytest.raises(AttributeError):
            e.constant = 3


class TestArithmetic:
    def test_add(self):
        e = AffineExpr.var("i") + AffineExpr.var("j") + 3
        assert e.coeff("i") == 1 and e.coeff("j") == 1 and e.constant == 3

    def test_add_cancels(self):
        e = AffineExpr.var("i") - AffineExpr.var("i")
        assert e == AffineExpr.const(0)

    def test_radd(self):
        e = 5 + AffineExpr.var("i")
        assert e.constant == 5

    def test_sub(self):
        e = AffineExpr.var("i") * 3 - AffineExpr.var("i")
        assert e.coeff("i") == 2

    def test_rsub(self):
        e = 10 - AffineExpr.var("i")
        assert e.coeff("i") == -1 and e.constant == 10

    def test_neg(self):
        e = -(AffineExpr.var("i") + 2)
        assert e.coeff("i") == -1 and e.constant == -2

    def test_mul(self):
        e = (AffineExpr.var("i") + 1) * 4
        assert e.coeff("i") == 4 and e.constant == 4

    def test_mul_by_zero(self):
        assert (AffineExpr.var("i") * 0) == AffineExpr.const(0)

    def test_rmul(self):
        assert 3 * AffineExpr.var("i") == AffineExpr({"i": 3})

    def test_mul_non_int_rejected(self):
        with pytest.raises(PolyhedralError):
            AffineExpr.var("i") * 0.5


class TestEvaluation:
    def test_evaluate(self):
        e = AffineExpr({"i": 2, "j": -1}, 5)
        assert e.evaluate({"i": 3, "j": 4}) == 2 * 3 - 4 + 5

    def test_evaluate_missing_var(self):
        with pytest.raises(PolyhedralError):
            AffineExpr.var("i").evaluate({})

    def test_evaluate_extra_env_entries_ok(self):
        assert AffineExpr.var("i").evaluate({"i": 1, "z": 9}) == 1


class TestSubstitution:
    def test_substitute_var_with_expr(self):
        e = AffineExpr({"i": 2}, 1)
        result = e.substitute({"i": AffineExpr.var("t") + 3})
        assert result == AffineExpr({"t": 2}, 7)

    def test_substitute_with_int(self):
        e = AffineExpr({"i": 2, "j": 1})
        assert e.substitute({"i": 5}) == AffineExpr({"j": 1}, 10)

    def test_substitute_simultaneous(self):
        # i -> j and j -> i must swap, not chain.
        e = AffineExpr({"i": 1, "j": 2})
        result = e.substitute({"i": AffineExpr.var("j"), "j": AffineExpr.var("i")})
        assert result == AffineExpr({"j": 1, "i": 2})

    def test_rename(self):
        e = AffineExpr({"i": 2}, 3)
        assert e.rename({"i": "x"}) == AffineExpr({"x": 2}, 3)


class TestDunder:
    def test_equality_and_hash(self):
        a = AffineExpr({"i": 1}, 2)
        b = AffineExpr.var("i") + 2
        assert a == b and hash(a) == hash(b)

    def test_inequality(self):
        assert AffineExpr.var("i") != AffineExpr.var("j")

    def test_str_renders(self):
        assert "i" in str(AffineExpr({"i": 2}, -1))

    def test_str_constant_only(self):
        assert str(AffineExpr.const(0)) == "0"
