"""Unit tests for unions of convex sets."""

import pytest

from repro.errors import PolyhedralError
from repro.poly.intset import IntSet
from repro.poly.unions import UnionSet


def box(lo, hi):
    return IntSet.box(["i"], [(lo, hi)])


class TestConstruction:
    def test_dim_mismatch(self):
        with pytest.raises(PolyhedralError):
            UnionSet(["i"], [IntSet.box(["j"], [(0, 1)])])

    def test_from_set(self):
        u = UnionSet.from_set(box(0, 3))
        assert u.count() == 4


class TestOperations:
    def test_union_disjoint(self):
        u = UnionSet.from_set(box(0, 2)).union(box(5, 6))
        assert u.count() == 5

    def test_union_overlapping_dedups(self):
        u = UnionSet.from_set(box(0, 4)).union(box(3, 6))
        assert u.count() == 7

    def test_points_sorted(self):
        u = UnionSet.from_set(box(4, 6)).union(box(0, 2))
        pts = list(u.points())
        assert pts == sorted(pts)

    def test_contains(self):
        u = UnionSet.from_set(box(0, 1)).union(box(9, 9))
        assert u.contains((9,)) and not u.contains((5,))

    def test_union_with_unionset(self):
        u = UnionSet.from_set(box(0, 0)).union(UnionSet.from_set(box(2, 2)))
        assert u.count() == 2

    def test_union_dim_mismatch(self):
        with pytest.raises(PolyhedralError):
            UnionSet.from_set(box(0, 1)).union(IntSet.box(["j"], [(0, 1)]))

    def test_is_empty(self):
        assert UnionSet(["i"], [IntSet.empty(["i"])]).is_empty()
        assert not UnionSet.from_set(box(0, 0)).is_empty()

    def test_empty_union_no_pieces(self):
        assert UnionSet(["i"]).is_empty()

    def test_equality(self):
        a = UnionSet.from_set(box(0, 1)).union(box(3, 4))
        b = UnionSet.from_set(box(3, 4)).union(box(0, 1))
        assert a == b and hash(a) == hash(b)
