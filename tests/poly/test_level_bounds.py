"""Direct tests of the per-level bound extraction (codegen's backbone)."""

import pytest

from repro.errors import UnboundedSetError
from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet

i = AffineExpr.var("i")
j = AffineExpr.var("j")


class TestLevelBounds:
    def test_box_levels(self):
        s = IntSet.box(["i", "j"], [(0, 4), (2, 6)])
        levels = s.level_bounds()
        assert levels[0].dim == "i" and levels[1].dim == "j"
        assert levels[0].range_for({}) == (0, 4)
        assert levels[1].range_for({"i": 0}) == (2, 6)

    def test_dependent_inner_bound(self):
        s = IntSet(
            ["i", "j"],
            [Constraint.ge(i, 0), Constraint.le(i, 5),
             Constraint.ge(j, 0), Constraint.le(j, i)],
        )
        levels = s.level_bounds()
        assert levels[1].range_for({"i": 3}) == (0, 3)

    def test_equality_pins(self):
        s = IntSet(["i"], [Constraint.eq(i * 3, 9)])
        levels = s.level_bounds()
        assert levels[0].range_for({}) == (3, 3)

    def test_equality_indivisible_returns_none(self):
        s = IntSet(
            ["i", "j"],
            [Constraint.ge(i, 0), Constraint.le(i, 4), Constraint.eq(j * 2, i),
             Constraint.ge(j, 0), Constraint.le(j, 4)],
        )
        levels = s.level_bounds()
        assert levels[1].range_for({"i": 3}) is None
        assert levels[1].range_for({"i": 2}) == (1, 1)

    def test_unbounded_raises(self):
        s = IntSet(["i"], [Constraint.ge(i, 0)])
        with pytest.raises(UnboundedSetError):
            s.level_bounds()[0].range_for({})

    def test_coefficient_bounds(self):
        # 1 <= 3i <= 10  ->  ceil(1/3)=1 .. floor(10/3)=3.
        s = IntSet(["i"], [Constraint.ge(i * 3, 1), Constraint.le(i * 3, 10)])
        assert s.level_bounds()[0].range_for({}) == (1, 3)

    def test_fm_prunes_outer_level(self):
        # j constraints imply 2 <= i <= 3 even though i is only bounded
        # through j: enumeration must not scan the whole i axis.
        s = IntSet(
            ["i", "j"],
            [Constraint.ge(j, 2), Constraint.le(j, 3), Constraint.eq(j, i)],
        )
        levels = s.level_bounds()
        lo, hi = levels[0].range_for({})
        assert lo >= 2 and hi <= 3

    def test_cached(self):
        s = IntSet.box(["i"], [(0, 1)])
        assert s.level_bounds() is s.level_bounds()
