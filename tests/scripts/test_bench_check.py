"""The CI benchmark-regression gate (``scripts/bench_check.py``)."""

from __future__ import annotations

import copy
import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "bench_check", REPO_ROOT / "scripts" / "bench_check.py"
)
bench_check = importlib.util.module_from_spec(spec)
sys.modules.setdefault("bench_check", bench_check)
spec.loader.exec_module(bench_check)


KERNELS = {
    "suite": "repro.kernels microbenchmarks",
    "entries": [
        {"kernel": "tagging", "config": "stencil-64", "speedup": 6.2},
        {"kernel": "affinity-matrix", "config": "stencil-64", "speedup": 20.9},
        {"kernel": "clustering", "config": "stencil-64", "speedup": 1.16},
    ],
}

REMAP = {
    "suite": "repro.remap incremental remap benchmark",
    "entries": [
        {"driver": "scripted", "workload": "stencil20", "speedup": 29.5},
        {"driver": "watched", "workload": "band256", "speedup": 13.4},
    ],
    "overall": {"speedup": 28.4},
}

SERVICE = {
    "config": {"requests": 20000, "workers": 4, "seed": 1},
    "runs": [
        {"mode": "single", "throughput_rps": 350.0},
        {"mode": "shard", "throughput_rps": 1050.0},
    ],
}


def write_dirs(tmp_path, baseline: dict, current: dict):
    base = tmp_path / "base"
    cur = tmp_path / "cur"
    base.mkdir()
    cur.mkdir()
    for directory, reports in ((base, baseline), (cur, current)):
        for suite, report in reports.items():
            (directory / f"BENCH_{suite}.json").write_text(json.dumps(report))
    return base, cur


def degrade(report: dict, factor: float) -> dict:
    """Scale every speedup (entry-level and overall) by ``factor``."""
    report = copy.deepcopy(report)
    for entry in report.get("entries", ()):
        entry["speedup"] = round(entry["speedup"] * factor, 2)
    if "overall" in report:
        report["overall"]["speedup"] = round(
            report["overall"]["speedup"] * factor, 2
        )
    for run in report.get("runs", ()):
        run["throughput_rps"] = round(run["throughput_rps"] * factor, 2)
    return report


class TestGate:
    def test_identical_reports_pass(self, tmp_path):
        base, cur = write_dirs(
            tmp_path, {"kernels": KERNELS, "remap": REMAP},
            {"kernels": KERNELS, "remap": REMAP},
        )
        report = bench_check.check(base, cur)
        assert report["ok"]
        assert report["failed"] == []

    def test_25pct_degradation_fails(self, tmp_path):
        """The acceptance scenario: a hand-degraded 25% drop must trip
        the default 20% gate."""
        base, cur = write_dirs(
            tmp_path,
            {"kernels": KERNELS, "remap": REMAP},
            {"kernels": degrade(KERNELS, 0.75), "remap": degrade(REMAP, 0.75)},
        )
        report = bench_check.check(base, cur)
        assert not report["ok"]
        assert "remap:overall" in report["failed"]
        assert "kernels:tagging:stencil-64" in report["failed"]
        # The noise-dominated 1.16x clustering kernel stays informational.
        assert "kernels:clustering:stencil-64" not in report["failed"]
        row = report["suites"]["kernels"]["metrics"]["clustering:stencil-64"]
        assert row["status"] == "info-regression"

    def test_15pct_drop_within_tolerance(self, tmp_path):
        base, cur = write_dirs(
            tmp_path, {"remap": REMAP}, {"remap": degrade(REMAP, 0.85)}
        )
        assert bench_check.check(base, cur)["ok"]

    def test_missing_metric_fails(self, tmp_path):
        shrunk = copy.deepcopy(REMAP)
        del shrunk["entries"][1]
        base, cur = write_dirs(tmp_path, {"remap": REMAP}, {"remap": shrunk})
        report = bench_check.check(base, cur)
        assert not report["ok"]
        assert "remap:watched:band256" in report["failed"]

    def test_new_metric_is_reported_not_failed(self, tmp_path):
        grown = copy.deepcopy(REMAP)
        grown["entries"].append(
            {"driver": "scripted", "workload": "band999", "speedup": 11.0}
        )
        base, cur = write_dirs(tmp_path, {"remap": REMAP}, {"remap": grown})
        report = bench_check.check(base, cur)
        assert report["ok"]
        row = report["suites"]["remap"]["metrics"]["scripted:band999"]
        assert row["status"] == "new"

    def test_missing_current_file_is_skipped(self, tmp_path):
        base, cur = write_dirs(tmp_path, {"remap": REMAP}, {})
        report = bench_check.check(base, cur)
        assert report["ok"]
        assert report["suites"]["remap"]["status"] == "skipped"

    def test_service_config_mismatch_skips(self, tmp_path):
        mismatched = copy.deepcopy(SERVICE)
        mismatched["config"]["workers"] = 2
        mismatched = degrade(mismatched, 0.5)  # would fail if compared
        base, cur = write_dirs(
            tmp_path, {"service": SERVICE}, {"service": mismatched}
        )
        report = bench_check.check(base, cur)
        assert report["ok"]
        assert report["suites"]["service"]["status"] == "skipped"
        assert "config mismatch" in report["suites"]["service"]["reason"]

    def test_tagging_suite_is_informational(self, tmp_path):
        """A trace-tagging slowdown is reported but never fails the
        build: budget ratios on shared runners are noise-bound."""
        tagging = {
            "suite": "tagging",
            "config": {"repeats": 3, "budget_us_per_event": 10.0},
            "entries": [
                {"kernel": "spmv_random", "events": 163840, "speedup": 12.1},
                {"kernel": "histogram", "events": 262144, "speedup": 8.8},
            ],
        }
        base, cur = write_dirs(
            tmp_path, {"tagging": tagging}, {"tagging": degrade(tagging, 0.5)}
        )
        report = bench_check.check(base, cur)
        assert report["ok"]
        assert report["failed"] == []
        row = report["suites"]["tagging"]["metrics"]["histogram"]
        assert row["status"] == "info-regression"
        assert row["informational"]

    def test_service_same_config_compares_ratio(self, tmp_path):
        slower_shard = copy.deepcopy(SERVICE)
        slower_shard["runs"][1]["throughput_rps"] = 400.0  # 3x -> 1.14x
        slower_shard["config"]["seed"] = 2  # seed differences never skip
        base, cur = write_dirs(
            tmp_path, {"service": SERVICE}, {"service": slower_shard}
        )
        report = bench_check.check(base, cur)
        assert not report["ok"]
        assert report["failed"] == ["service:shard_vs_single_throughput"]


class TestCli:
    def test_main_writes_diff_and_exits_nonzero(self, tmp_path, capsys):
        base, cur = write_dirs(
            tmp_path, {"remap": REMAP}, {"remap": degrade(REMAP, 0.75)}
        )
        out = tmp_path / "diff.json"
        code = bench_check.main(
            ["--baseline", str(base), "--current", str(cur),
             "--out", str(out)]
        )
        assert code == 1
        diff = json.loads(out.read_text())
        assert not diff["ok"]
        assert "FAIL" in capsys.readouterr().out

    def test_main_green_run(self, tmp_path, capsys):
        base, cur = write_dirs(tmp_path, {"remap": REMAP}, {"remap": REMAP})
        code = bench_check.main(
            ["--baseline", str(base), "--current", str(cur)]
        )
        assert code == 0
        assert "no benchmark regressions" in capsys.readouterr().out

    def test_real_baselines_parse(self):
        """Every committed baseline is readable by its extractor and
        yields at least one metric (the repo root compared to itself is
        a green run by construction)."""
        report = bench_check.check(REPO_ROOT, REPO_ROOT)
        assert report["ok"]
        for suite in ("kernels", "sim", "pipeline", "remap"):
            verdict = report["suites"][suite]
            assert verdict["status"] == "ok", (suite, verdict)
            assert verdict["metrics"]

    def test_against_25pct_degraded_real_baseline(self, tmp_path):
        """Scratch-run acceptance check against the *real* committed
        BENCH_remap.json, degraded by 25%."""
        real = json.loads((REPO_ROOT / "BENCH_remap.json").read_text())
        cur = tmp_path / "cur"
        cur.mkdir()
        (cur / "BENCH_remap.json").write_text(
            json.dumps(degrade(real, 0.75))
        )
        report = bench_check.check(REPO_ROOT, cur)
        assert not report["ok"]
        assert any(name.startswith("remap:") for name in report["failed"])
