#!/usr/bin/env python3
"""Compare freshly-run benchmark reports against the committed baselines.

The repo pins one ``BENCH_<suite>.json`` per benchmark family (kernels,
sim, pipeline, remap, service).  CI re-runs the suites and this script
fails the build when any speedup regresses by more than ``--threshold``
(default 20%) relative to its committed baseline.

Three deliberate softenings keep the gate honest instead of flaky:

* **Informational metrics** — a baseline speedup below
  ``--min-baseline`` (default 1.3x) is noise-dominated on shared CI
  runners; regressions there are reported in the diff but never fail
  the build.
* **Config-mismatch skip** — a suite whose recorded config differs from
  the baseline's (e.g. the committed ``BENCH_service.json`` was taken
  with 4 workers, CI runs 2) is skipped with a note: the numbers are
  not comparable.
* **Missing suites** — a baseline with no freshly-run counterpart is
  skipped with a note, so the gate can adopt suites incrementally.

A machine-readable diff (every metric, baseline vs current, status) is
written to ``--out`` for upload as a CI artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Baseline files the gate knows how to read.
SUITES = ("kernels", "sim", "pipeline", "remap", "service", "ingest", "tagging")

#: Suites whose metrics never fail the build regardless of baseline
#: magnitude: millisecond-scale latency numbers are runner-noise-bound.
INFORMATIONAL_SUITES = ("ingest", "tagging")


# -- metric extraction ---------------------------------------------------
def _entries_metrics(report: dict, ident) -> dict[str, float]:
    return {
        ident(entry): float(entry["speedup"])
        for entry in report.get("entries", ())
        if "speedup" in entry
    }


def metrics_kernels(report: dict) -> dict[str, float]:
    return _entries_metrics(report, lambda e: f"{e['kernel']}:{e['config']}")


def metrics_sim(report: dict) -> dict[str, float]:
    return _entries_metrics(report, lambda e: f"{e['machine']}:q{e['quantum']}")


def metrics_pipeline(report: dict) -> dict[str, float]:
    return _entries_metrics(report, lambda e: e["workload"])


def metrics_remap(report: dict) -> dict[str, float]:
    metrics = _entries_metrics(
        report, lambda e: f"{e['driver']}:{e['workload']}"
    )
    overall = report.get("overall", {})
    if "speedup" in overall:
        metrics["overall"] = float(overall["speedup"])
    return metrics


def metrics_ingest(report: dict) -> dict[str, float]:
    """Budget ratio (budget_ms / measured_ms) per fixture: >1 is under
    budget; a drop means topology ingestion got slower."""
    return _entries_metrics(report, lambda e: e["fixture"])


def metrics_tagging(report: dict) -> dict[str, float]:
    """Budget ratio (budget_ms / measured_ms) per irregular kernel: >1
    is under budget; a drop means trace-based tagging got slower."""
    return _entries_metrics(report, lambda e: e["kernel"])


def metrics_service(report: dict) -> dict[str, float]:
    """Shard-over-single throughput ratio — the one scalar the service
    load harness is designed to demonstrate."""
    by_mode = {run.get("mode"): run for run in report.get("runs", ())}
    single = by_mode.get("single", {}).get("throughput_rps")
    shard = by_mode.get("shard", {}).get("throughput_rps")
    if not single or not shard:
        return {}
    return {"shard_vs_single_throughput": round(shard / single, 3)}


def service_config(report: dict) -> dict:
    """The comparability key for the service suite (seed excluded: it
    does not change the workload shape, only its interleaving)."""
    config = dict(report.get("config", {}))
    config.pop("seed", None)
    return config


EXTRACTORS = {
    "kernels": metrics_kernels,
    "sim": metrics_sim,
    "pipeline": metrics_pipeline,
    "remap": metrics_remap,
    "service": metrics_service,
    "ingest": metrics_ingest,
    "tagging": metrics_tagging,
}


# -- comparison ----------------------------------------------------------
def compare_suite(
    suite: str,
    baseline: dict,
    current: dict,
    threshold: float,
    min_baseline: float,
) -> dict:
    """One suite's verdict: {status, metrics, failures}."""
    if suite == "service" and service_config(baseline) != service_config(current):
        return {
            "status": "skipped",
            "reason": "config mismatch: baseline "
            f"{service_config(baseline)} vs current {service_config(current)}",
            "metrics": {},
        }
    base_metrics = EXTRACTORS[suite](baseline)
    cur_metrics = EXTRACTORS[suite](current)
    metrics = {}
    failures = []
    for name, base_value in sorted(base_metrics.items()):
        row = {"baseline": base_value}
        if name not in cur_metrics:
            row["status"] = "missing"
            failures.append(name)
        else:
            cur_value = cur_metrics[name]
            row["current"] = cur_value
            row["ratio"] = round(cur_value / base_value, 3)
            regressed = cur_value < base_value * (1.0 - threshold)
            informational = (
                base_value < min_baseline or suite in INFORMATIONAL_SUITES
            )
            if regressed and informational:
                row["status"] = "info-regression"
            elif regressed:
                row["status"] = "regression"
                failures.append(name)
            else:
                row["status"] = "ok"
            if informational:
                row["informational"] = True
        metrics[name] = row
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        metrics[name] = {"current": cur_metrics[name], "status": "new"}
    return {
        "status": "fail" if failures else "ok",
        "metrics": metrics,
        "failures": failures,
    }


def check(
    baseline_dir: Path,
    current_dir: Path,
    threshold: float = 0.20,
    min_baseline: float = 1.3,
) -> dict:
    """Compare every known suite; returns the full diff report."""
    suites = {}
    failed = []
    for suite in SUITES:
        name = f"BENCH_{suite}.json"
        base_path = baseline_dir / name
        cur_path = current_dir / name
        if not base_path.exists():
            suites[suite] = {"status": "skipped", "reason": "no baseline"}
            continue
        if not cur_path.exists():
            suites[suite] = {"status": "skipped", "reason": "no current run"}
            continue
        baseline = json.loads(base_path.read_text())
        current = json.loads(cur_path.read_text())
        verdict = compare_suite(
            suite, baseline, current, threshold, min_baseline
        )
        suites[suite] = verdict
        if verdict["status"] == "fail":
            failed.extend(f"{suite}:{name}" for name in verdict["failures"])
    return {
        "threshold": threshold,
        "min_baseline": min_baseline,
        "suites": suites,
        "failed": failed,
        "ok": not failed,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=".",
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--current",
        required=True,
        help="directory holding the freshly-run BENCH_*.json reports",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fail when a speedup drops below baseline*(1-threshold)",
    )
    parser.add_argument(
        "--min-baseline",
        type=float,
        default=1.3,
        help="baselines below this speedup are informational-only",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON diff report here"
    )
    args = parser.parse_args(argv)

    report = check(
        Path(args.baseline),
        Path(args.current),
        threshold=args.threshold,
        min_baseline=args.min_baseline,
    )
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=1) + "\n")

    for suite, verdict in report["suites"].items():
        if verdict["status"] == "skipped":
            print(f"{suite:>9}: skipped ({verdict['reason']})")
            continue
        for name, row in verdict.get("metrics", {}).items():
            mark = {
                "ok": " ",
                "regression": "!",
                "info-regression": "~",
                "missing": "?",
                "new": "+",
            }[row["status"]]
            base = row.get("baseline", float("nan"))
            cur = row.get("current", float("nan"))
            print(
                f"{suite:>9}: {mark} {name:<32} "
                f"baseline {base:7.2f}x  current {cur:7.2f}x  "
                f"[{row['status']}]"
            )
    if report["failed"]:
        print(f"FAIL: {len(report['failed'])} regression(s): "
              + ", ".join(report["failed"]))
        return 1
    print("ok: no benchmark regressions beyond "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
