"""Incremental-remap benchmark entry point (the BENCH_remap.json producer).

Thin wrapper over :mod:`repro.remap.bench` so CI (and operators) can
run it without installing the package:

    python scripts/remap_bench.py --out BENCH_remap.json \
            [--stencil-n 20] [--band-m 256]

Applies a scripted event schedule and a watcher-driven behaviour-model
stream through the incremental remapper, re-maps every post-event state
cold, asserts bit-identity, and writes per-entry and overall
cold-vs-remap latency (the overall speedup must clear the 10x target).
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.remap.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
