#!/usr/bin/env bash
# Local dry run of .github/workflows/ci.yml — same jobs, same commands,
# degraded gracefully to what the machine has:
#
#   * lint        ruff check + ruff format --check   (skipped if no ruff)
#   * test        tier-1 pytest on every python3.10/3.11/3.12 found
#   * test-no-numpy  tier-1 with numpy blocked via scripts/block_numpy.py
#                    (emulates the CI venv that never installs numpy)
#   * perf-smoke  pytest -m perf_smoke + the quickstart trace artifact
#
# Run from the repository root:  bash scripts/ci_local.sh
set -u
cd "$(dirname "$0")/.."

export PYTHONPATH=src
FAILED=0
SKIPPED=()

note()  { printf '\n== %s ==\n' "$*"; }
fail()  { printf 'FAIL: %s\n' "$*"; FAILED=1; }
skip()  { printf 'SKIP: %s\n' "$*"; SKIPPED+=("$*"); }

# -- lint ------------------------------------------------------------------
note "lint (ruff)"
if command -v ruff >/dev/null 2>&1; then
    ruff check . || fail "ruff check"
    ruff format --check src/repro/obs tests/obs scripts || fail "ruff format --check"
else
    skip "lint: ruff not installed (CI installs it with pip); running scripts/lint_fallback.py"
    python3 scripts/lint_fallback.py || fail "lint_fallback"
fi

# -- test matrix -----------------------------------------------------------
FOUND_PY=0
for py in python3.10 python3.11 python3.12; do
    # Probe by executing: a pyenv shim can exist for a version that is
    # not actually installed, and pytest may be missing from some.
    if "$py" -m pytest --version >/dev/null 2>&1; then
        FOUND_PY=1
        note "tier-1 ($py)"
        "$py" -m pytest -x -q || fail "tier-1 on $py"
    else
        skip "tier-1: $py (with pytest) not installed (CI covers the full matrix)"
    fi
done
if [ "$FOUND_PY" -eq 0 ]; then
    note "tier-1 (python3)"
    python3 -m pytest -x -q || fail "tier-1 on python3"
fi

# -- no-numpy job ----------------------------------------------------------
note "tier-1 without numpy (scalar fallback)"
PYTHONPATH=src:. python3 -m pytest -x -q -p scripts.block_numpy \
    || fail "tier-1 without numpy"

# -- perf smoke + trace artifact ------------------------------------------
note "perf smoke"
python3 -m pytest -q -m perf_smoke || fail "perf smoke"

note "quickstart trace artifact"
TRACE_OUT="$(mktemp -d)/trace.jsonl"
python3 -m repro trace examples/quickstart.loop --out "$TRACE_OUT" >/dev/null \
    && python3 -m repro.obs.report "$TRACE_OUT" >/dev/null \
    || fail "quickstart trace"

# -- summary ---------------------------------------------------------------
printf '\n== ci_local summary ==\n'
for s in "${SKIPPED[@]:-}"; do [ -n "$s" ] && printf 'skipped: %s\n' "$s"; done
if [ "$FAILED" -ne 0 ]; then
    echo "result: FAILED"
    exit 1
fi
echo "result: OK (skips above run only in CI)"
