"""CI smoke test for the mapping service.

Boots the real daemon as a subprocess, fires ~50 concurrent requests at
it — a mix of cache hits, cache misses, and one past-deadline request —
and then shuts it down with SIGTERM.  The run fails (exit 1) if any
request gets a 5xx, if the past-deadline request is not degraded, or if
the daemon does not drain and exit cleanly.  Latency percentiles and
the daemon's own /stats snapshot are written as a JSON artifact for the
CI run to upload.

Usage:
    python scripts/service_smoke.py [--out service-smoke.json]
            [--requests 50] [--workers 2]
"""

import argparse
import json
import os
import re
import signal
import statistics
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.service import ServiceClient  # noqa: E402

SOURCE_TEMPLATE = """\
param m = {m};
array B[{m}];
array Q[{m}];
parallel for (i = 0; i < m; i++)
  B[i] = B[i] + Q[i] + Q[m - 1 - i];
"""

#: Distinct program shapes — each is one pipeline run; repeats hit the cache.
VARIANTS = [SOURCE_TEMPLATE.format(m=m) for m in (16, 24, 32, 40, 48)]


def boot_daemon(workers):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # stderr goes to a file, not a pipe: nothing drains a pipe during
    # the run, and on failure we want the worker tracebacks back.
    stderr_file = tempfile.NamedTemporaryFile(
        mode="w+", prefix="repro-smoke-", suffix=".stderr", delete=False
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--queue-size", "64", "--workers", str(workers)],
        stdout=subprocess.PIPE, stderr=stderr_file, text=True, env=env,
    )
    proc.stderr_path = stderr_file.name
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    if not match:
        proc.kill()
        proc.wait(timeout=10)
        raise SystemExit(
            f"no port in daemon banner: {banner!r}: "
            f"{stderr_tail(proc, limit=500)}"
        )
    return proc, int(match.group(1))


def stderr_tail(proc, limit=4000):
    """The last ``limit`` characters of the daemon's stderr file."""
    try:
        with open(proc.stderr_path, encoding="utf-8",
                  errors="replace") as handle:
            text = handle.read()
        os.unlink(proc.stderr_path)
    except OSError:
        return ""
    return text[-limit:]


def fire(client, index, failures):
    """One request; returns (label, status, elapsed_ms, cache_tier)."""
    if index == 7:
        # The deliberate past-deadline request: must degrade, not fail.
        payload = {"source": VARIANTS[0], "machine": "nehalem",
                   "scale": 32, "deadline_ms": 0}
        label = "deadline"
    else:
        payload = {"source": VARIANTS[index % len(VARIANTS)],
                   "machine": "dunnington", "scale": 32}
        label = "mapped"
    started = time.perf_counter()
    status, _headers, body = client.request("POST", "/map", payload)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    if status >= 500:
        failures.append(f"request {index}: HTTP {status}: {body[:200]!r}")
        return label, status, elapsed_ms, None
    parsed = json.loads(body)
    if label == "deadline" and not parsed.get("degraded"):
        failures.append("past-deadline request was not degraded")
    if status == 200 and label == "mapped" and not parsed.get("ok"):
        failures.append(f"request {index}: ok=false: {parsed}")
    return label, status, elapsed_ms, parsed.get("cache")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="service-smoke.json")
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    proc, port = boot_daemon(args.workers)
    failures = []
    results = []
    try:
        client = ServiceClient(port=port, timeout=120)
        client.wait_ready(timeout=30)
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(fire, client, index, failures)
                for index in range(args.requests)
            ]
            results = [f.result() for f in futures]
        stats = client.stats()
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            exit_code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            exit_code = None
            failures.append("daemon did not exit within 60s of SIGTERM")
    if exit_code not in (None, 0):
        failures.append(f"daemon exited {exit_code}, expected 0")
    daemon_stderr = stderr_tail(proc)

    latencies = sorted(ms for _label, _status, ms, _tier in results)
    statuses = {}
    tiers = {}
    for _label, status, _ms, tier in results:
        statuses[str(status)] = statuses.get(str(status), 0) + 1
        if tier is not None:
            tiers[tier] = tiers.get(tier, 0) + 1
    # Repeats are cache hits: the worker LRU in single mode, the router
    # byte-cache (or a sibling's disk entry) in shard mode.
    cached = sum(tiers.get(tier, 0) for tier in ("memory", "router", "disk"))
    if cached == 0:
        failures.append("no request was answered from a cache tier")

    report = {
        "requests": len(results),
        "statuses": statuses,
        "cache_tiers": tiers,
        "latency_ms": {
            "p50": round(statistics.median(latencies), 2) if latencies else None,
            "p95": round(latencies[int(0.95 * (len(latencies) - 1))], 2)
            if latencies else None,
            "max": round(latencies[-1], 2) if latencies else None,
        },
        "daemon_exit_code": exit_code,
        "stats": stats,
        "failures": failures,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps({k: report[k] for k in
                      ("requests", "statuses", "cache_tiers", "latency_ms",
                       "daemon_exit_code")}, indent=2))
    if failures:
        print("FAILURES:", *failures, sep="\n  ", file=sys.stderr)
        if daemon_stderr:
            report["daemon_stderr_tail"] = daemon_stderr
            with open(args.out, "w") as handle:
                json.dump(report, handle, indent=2)
            print(f"--- daemon stderr tail ---\n{daemon_stderr}",
                  file=sys.stderr)
        return 1
    print(f"service smoke OK -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
