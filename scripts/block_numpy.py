"""Pytest plugin that makes ``import numpy`` fail on purpose.

The CI no-numpy job runs in a venv without numpy; this plugin gives the
same coverage on a developer machine (or any environment) where numpy
*is* installed, by rejecting the import at the ``sys.meta_path`` level
before the real finders see it::

    PYTHONPATH=src python -m pytest -q -p scripts.block_numpy

Every ``pytest.importorskip("numpy")`` then skips and the kernel layer's
``have_numpy()`` probe reports False, exercising the scalar fallback
paths end to end.  The block is installed at plugin import time so it
precedes any test-collection imports.
"""

from __future__ import annotations

import importlib.abc
import sys

BLOCKED = ("numpy",)


class _BlockedFinder(importlib.abc.MetaPathFinder):
    def find_spec(self, fullname, path=None, target=None):
        root = fullname.partition(".")[0]
        if root in BLOCKED:
            raise ImportError(f"{root} is blocked by scripts/block_numpy.py")
        return None


def _install() -> None:
    for module in list(sys.modules):
        if module.partition(".")[0] in BLOCKED:
            raise RuntimeError(
                f"{module} was imported before the blocker could be installed; "
                "pass -p scripts.block_numpy on the pytest command line"
            )
    if not any(isinstance(f, _BlockedFinder) for f in sys.meta_path):
        sys.meta_path.insert(0, _BlockedFinder())


_install()
