#!/usr/bin/env python3
"""Generate the machine-zoo sysfs fixture corpus.

Writes deterministic ``.tar.gz`` sysfs dumps plus the ``zoo.json``
manifest into ``tests/topology/fixtures/``.  Deterministic means:
member names sorted, all metadata zeroed, gzip timestamp zeroed — the
same script always produces byte-identical archives, so the corpus can
be regenerated and diffed.

Each synthetic machine exercises a different real-world wrinkle the
ingest pipeline must absorb (see the table in ``docs/TOPOLOGY.md``):
package-id fallbacks, hex-mask-only sharing files, SMT sibling files,
offline and holey cpu numbering, asymmetric big.LITTLE trees, split
L1i/L1d, and missing associativity attributes.

Usage::

    PYTHONPATH=src python scripts/gen_zoo_fixtures.py [--out DIR]
"""

from __future__ import annotations

import argparse
import gzip
import io
import json
import os
import sys
import tarfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.cache import machine_digest  # noqa: E402
from repro.topology.ingest.normalize import NormalizeOptions, normalize  # noqa: E402
from repro.topology.ingest.sysfs import load_sysfs  # noqa: E402

KB = 1024


def cpu_list(cpus) -> str:
    """Render a kernel cpu-list string ("0-3,8")."""
    cpus = sorted(cpus)
    chunks = []
    start = prev = cpus[0]
    for cpu in cpus[1:]:
        if cpu == prev + 1:
            prev = cpu
            continue
        chunks.append(f"{start}-{prev}" if prev > start else f"{start}")
        start = prev = cpu
    chunks.append(f"{start}-{prev}" if prev > start else f"{start}")
    return ",".join(chunks)


def cpu_mask(cpus) -> str:
    value = 0
    for cpu in cpus:
        value |= 1 << cpu
    return f"{value:x}"


class Dump:
    """A synthetic sysfs dump being assembled file by file."""

    def __init__(self):
        self.files: dict[str, str] = {}

    def put(self, path: str, value) -> None:
        self.files[f"sys/devices/system/cpu/{path}"] = f"{value}\n"

    def cpu(
        self,
        cpu: int,
        *,
        package: int | None = None,
        package_cpus=None,
        siblings=None,
        siblings_file: str = "core_cpus_list",
        online: bool | None = None,
        max_freq_khz: int | None = None,
    ) -> None:
        base = f"cpu{cpu}"
        if online is not None:
            self.put(f"{base}/online", 1 if online else 0)
            if not online:
                return
        topo = f"{base}/topology"
        if package is not None:
            self.put(f"{topo}/physical_package_id", package)
        if package_cpus is not None:
            self.put(f"{topo}/package_cpus_list", cpu_list(package_cpus))
        if siblings is not None:
            if siblings_file.endswith("_list"):
                self.put(f"{topo}/{siblings_file}", cpu_list(siblings))
            else:
                self.put(f"{topo}/{siblings_file}", cpu_mask(siblings))
        if max_freq_khz is not None:
            self.put(f"{base}/cpufreq/cpuinfo_max_freq", max_freq_khz)

    def cache(
        self,
        cpu: int,
        index: int,
        *,
        level: int,
        ctype: str,
        size_kb: int,
        shared,
        ways: int | None = None,
        line: int | None = 64,
        mask_only: bool = False,
    ) -> None:
        base = f"cpu{cpu}/cache/index{index}"
        self.put(f"{base}/level", level)
        self.put(f"{base}/type", ctype)
        self.put(f"{base}/size", f"{size_kb}K")
        if mask_only:
            self.put(f"{base}/shared_cpu_map", cpu_mask(shared))
        else:
            self.put(f"{base}/shared_cpu_list", cpu_list(shared))
        if line is not None:
            self.put(f"{base}/coherency_line_size", line)
        if ways is not None:
            self.put(f"{base}/ways_of_associativity", ways)

    def to_targz(self) -> bytes:
        tar_buffer = io.BytesIO()
        with tarfile.open(fileobj=tar_buffer, mode="w") as tar:
            for name in sorted(self.files):
                data = self.files[name].encode("ascii")
                info = tarfile.TarInfo(name)
                info.size = len(data)
                info.mtime = 0
                info.uid = info.gid = 0
                info.uname = info.gname = "root"
                info.mode = 0o644
                tar.addfile(info, io.BytesIO(data))
        out = io.BytesIO()
        with gzip.GzipFile(fileobj=out, mode="wb", mtime=0) as gz:
            gz.write(tar_buffer.getvalue())
        return out.getvalue()


def harpertown2s() -> Dump:
    """Harpertown-era 2-socket: pairwise L2s, no L3, split L1i/L1d.

    Exercises the package_cpus_list fallback (no physical_package_id).
    """
    dump = Dump()
    for cpu in range(8):
        pkg = range(0, 4) if cpu < 4 else range(4, 8)
        dump.cpu(cpu, package_cpus=pkg, siblings=[cpu], max_freq_khz=3_200_000)
        dump.cache(cpu, 0, level=1, ctype="Data", size_kb=32, shared=[cpu], ways=8)
        dump.cache(cpu, 1, level=1, ctype="Instruction", size_kb=32, shared=[cpu], ways=8)
        pair = [cpu & ~1, cpu | 1]
        dump.cache(cpu, 2, level=2, ctype="Unified", size_kb=6144, shared=pair, ways=24)
    return dump


def nehalem_ep() -> Dump:
    """Nehalem-like 2-socket: private L1/L2, socket L3 via hex masks only."""
    dump = Dump()
    for cpu in range(8):
        pkg = 0 if cpu < 4 else 1
        dump.cpu(cpu, package=pkg, siblings=[cpu], max_freq_khz=2_900_000)
        dump.cache(cpu, 0, level=1, ctype="Data", size_kb=32, shared=[cpu], ways=8)
        dump.cache(cpu, 1, level=1, ctype="Instruction", size_kb=32, shared=[cpu], ways=4)
        dump.cache(cpu, 2, level=2, ctype="Unified", size_kb=256, shared=[cpu], ways=8)
        socket = range(0, 4) if pkg == 0 else range(4, 8)
        dump.cache(cpu, 3, level=3, ctype="Unified", size_kb=8192, shared=socket,
                   ways=16, mask_only=True)
    return dump


def epyc2p() -> Dump:
    """EPYC-style 2-socket NUMA: 32 cpus, L3 per 4-core complex (8 LLCs)."""
    dump = Dump()
    for cpu in range(32):
        pkg = 0 if cpu < 16 else 1
        dump.cpu(cpu, package=pkg, siblings=[cpu], max_freq_khz=2_450_000)
        dump.cache(cpu, 0, level=1, ctype="Data", size_kb=32, shared=[cpu], ways=8)
        dump.cache(cpu, 1, level=1, ctype="Instruction", size_kb=64, shared=[cpu], ways=4)
        dump.cache(cpu, 2, level=2, ctype="Unified", size_kb=512, shared=[cpu], ways=8)
        ccx = range(cpu - cpu % 4, cpu - cpu % 4 + 4)
        dump.cache(cpu, 3, level=3, ctype="Unified", size_kb=16384, shared=ccx, ways=16)
    return dump


def biglittle() -> Dump:
    """big.LITTLE phone SoC: 4 LITTLE cores share an L2, 2 big cores have
    private L2s, one cluster L3.  Asymmetric tree; ways files absent on
    the LITTLE cluster (common on ARM dumps)."""
    dump = Dump()
    for cpu in range(6):
        big = cpu >= 4
        dump.cpu(cpu, package=0, siblings=[cpu],
                 max_freq_khz=2_800_000 if big else 1_800_000)
        dump.cache(cpu, 0, level=1, ctype="Data",
                   size_kb=64 if big else 32, shared=[cpu],
                   ways=4 if big else None)
        dump.cache(cpu, 1, level=1, ctype="Instruction",
                   size_kb=64 if big else 32, shared=[cpu], ways=4)
        if big:
            dump.cache(cpu, 2, level=2, ctype="Unified", size_kb=1024,
                       shared=[cpu], ways=8)
        else:
            dump.cache(cpu, 2, level=2, ctype="Unified", size_kb=512,
                       shared=range(0, 4), ways=None)
        dump.cache(cpu, 3, level=3, ctype="Unified", size_kb=4096,
                   shared=range(0, 6), ways=16)
    return dump


def smt2server() -> Dump:
    """SMT-2 single-socket server: 8 physical cores, siblings (i, i+8),
    L1/L2 shared per sibling pair, one socket-wide L3."""
    dump = Dump()
    for cpu in range(16):
        pair = sorted([cpu % 8, cpu % 8 + 8])
        dump.cpu(cpu, package=0, siblings=pair, max_freq_khz=3_000_000)
        dump.cache(cpu, 0, level=1, ctype="Data", size_kb=48, shared=pair, ways=12)
        dump.cache(cpu, 1, level=1, ctype="Instruction", size_kb=32, shared=pair, ways=8)
        dump.cache(cpu, 2, level=2, ctype="Unified", size_kb=1280, shared=pair, ways=20)
        dump.cache(cpu, 3, level=3, ctype="Unified", size_kb=24576, shared=range(16),
                   ways=12)
    return dump


def unicore() -> Dump:
    """Single-core degenerate machine: the root is its own L2."""
    dump = Dump()
    dump.cpu(0, package=0, siblings=[0], max_freq_khz=1_500_000)
    dump.cache(0, 0, level=1, ctype="Data", size_kb=32, shared=[0], ways=4)
    dump.cache(0, 1, level=1, ctype="Instruction", size_kb=32, shared=[0], ways=4)
    dump.cache(0, 2, level=2, ctype="Unified", size_kb=512, shared=[0], ways=8)
    return dump


def holeysrv() -> Dump:
    """Holey numbering and hot-unplug: cpus 6-7 absent entirely, cpu3
    offline, sharing described via thread_siblings_list (legacy file)."""
    dump = Dump()
    cpus = [0, 1, 2, 3, 4, 5, 8, 9, 10, 11, 12, 13]
    for cpu in cpus:
        if cpu == 3:
            dump.cpu(cpu, online=False)
            continue
        pkg = 0 if cpu < 6 else 1
        dump.cpu(cpu, package=pkg, siblings=[cpu],
                 siblings_file="thread_siblings_list",
                 online=(None if cpu == 0 else True), max_freq_khz=2_600_000)
        dump.cache(cpu, 0, level=1, ctype="Data", size_kb=32, shared=[cpu], ways=8)
        triple = [c for c in cpus if c // 3 == cpu // 3]
        dump.cache(cpu, 1, level=2, ctype="Unified", size_kb=2048, shared=triple,
                   ways=16)
        pkg_cpus = [c for c in cpus if (0 if c < 6 else 1) == pkg]
        dump.cache(cpu, 2, level=3, ctype="Unified", size_kb=12288, shared=pkg_cpus,
                   ways=12)
    return dump


#: name -> (builder, description, manifest extras)
ZOO = {
    "harpertown2s": (
        harpertown2s,
        "Harpertown-era 2-socket, 8 cores, pairwise L2, no L3 (memory root)",
        {},
    ),
    "nehalem-ep": (
        nehalem_ep,
        "Nehalem-like 2-socket, 8 cores, private L1/L2, socket L3 (hex masks)",
        {},
    ),
    "epyc2p": (
        epyc2p,
        "EPYC-style 2-socket NUMA, 32 cores, L3 per 4-core complex",
        {},
    ),
    "biglittle": (
        biglittle,
        "big.LITTLE SoC, 4 LITTLE sharing L2 + 2 big with private L2, cluster L3",
        {},
    ),
    "smt2server": (
        smt2server,
        "Single-socket SMT-2 server, 8 physical cores x 2 threads, socket L3",
        {},
    ),
    "unicore": (
        unicore,
        "Single-core machine, L2 root (degenerate tree)",
        {},
    ),
    "holeysrv": (
        holeysrv,
        "2-socket server with holey cpu numbering (no cpu6-7) and cpu3 offline",
        {},
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "tests", "topology", "fixtures"
        ),
    )
    parser.add_argument("--check", action="store_true",
                        help="verify committed archives match regeneration")
    args = parser.parse_args(argv)
    out_dir = os.path.abspath(args.out)
    os.makedirs(out_dir, exist_ok=True)

    manifest = {"machines": {}}
    failures = 0
    for name, (builder, description, extras) in sorted(ZOO.items()):
        blob = builder().to_targz()
        filename = f"{name}.tar.gz"
        path = os.path.join(out_dir, filename)
        if args.check:
            with open(path, "rb") as fh:
                if fh.read() != blob:
                    print(f"STALE {filename}: regeneration differs", file=sys.stderr)
                    failures += 1
        else:
            with open(path, "wb") as fh:
                fh.write(blob)
        entry = {
            "file": filename,
            "description": description,
            "smt_policy": extras.get("smt_policy", "merge"),
        }
        options = NormalizeOptions(smt_policy=entry["smt_policy"], name=name)
        machine = normalize(load_sysfs(path), options)
        entry["expected_digest"] = machine_digest(machine)
        entry["cores"] = machine.num_cores
        manifest["machines"][name] = entry
        print(f"{name:14s} {machine.num_cores:3d} cores  digest {entry['expected_digest']}")

    manifest_path = os.path.join(out_dir, "zoo.json")
    rendered = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    if args.check:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            if fh.read() != rendered:
                print("STALE zoo.json: regeneration differs", file=sys.stderr)
                failures += 1
    else:
        with open(manifest_path, "w", encoding="utf-8") as fh:
            fh.write(rendered)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
