"""Minimal stdlib stand-in for ``ruff check`` on machines without ruff.

Covers the highest-signal subset of the repo's ruff configuration
(pyproject ``[tool.ruff.lint]``) with nothing but ``ast``:

* F401  unused imports (module scope; ``__init__.py`` exempt, matching
        the per-file-ignores)
* E711/E712  comparisons to ``None``/``True``/``False`` with ``==``/``!=``
* E722  bare ``except:``
* E731  assigning a ``lambda`` to a name
* E9    syntax errors (anything that fails to parse)

False negatives are expected — this is a safety net, not a linter; CI
always runs the real ``ruff check``.  Usage::

    python scripts/lint_fallback.py [paths...]   # defaults to src tests benchmarks scripts
"""

from __future__ import annotations

import ast
import pathlib
import sys

DEFAULT_PATHS = ("src", "tests", "benchmarks", "scripts")


def _imported_names(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield (alias.asname or alias.name).partition(".")[0], node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name != "*":
                    yield alias.asname or alias.name, node.lineno


def check_file(path: pathlib.Path) -> list[str]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [f"{path}:{error.lineno}: E9 syntax error: {error.msg}"]

    problems = []
    used = {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}
    mentioned = set()  # crude catch-all for strings, __all__, docstrings
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            mentioned.update(node.value.replace(".", " ").split())

    if path.name != "__init__.py":
        for name, lineno in _imported_names(tree):
            if name not in used and name not in mentioned:
                problems.append(f"{path}:{lineno}: F401 unused import {name!r}")

    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if isinstance(comparator, ast.Constant) and comparator.value is None:
                    problems.append(f"{path}:{node.lineno}: E711 comparison to None")
                elif isinstance(comparator, ast.Constant) and isinstance(comparator.value, bool):
                    problems.append(f"{path}:{node.lineno}: E712 comparison to {comparator.value}")
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            problems.append(f"{path}:{node.lineno}: E722 bare except")
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            problems.append(f"{path}:{node.lineno}: E731 lambda assigned to name")
    return problems


def main(argv: list[str] | None = None) -> int:
    roots = (argv if argv is not None else sys.argv[1:]) or list(DEFAULT_PATHS)
    problems = []
    checked = 0
    for root in roots:
        base = pathlib.Path(root)
        files = [base] if base.is_file() else sorted(base.rglob("*.py"))
        for path in files:
            checked += 1
            problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"lint_fallback: {checked} files, {len(problems)} problems", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
