"""Load benchmark entry point for the mapping service.

Thin wrapper over :mod:`repro.service.bench` so CI (and operators) can
run it without installing the package:

    python scripts/service_load.py --out BENCH_service.json \
            [--requests 20000] [--workers 4] [--concurrency 16]

Boots the real ``repro serve`` daemon twice — single-process and
sharded (``--workers N``) — drives the identical deterministic mixed
cold/warm/degraded schedule through both, and writes throughput,
p50/p99 latency, cache-tier counts, and the shard-vs-single speedup to
the JSON artifact.  Exits 1 if any happy-path request draws a 5xx or a
transport error, or if either daemon fails to drain and exit 0.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
