"""Batched set-associative LRU simulation kernels.

The per-access engine walks every cache line through
:meth:`repro.sim.cachesim.SetAssociativeCache.access` — one dict probe
per access per level, all in interpreted Python.  For *private* cache
levels the outcome of each access is independent of how the engine
interleaves cores (only the owning core ever touches a private
component), so a whole round's trace can be simulated in one vectorized
pass per level.  This module provides that pass.

The batch kernel is **exact**: hits, misses, evictions and the final
resident set (including LRU order) are bit-identical to replaying the
stream through the dict-based reference.  It works by answering, for
each access ``t``, whether the previous access ``p(t)`` to the same
line is still resident — i.e. whether fewer than ``ways`` *distinct*
lines of the same set occurred in between.  Three O(n) filters settle
almost every access:

* no previous access → miss (cold);
* fewer than ``ways`` same-set accesses in between → hit (the reuse
  window is too short to evict anything);
* at least ``ways`` *first-ever* same-set lines in between → miss
  (cold lines alone already evicted it).

The rare leftovers are answered exactly by counting the distinct
intervening lines (an access ``j`` in the window introduces a new line
iff its own previous access predates the window).  When the leftover
work would exceed a small multiple of the stream length — adversarial
mixes of medium-distance reuses — the caller falls back to the scalar
loop, which is always exact (``sim-unresolved`` in the fallback
counters).

Pre-existing cache state (warm runs) is handled by prepending the
resident lines, eldest first, as virtual accesses that are excluded
from the returned outcomes and the counters.
"""

from __future__ import annotations

from itertools import chain
from typing import TYPE_CHECKING

from repro.kernels import note_fallback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapping.distribute import ExecutablePlan
    from repro.sim.cachesim import SetAssociativeCache
    from repro.sim.trace import MemoryLayout

#: Streams shorter than this run the scalar loop even on the numpy
#: backend: the kernel's fixed cost (a handful of argsorts) only pays
#: for itself on streams of at least a few hundred accesses.
MIN_NUMPY_STREAM = 1024

#: Abort the exact leftover resolution when the summed same-set
#: reuse-window length exceeds this multiple of the stream length and
#: use the scalar loop instead; keeps the worst case linear.  The
#: resolution is itself vectorized, so the factor is generous.
UNRESOLVED_WORK_FACTOR = 32


def simulate_level(cache: "SetAssociativeCache", lines, use_numpy: bool):
    """Run ``lines`` through one cache component; returns the hit mask.

    Exactly equivalent to ``[cache.access(l) for l in lines]``: counters
    are incremented and the resident sets (with LRU order) updated.  With
    ``use_numpy`` and a long enough stream the vectorized kernel runs and
    the mask comes back as a bool ndarray; otherwise (short stream, or
    the kernel declining an adversarial stream) the tight scalar loop
    runs and the mask is a list of bools.
    """
    n = len(lines)
    if use_numpy and n >= MIN_NUMPY_STREAM:
        result = _simulate_level_numpy(cache, lines)
        if result is not None:
            return result
        note_fallback("sim-unresolved", "sim.level")
        lines = lines.tolist()
    elif use_numpy and n:
        lines = lines.tolist()
    return _simulate_level_scalar(cache, lines)


def _simulate_level_scalar(cache: "SetAssociativeCache", lines) -> list[bool]:
    """The dict LRU loop, inlined (no per-access method call)."""
    sets = cache.sets
    num_sets = cache.num_sets
    ways = cache.ways
    hits: list[bool] = []
    append = hits.append
    n_hit = n_evict = 0
    for line in lines:
        bucket = sets[line % num_sets]
        if line in bucket:
            del bucket[line]
            bucket[line] = None
            n_hit += 1
            append(True)
        else:
            bucket[line] = None
            if len(bucket) > ways:
                del bucket[next(iter(bucket))]
                n_evict += 1
            append(False)
    cache.hits += n_hit
    cache.misses += len(hits) - n_hit
    cache.evictions += n_evict
    return hits


def _simulate_level_numpy(cache: "SetAssociativeCache", lines):
    """Vectorized exact LRU; returns the hit mask or None to decline."""
    import numpy as np

    num_sets = cache.num_sets
    ways = cache.ways
    warm = [line for bucket in cache.sets for line in bucket]
    n_warm = len(warm)
    if n_warm:
        stream = np.concatenate(
            (np.array(warm, dtype=np.int64), lines.astype(np.int64, copy=False))
        )
    else:
        stream = lines.astype(np.int64, copy=False)
    outcome = _lru_filter_pass(stream, num_sets, ways)
    if outcome is None:
        return None
    hit, evict, set_of, prev = outcome
    real_hit = hit[n_warm:]
    n_hits = int(np.count_nonzero(real_hit))
    cache.hits += n_hits
    cache.misses += len(lines) - n_hits
    cache.evictions += int(np.count_nonzero(evict[n_warm:]))
    cache.sets = _resident_sets(stream, set_of, prev, num_sets, ways)
    return real_hit


def _lru_filter_pass(lines, num_sets: int, ways: int):
    """Hit/evict masks for a cold cache over ``lines``; None to decline.

    Returns ``(hit, evict, set_of, prev)`` where ``prev[t]`` is the index
    of the previous access to the same line (-1 when none) — reused by
    the resident-set reconstruction.
    """
    import numpy as np

    n = len(lines)
    if num_sets & (num_sets - 1) == 0:
        set_of = lines & (num_sets - 1)
    else:
        set_of = lines % num_sets

    # Per-set subsequence coordinate r: this access is the r-th of its set.
    order = np.argsort(set_of, kind="stable")
    sorted_sets = set_of[order]
    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = sorted_sets[1:] != sorted_sets[:-1]
    seg_id = np.cumsum(seg_start) - 1
    start_idx = np.flatnonzero(seg_start)
    r = np.empty(n, dtype=np.int64)
    r[order] = np.arange(n, dtype=np.int64) - start_idx[seg_id]

    # prev[t]: previous access to the same line, via a stable sort by line.
    by_line = np.argsort(lines, kind="stable")
    sorted_lines = lines[by_line]
    prev = np.full(n, -1, dtype=np.int64)
    same = sorted_lines[1:] == sorted_lines[:-1]
    prev[by_line[1:][same]] = by_line[:-1][same]
    cold = prev == -1

    # A[t]: distinct lines of t's set seen strictly before t (exclusive
    # per-set cumulative count of first occurrences).
    cold_sorted = cold[order]
    cum_cold = np.cumsum(cold_sorted)
    seg_base = np.where(start_idx > 0, cum_cold[start_idx - 1], 0)
    distinct_before = np.empty(n, dtype=np.int64)
    distinct_before[order] = cum_cold - cold_sorted - seg_base[seg_id]

    prev_clip = np.maximum(prev, 0)
    window = r - r[prev_clip] - 1  # same-set accesses strictly between
    hit = np.zeros(n, dtype=bool)
    hit[~cold & (window < ways)] = True
    # Fresh (first-ever) same-set lines inside the window alone evict.
    fresh = distinct_before - (distinct_before[prev_clip] + cold[prev_clip])
    resolved_miss = cold | (fresh >= ways)

    unresolved = np.flatnonzero(~hit & ~resolved_miss)
    if len(unresolved):
        # Exact per-query resolution: the distinct lines strictly inside
        # the window (prev[t], t) are the same-set accesses j there whose
        # own previous access predates the window.  Same-set accesses are
        # contiguous in ``order`` (positions seg_off + r), so each query
        # reads exactly its window — summed window length is the work.
        lens = window[unresolved]
        work = int(lens.sum())
        if work > UNRESOLVED_WORK_FACTOR * n:
            return None
        inv_order = np.empty(n, dtype=np.int64)
        inv_order[order] = np.arange(n, dtype=np.int64)
        seg_off = inv_order[unresolved] - r[unresolved]
        starts = seg_off + r[prev[unresolved]] + 1
        ends = np.cumsum(lens)
        step = np.ones(work, dtype=np.int64)
        step[0] = starts[0]
        step[ends[:-1]] = starts[1:] - (starts[:-1] + lens[:-1] - 1)
        positions = order[np.cumsum(step)]
        introduces = prev[positions] < np.repeat(prev[unresolved], lens)
        cum_new = np.concatenate(([0], np.cumsum(introduces)))
        bounds = np.concatenate(([0], ends))
        distinct = cum_new[bounds[1:]] - cum_new[bounds[:-1]]
        hit[unresolved[distinct < ways]] = True

    miss = ~hit
    # A miss evicts exactly when the set is already full; occupancy
    # before t is min(ways, distinct_before[t]).
    evict = miss & (distinct_before >= ways)
    return hit, evict, set_of, prev


def _resident_sets(lines, set_of, prev, num_sets: int, ways: int) -> list[dict]:
    """The final dict state, identical to the scalar loop's.

    Resident lines of a set are its (up to) ``ways`` most recently used
    distinct lines; dict order is ascending last-use, matching the
    reference's insertion discipline.
    """
    import numpy as np

    n = len(lines)
    last = np.ones(n, dtype=bool)
    has_next = prev[prev >= 0]
    last[has_next] = False
    idx = np.flatnonzero(last)  # each line's final occurrence, ascending
    sets_of_last = set_of[idx]
    order = np.argsort(sets_of_last, kind="stable")
    sorted_idx = idx[order]
    sorted_sets = sets_of_last[order]
    buckets: list[dict] = [dict() for _ in range(num_sets)]
    if not len(sorted_idx):
        return buckets
    bounds = np.flatnonzero(np.diff(sorted_sets)) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(sorted_idx)]))
    for begin, end in zip(starts.tolist(), ends.tolist()):
        set_no = int(sorted_sets[begin])
        keep = sorted_idx[max(begin, end - ways) : end]
        buckets[set_no] = dict.fromkeys(lines[keep].tolist())
    return buckets


def build_traces_numpy(plan: "ExecutablePlan", layout: "MemoryLayout", line_shift: int):
    """Vectorized :func:`repro.sim.trace.build_traces`, pre-concatenated.

    Returns ``(streams, offsets)``: ``streams[core]`` is one int64 array
    of the core's line numbers across all rounds in issue order, and
    ``offsets[core]`` the cumulative per-round boundaries, so round ``k``
    is ``streams[core][offsets[core][k]:offsets[core][k + 1]]``.  Line
    values and order are identical to the scalar builder's.
    """
    import numpy as np

    nest = plan.nest
    nest.validate_access_bounds()
    if not nest.is_affine():
        return _build_traces_numpy_indirect(plan, layout, line_shift)
    resolved_base = []
    resolved_coeffs = []
    for access in nest.accesses:
        constant, coeffs = access.offset_form()
        elem = access.array.element_size
        resolved_base.append(layout.bases[access.array.name] + constant * elem)
        resolved_coeffs.append(tuple(c * elem for c in coeffs))
    base_vec = np.array(resolved_base, dtype=np.int64)
    coeff_mat = np.array(resolved_coeffs, dtype=np.int64)  # (refs, depth)
    num_refs = len(resolved_base)
    depth = coeff_mat.shape[1] if num_refs else 0

    streams: list = []
    offsets: list[list[int]] = []
    for core_rounds in plan.rounds:
        offs = [0]
        parts = []
        for rnd in core_rounds:
            num_points = len(rnd)
            if num_points == 0 or num_refs == 0:
                offs.append(offs[-1])
                continue
            points = np.fromiter(
                chain.from_iterable(rnd),
                dtype=np.int64,
                count=num_points * depth,
            ).reshape(num_points, depth)
            addresses = points @ coeff_mat.T + base_vec  # (points, refs)
            parts.append((addresses >> line_shift).ravel())
            offs.append(offs[-1] + num_points * num_refs)
        streams.append(
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        offsets.append(offs)
    return streams, offsets


def _build_traces_numpy_indirect(
    plan: "ExecutablePlan", layout: "MemoryLayout", line_shift: int
):
    """Gather variant of :func:`build_traces_numpy` for indirect nests.

    Affine references keep the linear form; indirect subscripts become a
    vectorized index-array gather (``data[inner_offsets]``).  Issue order
    (point-major, access-minor) and line values match the scalar builder.
    """
    import numpy as np

    nest = plan.nest
    column_fns = []
    for access in nest.accesses:
        elem = access.array.element_size
        base = layout.bases[access.array.name]
        if access.is_affine:
            constant, coeffs = access.offset_form()
            coeff_vec = np.array(coeffs, dtype=np.int64)
            base_addr = base + constant * elem

            def column(points, coeff_vec=coeff_vec, base_addr=base_addr, elem=elem):
                return points @ coeff_vec * elem + base_addr

        else:
            strides = access.array._strides
            dims = []
            for (kind, constant, coeffs, data), stride in zip(
                access.subscript_forms(), strides
            ):
                data_vec = (
                    np.asarray(data, dtype=np.int64) if kind == "indirect" else None
                )
                dims.append(
                    (np.array(coeffs, dtype=np.int64), constant, data_vec, stride)
                )

            def column(points, dims=dims, base=base, elem=elem):
                total = np.zeros(len(points), dtype=np.int64)
                for coeff_vec, constant, data_vec, stride in dims:
                    values = points @ coeff_vec + constant
                    if data_vec is not None:
                        values = data_vec[values]
                    total += values * stride
                return base + total * elem

        column_fns.append(column)

    num_refs = len(column_fns)
    depth = len(nest.dims)
    streams: list = []
    offsets: list[list[int]] = []
    for core_rounds in plan.rounds:
        offs = [0]
        parts = []
        for rnd in core_rounds:
            num_points = len(rnd)
            if num_points == 0 or num_refs == 0:
                offs.append(offs[-1])
                continue
            points = np.fromiter(
                chain.from_iterable(rnd),
                dtype=np.int64,
                count=num_points * depth,
            ).reshape(num_points, depth)
            addresses = np.stack([fn(points) for fn in column_fns], axis=1)
            parts.append((addresses >> line_shift).ravel())
            offs.append(offs[-1] + num_points * num_refs)
        streams.append(
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        offsets.append(offs)
    return streams, offsets
