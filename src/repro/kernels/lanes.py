"""Packing arbitrary-width tags into fixed-width ``uint64`` lanes.

A tag over ``n`` data blocks is a Python big integer; the vectorized
kernels store it as ``ceil(n / 64)`` little-endian 64-bit lanes, so a set
of G tags becomes a ``(G, L)`` ``uint64`` matrix and the paper's tag
operations become element-wise AND/XOR plus popcount.  Lane ``l`` holds
bits ``[64*l, 64*l + 64)`` of the tag, which makes packing/unpacking a
straight little-endian byte copy (``int.to_bytes`` / ``int.from_bytes``).

This module imports NumPy at module level; import it only after
:func:`repro.kernels.resolve_backend` picked the numpy backend.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import KernelError

LANE_BITS = 64

_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")
#: Byte-wise popcount fallback for NumPy builds without ``bitwise_count``.
_POPCOUNT_LUT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def lanes_for_bits(num_bits: int) -> int:
    """Number of 64-bit lanes needed for a ``num_bits``-wide tag."""
    if num_bits < 0:
        raise KernelError(f"tag width must be non-negative, got {num_bits}")
    return max(1, -(-num_bits // LANE_BITS))


def pack_tag(tag: int, lanes: int) -> "np.ndarray":
    """One tag as a ``(lanes,)`` ``uint64`` row, lane 0 = bits 0..63."""
    return pack_tags((tag,), lanes)[0]


def pack_tags(tags: Sequence[int], lanes: int) -> "np.ndarray":
    """A ``(len(tags), lanes)`` ``uint64`` matrix of packed tags."""
    if lanes <= 0:
        raise KernelError(f"lane count must be positive, got {lanes}")
    width = lanes * LANE_BITS
    chunks = []
    for tag in tags:
        if tag < 0:
            raise KernelError(f"tags are non-negative integers, got {tag}")
        if tag.bit_length() > width:
            raise KernelError(
                f"tag of {tag.bit_length()} bits exceeds the {width}-bit lane budget"
            )
        chunks.append(tag.to_bytes(lanes * 8, "little"))
    buffer = b"".join(chunks)
    packed = np.frombuffer(buffer, dtype="<u8").reshape(len(chunks), lanes)
    return packed.astype(np.uint64, copy=False)


def unpack_tag(row: "np.ndarray") -> int:
    """Inverse of :func:`pack_tag`: a packed row back to a Python int."""
    little = np.ascontiguousarray(row, dtype="<u8")
    return int.from_bytes(little.tobytes(), "little")


def popcount(arr: "np.ndarray") -> "np.ndarray":
    """Element-wise popcount of a ``uint64`` array, as ``int64``."""
    arr = np.ascontiguousarray(arr, dtype=np.uint64)
    if _HAVE_BITWISE_COUNT:
        return np.bitwise_count(arr).astype(np.int64)
    byte_view = arr.view(np.uint8).reshape(arr.shape + (8,))
    return _POPCOUNT_LUT[byte_view].sum(axis=-1, dtype=np.int64)
