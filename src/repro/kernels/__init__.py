"""Vectorized kernels for the hot tagging/affinity paths.

The three hottest paths of the pass — iteration tagging
(:mod:`repro.blocks.tagger`), greedy clustering
(:mod:`repro.mapping.clustering`) and local scheduling
(:mod:`repro.mapping.schedule`) — evaluate affine subscripts and tag dot
products one Python integer at a time over the full iteration space K.
This package provides NumPy bulk equivalents: affine offset forms are
evaluated as array operations over the whole iteration space, and tags
are packed into fixed-width ``uint64`` lanes so dot products and Hamming
distances become popcounts over small arrays
(:mod:`repro.kernels.lanes`, :mod:`repro.kernels.affinity`).

Every vectorized entry point is *bit-identical* to the scalar reference
implementation it accelerates; the scalar code stays in place as the
oracle, and the differential tests under ``tests/kernels/`` assert
identity on randomized nests.  Callers select the implementation with a
``backend`` switch:

* ``"auto"`` — NumPy when importable, scalar otherwise (the default);
* ``"python"`` — always the scalar reference;
* ``"numpy"`` — require NumPy; raise :class:`~repro.errors.KernelError`
  when it is not importable.

Even under ``"numpy"``, individual kernels degrade gracefully to the
scalar path for inputs they cannot vectorize — tags wider than the lane
budget, or non-rectangular iteration spaces — because that is a
data-dependent property, not a configuration error.
"""

from __future__ import annotations

import warnings

from repro import obs
from repro.errors import KernelError

BACKENDS = ("auto", "python", "numpy")

#: Widest tag the packed representation will accept, in 64-bit lanes.
#: 256 lanes = 16384 data blocks; beyond that the dense ``uint64`` rows
#: stop paying for themselves and the scalar big-int path takes over.
DEFAULT_MAX_LANES = 256

_numpy_probe: bool | None = None

#: Fallback reasons already reported through :func:`warnings.warn`; each
#: reason warns once per process so CI logs show which backend actually
#: ran without drowning in repeats.  The obs counter fires every time.
_warned_reasons: set[str] = set()

#: The known scalar-fallback reasons and their one-line explanations.
FALLBACK_REASONS = {
    "no-numpy": "NumPy is not importable; the scalar reference backend is used",
    "lane-budget": "tag width exceeds the packed uint64 lane budget",
    "non-rectangular": "iteration space has loop-variant bounds",
    "non-affine": (
        "nest has indirect (non-affine) accesses; affine analysis declined "
        "and the trace-based tagging path is used"
    ),
    "sim-unresolved": (
        "batched LRU filter pass left too much unresolved reuse work; "
        "the scalar level loop is used for this stream"
    ),
}


def note_fallback(reason: str, where: str) -> None:
    """Record a silent-scalar-fallback event: obs counter + one warning.

    ``reason`` is one of :data:`FALLBACK_REASONS`; ``where`` names the
    call site (e.g. ``"tagging"``, ``"clustering"``).  The counter
    ``kernels.fallback.<reason>`` increments on every event; the
    ``warnings.warn`` fires once per reason per process, so logs state
    which backend actually ran without flooding.
    """
    obs.count(f"kernels.fallback.{reason}")
    obs.count(f"kernels.fallback_at.{where}")
    if reason not in _warned_reasons:
        _warned_reasons.add(reason)
        detail = FALLBACK_REASONS.get(reason, reason)
        warnings.warn(
            f"repro.kernels: scalar fallback at {where} ({reason}): {detail}",
            RuntimeWarning,
            stacklevel=3,
        )


def reset_fallback_warnings() -> None:
    """Forget which reasons already warned (test isolation hook)."""
    _warned_reasons.clear()


def have_numpy() -> bool:
    """True when NumPy is importable (probed once, then cached)."""
    global _numpy_probe
    if _numpy_probe is None:
        try:
            import numpy  # noqa: F401

            _numpy_probe = True
        except ImportError:  # pragma: no cover - depends on environment
            _numpy_probe = False
    return _numpy_probe


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a ``backend`` argument to ``"python"`` or ``"numpy"``.

    ``"auto"`` picks NumPy when available and the scalar reference
    otherwise; asking for ``"numpy"`` without NumPy installed raises
    :class:`~repro.errors.KernelError`.
    """
    if backend not in BACKENDS:
        raise KernelError(
            f"unknown kernel backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        if have_numpy():
            return "numpy"
        note_fallback("no-numpy", "resolve_backend")
        return "python"
    if backend == "numpy" and not have_numpy():
        raise KernelError("backend 'numpy' requested but numpy is not importable")
    return backend


def fits_lane_budget(num_bits: int, max_lanes: int = DEFAULT_MAX_LANES) -> bool:
    """True when a ``num_bits``-wide tag fits the packed lane budget."""
    return num_bits <= 64 * max_lanes
