"""Microbenchmarks for the vectorized kernel layer.

Times the scalar reference against the numpy backend on the three routed
hot paths — tagging, pairwise affinity, clustering — over nests whose
size and block geometry mirror the paper's compile-time experiments.
Timings are best-of-N wall clock (best-of suppresses scheduler noise
better than means for sub-second kernels); both backends run on
identical inputs and their outputs are cross-checked before timing, so a
reported speedup is always a speedup on verified-identical work.

Run directly::

    PYTHONPATH=src python -m repro.kernels.bench [--out BENCH_kernels.json]

or through the pytest wrapper in ``benchmarks/perf/``.
"""

from __future__ import annotations

import json
import platform
import time
from collections.abc import Callable

from repro.blocks import tagger
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import IterationGroup
from repro.blocks.tags import dot
from repro.ir.accesses import ArrayAccess
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest
from repro.kernels import have_numpy
from repro.mapping.clustering import cluster_one_level
from repro.poly.affine import AffineExpr
from repro.poly.intset import IntSet

#: (name, n, block_size) tagging configurations.  All are two-array
#: nests with n >= 64 except the smoke entry used by the tier-1 marker.
TAGGING_CONFIGS = (
    ("stencil-64", 64, 512),
    ("stencil-128", 128, 1024),
    ("stencil-256", 256, 2048),
    ("shifted-row-128", 128, 1024),
)

SMOKE_CONFIGS = (("stencil-16", 16, 256),)


def stencil_nest(n: int, block_size: int) -> tuple[LoopNest, DataBlockPartition]:
    """Two-array five-point-style nest: ``A[i+1,j+1] = f(B[i,j], A[i,j+1],
    A[i+2,j+1])`` over an ``n x n`` space."""
    a = Array("A", (n + 2, n + 2))
    b = Array("B", (n, n))
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    dims = ("i", "j")
    space = IntSet.box(dims, [(0, n - 1), (0, n - 1)])
    accesses = [
        ArrayAccess(a, dims, (i + 1, j + 1), is_write=True),
        ArrayAccess(b, dims, (i, j)),
        ArrayAccess(a, dims, (i, j + 1)),
        ArrayAccess(a, dims, (i + 2, j + 1)),
    ]
    return LoopNest(f"stencil-{n}", space, accesses), DataBlockPartition((a, b), block_size)


def shifted_row_nest(n: int, block_size: int) -> tuple[LoopNest, DataBlockPartition]:
    """Two-array row-contiguous nest: ``A[i,j] = B[i,j] + B[i,j+1]``."""
    a = Array("A", (n, n))
    b = Array("B", (n, n + 1))
    i, j = AffineExpr.var("i"), AffineExpr.var("j")
    dims = ("i", "j")
    space = IntSet.box(dims, [(0, n - 1), (0, n - 1)])
    accesses = [
        ArrayAccess(a, dims, (i, j), is_write=True),
        ArrayAccess(b, dims, (i, j)),
        ArrayAccess(b, dims, (i, j + 1)),
    ]
    return LoopNest(f"shifted-row-{n}", space, accesses), DataBlockPartition((a, b), block_size)


def build_config(name: str, n: int, block_size: int) -> tuple[LoopNest, DataBlockPartition]:
    builder = shifted_row_nest if name.startswith("shifted-row") else stencil_nest
    return builder(n, block_size)


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` calls (first call warm)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _groupset_fingerprint(gs) -> list[tuple]:
    return [(g.ident, g.tag, g.write_tag, g.read_tag, g.iterations) for g in gs.groups]


def bench_tagging(name: str, n: int, block_size: int, repeats: int = 5) -> dict:
    nest, partition = build_config(name, n, block_size)

    IterationGroup.reset_idents()
    scalar = tagger.tag_iterations(nest, partition, backend="python")
    IterationGroup.reset_idents()
    vectorized = tagger.tag_iterations(nest, partition, backend="numpy")
    if _groupset_fingerprint(scalar) != _groupset_fingerprint(vectorized):
        raise AssertionError(f"backends disagree on {name}")

    python_s = best_of(lambda: tagger.tag_iterations(nest, partition, backend="python"), repeats)
    numpy_s = best_of(lambda: tagger.tag_iterations(nest, partition, backend="numpy"), repeats)
    return {
        "kernel": "tagging",
        "config": name,
        "iterations": nest.iteration_count(),
        "num_blocks": partition.num_blocks,
        "groups": len(scalar),
        "python_ms": round(python_s * 1e3, 3),
        "numpy_ms": round(numpy_s * 1e3, 3),
        "speedup": round(python_s / numpy_s, 2),
    }


def bench_affinity(name: str, n: int, block_size: int, repeats: int = 5) -> dict:
    """Pairwise dot table: G^2 scalar big-int dots vs one dot_matrix."""
    nest, partition = build_config(name, n, block_size)
    groups = list(tagger.tag_iterations(nest, partition, backend="python").groups)
    tags = [g.tag for g in groups]

    def scalar_table():
        return [[dot(a, b) for b in tags] for a in tags]

    from repro.kernels.affinity import dot_matrix
    from repro.kernels.lanes import lanes_for_bits, pack_tags

    def numpy_table():
        packed = pack_tags(tags, lanes_for_bits(partition.num_blocks))
        return dot_matrix(packed)

    if scalar_table() != numpy_table().tolist():
        raise AssertionError(f"affinity tables disagree on {name}")
    python_s = best_of(scalar_table, repeats)
    numpy_s = best_of(numpy_table, repeats)
    return {
        "kernel": "affinity-matrix",
        "config": name,
        "groups": len(groups),
        "num_blocks": partition.num_blocks,
        "python_ms": round(python_s * 1e3, 3),
        "numpy_ms": round(numpy_s * 1e3, 3),
        "speedup": round(python_s / numpy_s, 2),
    }


def bench_clustering(name: str, n: int, block_size: int, k: int = 4, repeats: int = 3) -> dict:
    nest, partition = build_config(name, n, block_size)
    groups = list(tagger.tag_iterations(nest, partition, backend="python").groups)

    base = 1_000_000

    def run(backend: str):
        IterationGroup.reset_idents(base)
        return cluster_one_level(groups, k, 0.10, backend=backend)

    py = [[g.ident for g in c.groups] for c in run("python")]
    np_ = [[g.ident for g in c.groups] for c in run("numpy")]
    if py != np_:
        raise AssertionError(f"clustering backends disagree on {name}")
    python_s = best_of(lambda: run("python"), repeats)
    numpy_s = best_of(lambda: run("numpy"), repeats)
    return {
        "kernel": "clustering",
        "config": name,
        "groups": len(groups),
        "clusters": k,
        "python_ms": round(python_s * 1e3, 3),
        "numpy_ms": round(numpy_s * 1e3, 3),
        "speedup": round(python_s / numpy_s, 2),
    }


def run_suite(configs=None, repeats: int = 5) -> dict:
    """The full microbenchmark report as a JSON-serializable dict."""
    if configs is None:
        configs = TAGGING_CONFIGS
    if not have_numpy():
        raise RuntimeError("kernel microbenchmarks need numpy")
    import numpy

    entries = []
    for name, n, block_size in configs:
        entries.append(bench_tagging(name, n, block_size, repeats))
    # Affinity at both ends of the group-count range; clustering once —
    # its runtime is dominated by the (shared) merge machinery, so more
    # configs add time without adding information.
    head, tail = configs[0], configs[-1]
    entries.append(bench_affinity(head[0], head[1], head[2], repeats))
    if tail is not head:
        entries.append(bench_affinity(tail[0], tail[1], tail[2], repeats))
    entries.append(bench_clustering(head[0], head[1], head[2], repeats=max(2, repeats - 2)))
    return {
        "suite": "repro.kernels microbenchmarks",
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "timing": f"best of {repeats}, warm",
        "entries": entries,
    }


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernels.json")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    report = run_suite(repeats=args.repeats)
    write_report(report, args.out)
    for entry in report["entries"]:
        print(
            f"{entry['kernel']:16s} {entry['config']:16s} "
            f"py {entry['python_ms']:8.1f}ms  np {entry['numpy_ms']:8.1f}ms  "
            f"{entry['speedup']:5.2f}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
