"""Bulk tag dot products and Hamming distances over packed tags.

These are the vector forms of :func:`repro.blocks.tags.dot` and
:func:`repro.blocks.tags.hamming`: popcounts of AND/XOR over the
``uint64`` lane matrices produced by :mod:`repro.kernels.lanes`.  All
results are exact integers, so the scalar and vectorized paths agree
bit for bit.

This module imports NumPy at module level; import it only after
:func:`repro.kernels.resolve_backend` picked the numpy backend.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.kernels.lanes import popcount


#: Above this many tags, pairwise products go through the bit-matrix
#: matmul instead of the (G, G, L) popcount broadcast, which turns
#: memory-bound at scale.
_MATMUL_MIN_TAGS = 64


def _bit_matrix(packed: "np.ndarray") -> "np.ndarray":
    """Tags as a 0/1 ``float32`` matrix, one column per (permuted) bit.

    Dot products are invariant under any fixed bit permutation, so the
    byte-order of the expansion does not matter.  Float32 is exact here:
    every partial sum is an integer bounded by the lane budget's 16384
    bits, far below 2^24.
    """
    bits = np.unpackbits(np.ascontiguousarray(packed, dtype="<u8").view(np.uint8), axis=1)
    return bits.astype(np.float32)


def dot_matrix(packed: "np.ndarray") -> "np.ndarray":
    """Pairwise tag dot products: ``(G, G)`` ``int64`` from ``(G, L)``.

    ``result[i, j]`` is the number of data blocks shared by tags i and j
    — the clustering affinity measure of Figure 6.
    """
    if packed.shape[0] >= _MATMUL_MIN_TAGS:
        bits = _bit_matrix(packed)
        return (bits @ bits.T).astype(np.int64)
    return popcount(packed[:, None, :] & packed[None, :, :]).sum(axis=-1)


def dot_many(row: "np.ndarray", packed: "np.ndarray") -> "np.ndarray":
    """Dot product of one packed tag against each row of ``packed``."""
    return popcount(packed & row[None, :]).sum(axis=-1)


def dot_pairs(packed: "np.ndarray") -> tuple[list[int], list[int], list[int]]:
    """All unordered pairs ``i < j`` with a positive dot product.

    Returns parallel lists ``(i, j, weight)`` as Python ints, in row-major
    (``i`` then ``j``) order — exactly the pairs the scalar clustering
    seeds its merge heap with.
    """
    dots = dot_matrix(packed)
    ii, jj = np.nonzero(np.triu(dots, 1))
    return ii.tolist(), jj.tolist(), dots[ii, jj].tolist()


def dot_select(
    row: "np.ndarray", rows: Sequence["np.ndarray | None"], indices: Sequence[int]
) -> list[int]:
    """Dot products of one packed tag against ``rows[idx]`` for each index.

    ``rows`` may contain ``None`` entries (dead clusters); only the
    selected indices are touched.
    """
    if not indices:
        return []
    return dot_many(row, np.stack([rows[idx] for idx in indices])).tolist()


def hamming_matrix(packed: "np.ndarray") -> "np.ndarray":
    """Pairwise Hamming distances: ``(G, G)`` ``int64`` from ``(G, L)``."""
    if packed.shape[0] >= _MATMUL_MIN_TAGS:
        # hamming(a, b) = ones(a) + ones(b) - 2 * dot(a, b), all exact ints.
        counts = popcount(packed).sum(axis=1)
        return counts[:, None] + counts[None, :] - 2 * dot_matrix(packed)
    return popcount(packed[:, None, :] ^ packed[None, :, :]).sum(axis=-1)


def hamming_many(row: "np.ndarray", packed: "np.ndarray") -> "np.ndarray":
    """Hamming distance of one packed tag against each row of ``packed``."""
    return popcount(packed ^ row[None, :]).sum(axis=-1)
