"""Vectorized iteration tagging (the bulk form of Section 3.3).

The scalar reference in :mod:`repro.blocks.tagger` walks the iteration
space K one point at a time, evaluating every reference's affine offset
form with Python integers.  Here the whole space is materialized as one
``(K, d)`` ``int64`` grid, each reference's offset form becomes a single
matrix-vector product, and iterations are grouped by the *set* of data
blocks they touch — a ``(K, refs)`` matrix of small block numbers that
sorts far faster than wide bit vectors.  The resulting
:class:`~repro.blocks.groups.GroupSet` is bit-identical to the scalar
one — same tags, same write/read tags, same iteration tuples, same group
order, same idents.

Vectorization applies when the space is rectangular (every loop bound is
a constant — the overwhelmingly common case after frontend
normalization) and the partition's tag width fits the lane budget;
:func:`tag_iterations_numpy` returns ``None`` otherwise and the caller
falls back to the scalar reference.

This module imports NumPy at module level; import it only after
:func:`repro.kernels.resolve_backend` picked the numpy backend.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BlockingError
from repro.blocks.datablocks import DataBlockPartition
from repro.blocks.groups import GroupSet, IterationGroup
from repro.ir.loops import LoopNest
from repro.kernels import DEFAULT_MAX_LANES, fits_lane_budget, note_fallback
from repro.kernels.lanes import lanes_for_bits, pack_tags


def iteration_grid(nest: LoopNest) -> "np.ndarray | None":
    """The nest's iteration space as a ``(K, d)`` ``int64`` grid, lex order.

    Returns ``None`` when any loop bound depends on an outer loop
    variable (non-rectangular space) — those nests enumerate through the
    exact scalar path instead.  An empty space yields a ``(0, d)`` grid.
    """
    dims = nest.space.dims
    if not dims:
        return None
    ranges: list[tuple[int, int]] = []
    for level in nest.space.level_bounds():
        bounds = level.lowers + level.uppers + level.equalities
        if any(expr.variables() for _, expr in bounds):
            return None
        rng = level.range_for({})
        if rng is None or rng[0] > rng[1]:
            return np.empty((0, len(dims)), dtype=np.int64)
        ranges.append(rng)
    axes = [np.arange(lo, hi + 1, dtype=np.int64) for lo, hi in ranges]
    grid = np.meshgrid(*axes, indexing="ij")
    return np.stack(grid, axis=-1).reshape(-1, len(dims))


def tag_iterations_numpy(
    nest: LoopNest,
    partition: DataBlockPartition,
    resolved: list[tuple[int, tuple[int, ...], int, int, bool]],
    max_groups: int | None = None,
    max_lanes: int = DEFAULT_MAX_LANES,
) -> GroupSet | None:
    """Bulk tagging; ``None`` when this nest/partition cannot vectorize.

    ``resolved`` carries the per-access ``(constant, coeffs, first_block,
    elems_per_block, is_write)`` tuples prepared by the caller (shared
    with the scalar path).  The caller must already have validated access
    bounds, exactly as the scalar reference requires.
    """
    if not fits_lane_budget(partition.num_blocks, max_lanes):
        note_fallback("lane-budget", "tagging")
        return None
    grid = iteration_grid(nest)
    if grid is None:
        note_fallback("non-rectangular", "tagging")
        return None
    count, _ = grid.shape
    if not count:
        return GroupSet(nest, partition, [])
    refs = len(resolved)
    blocks_mat = np.empty((count, refs), dtype=np.int64)
    for column, (constant, coeffs, first, per_block, _) in enumerate(resolved):
        offsets = grid @ np.asarray(coeffs, dtype=np.int64) + constant
        blocks_mat[:, column] = first + offsets // per_block

    # Group iterations by the *set* of touched blocks (equivalent to
    # grouping by tag, since the tag is exactly that set as a bit vector):
    # sort each row, collapse duplicate entries to a sentinel, re-sort to
    # push sentinels right, then order rows so equal sets are adjacent.
    # The stable sort leaves each group's members in ascending enumeration
    # (= lexicographic) order.
    cols = _canonical_set_columns(blocks_mat, partition.num_blocks)
    stride = partition.num_blocks + 1
    new_group = np.empty(count, dtype=bool)
    new_group[0] = True
    if stride ** refs < 2**63:
        # Rows fold into one int64 key, so one stable argsort replaces the
        # column-by-column lexsort and boundaries are scalar compares.
        key = cols[0]
        for c in range(1, refs):
            key = key * stride + cols[c]
        order = np.argsort(key, kind="stable")
        key_ordered = key[order]
        np.not_equal(key_ordered[1:], key_ordered[:-1], out=new_group[1:])
    else:
        touched = np.stack(cols, axis=1)
        order = np.lexsort(tuple(touched[:, c] for c in range(refs - 1, -1, -1)))
        ordered = touched[order]
        np.any(ordered[1:] != ordered[:-1], axis=1, out=new_group[1:])
    starts = np.flatnonzero(new_group)
    num_groups = len(starts)
    if max_groups is not None and num_groups > max_groups:
        raise BlockingError(
            f"tagging produced more than {max_groups} groups; "
            "increase the data block size"
        )

    # Per-group write/read tags from deduplicated (group, block) pairs:
    # one np.unique per access class replaces per-iteration bit-vector
    # scatters, and the surviving pair count is O(groups * refs), cheap to
    # fold into Python big-int tags.
    group_ids = np.cumsum(new_group) - 1
    ordered_blocks = blocks_mat[order]
    stride = partition.num_blocks + 1
    keyed = group_ids[:, None] * stride + ordered_blocks
    write_cols = [c for c, acc in enumerate(resolved) if acc[4]]
    read_cols = [c for c, acc in enumerate(resolved) if not acc[4]]
    write_tags = _pair_tags(keyed, write_cols, stride, num_groups)
    read_tags = _pair_tags(keyed, read_cols, stride, num_groups)
    tags = [w | r for w, r in zip(write_tags, read_tags)]

    # Gather the grid into group order once; each group is then a
    # contiguous slice of the tuple list, already lexicographically
    # sorted (zip-of-columns is the fastest ndarray -> tuples path).
    ordered_grid = grid[order]
    dims = grid.shape[1]
    points = list(zip(*(ordered_grid[:, k].tolist() for k in range(dims))))
    starts_list = starts.tolist()
    ends_list = starts_list[1:] + [count]
    firsts = order[starts].tolist()

    # Scalar reference semantics: groups ordered by their first
    # (lexicographically smallest) iteration, idents assigned in that
    # order (first-occurrence order of the tags).
    by_first = sorted(range(num_groups), key=firsts.__getitem__)
    groups = []
    for u in by_first:
        group_points = points[starts_list[u] : ends_list[u]]
        groups.append(
            IterationGroup(tags[u], group_points, write_tags[u], read_tags[u])
        )
    return GroupSet(nest, partition, groups)


#: Optimal compare-exchange networks for tiny row widths; row-wise
#: ``np.sort`` costs per-row dispatch that a handful of vectorized
#: min/max column passes avoids entirely.
_SORT_NETWORKS = {
    1: (),
    2: ((0, 1),),
    3: ((0, 1), (1, 2), (0, 1)),
    4: ((0, 1), (2, 3), (0, 2), (1, 3), (1, 2)),
    5: ((0, 1), (3, 4), (2, 4), (2, 3), (1, 4), (0, 3), (0, 2), (1, 3), (1, 2)),
    6: (
        (1, 2), (4, 5), (0, 2), (3, 5), (0, 1), (3, 4),
        (2, 5), (0, 3), (1, 4), (2, 4), (1, 3), (2, 3),
    ),
}


def _sort_columns(cols: list["np.ndarray"]) -> list["np.ndarray"]:
    network = _SORT_NETWORKS.get(len(cols))
    if network is None:
        matrix = np.sort(np.stack(cols, axis=1), axis=1)
        return [matrix[:, c] for c in range(len(cols))]
    for i, j in network:
        lo = np.minimum(cols[i], cols[j])
        hi = np.maximum(cols[i], cols[j])
        cols[i], cols[j] = lo, hi
    return cols


def _canonical_set_columns(
    blocks_mat: "np.ndarray", num_blocks: int
) -> list["np.ndarray"]:
    """Each row reduced to its canonical *set* form, as column arrays.

    Rows are sorted, duplicate entries collapsed to the sentinel
    ``num_blocks`` and pushed right by a second sort, so two iterations
    touch the same block set iff their canonical rows are equal.  (The
    multiset of touched blocks may differ where the set does not — e.g.
    ``(b1, b1, b2)`` vs ``(b1, b2, b2)`` — hence the dedupe.)
    """
    refs = blocks_mat.shape[1]
    cols = _sort_columns([blocks_mat[:, c].copy() for c in range(refs)])
    # Walking high-to-low keeps every comparison against original values.
    for c in range(refs - 1, 0, -1):
        cols[c][cols[c] == cols[c - 1]] = num_blocks
    return _sort_columns(cols)


def _pair_tags(
    keyed: "np.ndarray", columns: list[int], stride: int, num_groups: int
) -> list[int]:
    """Per-group tags from ``group_id * stride + block`` pair keys.

    ``columns`` selects the accesses contributing to this tag class
    (writes or reads); the union over a group's members falls out of key
    deduplication.
    """
    tags = [0] * num_groups
    if not columns:
        return tags
    for key in np.unique(keyed[:, columns]).tolist():
        tags[key // stride] |= 1 << (key % stride)
    return tags


def pack_group_tags(groups, num_bits: int) -> "np.ndarray":
    """Packed ``(G, L)`` tag matrix for a sequence of iteration groups."""
    return pack_tags([g.tag for g in groups], lanes_for_bits(num_bits))
