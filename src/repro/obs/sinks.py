"""Trace sinks: where finished spans and the final summary go.

A sink is anything with ``emit(record: dict)`` and ``close()``.  Two
built-ins cover the common cases:

* :class:`JsonlSink` — one JSON object per line, machine-readable; the
  format ``python -m repro.obs.report`` and the CI artifacts consume.
* :class:`TreeSink` — buffers spans and renders an indented wall/CPU
  tree with tags and decision counters when the recorder closes; the
  human-readable form behind the CLI's ``--trace``.

Records are plain dicts with a ``type`` key: ``"span"`` (see
:meth:`repro.obs.core.Span.record`), ``"summary"`` (final counter/gauge
table), or ``"profile"`` (emitted by :mod:`repro.obs.profile`).
"""

from __future__ import annotations

import io
import json
import sys
from typing import Any, TextIO


class Sink:
    """Interface for trace consumers (subclassing is optional)."""

    def emit(self, record: dict[str, Any]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        pass


class CollectorSink(Sink):
    """Keeps every record in memory — the test/debug sink."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []
        self.closed = False

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True

    def spans(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("type") == "span"]

    def summary(self) -> dict[str, Any] | None:
        for record in reversed(self.records):
            if record.get("type") == "summary":
                return record
        return None


class JsonlSink(Sink):
    """JSON-lines sink writing to a path or an open text stream."""

    def __init__(self, target: str | TextIO):
        if isinstance(target, str):
            self._stream: TextIO = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def emit(self, record: dict[str, Any]) -> None:
        self._stream.write(json.dumps(record, default=_jsonable) + "\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


def _jsonable(value: Any) -> str:
    """Fallback encoder: tags may carry arbitrary objects (machines,
    nests); represent them by ``repr`` rather than failing the trace."""
    return repr(value)


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Load a JSONL trace back into a record list (round-trip helper)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class TreeSink(Sink):
    """Buffers spans, renders an indented tree on close.

    Spans arrive in completion (post) order; the tree is rebuilt from
    parent ids so the render shows open order with children indented
    under their parents.
    """

    def __init__(self, stream: TextIO | None = None):
        self._stream = stream if stream is not None else sys.stderr
        self._spans: list[dict[str, Any]] = []
        self._summary: dict[str, Any] | None = None

    def emit(self, record: dict[str, Any]) -> None:
        kind = record.get("type")
        if kind == "span":
            self._spans.append(record)
        elif kind == "summary":
            self._summary = record

    def close(self) -> None:
        self._stream.write(self.render())
        self._stream.flush()

    def render(self) -> str:
        out = io.StringIO()
        children: dict[int | None, list[dict[str, Any]]] = {}
        for sp in self._spans:
            children.setdefault(sp.get("parent"), []).append(sp)
        for siblings in children.values():
            siblings.sort(key=lambda s: s["start_s"])

        def walk(parent: int | None, indent: int) -> None:
            for sp in children.get(parent, ()):
                extras = []
                for key, value in sp.get("tags", {}).items():
                    extras.append(f"{key}={value}")
                for key, value in sp.get("counters", {}).items():
                    extras.append(f"{key}={value}")
                suffix = f"  [{' '.join(extras)}]" if extras else ""
                out.write(
                    f"{'  ' * indent}{sp['name']:<{max(1, 28 - 2 * indent)}} "
                    f"wall={sp['wall_ms']:8.3f}ms cpu={sp['cpu_ms']:8.3f}ms{suffix}\n"
                )
                walk(sp["id"], indent + 1)

        walk(None, 0)
        if self._summary is not None:
            counters = self._summary.get("counters", {})
            gauges = self._summary.get("gauges", {})
            if counters:
                out.write("counters:\n")
                for name in sorted(counters):
                    out.write(f"  {name:<40} {counters[name]}\n")
            if gauges:
                out.write("gauges:\n")
                for name in sorted(gauges):
                    out.write(f"  {name:<40} {gauges[name]}\n")
        return out.getvalue()
