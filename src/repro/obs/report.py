"""Pretty-print a saved JSONL trace: ``python -m repro.obs.report``.

Turns the machine-readable trace emitted by ``--trace-out`` (or any
:class:`~repro.obs.sinks.JsonlSink`) into the per-phase time/decision
tables used in ``docs/OBSERVABILITY.md`` and the CI artifacts::

    python -m repro.obs.report trace.jsonl            # phase table + counters
    python -m repro.obs.report trace.jsonl --tree     # indented span tree
    python -m repro.obs.report trace.jsonl --profiles # any cProfile captures

The phase table aggregates spans by name: calls, total/mean wall ms,
total CPU ms, and the *self* wall time (total minus the wall time of
direct children), which is what localizes a regression to one stage.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.sinks import TreeSink, read_jsonl
from repro.util.tables import format_table


def phase_table(records: list[dict]) -> str:
    """Aggregate span records into the per-phase timing table."""
    spans = [r for r in records if r.get("type") == "span"]
    child_wall: dict[int, float] = {}
    for sp in spans:
        parent = sp.get("parent")
        if parent is not None:
            child_wall[parent] = child_wall.get(parent, 0.0) + sp["wall_ms"]

    by_name: dict[str, dict[str, float]] = {}
    order: list[str] = []
    for sp in spans:
        name = sp["name"]
        agg = by_name.get(name)
        if agg is None:
            agg = {"calls": 0, "wall": 0.0, "self": 0.0, "cpu": 0.0}
            by_name[name] = agg
            order.append(name)
        agg["calls"] += 1
        agg["wall"] += sp["wall_ms"]
        agg["self"] += sp["wall_ms"] - child_wall.get(sp["id"], 0.0)
        agg["cpu"] += sp["cpu_ms"]

    rows = []
    for name in sorted(order, key=lambda n: -by_name[n]["self"]):
        agg = by_name[name]
        rows.append(
            (
                name,
                int(agg["calls"]),
                f"{agg['wall']:.3f}",
                f"{agg['self']:.3f}",
                f"{agg['cpu']:.3f}",
                f"{agg['wall'] / agg['calls']:.3f}",
            )
        )
    return format_table(
        ["span", "calls", "wall ms", "self ms", "cpu ms", "mean ms"],
        rows,
        title="Per-phase timings",
    )


def counter_table(records: list[dict]) -> str:
    """The final decision-counter/gauge table (from the summary record,
    falling back to summing span counters for truncated traces)."""
    summary = None
    for record in reversed(records):
        if record.get("type") == "summary":
            summary = record
            break
    if summary is not None:
        counters = dict(summary.get("counters", {}))
        gauges = dict(summary.get("gauges", {}))
    else:
        counters = {}
        gauges = {}
        for record in records:
            if record.get("type") == "span":
                for name, value in record.get("counters", {}).items():
                    counters[name] = counters.get(name, 0) + value
    parts = []
    if counters:
        rows = [(name, counters[name]) for name in sorted(counters)]
        parts.append(format_table(["counter", "value"], rows, title="Decision counters"))
    if gauges:
        rows = [(name, gauges[name]) for name in sorted(gauges)]
        parts.append(format_table(["gauge", "value"], rows, title="Gauges"))
    return "\n\n".join(parts)


def tree_view(records: list[dict]) -> str:
    """The indented span tree, identical to the live ``TreeSink`` render."""
    sink = TreeSink(stream=None)
    for record in records:
        sink.emit(record)
    return sink.render()


def profile_view(records: list[dict]) -> str:
    """Any cProfile captures embedded in the trace."""
    parts = []
    for record in records:
        if record.get("type") == "profile":
            parts.append(f"== profile of span {record['span']!r} ==\n{record['stats']}")
    return "\n".join(parts) if parts else "(no profile records in trace)"


def render_report(records: list[dict], tree: bool = False, profiles: bool = False) -> str:
    parts = []
    if tree:
        parts.append(tree_view(records).rstrip("\n"))
    parts.append(phase_table(records))
    counters = counter_table(records)
    if counters:
        parts.append(counters)
    if profiles:
        parts.append(profile_view(records))
    return "\n\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Pretty-print a JSONL trace emitted by --trace-out",
    )
    parser.add_argument("trace", help="path to a .jsonl trace file")
    parser.add_argument("--tree", action="store_true", help="include the span tree")
    parser.add_argument(
        "--profiles", action="store_true", help="include embedded cProfile captures"
    )
    args = parser.parse_args(argv)
    try:
        records = read_jsonl(args.trace)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if not records:
        print(f"error: {args.trace} holds no trace records", file=sys.stderr)
        return 1
    print(render_report(records, tree=args.tree, profiles=args.profiles))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
