"""Tracing spans, counters and gauges (the observability core).

The pipeline (tag -> affinity -> clustering -> balance -> schedule ->
simulate) makes hundreds of merge/split/ordering decisions per nest.
This module makes them visible without making them slow:

* **Spans** — hierarchical timed regions opened with :func:`span` (a
  context manager) or :func:`traced` (a decorator).  Each span records
  monotonic wall time (``time.perf_counter``), CPU time
  (``time.process_time``), its parent/depth, free-form tags, and the
  decision counters incremented while it was innermost.
* **Counters/gauges** — :func:`count` accumulates integral decision
  counts (groups formed, merges, balance moves, backend fallbacks);
  :func:`gauge` records last-value-wins measurements.
* **Recorder** — the process-wide collector behind both.  Finished spans
  are forwarded to pluggable sinks (:mod:`repro.obs.sinks`).

Everything is **off by default**: with no recorder installed,
:func:`span` returns a shared null span and :func:`count`/:func:`gauge`
are a single attribute load plus an ``is None`` test.  The overhead
budget (<2% on the ``perf_smoke`` benches) is asserted by
``tests/obs/test_overhead.py``.

Thread model: the recorder is process-global; the active span stack is
per-thread, so spans opened on worker threads nest correctly among
themselves and attach to the recorder's shared counter table under a
lock.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

__all__ = [
    "NULL_SPAN",
    "Recorder",
    "Span",
    "configure",
    "count",
    "current_span",
    "enabled",
    "gauge",
    "get_recorder",
    "shutdown",
    "span",
    "traced",
    "tracing",
]


class Span:
    """One timed, tagged region of the pipeline.

    Spans are created by :func:`span`/:func:`traced`; user code only
    tags them (``sp.tag(groups=12)``).  Wall time uses the monotonic
    ``perf_counter`` clock, CPU time ``process_time``; both are captured
    on entry and exit, so ``wall_s``/``cpu_s`` are only meaningful after
    the span closed.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "tags",
        "counters",
        "start_wall",
        "start_cpu",
        "wall_s",
        "cpu_s",
    )

    def __init__(self, name: str, span_id: int, parent_id: int | None, depth: int):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.tags: dict[str, Any] = {}
        self.counters: dict[str, int] = {}
        self.start_wall = 0.0
        self.start_cpu = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0

    def tag(self, **tags: Any) -> "Span":
        """Attach key/value annotations (last write wins per key)."""
        self.tags.update(tags)
        return self

    def record(self) -> dict[str, Any]:
        """The span as a flat JSON-serializable record."""
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start_s": self.start_wall,
            "wall_ms": self.wall_s * 1e3,
            "cpu_ms": self.cpu_s * 1e3,
            "tags": self.tags,
            "counters": self.counters,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, id={self.span_id}, depth={self.depth})"


class _NullSpan:
    """The disabled-mode stand-in: every operation is a no-op.

    A single shared instance is returned by :func:`span` when tracing is
    off, so the disabled fast path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def tag(self, **tags: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Recorder:
    """Process-wide collector for spans, counters and gauges.

    ``sinks`` receive every finished span record immediately and a final
    summary record on :meth:`close`.  The per-thread span stack lives in
    a ``threading.local``; the counter/gauge tables are shared and
    guarded by a lock (increments are rare relative to the work they
    count, so the lock is uncontended in practice).
    """

    def __init__(self, *sinks: Any):
        self.sinks = list(sinks)
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._closed = False

    # -- span lifecycle -------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def open_span(self, name: str, tags: dict[str, Any]) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        sp = Span(
            name,
            next(self._ids),
            parent.span_id if parent is not None else None,
            len(stack),
        )
        if tags:
            sp.tags.update(tags)
        stack.append(sp)
        sp.start_cpu = time.process_time()
        sp.start_wall = time.perf_counter()
        return sp

    def close_span(self, sp: Span) -> None:
        end_wall = time.perf_counter()
        end_cpu = time.process_time()
        sp.wall_s = end_wall - sp.start_wall
        sp.cpu_s = end_cpu - sp.start_cpu
        sp.start_wall -= self.epoch  # report starts relative to the epoch
        stack = self._stack()
        if stack and stack[-1] is sp:
            stack.pop()
        else:  # pragma: no cover - misnested exit; keep the stack sane
            if sp in stack:
                stack.remove(sp)
        self.emit(sp.record())

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- counters / gauges ----------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n
        sp = self.current_span()
        if sp is not None:
            sp.counters[name] = sp.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    # -- sinks -----------------------------------------------------------
    def emit(self, record: dict[str, Any]) -> None:
        with self._lock:
            for sink in self.sinks:
                sink.emit(record)

    def summary_record(self) -> dict[str, Any]:
        return {
            "type": "summary",
            "wall_ms": (time.perf_counter() - self.epoch) * 1e3,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        summary = self.summary_record()
        with self._lock:
            for sink in self.sinks:
                sink.emit(summary)
            for sink in self.sinks:
                sink.close()


#: The installed recorder, or ``None`` when tracing is disabled (the
#: default).  Read via :func:`get_recorder`; hot paths read the module
#: global directly for speed.
_recorder: Recorder | None = None


def enabled() -> bool:
    """True when a recorder is installed (tracing is on)."""
    return _recorder is not None


def get_recorder() -> Recorder | None:
    """The installed recorder, if any."""
    return _recorder


def configure(*sinks: Any) -> Recorder:
    """Install a fresh :class:`Recorder` forwarding to ``sinks``.

    Replaces (and closes) any previously installed recorder.  Most
    callers want the scoped :func:`tracing` context manager instead.
    """
    global _recorder
    if _recorder is not None:
        _recorder.close()
    _recorder = Recorder(*sinks)
    return _recorder


def shutdown() -> None:
    """Close and uninstall the recorder; tracing reverts to no-op."""
    global _recorder
    if _recorder is not None:
        _recorder.close()
        _recorder = None


@contextmanager
def tracing(*sinks: Any) -> Iterator[Recorder]:
    """Scoped tracing: install a recorder, run the block, tear it down.

    The summary record (final counter/gauge table) is emitted to every
    sink on exit, even when the block raises.
    """
    recorder = configure(*sinks)
    try:
        yield recorder
    finally:
        if _recorder is recorder:
            shutdown()
        else:  # pragma: no cover - recorder replaced mid-flight
            recorder.close()


def span(name: str, **tags: Any):
    """Open a tracing span: ``with obs.span("map.tagging", nest=n): ...``.

    Disabled mode returns the shared :data:`NULL_SPAN` — no allocation,
    no timestamps.  Enabled mode returns a context manager yielding the
    live :class:`Span` so the body can ``sp.tag(...)`` results.
    """
    recorder = _recorder
    if recorder is None:
        return NULL_SPAN
    return _LiveSpan(recorder, name, tags)


class _LiveSpan:
    """Context manager binding one span to the recorder that made it."""

    __slots__ = ("_recorder", "_name", "_tags", "_span")

    def __init__(self, recorder: Recorder, name: str, tags: dict[str, Any]):
        self._recorder = recorder
        self._name = name
        self._tags = tags
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._recorder.open_span(self._name, self._tags)
        return self._span

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        sp = self._span
        if sp is not None:
            if exc_type is not None:
                sp.tags.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
            self._recorder.close_span(sp)
        return None


def traced(name: str | None = None, **tags: Any) -> Callable:
    """Decorator form of :func:`span`; span name defaults to the
    function's qualified name."""

    def decorate(func: Callable) -> Callable:
        span_name = name or func.__qualname__

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if _recorder is None:
                return func(*args, **kwargs)
            with span(span_name, **tags):
                return func(*args, **kwargs)

        wrapper.__name__ = func.__name__
        wrapper.__qualname__ = func.__qualname__
        wrapper.__doc__ = func.__doc__
        wrapper.__wrapped__ = func
        return wrapper

    return decorate


def count(name: str, n: int = 1) -> None:
    """Increment a decision counter (no-op while tracing is disabled)."""
    recorder = _recorder
    if recorder is not None:
        recorder.count(name, n)


def gauge(name: str, value: float) -> None:
    """Record a last-value-wins gauge (no-op while tracing is disabled)."""
    recorder = _recorder
    if recorder is not None:
        recorder.gauge(name, value)


def current_span() -> Span | None:
    """The innermost open span on this thread, or ``None``."""
    recorder = _recorder
    if recorder is None:
        return None
    return recorder.current_span()
