"""cProfile integration: statistically profile any span.

:func:`profiled` behaves exactly like :func:`repro.obs.core.span` when
tracing is disabled (a no-op), and additionally runs ``cProfile`` over
the block when tracing is enabled, emitting a ``"profile"`` record with
the top functions by cumulative time next to the span record.  Use it
sparingly — cProfile's own overhead is large — on the one phase under
investigation::

    with obs.profiled("map.clustering"):
        hierarchical_distribute(...)
"""

from __future__ import annotations

import cProfile
import io
import pstats
from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs import core


@contextmanager
def profiled(name: str, limit: int = 20, sort: str = "cumulative", **tags) -> Iterator[object]:
    """A span that also captures a ``cProfile`` of its body.

    ``limit`` rows of the ``pstats`` table (ordered by ``sort``) are
    attached to a ``"profile"`` record; the span itself is emitted as
    usual, tagged ``profiled=True``.
    """
    recorder = core.get_recorder()
    if recorder is None:
        yield core.NULL_SPAN
        return
    profiler = cProfile.Profile()
    with core.span(name, profiled=True, **tags) as sp:
        profiler.enable()
        try:
            yield sp
        finally:
            profiler.disable()
    stats_text = format_stats(profiler, limit=limit, sort=sort)
    recorder.emit(
        {
            "type": "profile",
            "span": name,
            "span_id": sp.span_id,
            "sort": sort,
            "stats": stats_text,
        }
    )


def format_stats(profiler: cProfile.Profile, limit: int = 20, sort: str = "cumulative") -> str:
    """The pstats table for a finished profiler, as text."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(limit)
    return buffer.getvalue()
