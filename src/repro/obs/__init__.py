"""Pipeline observability: tracing spans, decision counters, profiling.

The paper's pipeline (tag -> affinity -> clustering -> balance ->
schedule -> simulate) makes hundreds of merge/split/ordering decisions
per nest; this zero-dependency subsystem makes them visible.  Usage::

    from repro import obs
    from repro.obs.sinks import JsonlSink, TreeSink

    with obs.tracing(JsonlSink("trace.jsonl")):
        mapper.map_nest(program, nest)       # spans + counters recorded

    with obs.span("my.phase", size=n) as sp: # inside instrumented code
        ...
        sp.tag(groups=len(groups))
    obs.count("cluster.merges")              # decision counters

Everything is **disabled by default** and engineered to stay under 2%
overhead on the ``perf_smoke`` benches when off (asserted by
``tests/obs/test_overhead.py``).  See ``docs/OBSERVABILITY.md`` for the
span taxonomy, the counter catalogue, and the sink API;
``python -m repro.obs.report trace.jsonl`` renders saved traces.
"""

from __future__ import annotations

from repro.obs.core import (
    NULL_SPAN,
    Recorder,
    Span,
    configure,
    count,
    current_span,
    enabled,
    gauge,
    get_recorder,
    shutdown,
    span,
    traced,
    tracing,
)
from repro.obs.profile import profiled

__all__ = [
    "NULL_SPAN",
    "Recorder",
    "Span",
    "configure",
    "count",
    "current_span",
    "enabled",
    "gauge",
    "get_recorder",
    "profiled",
    "shutdown",
    "span",
    "traced",
    "tracing",
]
