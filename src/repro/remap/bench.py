"""Incremental-remap latency benchmark (the BENCH_remap.json producer).

Measures what the remapper was built for: how much faster reacting to a
dynamic event is than re-running the whole mapping pipeline from
scratch.  Two entries cover the two event sources:

* **scripted** — a hand-written event schedule over the parallel
  stencil (tagging + clustering dominate): phase changes cycling
  through a small knob set, core loss/hot-plug cycles, and a topology
  edit pair.  The schedule is deliberately shaped like real dynamic
  behaviour — phases *revisit* earlier configurations, cores that went
  away come back — which is exactly the regime where the artifact store
  replays entire runs.
* **watched** — :class:`~repro.remap.watch.ExecutionWatcher` driving
  the remapper from the :class:`~repro.sim.dynamic.BehaviorModel`
  sample stream of the banded loop (dependence analysis dominates; the
  dependence artifact is machine-independent, so topology events carry
  it instead of recomputing it).

For every applied event the benchmark re-maps the post-event state cold
(fresh pipeline, no store) and asserts the remapped plan is
**bit-identical** before using the cold time as the denominator, so a
reported speedup is always a speedup on a verified-identical result.
The suite-level ``speedup`` is Σcold / Σremap across all events.

Run directly::

    PYTHONPATH=src python -m repro.remap.bench [--out BENCH_remap.json]

or through ``scripts/remap_bench.py``.
"""

from __future__ import annotations

import platform
import time

from repro.kernels.bench import write_report
from repro.pipeline.bench import (
    banded_workload,
    bench_machine,
    stencil_workload,
)
from repro.pipeline.knobs import Knobs
from repro.remap.core import Remapper, cold_plan
from repro.remap.events import (
    CoreHotplug,
    CoreLoss,
    PhaseChange,
    RemapEvent,
    TopologyEdit,
)
from repro.remap.watch import ExecutionWatcher
from repro.sim.dynamic import BehaviorModel, CoreEvent, PhaseSpec

#: Default workload sizes; tests use smaller ones through run_suite().
DEFAULT_STENCIL_N = 20
DEFAULT_BAND_M = 256

#: The issue's acceptance bar: remap must be >= 10x under cold mapping.
TARGET_SPEEDUP = 10.0


def scripted_events(machine) -> list[RemapEvent]:
    """The scripted schedule: mostly revisits, few first-visit states.

    Dynamic workloads oscillate between a handful of phases and cores
    that go away tend to come back, so most events land on states whose
    artifacts the store already holds; only the first visit of each
    distinct (machine, knobs) state pays for recomputation.
    """
    edited = bench_machine(4)
    lost = (machine.core_ids()[2],)
    return [
        # Three knob points, then cycle through them again (replays).
        PhaseChange.of(alpha=0.8, beta=0.2),
        PhaseChange.of(alpha=0.2, beta=0.8),
        PhaseChange.of(alpha=0.5, beta=0.5),
        PhaseChange.of(alpha=0.8, beta=0.2),
        PhaseChange.of(alpha=0.2, beta=0.8),
        PhaseChange.of(alpha=0.5, beta=0.5),
        # A core dies, comes back, dies again, comes back again.
        CoreLoss(lost),
        CoreHotplug(lost),
        CoreLoss(lost),
        CoreHotplug(lost),
        PhaseChange.of(alpha=0.8, beta=0.2),
        PhaseChange.of(alpha=0.5, beta=0.5),
        # Reconfiguration to a smaller machine and back, twice.
        TopologyEdit(edited),
        TopologyEdit(machine),
        TopologyEdit(edited),
        TopologyEdit(machine),
        PhaseChange.of(alpha=0.2, beta=0.8),
        PhaseChange.of(alpha=0.5, beta=0.5),
        # The same core flaps again: every state is a revisit now.
        CoreLoss(lost),
        CoreHotplug(lost),
        CoreLoss(lost),
        CoreHotplug(lost),
        PhaseChange.of(alpha=0.8, beta=0.2),
        PhaseChange.of(alpha=0.2, beta=0.8),
        PhaseChange.of(alpha=0.5, beta=0.5),
        CoreLoss(lost),
        CoreHotplug(lost),
        # Settle back into the default phase.
        PhaseChange.of(alpha=0.8, beta=0.2),
        PhaseChange.of(alpha=0.5, beta=0.5),
    ]


def watch_model(program, machine) -> BehaviorModel:
    """Behaviour stream: two alternating phases + core churn.

    Phase ``smooth`` maps to the default-ish knob point, ``hot`` to a
    high-sharing/imbalanced one; alternating them many times makes the
    watcher revisit both knob states.  The core events lose and restore
    the same core repeatedly, so only the first loss computes anything.
    """
    smooth = PhaseSpec("smooth", steps=3, imbalance=0.02, sharing=0.20)
    hot = PhaseSpec("hot", steps=3, imbalance=0.50, sharing=0.70)
    phases = (smooth, hot) * 8
    # Loss/restore pairs land *inside* smooth phases (the phase decision
    # at a boundary step precedes the next step's core event), so the
    # pruned machine only ever runs the smooth knob point: one first
    # visit, every later flap a pure replay.
    lost = machine.core_ids()[1]
    core_events = tuple(
        CoreEvent(step=step, kind=kind, cores=(lost,))
        for step, kind in (
            (7, "loss"), (8, "hotplug"),
            (13, "loss"), (14, "hotplug"),
            (19, "loss"), (20, "hotplug"),
            (31, "loss"), (32, "hotplug"),
            (37, "loss"), (38, "hotplug"),
            (43, "loss"), (44, "hotplug"),
        )
    )
    return BehaviorModel(
        nest_name=program.nests[0].name,
        machine=machine,
        phases=phases,
        core_events=core_events,
        seed=7,
    )


def _account(entry: dict, program, outcomes) -> dict:
    """Fill an entry from applied outcomes + per-event cold re-maps."""
    remap_s = 0.0
    cold_s = 0.0
    by_kind: dict[str, int] = {}
    replayed = recomputed = carried = 0
    for outcome in outcomes:
        remap_s += outcome.elapsed_ms / 1e3
        by_kind[outcome.kind] = by_kind.get(outcome.kind, 0) + 1
        replayed += outcome.stages_replayed
        recomputed += outcome.stages_recomputed
        carried += outcome.carried
        for name in outcome.affected:
            nest = next(n for n in program.nests if n.name == name)
            started = time.perf_counter()
            cold = cold_plan(
                program, nest, outcome.machine, outcome.knobs[name]
            )
            cold_s += time.perf_counter() - started
            if cold.rounds != outcome.plans[name].rounds:
                raise AssertionError(
                    f"remap diverged from cold map on {entry['workload']} "
                    f"nest {name!r} after {outcome.kind}"
                )
    entry.update(
        events=len(outcomes),
        by_kind=dict(sorted(by_kind.items())),
        cold_ms=round(cold_s * 1e3, 3),
        remap_ms=round(remap_s * 1e3, 3),
        speedup=round(cold_s / remap_s, 2) if remap_s else float("inf"),
        stages_replayed=replayed,
        stages_recomputed=recomputed,
        carried=carried,
    )
    return entry


def bench_scripted(stencil_n: int = DEFAULT_STENCIL_N) -> dict:
    """Scripted event schedule over the parallel stencil."""
    program = stencil_workload(stencil_n)
    machine = bench_machine()
    knobs = Knobs(block_size=64, alpha=0.5, beta=0.5, local_scheduling=True)
    remapper = Remapper(program, machine, knobs=knobs)
    outcomes = [remapper.apply(event) for event in scripted_events(machine)]
    entry = {
        "workload": f"stencil{stencil_n}",
        "machine": machine.name,
        "driver": "scripted",
    }
    return _account(entry, program, outcomes)


def bench_watched(band_m: int = DEFAULT_BAND_M) -> dict:
    """Watcher-driven schedule over the banded loop's behaviour model."""
    program = banded_workload(band_m)
    machine = bench_machine()
    knobs = Knobs(block_size=32, alpha=0.5, beta=0.5, local_scheduling=True)
    remapper = Remapper(program, machine, knobs=knobs)
    watcher = ExecutionWatcher(remapper)
    outcomes = watcher.run(watch_model(program, machine).samples())
    entry = {
        "workload": f"band{band_m}",
        "machine": machine.name,
        "driver": "watched",
        "samples": watcher.samples_seen,
    }
    return _account(entry, program, outcomes)


def run_suite(stencil_n: int = DEFAULT_STENCIL_N,
              band_m: int = DEFAULT_BAND_M) -> dict:
    """The full remap benchmark report as a JSON-serializable dict."""
    entries = [bench_scripted(stencil_n), bench_watched(band_m)]
    cold_ms = sum(e["cold_ms"] for e in entries)
    remap_ms = sum(e["remap_ms"] for e in entries)
    return {
        "suite": "repro.remap incremental remap benchmark",
        "python": platform.python_version(),
        "timing": "single pass; every event's post state re-mapped cold "
                  "(bit-identity asserted) for the denominator",
        "target_speedup": TARGET_SPEEDUP,
        "entries": entries,
        "overall": {
            "events": sum(e["events"] for e in entries),
            "cold_ms": round(cold_ms, 3),
            "remap_ms": round(remap_ms, 3),
            "speedup": round(cold_ms / remap_ms, 2) if remap_ms else 0.0,
        },
    }


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_remap.json")
    parser.add_argument("--stencil-n", type=int, default=DEFAULT_STENCIL_N)
    parser.add_argument("--band-m", type=int, default=DEFAULT_BAND_M)
    args = parser.parse_args(argv)
    start = time.perf_counter()
    report = run_suite(stencil_n=args.stencil_n, band_m=args.band_m)
    write_report(report, args.out)
    for entry in report["entries"]:
        print(
            f"{entry['workload']:12s} {entry['driver']:8s} "
            f"{entry['events']:3d} events  "
            f"cold {entry['cold_ms']:9.1f}ms  "
            f"remap {entry['remap_ms']:8.1f}ms  {entry['speedup']:6.2f}x"
        )
    overall = report["overall"]
    print(f"overall: {overall['speedup']:.2f}x over {overall['events']} events "
          f"(target {report['target_speedup']:.0f}x)")
    print(f"wrote {args.out} ({time.perf_counter() - start:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
