"""Online incremental remapping for dynamic workloads.

The paper maps once, at compile time.  This package is the run-time
counterpart (ROADMAP: "Online remapping for dynamic workloads"; cf.
Paulino & Delgado's run-time decomposition in PAPERS.md): a
:class:`~repro.remap.core.Remapper` holds the live mapping state of a
program and reacts to :mod:`~repro.remap.events` — phase changes, core
loss/hot-plug, topology edits — by replaying every still-valid pipeline
stage from the :class:`~repro.pipeline.store.ArtifactStore` and
recomputing only the dirtied suffix.  An
:class:`~repro.remap.watch.ExecutionWatcher` turns the
:class:`~repro.sim.dynamic.BehaviorModel` observation stream into those
events.

Every remapped plan is bit-identical to a cold map of the post-event
state; the differential suite and the :mod:`repro.remap.bench` harness
(``BENCH_remap.json``) both pin that while measuring the latency win.

The service exposes the same machinery per-request via ``POST /remap``
(see :mod:`repro.service`), and the CLI as ``repro remap``.
"""

from repro.remap.core import Remapper, RemapOutcome, carry_prefix, cold_plan
from repro.remap.events import (
    CoreHotplug,
    CoreLoss,
    PhaseChange,
    RemapEvent,
    TopologyEdit,
    event_kind,
    event_to_dict,
    parse_event,
)
from repro.remap.watch import ExecutionWatcher, WatchPolicy, knobs_for_signals

__all__ = [
    "CoreHotplug",
    "CoreLoss",
    "ExecutionWatcher",
    "PhaseChange",
    "RemapEvent",
    "RemapOutcome",
    "Remapper",
    "TopologyEdit",
    "WatchPolicy",
    "carry_prefix",
    "cold_plan",
    "event_kind",
    "event_to_dict",
    "knobs_for_signals",
    "parse_event",
]
