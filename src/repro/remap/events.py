"""The events an online remapper reacts to.

Three things change under a running workload (ROADMAP: "phase changes,
core loss/hot-plug, or topology edits"), and each dirties a different
suffix of the five-stage pipeline:

* :class:`PhaseChange` — the workload's observed behaviour shifted, so
  the mapper *knobs* should shift with it.  The stage keys embed
  cumulative knob tuples, so this dirties exactly the stages downstream
  of the earliest changed knob — for only the affected nests.
* :class:`CoreLoss` / :class:`CoreHotplug` — cores go away or come
  back.  The machine digest changes, which misses every stage key; the
  remapper re-keys the machine-independent prefix (blocksize, tagging,
  dependence) and recomputes only distribute→schedule.
* :class:`TopologyEdit` — the mapper's machine view is replaced
  wholesale (cache scaling, level truncation, a different tree).  Same
  invalidation as core loss, with the carry-forward guarded on the L1
  capacity staying put (the only topology input of the prefix stages).

Core ids in events are always *physical* ids of the base machine, never
the renumbered ids of an already-pruned machine — the remapper owns the
dead-set and derives the pruned view itself.

:func:`parse_event` / :func:`event_to_dict` are the wire codec shared by
the service protocol and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import RemapError
from repro.topology.tree import Machine

__all__ = [
    "CoreHotplug",
    "CoreLoss",
    "PhaseChange",
    "RemapEvent",
    "TopologyEdit",
    "event_kind",
    "event_to_dict",
    "parse_event",
]

#: Knob names a phase change may adjust: the wire knob surface plus the
#: tagging guard (phase shifts legitimately coarsen/refine grouping).
PHASE_KNOBS = frozenset(
    {
        "block_size",
        "balance_threshold",
        "alpha",
        "beta",
        "local_scheduling",
        "dependence_policy",
        "cluster_strategy",
        "max_groups",
    }
)


@dataclass(frozen=True)
class PhaseChange:
    """The workload entered a phase that wants different knobs.

    ``knobs`` is a sorted tuple of ``(name, value)`` changes (kept as a
    tuple so events are hashable); ``nest`` optionally restricts the
    change to one nest — ``None`` means every nest of the program.
    """

    knobs: tuple[tuple[str, object], ...]
    nest: str | None = None

    def __post_init__(self) -> None:
        unknown = sorted(set(name for name, _ in self.knobs) - PHASE_KNOBS)
        if unknown:
            raise RemapError(f"phase change with unknown knobs {unknown}")

    @staticmethod
    def of(nest: str | None = None, **knobs) -> "PhaseChange":
        return PhaseChange(tuple(sorted(knobs.items())), nest=nest)

    @property
    def knob_changes(self) -> dict:
        return dict(self.knobs)


@dataclass(frozen=True)
class CoreLoss:
    """Physical cores went offline."""

    cores: tuple[int, ...]

    def __post_init__(self) -> None:
        _check_cores(self.cores)


@dataclass(frozen=True)
class CoreHotplug:
    """Previously-lost physical cores came back."""

    cores: tuple[int, ...]

    def __post_init__(self) -> None:
        _check_cores(self.cores)


@dataclass(frozen=True)
class TopologyEdit:
    """The mapper's machine view is replaced with ``machine``.

    Replacing the base machine also clears the dead-set: the new tree's
    physical ids need not correspond to the old one's.
    """

    machine: Machine


RemapEvent = Union[PhaseChange, CoreLoss, CoreHotplug, TopologyEdit]

_KINDS = {
    PhaseChange: "phase_change",
    CoreLoss: "core_loss",
    CoreHotplug: "core_hotplug",
    TopologyEdit: "topology_edit",
}


def _check_cores(cores: tuple[int, ...]) -> None:
    if not cores:
        raise RemapError("core event needs at least one core")
    if any(not isinstance(c, int) or c < 0 for c in cores):
        raise RemapError(f"core ids must be non-negative integers, got {cores}")
    if len(set(cores)) != len(cores):
        raise RemapError(f"duplicate core ids in {cores}")


def event_kind(event: RemapEvent) -> str:
    """The wire ``kind`` string of an event."""
    try:
        return _KINDS[type(event)]
    except KeyError:
        raise RemapError(f"not a remap event: {event!r}") from None


def event_to_dict(event: RemapEvent) -> dict:
    """Canonical wire form (JSON-serializable except TopologyEdit's tree,
    which is rendered as the machine name — the service wire carries the
    topology spec string instead, see ``parse_remap_request``)."""
    kind = event_kind(event)
    if isinstance(event, PhaseChange):
        out: dict = {"kind": kind, "knobs": dict(event.knobs)}
        if event.nest is not None:
            out["nest"] = event.nest
        return out
    if isinstance(event, (CoreLoss, CoreHotplug)):
        return {"kind": kind, "cores": list(event.cores)}
    return {"kind": kind, "machine": event.machine.name}


def parse_event(raw: dict) -> RemapEvent:
    """Decode a wire event dict (the CLI's ``--event`` JSON).

    ``topology_edit`` events carry a topology spec string under
    ``"topology"`` (plus an optional ``"scale"`` divisor, matching the
    service's machine parsing) or a builtin machine name under
    ``"machine"``.
    """
    if not isinstance(raw, dict):
        raise RemapError(f"event must be an object, got {type(raw).__name__}")
    kind = raw.get("kind")
    if kind == "phase_change":
        knobs = raw.get("knobs")
        if not isinstance(knobs, dict):
            raise RemapError("phase_change event needs a 'knobs' object")
        nest = raw.get("nest")
        if nest is not None and not isinstance(nest, str):
            raise RemapError("'nest' must be a string")
        return PhaseChange(tuple(sorted(knobs.items())), nest=nest)
    if kind in ("core_loss", "core_hotplug"):
        cores = raw.get("cores")
        if not isinstance(cores, list):
            raise RemapError(f"{kind} event needs a 'cores' list")
        cls = CoreLoss if kind == "core_loss" else CoreHotplug
        return cls(tuple(cores))
    if kind == "topology_edit":
        machine = _parse_edit_machine(raw)
        return TopologyEdit(machine)
    raise RemapError(f"unknown event kind {kind!r}")


def _parse_edit_machine(raw: dict) -> Machine:
    spec = raw.get("topology")
    name = raw.get("machine")
    if (spec is None) == (name is None):
        raise RemapError("topology_edit needs exactly one of 'topology' or 'machine'")
    if spec is not None:
        if not isinstance(spec, str):
            raise RemapError("'topology' must be a spec string")
        from repro.topology.parser import parse_topology

        machine = parse_topology(spec)
    else:
        if not isinstance(name, str):
            raise RemapError("'machine' must be a name string")
        from repro.topology.resolve import resolve_machine

        machine = resolve_machine(name)
    scale = raw.get("scale")
    if scale is not None:
        if not isinstance(scale, (int, float)) or scale <= 0:
            raise RemapError("'scale' must be a positive number")
        if scale != 1:
            machine = machine.with_scaled_caches(1.0 / float(scale))
    return machine
