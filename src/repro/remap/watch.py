"""Watching execution and deciding when (and how) to remap.

:class:`ExecutionWatcher` consumes the :class:`~repro.sim.dynamic.ExecutionSample`
stream of a :class:`~repro.sim.dynamic.BehaviorModel` (or, one day, real
per-core counters) and drives a :class:`~repro.remap.core.Remapper`:

* a change in the active core set becomes a :class:`CoreLoss` /
  :class:`CoreHotplug` event immediately — running with a stale core
  count is wrong, not just slow;
* a jump in the observed imbalance or sharing signal beyond the
  :class:`WatchPolicy` thresholds becomes a :class:`PhaseChange` whose
  knob deltas are derived from the signals by :func:`knobs_for_signals`
  (high sharing leans the scheduler toward affinity via α, high
  imbalance tightens the balance window); small drift is ignored, so a
  steady phase never triggers churn.

The watcher is deliberately *stateless about plans* — it only remembers
the signal levels it last acted on.  All mapping state lives in the
remapper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.pipeline.knobs import Knobs
from repro.remap.core import Remapper, RemapOutcome
from repro.remap.events import CoreHotplug, CoreLoss, PhaseChange
from repro.sim.dynamic import ExecutionSample

__all__ = ["ExecutionWatcher", "WatchPolicy", "knobs_for_signals"]


@dataclass(frozen=True)
class WatchPolicy:
    """Thresholds and knob levels for the signal -> knob translation."""

    #: Minimum jump in (max-mean)/mean imbalance to call it a new phase.
    imbalance_jump: float = 0.10
    #: Minimum jump in the sharing fraction to call it a new phase.
    sharing_jump: float = 0.15
    #: Balance window used when the workload runs imbalanced / smooth.
    tight_balance: float = 0.05
    loose_balance: float = 0.10
    #: Sharing level above which the scheduler leans fully on affinity.
    high_sharing: float = 0.60

    def __post_init__(self) -> None:
        if self.imbalance_jump <= 0 or self.sharing_jump <= 0:
            raise ValueError("signal jump thresholds must be positive")


def knobs_for_signals(
    policy: WatchPolicy, current: Knobs, imbalance: float, sharing: float
) -> dict:
    """Knob changes (possibly empty) the signals ask for.

    High sharing pushes α up (locality term of the Section 3.5.3
    scheduler) and β down; high imbalance tightens the balance
    threshold.  Values are quantized so steady signals map to identical
    knobs and produce no event at all.
    """
    alpha = round(min(0.9, max(0.1, 0.2 + 0.8 * min(1.0, max(0.0, sharing)))), 1)
    beta = round(1.0 - alpha, 1)
    balance = (
        policy.tight_balance if imbalance > 2 * policy.imbalance_jump else policy.loose_balance
    )
    wanted = {
        "alpha": alpha,
        "beta": beta,
        "balance_threshold": balance,
        "local_scheduling": sharing >= policy.high_sharing or current.local_scheduling,
    }
    return {
        name: value
        for name, value in wanted.items()
        if getattr(current, name) != value
    }


class ExecutionWatcher:
    """Feeds observation samples to a remapper, emitting events as needed."""

    def __init__(self, remapper: Remapper, policy: WatchPolicy | None = None):
        self.remapper = remapper
        self.policy = policy or WatchPolicy()
        self._active: set[int] = set(remapper.base_machine.core_ids()) - remapper.dead
        #: Per-nest (imbalance, sharing) levels at the last remap.
        self._last: dict[str, tuple[float, float]] = {}
        self.samples_seen = 0

    def feed(self, sample: ExecutionSample) -> list[RemapOutcome]:
        """Process one sample; returns the outcomes of any remaps it caused."""
        self.samples_seen += 1
        obs.count("remap.samples")
        outcomes: list[RemapOutcome] = []

        observed = set(sample.active_cores)
        lost = self._active - observed
        gained = observed - self._active
        if lost:
            outcomes.append(self.remapper.apply(CoreLoss(tuple(sorted(lost)))))
        if gained:
            outcomes.append(self.remapper.apply(CoreHotplug(tuple(sorted(gained)))))
        self._active = observed

        imbalance = sample.imbalance()
        sharing = sample.sharing
        last = self._last.get(sample.nest)
        jumped = last is None or (
            abs(imbalance - last[0]) > self.policy.imbalance_jump
            or abs(sharing - last[1]) > self.policy.sharing_jump
        )
        if jumped:
            changes = knobs_for_signals(
                self.policy, self.remapper.knobs_for(sample.nest), imbalance, sharing
            )
            if changes:
                event = PhaseChange(tuple(sorted(changes.items())), nest=sample.nest)
                outcomes.append(self.remapper.apply(event))
            # Acting (or deciding nothing needs to change) re-anchors the
            # levels either way, so drift is measured from the last
            # decision, not the last event.
            self._last[sample.nest] = (imbalance, sharing)
        return outcomes

    def run(self, samples) -> list[RemapOutcome]:
        """Feed a whole sample stream; returns all outcomes in order."""
        outcomes: list[RemapOutcome] = []
        for sample in samples:
            outcomes.extend(self.feed(sample))
        return outcomes
