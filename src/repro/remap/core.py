"""The incremental remapper: event -> minimal pipeline replay.

The whole trick rides on the stage-key design of PR 5.  A stage key is

    (stage, program digest, nest, machine digest, knob tuple, epoch)

so the two event families invalidate differently:

* **Phase changes** alter knobs.  The knob tuples are cumulative, so the
  new keys share the prefix up to the earliest changed knob's stage and
  the :class:`~repro.pipeline.core.MappingPipeline` replays that prefix
  straight from the :class:`~repro.pipeline.store.ArtifactStore` — no
  remapper work needed beyond re-running the pipeline with new knobs,
  and only for the affected nests.
* **Topology events** (core loss, hot-plug, edits) alter the machine
  digest, which appears in *every* key — a naive re-run recomputes all
  five stages.  But the first three stages never look at the tree:
  blocksize reads only the L1 capacity, tagging reads the nest and the
  block partition, dependence reads the nest and the groups.  So
  :func:`carry_prefix` copies those artifacts from the old machine's
  keys to the new machine's keys (guarded on the L1 capacity being
  unchanged, the prefix's only topology input), and the pipeline then
  *hits* the carried prefix and recomputes only distribute→schedule.

Either way the replayed artifacts are byte-identical to what a cold map
of the post-event state would compute, so every remapped plan is
bit-identical to a cold plan — ``tests/remap/test_differential.py`` and
the in-bench assertion of :mod:`repro.remap.bench` pin that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.errors import RemapError
from repro.experiments.cache import machine_digest
from repro.ir.loops import LoopNest, Program
from repro.mapping.distribute import ExecutablePlan
from repro.pipeline.core import MappingPipeline
from repro.pipeline.knobs import STAGE_ORDER, Knobs
from repro.pipeline.store import ArtifactStore
from repro.remap.events import (
    CoreHotplug,
    CoreLoss,
    PhaseChange,
    RemapEvent,
    TopologyEdit,
    event_kind,
)
from repro.topology.tree import Machine

__all__ = ["RemapOutcome", "Remapper", "carry_prefix", "cold_plan"]

#: The machine-independent prefix of the chain (see module docstring).
CARRY_STAGES = STAGE_ORDER[:3]  # blocksize, tagging, dependence


def _l1_size(machine: Machine) -> int | None:
    path = machine.cache_path(machine.core_ids()[0])
    return path[0].spec.size_bytes if path else None


def carry_prefix(
    store: ArtifactStore,
    program: Program,
    nest: LoopNest,
    old_machine: Machine,
    new_machine: Machine,
    old_knobs: Knobs,
    new_knobs: Knobs,
) -> int:
    """Re-key the machine-independent prefix old machine -> new machine.

    Copies the blocksize/tagging/dependence artifacts for one nest from
    the old machine's stage keys to the new machine's, stopping at the
    first stage whose artifact is absent or whose knob tuple changed.
    Returns how many artifacts were carried.

    The carry is refused outright when the resolved block size could
    differ: the blocksize stage reads the L1 capacity, so unless the
    ``block_size`` knob pins it, both machines must agree on L1 size —
    then (and only then) every carried artifact equals what a cold map
    of the new machine would compute, which is what keeps remapped plans
    bit-identical to cold ones.
    """
    if old_knobs.block_size is None or new_knobs.block_size is None:
        if _l1_size(old_machine) != _l1_size(new_machine):
            return 0
    old_pipe = MappingPipeline(old_machine, old_knobs, store=store)
    new_pipe = MappingPipeline(new_machine, new_knobs, store=store)
    old_base = old_pipe._base_key(program, nest)
    new_base = new_pipe._base_key(program, nest)
    carried = 0
    for stage in CARRY_STAGES:
        if old_knobs.stage_tuple(stage) != new_knobs.stage_tuple(stage):
            break
        artifact = store.peek(old_pipe.stage_key(stage, old_base))
        if artifact is None:
            break
        new_key = new_pipe.stage_key(stage, new_base)
        if store.peek(new_key) is None:
            store.put(new_key, artifact)
        carried += 1
    return carried


@dataclass(frozen=True)
class RemapOutcome:
    """What one applied event did."""

    kind: str
    machine: Machine
    affected: tuple[str, ...]
    plans: dict = field(repr=False)  # nest name -> ExecutablePlan (affected only)
    knobs: dict = field(repr=False)  # nest name -> Knobs at event time (affected only)
    stages_replayed: int
    stages_recomputed: int
    carried: int
    elapsed_ms: float


class Remapper:
    """Holds the live mapping state of one program and applies events.

    State is (base machine, dead physical-core set, per-nest knobs,
    shared artifact store, current plans).  :meth:`apply` transitions
    the state and re-runs the pipeline for the affected nests only;
    everything reusable comes out of the store.
    """

    def __init__(
        self,
        program: Program,
        machine: Machine,
        knobs: Knobs | None = None,
        store: ArtifactStore | None = None,
    ):
        if not program.nests:
            raise RemapError("program has no loop nests to remap")
        self.program = program
        self.base_machine = machine
        self.dead: set[int] = set()
        base = knobs if knobs is not None else Knobs()
        self._knobs: dict[str, Knobs] = {nest.name: base for nest in program.nests}
        self.store = store if store is not None else ArtifactStore(capacity=512)
        self.plans: dict[str, ExecutablePlan] = {}
        self.events_applied = 0
        self.prime()

    # -- state queries ---------------------------------------------------

    @property
    def machine(self) -> Machine:
        """The current (possibly pruned) mapper view of the machine."""
        return self.base_machine.without_cores(sorted(self.dead))

    def knobs_for(self, nest_name: str) -> Knobs:
        return self._knobs[nest_name]

    def plan_for(self, nest_name: str) -> ExecutablePlan:
        return self.plans[nest_name]

    # -- execution -------------------------------------------------------

    def prime(self) -> float:
        """Cold-map every nest of the program; returns elapsed ms."""
        started = time.perf_counter()
        machine = self.machine
        for nest in self.program.nests:
            pipe = MappingPipeline(machine, self._knobs[nest.name], store=self.store)
            self.plans[nest.name] = pipe.map_nest(self.program, nest).plan()
        return (time.perf_counter() - started) * 1000

    def apply(self, event: RemapEvent) -> RemapOutcome:
        """Transition state per ``event`` and remap the affected nests."""
        started = time.perf_counter()
        kind = event_kind(event)
        old_machine = self.machine
        old_knobs = dict(self._knobs)
        affected = self._transition(event)
        new_machine = self.machine

        carried = 0
        if machine_digest(new_machine) != machine_digest(old_machine):
            for nest in self.program.nests:
                carried += carry_prefix(
                    self.store,
                    self.program,
                    nest,
                    old_machine,
                    new_machine,
                    old_knobs[nest.name],
                    self._knobs[nest.name],
                )

        replayed = recomputed = 0

        def observe(stage: str, hit: bool) -> None:
            nonlocal replayed, recomputed
            if hit:
                replayed += 1
            else:
                recomputed += 1

        with obs.span(
            "remap.apply", event=kind, machine=new_machine.name, nests=len(affected)
        ) as sp:
            for name in affected:
                nest = next(n for n in self.program.nests if n.name == name)
                pipe = MappingPipeline(
                    new_machine, self._knobs[name], store=self.store, observer=observe
                )
                self.plans[name] = pipe.map_nest(self.program, nest).plan()
            sp.tag(replayed=replayed, recomputed=recomputed, carried=carried)
        obs.count("remap.stages_replayed", replayed)
        obs.count("remap.stages_recomputed", recomputed)
        obs.count(f"remap.events.{kind}")
        self.events_applied += 1

        return RemapOutcome(
            kind=kind,
            machine=new_machine,
            affected=tuple(affected),
            plans={name: self.plans[name] for name in affected},
            knobs={name: self._knobs[name] for name in affected},
            stages_replayed=replayed,
            stages_recomputed=recomputed,
            carried=carried,
            elapsed_ms=(time.perf_counter() - started) * 1000,
        )

    def _transition(self, event: RemapEvent) -> list[str]:
        """Mutate (base machine, dead set, knobs); return affected nests."""
        all_nests = [n.name for n in self.program.nests]
        if isinstance(event, PhaseChange):
            if event.nest is not None:
                if event.nest not in self._knobs:
                    raise RemapError(f"no nest {event.nest!r} in program")
                names = [event.nest]
            else:
                names = all_nests
            for name in names:
                self._knobs[name] = self._knobs[name].replace(**event.knob_changes)
            return names
        if isinstance(event, CoreLoss):
            live = set(self.base_machine.core_ids()) - self.dead
            bad = sorted(set(event.cores) - live)
            if bad:
                raise RemapError(f"core loss for unknown or already-dead cores {bad}")
            if live <= set(event.cores):
                raise RemapError("cannot lose every core")
            self.dead |= set(event.cores)
            return all_nests
        if isinstance(event, CoreHotplug):
            bad = sorted(set(event.cores) - self.dead)
            if bad:
                raise RemapError(f"hot-plug for cores that never went away: {bad}")
            self.dead -= set(event.cores)
            return all_nests
        if isinstance(event, TopologyEdit):
            self.base_machine = event.machine
            self.dead = set()
            return all_nests
        raise RemapError(f"not a remap event: {event!r}")


def cold_plan(
    program: Program, nest: LoopNest, machine: Machine, knobs: Knobs
) -> ExecutablePlan:
    """A from-scratch plan of the given state (no store): the
    differential ground truth every remapped plan is compared against."""
    return MappingPipeline(machine, knobs, store=None).map_nest(program, nest).plan()
