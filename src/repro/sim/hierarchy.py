"""Instantiation of a machine's cache components and per-core access paths.

Every cache node of the topology tree becomes exactly one
:class:`~repro.sim.cachesim.SetAssociativeCache`; nodes shared by several
cores are *the same object* on each of those cores' paths — that is the
whole point: constructive or destructive sharing emerges from the common
state.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.cachesim import SetAssociativeCache
from repro.topology.tree import Machine


class MachineSim:
    """All cache components of a machine plus per-core lookup paths."""

    __slots__ = (
        "machine",
        "line_shift",
        "line_size",
        "components",
        "core_paths",
        "memory_latency",
        "_busy",
        "_shared",
    )

    def __init__(self, machine: Machine):
        self.machine = machine
        line_sizes = {n.spec.line_size for n in machine.cache_nodes()}
        if len(line_sizes) != 1:
            raise SimulationError(
                f"mixed line sizes {sorted(line_sizes)} are not supported"
            )
        self.line_size = line_sizes.pop()
        self.line_shift = self.line_size.bit_length() - 1
        self.components: dict[int, SetAssociativeCache] = {
            node.uid: SetAssociativeCache(node.spec) for node in machine.cache_nodes()
        }
        # Port-contention state: shared components (more than one core
        # below) track when their single port frees up.
        self._busy: dict[int, int] = {}
        self._shared: dict[int, bool] = {}
        for node in machine.cache_nodes():
            self._busy[node.uid] = 0
            self._shared[node.uid] = len(node.cores_below()) > 1
        self.core_paths: list[tuple[tuple[SetAssociativeCache, int, int, bool], ...]] = []
        for core in range(machine.num_cores):
            path = tuple(
                (
                    self.components[node.uid],
                    node.spec.latency,
                    node.uid,
                    self._shared[node.uid],
                )
                for node in machine.cache_path(core)
            )
            self.core_paths.append(path)
        self.memory_latency = machine.memory_latency

    def access(self, core: int, line: int) -> int:
        """One access by ``core`` to cache line ``line``; returns latency.

        Probes the core's path L1 upward; a miss at each level allocates
        the line there (fill on the way to the hit level), so the latency
        is that of the first hitting level, or memory.
        """
        for cache, latency, _uid, _shared in self.core_paths[core]:
            if cache.access(line):
                return latency
        return self.memory_latency

    def access_timed(self, core: int, line: int, now: int, occupancy: int) -> int:
        """Access with shared-port contention; returns total latency.

        Each *shared* cache component has a single port that is busy for
        ``occupancy`` cycles per probe; concurrent probes from the cores
        sharing it queue up.  Private L1s are dual-ported (no queueing).
        The returned latency is the hit level's latency plus any queueing
        delay accumulated on the way.
        """
        busy = self._busy
        queue_delay = 0
        for cache, latency, uid, shared in self.core_paths[core]:
            if shared:
                start = busy[uid]
                if start > now + queue_delay:
                    queue_delay = start - now
                busy[uid] = max(start, now + queue_delay) + occupancy
            if cache.access(line):
                return latency + queue_delay
        return self.memory_latency + queue_delay

    def line_of(self, address: int) -> int:
        return address >> self.line_shift

    def level_components(self) -> dict[str, list[SetAssociativeCache]]:
        """Components grouped by level name (for stats aggregation)."""
        by_level: dict[str, list[SetAssociativeCache]] = {}
        for node in self.machine.cache_nodes():
            by_level.setdefault(node.spec.level, []).append(self.components[node.uid])
        return by_level

    def flush(self) -> None:
        for cache in self.components.values():
            cache.flush()

    def reset_stats(self) -> None:
        for cache in self.components.values():
            cache.reset_stats()
