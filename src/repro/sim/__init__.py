"""Trace-driven multicore cache-hierarchy simulator.

This package substitutes for the paper's Intel machines and its
Simics/GEMS simulation platform.  The paper attributes the entire effect
of its pass to on-chip cache behavior ("this difference across execution
times is due entirely to on-chip cache behavior"), so a cycle-accounting
cache simulator parameterized by the same topology trees and latencies
exercises the mechanism under study:

* :class:`~repro.sim.cachesim.SetAssociativeCache` — one cache component
  (LRU, configurable sets/ways/line);
* :class:`~repro.sim.hierarchy.MachineSim` — all components of a
  :class:`~repro.topology.tree.Machine` wired per its topology tree,
  shared components instantiated once;
* :class:`~repro.sim.engine` — multi-core interleaved execution of an
  :class:`~repro.mapping.distribute.ExecutablePlan` with barrier
  synchronization between rounds;
* :class:`~repro.sim.stats.SimResult` — cycles plus per-level hit/miss
  accounting with conservation invariants.

Modeling notes (documented simplifications): write-allocate, no
write-back traffic, no coherence invalidations (the paper's workloads are
data-parallel with disjoint writes), fills propagate toward the core on
the access path, and a fixed barrier overhead models the round
synchronization.
"""

from repro.sim.cachesim import SetAssociativeCache
from repro.sim.dynamic import (
    BehaviorModel,
    CoreEvent,
    ExecutionSample,
    PhaseSpec,
    simulate_dynamic,
)
from repro.sim.hierarchy import MachineSim
from repro.sim.engine import SimConfig, simulate_plan
from repro.sim.stats import LevelStats, SimResult

__all__ = [
    "BehaviorModel",
    "CoreEvent",
    "ExecutionSample",
    "PhaseSpec",
    "SetAssociativeCache",
    "MachineSim",
    "SimConfig",
    "simulate_dynamic",
    "simulate_plan",
    "LevelStats",
    "SimResult",
]
