"""Multi-core interleaved simulation of an executable plan.

Cores run concurrently; the engine advances the core with the smallest
local clock (a heap), processing a small quantum of accesses per step so
interleaving in shared caches is fine-grained without per-access heap
traffic.  Rounds end in a barrier: every core waits for the slowest, plus
a fixed synchronization overhead.

Cycle accounting per access: the latency of the first hitting cache level
(or memory) plus a fixed per-access issue cost modeling non-memory work.
Total execution time is the slowest core's finish time — exactly the
quantity the paper's "execution cycles" figures normalize.

Two engines produce that quantity.  The per-access oracle
(:func:`_run_engine`) walks every access through the dict caches in heap
order.  The batched engine (:func:`_run_engine_batched`) exploits two
facts: private-cache outcomes are independent of core interleaving, and
per-chunk heap keys are globally non-decreasing, so heap pop order is
simply sorted key order.  It therefore simulates each core's private
levels over the whole concatenated trace in one pass per level
(:mod:`repro.kernels.cachesim`), precomputes per-access fixed costs, and
replays only the chunks containing shared-cache probes through a heap —
touching the shared dict caches in exactly the oracle's order, which
makes the result bit-identical (cycles, per-level hits/misses/evictions,
final cache state).  ``SimConfig.backend`` selects: ``python`` is the
oracle, ``numpy`` the vectorized batch engine, ``auto`` (default) picks
the batch engine whenever contention modeling is off
(``port_occupancy == 0``), vectorized when numpy imports and in
scalar-batched form otherwise.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate

from repro import obs
from repro.errors import SimulationError
from repro.mapping.distribute import ExecutablePlan
from repro.sim.hierarchy import MachineSim
from repro.sim.stats import LevelStats, SimResult
from repro.sim.trace import MemoryLayout, build_traces
from repro.topology.tree import Machine

SIM_BACKENDS = ("auto", "python", "numpy")


@dataclass(frozen=True)
class SimConfig:
    """Engine knobs.

    ``quantum`` — accesses a core retires before the engine re-checks who
    is globally earliest (granularity of shared-cache interleaving);
    ``issue_cycles`` — fixed per-access cost for non-memory work;
    ``barrier_overhead`` — cycles added to every core at a barrier;
    ``port_occupancy`` — cycles a *shared* cache's port stays busy per
    probe (0 disables contention modeling; cores queuing on a shared
    component pay the wait);
    ``backend`` — ``auto`` | ``python`` | ``numpy`` engine selection
    (see the module docstring); every backend produces bit-identical
    results.
    """

    quantum: int = 8
    issue_cycles: int = 1
    barrier_overhead: int = 100
    port_occupancy: int = 0
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise SimulationError("quantum must be positive")
        if self.issue_cycles < 0 or self.barrier_overhead < 0 or self.port_occupancy < 0:
            raise SimulationError("costs must be non-negative")
        if self.backend not in SIM_BACKENDS:
            raise SimulationError(
                f"unknown sim backend {self.backend!r}; expected one of {SIM_BACKENDS}"
            )


def _resolve_engine(config: SimConfig) -> str:
    """Pick the engine: ``python`` (oracle), ``numpy`` or ``scalar`` batch.

    Contention modeling (``port_occupancy > 0``) couples every access's
    cost to the global interleaving, so only the oracle models it; asking
    for the numpy backend there is a configuration error, while ``auto``
    quietly uses the oracle.
    """
    from repro import kernels

    if config.backend == "python":
        return "python"
    if config.port_occupancy:
        if config.backend == "numpy":
            raise SimulationError(
                "backend 'numpy' cannot model port_occupancy; "
                "use backend 'auto' or 'python'"
            )
        return "python"
    if config.backend == "numpy":
        kernels.resolve_backend("numpy")  # raises KernelError without numpy
        return "numpy"
    return "numpy" if kernels.have_numpy() else "scalar"


def simulate_plan(
    plan: ExecutablePlan,
    machine: Machine | None = None,
    config: SimConfig | None = None,
    layout: MemoryLayout | None = None,
    machine_sim: MachineSim | None = None,
) -> SimResult:
    """Simulate a plan; returns cycles and per-level statistics.

    ``machine`` overrides the plan's target (used by the cross-machine
    experiment, Figure 14: run the version tuned for machine A on
    machine B).  A pre-built ``machine_sim`` may be passed to run several
    plans against warm caches; by default each call starts cold.
    """
    config = config or SimConfig()
    target = machine or plan.machine
    msim = machine_sim or MachineSim(target)
    if msim.machine.num_cores < len(plan.rounds):
        raise SimulationError(
            f"plan uses {len(plan.rounds)} cores, machine "
            f"{msim.machine.name!r} has {msim.machine.num_cores}"
        )
    engine = _resolve_engine(config)
    with obs.span(
        "sim.run", label=plan.label, machine=msim.machine.name, backend=engine
    ) as sim_span:
        if layout is None:
            layout = MemoryLayout.for_nest(plan.nest, msim.line_size)
        if engine == "python":
            with obs.span("sim.trace_build"):
                traces = build_traces(plan, layout, msim.line_shift)
            result = _run_engine(plan, msim, config, traces)
        else:
            result = _run_engine_batched(plan, msim, config, layout, engine == "numpy")
        sim_span.tag(
            cycles=result.cycles,
            accesses=result.total_accesses,
            barriers=result.barriers,
        )
        obs.count("sim.runs")
        obs.count(f"sim.backend.{engine}")
        obs.count("sim.accesses", result.total_accesses)
        obs.count("sim.barriers", result.barriers)
        for stats in result.levels:
            obs.count(f"sim.{stats.level}.hits", stats.hits)
            obs.count(f"sim.{stats.level}.misses", stats.misses)
    return result


def _run_engine(
    plan: ExecutablePlan,
    msim: MachineSim,
    config: SimConfig,
    traces,
) -> SimResult:

    num_rounds = max((len(t) for t in traces), default=0)
    core_time = [0] * len(traces)
    barriers = 0
    barrier_cycles = 0
    total_accesses = 0
    quantum = config.quantum
    issue = config.issue_cycles
    access = msim.access

    for round_index in range(num_rounds):
        heap: list[tuple[int, int, int]] = []  # (time, core, position)
        round_traces: list[list[int]] = []
        for core, core_trace in enumerate(traces):
            lines = core_trace[round_index] if round_index < len(core_trace) else []
            round_traces.append(lines)
            if lines:
                heap.append((core_time[core], core, 0))
        heapq.heapify(heap)
        occupancy = config.port_occupancy
        timed = msim.access_timed
        while heap:
            now, core, pos = heapq.heappop(heap)
            lines = round_traces[core]
            end = min(pos + quantum, len(lines))
            if occupancy:
                for index in range(pos, end):
                    now += timed(core, lines[index], now, occupancy) + issue
            else:
                for index in range(pos, end):
                    now += access(core, lines[index]) + issue
            total_accesses += end - pos
            if end < len(lines):
                heapq.heappush(heap, (now, core, end))
            else:
                core_time[core] = now
        if round_index + 1 < num_rounds:
            barriers += 1
            slowest = max(core_time)
            barrier_cycles += sum(slowest - t for t in core_time)
            core_time = [slowest + config.barrier_overhead] * len(core_time)

    return _collect_result(
        plan, msim, core_time, total_accesses, barriers, barrier_cycles
    )


def _run_engine_batched(
    plan: ExecutablePlan,
    msim: MachineSim,
    config: SimConfig,
    layout: MemoryLayout,
    use_numpy: bool,
) -> SimResult:
    """Batch private levels, heap-replay only the shared-probe chunks.

    Correctness hinges on two invariants of the oracle above.  (1) A
    private component is only ever touched by its own core and misses
    fill every probed level, so each access's private-level outcomes —
    and therefore its fixed cost and whether it probes the shared suffix
    — do not depend on the interleaving, and barriers do not reset cache
    state, so the whole multi-round trace batches in one pass per level.
    (2) Per-access costs are non-negative, so each core's chunk keys
    ``(time, core, pos)`` are non-decreasing and the oracle pops chunks
    in globally sorted key order; dropping chunks without shared probes
    from the heap cannot reorder the remaining ones.  The shared dict
    caches are therefore mutated in exactly the oracle's order.
    """
    from repro.kernels import cachesim

    with obs.span("sim.trace_build"):
        if use_numpy:
            streams, offsets = cachesim.build_traces_numpy(
                plan, layout, msim.line_shift
            )
        else:
            traces = build_traces(plan, layout, msim.line_shift)
            streams = []
            offsets = []
            for core_trace in traces:
                flat: list[int] = []
                offs = [0]
                for lines in core_trace:
                    flat.extend(lines)
                    offs.append(len(flat))
                streams.append(flat)
                offsets.append(offs)

    issue = config.issue_cycles
    memory_latency = msim.memory_latency
    per_core = []
    with obs.span("sim.private_levels"):
        for core, stream in enumerate(streams):
            path = msim.core_paths[core]
            split = next(
                (k for k, entry in enumerate(path) if entry[3]), len(path)
            )
            private_path, shared_path = path[:split], path[split:]
            if use_numpy:
                cum, shared_pos, shared_lines = _private_pass_numpy(
                    private_path, stream, issue,
                    memory_latency if not shared_path else None,
                )
            else:
                cum, shared_pos, shared_lines = _private_pass_scalar(
                    private_path, stream, issue,
                    memory_latency if not shared_path else None,
                )
            probe_path = tuple((entry[0], entry[1]) for entry in shared_path)
            per_core.append(
                (cum, shared_pos, shared_lines, offsets[core], probe_path)
            )

    with obs.span("sim.replay"):
        num_rounds = max((len(offs) - 1 for offs in offsets), default=0)
        core_time, total, barriers, barrier_cycles = _replay_shared(
            per_core, num_rounds, config, memory_latency
        )
    return _collect_result(plan, msim, core_time, total, barriers, barrier_cycles)


def _private_pass_numpy(private_path, stream, issue: int, tail_latency):
    """Per-access fixed costs after batching the private levels.

    Returns ``(cum, shared_pos, shared_lines)``: ``cum[i]`` is the summed
    fixed cost of the first ``i`` accesses (as plain ints), and the
    accesses that missed every private level are listed by position and
    line for the shared replay.  With ``tail_latency`` set (an all-private
    path) those accesses cost memory latency instead and the lists are
    empty.
    """
    import numpy as np

    from repro.kernels import cachesim

    n = len(stream)
    cost = np.full(n, issue, dtype=np.int64)
    idx = None  # positions still missing; None = all, aligned with stream
    level_stream = stream
    for cache, latency, _uid, _shared in private_path:
        if len(level_stream) == 0:
            break
        hits = cachesim.simulate_level(cache, level_stream, True)
        if isinstance(hits, list):
            hits = np.asarray(hits, dtype=bool)
        if idx is None:
            hit_idx = np.flatnonzero(hits)
            idx = np.flatnonzero(~hits)
        else:
            hit_idx = idx[hits]
            idx = idx[~hits]
        cost[hit_idx] += latency
        level_stream = level_stream[~hits]
    if idx is None:
        idx = np.arange(n, dtype=np.int64)
        level_stream = stream
    if tail_latency is not None:
        cost[idx] += tail_latency
        shared_pos: list[int] = []
        shared_lines: list[int] = []
    else:
        shared_pos = idx.tolist()
        shared_lines = level_stream.tolist()
    cum = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(cost))).tolist()
    return cum, shared_pos, shared_lines


def _private_pass_scalar(private_path, stream, issue: int, tail_latency):
    """Scalar-batched twin of :func:`_private_pass_numpy` (no numpy)."""
    from repro.kernels import cachesim

    n = len(stream)
    cost = [issue] * n
    idx: list[int] | None = None
    level_stream = stream
    for cache, latency, _uid, _shared in private_path:
        if not level_stream:
            break
        hits = cachesim.simulate_level(cache, level_stream, False)
        next_stream: list[int] = []
        next_idx: list[int] = []
        for k, line in enumerate(level_stream):
            position = idx[k] if idx is not None else k
            if hits[k]:
                cost[position] += latency
            else:
                next_idx.append(position)
                next_stream.append(line)
        idx = next_idx
        level_stream = next_stream
    if idx is None:
        idx = list(range(n))
        level_stream = list(stream)
    if tail_latency is not None:
        for position in idx:
            cost[position] += tail_latency
        shared_pos: list[int] = []
        shared_lines: list[int] = []
    else:
        shared_pos = idx
        shared_lines = level_stream
    cum = list(accumulate(cost, initial=0))
    return cum, shared_pos, shared_lines


def _replay_shared(per_core, num_rounds: int, config: SimConfig, memory_latency: int):
    """Advance core clocks round by round, probing shared caches in
    oracle heap order; only chunks containing shared probes enter the
    heap, every other chunk's cost comes from the prefix sums."""
    quantum = config.quantum
    num_cores = len(per_core)
    core_time = [0] * num_cores
    barriers = 0
    barrier_cycles = 0
    total_accesses = 0

    for round_index in range(num_rounds):
        heap: list[tuple[int, int, int]] = []
        cursor: dict[int, tuple[int, int]] = {}  # core -> (next probe, stop)
        for core in range(num_cores):
            cum, shared_pos, _lines, offs, _path = per_core[core]
            if round_index + 1 >= len(offs):
                continue
            start, end = offs[round_index], offs[round_index + 1]
            seg_len = end - start
            if seg_len == 0:
                continue
            total_accesses += seg_len
            lo = bisect_left(shared_pos, start)
            hi = bisect_left(shared_pos, end)
            if lo == hi:
                core_time[core] += cum[end] - cum[start]
                continue
            chunk = ((shared_pos[lo] - start) // quantum) * quantum
            key = core_time[core] + cum[start + chunk] - cum[start]
            heap.append((key, core, chunk))
            cursor[core] = (lo, hi)
        heapq.heapify(heap)
        while heap:
            now, core, chunk = heapq.heappop(heap)
            cum, shared_pos, shared_lines, offs, probe_path = per_core[core]
            start, end = offs[round_index], offs[round_index + 1]
            seg_len = end - start
            chunk_end = min(chunk + quantum, seg_len)
            cost = cum[start + chunk_end] - cum[start + chunk]
            pointer, stop = cursor[core]
            bound = start + chunk_end
            while pointer < stop and shared_pos[pointer] < bound:
                line = shared_lines[pointer]
                latency = memory_latency
                for cache, cache_latency in probe_path:
                    bucket = cache.sets[line % cache.num_sets]
                    if line in bucket:
                        del bucket[line]
                        bucket[line] = None
                        cache.hits += 1
                        latency = cache_latency
                        break
                    cache.misses += 1
                    bucket[line] = None
                    if len(bucket) > cache.ways:
                        del bucket[next(iter(bucket))]
                        cache.evictions += 1
                cost += latency
                pointer += 1
            now += cost
            if pointer < stop:
                cursor[core] = (pointer, stop)
                next_chunk = ((shared_pos[pointer] - start) // quantum) * quantum
                key = now + cum[start + next_chunk] - cum[start + chunk_end]
                heapq.heappush(heap, (key, core, next_chunk))
            else:
                core_time[core] = now + cum[start + seg_len] - cum[start + chunk_end]
        if round_index + 1 < num_rounds:
            barriers += 1
            slowest = max(core_time)
            barrier_cycles += sum(slowest - t for t in core_time)
            core_time = [slowest + config.barrier_overhead] * num_cores
    return core_time, total_accesses, barriers, barrier_cycles


def _collect_result(
    plan: ExecutablePlan,
    msim: MachineSim,
    core_time: list[int],
    total_accesses: int,
    barriers: int,
    barrier_cycles: int,
) -> SimResult:
    levels = []
    for level_name, components in msim.level_components().items():
        levels.append(
            LevelStats(
                level_name,
                sum(c.hits for c in components),
                sum(c.misses for c in components),
            )
        )
    levels.sort(key=lambda s: _level_rank(s.level))
    last_misses = levels[-1].misses if levels else total_accesses
    return SimResult(
        label=plan.label,
        machine_name=msim.machine.name,
        cycles=max(core_time) if core_time else 0,
        core_cycles=tuple(core_time),
        levels=tuple(levels),
        memory_accesses=last_misses,
        total_accesses=total_accesses,
        barriers=barriers,
        barrier_cycles=barrier_cycles,
    )


def _level_rank(level: str) -> int:
    try:
        return int(level.lstrip("L"))
    except ValueError:
        return 99
