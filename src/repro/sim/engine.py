"""Multi-core interleaved simulation of an executable plan.

Cores run concurrently; the engine advances the core with the smallest
local clock (a heap), processing a small quantum of accesses per step so
interleaving in shared caches is fine-grained without per-access heap
traffic.  Rounds end in a barrier: every core waits for the slowest, plus
a fixed synchronization overhead.

Cycle accounting per access: the latency of the first hitting cache level
(or memory) plus a fixed per-access issue cost modeling non-memory work.
Total execution time is the slowest core's finish time — exactly the
quantity the paper's "execution cycles" figures normalize.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro import obs
from repro.errors import SimulationError
from repro.mapping.distribute import ExecutablePlan
from repro.sim.hierarchy import MachineSim
from repro.sim.stats import LevelStats, SimResult
from repro.sim.trace import MemoryLayout, build_traces
from repro.topology.tree import Machine


@dataclass(frozen=True)
class SimConfig:
    """Engine knobs.

    ``quantum`` — accesses a core retires before the engine re-checks who
    is globally earliest (granularity of shared-cache interleaving);
    ``issue_cycles`` — fixed per-access cost for non-memory work;
    ``barrier_overhead`` — cycles added to every core at a barrier;
    ``port_occupancy`` — cycles a *shared* cache's port stays busy per
    probe (0 disables contention modeling; cores queuing on a shared
    component pay the wait).
    """

    quantum: int = 8
    issue_cycles: int = 1
    barrier_overhead: int = 100
    port_occupancy: int = 0

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise SimulationError("quantum must be positive")
        if self.issue_cycles < 0 or self.barrier_overhead < 0 or self.port_occupancy < 0:
            raise SimulationError("costs must be non-negative")


def simulate_plan(
    plan: ExecutablePlan,
    machine: Machine | None = None,
    config: SimConfig | None = None,
    layout: MemoryLayout | None = None,
    machine_sim: MachineSim | None = None,
) -> SimResult:
    """Simulate a plan; returns cycles and per-level statistics.

    ``machine`` overrides the plan's target (used by the cross-machine
    experiment, Figure 14: run the version tuned for machine A on
    machine B).  A pre-built ``machine_sim`` may be passed to run several
    plans against warm caches; by default each call starts cold.
    """
    config = config or SimConfig()
    target = machine or plan.machine
    msim = machine_sim or MachineSim(target)
    if msim.machine.num_cores < len(plan.rounds):
        raise SimulationError(
            f"plan uses {len(plan.rounds)} cores, machine "
            f"{msim.machine.name!r} has {msim.machine.num_cores}"
        )
    with obs.span(
        "sim.run", label=plan.label, machine=msim.machine.name
    ) as sim_span:
        if layout is None:
            layout = MemoryLayout.for_nest(plan.nest, msim.line_size)
        with obs.span("sim.trace_build"):
            traces = build_traces(plan, layout, msim.line_shift)
        result = _run_engine(plan, msim, config, traces)
        sim_span.tag(
            cycles=result.cycles,
            accesses=result.total_accesses,
            barriers=result.barriers,
        )
        obs.count("sim.runs")
        obs.count("sim.accesses", result.total_accesses)
        obs.count("sim.barriers", result.barriers)
        for stats in result.levels:
            obs.count(f"sim.{stats.level}.hits", stats.hits)
            obs.count(f"sim.{stats.level}.misses", stats.misses)
    return result


def _run_engine(
    plan: ExecutablePlan,
    msim: MachineSim,
    config: SimConfig,
    traces,
) -> SimResult:

    num_rounds = max((len(t) for t in traces), default=0)
    core_time = [0] * len(traces)
    barriers = 0
    barrier_cycles = 0
    total_accesses = 0
    quantum = config.quantum
    issue = config.issue_cycles
    access = msim.access

    for round_index in range(num_rounds):
        heap: list[tuple[int, int, int]] = []  # (time, core, position)
        round_traces: list[list[int]] = []
        for core, core_trace in enumerate(traces):
            lines = core_trace[round_index] if round_index < len(core_trace) else []
            round_traces.append(lines)
            if lines:
                heap.append((core_time[core], core, 0))
        heapq.heapify(heap)
        occupancy = config.port_occupancy
        timed = msim.access_timed
        while heap:
            now, core, pos = heapq.heappop(heap)
            lines = round_traces[core]
            end = min(pos + quantum, len(lines))
            if occupancy:
                for index in range(pos, end):
                    now += timed(core, lines[index], now, occupancy) + issue
            else:
                for index in range(pos, end):
                    now += access(core, lines[index]) + issue
            total_accesses += end - pos
            if end < len(lines):
                heapq.heappush(heap, (now, core, end))
            else:
                core_time[core] = now
        if round_index + 1 < num_rounds:
            barriers += 1
            slowest = max(core_time)
            barrier_cycles += sum(slowest - t for t in core_time)
            core_time = [slowest + config.barrier_overhead] * len(core_time)

    levels = []
    for level_name, components in msim.level_components().items():
        levels.append(
            LevelStats(
                level_name,
                sum(c.hits for c in components),
                sum(c.misses for c in components),
            )
        )
    levels.sort(key=lambda s: _level_rank(s.level))
    last_misses = levels[-1].misses if levels else total_accesses
    result = SimResult(
        label=plan.label,
        machine_name=msim.machine.name,
        cycles=max(core_time) if core_time else 0,
        core_cycles=tuple(core_time),
        levels=tuple(levels),
        memory_accesses=last_misses,
        total_accesses=total_accesses,
        barriers=barriers,
        barrier_cycles=barrier_cycles,
    )
    return result


def _level_rank(level: str) -> int:
    try:
        return int(level.lstrip("L"))
    except ValueError:
        return 99
