"""Microbenchmarks for the batched simulation backend.

Times the per-access oracle engine (``backend="python"``) against the
vectorized batch engine (``backend="numpy"``) on a stencil-256 Base plan
— 262144 accesses, the trace scale of the paper's per-figure runs —
across machines that exercise the backend's two regimes: an all-private
two-level hierarchy (every access batches; the replay heap is empty) and
the commercial topologies whose shared L2/L3 suffixes must be replayed
probe by probe in oracle order.  Each machine runs at the experiment
harness's simulation scale and at both the default interleaving quantum
and ``quantum=1`` (the finest-grained oracle setting; quantum only
changes engine *overhead*, never results, so the batch engine's time is
flat while the oracle pays per-chunk heap traffic).

Results are cross-checked for bit-identity before timing — a reported
speedup is always a speedup on verified-identical work.  Timings are
best-of-N wall clock, mirroring ``repro.kernels.bench``.

Run directly::

    PYTHONPATH=src python -m repro.sim.bench [--out BENCH_sim.json]

or through the pytest wrapper in ``benchmarks/perf/``.
"""

from __future__ import annotations

import json
import platform
import time
from collections.abc import Callable

from repro.kernels import have_numpy
from repro.kernels.bench import best_of, stencil_nest, write_report
from repro.mapping.baselines import base_plan
from repro.sim.engine import SimConfig, simulate_plan
from repro.topology.cache import CacheSpec
from repro.topology.machines import KB, _uniform_tree, dunnington, nehalem
from repro.topology.tree import Machine

#: Cache-capacity divisor applied to every bench machine; the same scale
#: the experiment harness uses (see repro.experiments.harness).
SIM_SCALE_DENOM = 32


def private_l1l2() -> Machine:
    """Eight cores with private L1+L2 and no shared cache.

    The pure-batch regime: every access is resolved in the vectorized
    private-level pass and the shared replay has nothing to do.
    """
    l1 = CacheSpec("L1", 32 * KB, 8, 64, 4)
    l2 = CacheSpec("L2", 256 * KB, 8, 64, 10)
    root = _uniform_tree(8, [(l1, 1), (l2, 1)])
    return Machine("private-l1l2", 2.9, 174, root, sockets=2)


MACHINES: dict[str, Callable[[], Machine]] = {
    "private-l1l2": private_l1l2,
    "nehalem": nehalem,
    "dunnington": dunnington,
}

#: (machine, quantum) timing configurations.
SIM_CONFIGS = (
    ("private-l1l2", 8),
    ("private-l1l2", 1),
    ("nehalem", 8),
    ("nehalem", 1),
    ("dunnington", 8),
    ("dunnington", 1),
)

#: Tiny variant for the tier-1 structure smoke test.
SMOKE_N = 48
DEFAULT_N = 256


def bench_sim(machine_name: str, quantum: int, n: int = DEFAULT_N,
              repeats: int = 3) -> dict:
    """One oracle-vs-batched timing entry; backends cross-checked first."""
    machine = MACHINES[machine_name]().with_scaled_caches(1.0 / SIM_SCALE_DENOM)
    nest, _ = stencil_nest(n, 2048)
    plan = base_plan(nest, machine)

    def run(backend: str):
        config = SimConfig(quantum=quantum, backend=backend)
        return simulate_plan(plan, machine=machine, config=config)

    oracle = run("python")
    batched = run("numpy")
    if oracle != batched:
        raise AssertionError(
            f"engines disagree on {machine_name} q={quantum}: "
            f"{oracle} != {batched}"
        )
    oracle.verify_conservation()

    python_s = best_of(lambda: run("python"), repeats)
    numpy_s = best_of(lambda: run("numpy"), repeats)
    return {
        "machine": machine_name,
        "quantum": quantum,
        "accesses": oracle.total_accesses,
        "cycles": oracle.cycles,
        "python_ms": round(python_s * 1e3, 3),
        "numpy_ms": round(numpy_s * 1e3, 3),
        "speedup": round(python_s / numpy_s, 2),
    }


def run_suite(configs=None, n: int = DEFAULT_N, repeats: int = 3) -> dict:
    """The full simulator benchmark report as a JSON-serializable dict."""
    if configs is None:
        configs = SIM_CONFIGS
    if not have_numpy():
        raise RuntimeError("simulator microbenchmarks need numpy")
    import numpy

    entries = [
        bench_sim(machine_name, quantum, n=n, repeats=repeats)
        for machine_name, quantum in configs
    ]
    return {
        "suite": "repro.sim batched-backend microbenchmarks",
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "trace": f"stencil-{n} Base plan, sim scale 1/{SIM_SCALE_DENOM}",
        "timing": f"best of {repeats}, warm",
        "entries": entries,
    }


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_sim.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--n", type=int, default=DEFAULT_N,
                        help="stencil size (default 256)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    start = time.perf_counter()
    report = run_suite(n=args.n, repeats=args.repeats)
    write_report(report, args.out)
    for entry in report["entries"]:
        print(
            f"{entry['machine']:14s} q={entry['quantum']}  "
            f"py {entry['python_ms']:8.1f}ms  np {entry['numpy_ms']:8.1f}ms  "
            f"{entry['speedup']:5.2f}x"
        )
    print(f"wrote {args.out} ({time.perf_counter() - start:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
