"""Dynamic (self-scheduling) execution — the paper's related-work foil.

The paper notes that its "initial experience with dynamic scheduling
schemes like [Markatos & LeBlanc] did not generate good results ...
mostly due to the cost of dynamic iteration distribution."  This module
simulates exactly that alternative: a central queue of iteration chunks;
whenever a core drains its chunk it grabs the next one, paying a dispatch
overhead.  Load balance is perfect by construction, but data-block
sharing lands on whichever core happens to be free — the opposite of
topology-aware placement.
"""

from __future__ import annotations

import heapq

from repro.errors import SimulationError
from repro.ir.loops import LoopNest
from repro.sim.engine import SimConfig, _level_rank
from repro.sim.hierarchy import MachineSim
from repro.sim.stats import LevelStats, SimResult
from repro.sim.trace import MemoryLayout
from repro.topology.tree import Machine


def simulate_dynamic(
    nest: LoopNest,
    machine: Machine,
    chunk_iterations: int = 64,
    dispatch_overhead: int = 200,
    config: SimConfig | None = None,
) -> SimResult:
    """Simulate central-queue self-scheduling of a nest.

    ``chunk_iterations`` is the grab granularity; ``dispatch_overhead``
    is the cycles a core pays per grab (queue lock + distribution cost,
    the term the paper blames).  Returns the same :class:`SimResult` the
    static engine produces.
    """
    if chunk_iterations <= 0:
        raise SimulationError("chunk size must be positive")
    if dispatch_overhead < 0:
        raise SimulationError("dispatch overhead must be non-negative")
    config = config or SimConfig()
    msim = MachineSim(machine)
    layout = MemoryLayout.for_nest(nest, msim.line_size)

    # Pre-render the full lexicographic trace once; chunks are slices.
    resolved = []
    for access in nest.accesses:
        constant, coeffs = access.offset_form()
        elem = access.array.element_size
        base = layout.bases[access.array.name] + constant * elem
        resolved.append((base, tuple(c * elem for c in coeffs)))
    nest.validate_access_bounds()
    shift = msim.line_shift
    lines: list[int] = []
    for point in nest.iterations():
        for base, coeffs in resolved:
            addr = base
            for c, x in zip(coeffs, point):
                addr += c * x
            lines.append(addr >> shift)

    refs = len(nest.accesses)
    chunk_len = chunk_iterations * refs
    num_chunks = (len(lines) + chunk_len - 1) // chunk_len
    next_chunk = 0

    issue = config.issue_cycles
    access = msim.access
    heap = [(0, core) for core in range(machine.num_cores)]
    heapq.heapify(heap)
    finish = [0] * machine.num_cores
    total = 0
    while heap:
        now, core = heapq.heappop(heap)
        if next_chunk >= num_chunks:
            finish[core] = now
            continue
        start = next_chunk * chunk_len
        next_chunk += 1
        now += dispatch_overhead
        for line in lines[start : start + chunk_len]:
            now += access(core, line) + issue
        total += len(lines[start : start + chunk_len])
        heapq.heappush(heap, (now, core))

    levels = [
        LevelStats(name, sum(c.hits for c in comps), sum(c.misses for c in comps))
        for name, comps in msim.level_components().items()
    ]
    levels.sort(key=lambda s: _level_rank(s.level))
    return SimResult(
        label="dynamic",
        machine_name=machine.name,
        cycles=max(finish) if finish else 0,
        core_cycles=tuple(finish),
        levels=tuple(levels),
        memory_accesses=levels[-1].misses if levels else total,
        total_accesses=total,
        barriers=0,
        barrier_cycles=0,
    )
