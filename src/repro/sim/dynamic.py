"""Dynamic (self-scheduling) execution — the paper's related-work foil.

The paper notes that its "initial experience with dynamic scheduling
schemes like [Markatos & LeBlanc] did not generate good results ...
mostly due to the cost of dynamic iteration distribution."  This module
simulates exactly that alternative: a central queue of iteration chunks;
whenever a core drains its chunk it grabs the next one, paying a dispatch
overhead.  Load balance is perfect by construction, but data-block
sharing lands on whichever core happens to be free — the opposite of
topology-aware placement.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.ir.loops import LoopNest
from repro.sim.engine import SimConfig, _level_rank
from repro.sim.hierarchy import MachineSim
from repro.sim.stats import LevelStats, SimResult
from repro.sim.trace import MemoryLayout
from repro.topology.tree import Machine


def simulate_dynamic(
    nest: LoopNest,
    machine: Machine,
    chunk_iterations: int = 64,
    dispatch_overhead: int = 200,
    config: SimConfig | None = None,
) -> SimResult:
    """Simulate central-queue self-scheduling of a nest.

    ``chunk_iterations`` is the grab granularity; ``dispatch_overhead``
    is the cycles a core pays per grab (queue lock + distribution cost,
    the term the paper blames).  Returns the same :class:`SimResult` the
    static engine produces.
    """
    if chunk_iterations <= 0:
        raise SimulationError("chunk size must be positive")
    if dispatch_overhead < 0:
        raise SimulationError("dispatch overhead must be non-negative")
    config = config or SimConfig()
    msim = MachineSim(machine)
    layout = MemoryLayout.for_nest(nest, msim.line_size)

    # Pre-render the full lexicographic trace once; chunks are slices.
    nest.validate_access_bounds()
    shift = msim.line_shift
    lines: list[int] = []
    if nest.is_affine():
        resolved = []
        for access in nest.accesses:
            constant, coeffs = access.offset_form()
            elem = access.array.element_size
            base = layout.bases[access.array.name] + constant * elem
            resolved.append((base, tuple(c * elem for c in coeffs)))
        for point in nest.iterations():
            for base, coeffs in resolved:
                addr = base
                for c, x in zip(coeffs, point):
                    addr += c * x
                lines.append(addr >> shift)
    else:
        # Indirect accesses: evaluate each reference concretely (index
        # lookups included) in the same issue order.
        concrete = [
            (layout.bases[name], access.array.element_size, offset_of)
            for (name, offset_of, _), access in zip(
                nest.offset_evaluators(), nest.accesses
            )
        ]
        for point in nest.iterations():
            for base, elem, offset_of in concrete:
                lines.append((base + offset_of(point) * elem) >> shift)

    refs = len(nest.accesses)
    chunk_len = chunk_iterations * refs
    num_chunks = (len(lines) + chunk_len - 1) // chunk_len
    next_chunk = 0

    issue = config.issue_cycles
    access = msim.access
    heap = [(0, core) for core in range(machine.num_cores)]
    heapq.heapify(heap)
    finish = [0] * machine.num_cores
    total = 0
    while heap:
        now, core = heapq.heappop(heap)
        if next_chunk >= num_chunks:
            finish[core] = now
            continue
        start = next_chunk * chunk_len
        next_chunk += 1
        now += dispatch_overhead
        for line in lines[start : start + chunk_len]:
            now += access(core, line) + issue
        total += len(lines[start : start + chunk_len])
        heapq.heappush(heap, (now, core))

    levels = [
        LevelStats(name, sum(c.hits for c in comps), sum(c.misses for c in comps))
        for name, comps in msim.level_components().items()
    ]
    levels.sort(key=lambda s: _level_rank(s.level))
    return SimResult(
        label="dynamic",
        machine_name=machine.name,
        cycles=max(finish) if finish else 0,
        core_cycles=tuple(finish),
        levels=tuple(levels),
        memory_accesses=levels[-1].misses if levels else total,
        total_accesses=total,
        barriers=0,
        barrier_cycles=0,
    )


# -- dynamic-behaviour model (drives repro.remap) ---------------------------
#
# The self-scheduling simulator above answers "what does dynamic
# *distribution* cost"; the classes below answer the complementary
# question the online remapper needs: "what does a workload's behaviour
# look like *over time*".  A :class:`BehaviorModel` turns a phase script
# (imbalance/sharing levels) plus optional core loss/hot-plug events
# into a deterministic stream of :class:`ExecutionSample` observations,
# the input of :class:`repro.remap.ExecutionWatcher`.


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a workload's execution.

    ``imbalance`` is the per-core load skew the phase exhibits
    ((max-mean)/mean of core cycles) and ``sharing`` the fraction of
    cross-core data sharing, both in [0, 1].  ``steps`` is how many
    observation windows the phase lasts.
    """

    name: str
    steps: int
    imbalance: float
    sharing: float

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise SimulationError(f"phase {self.name!r}: steps must be positive")
        if not 0 <= self.imbalance <= 1 or not 0 <= self.sharing <= 1:
            raise SimulationError(
                f"phase {self.name!r}: imbalance/sharing must be in [0, 1]"
            )


@dataclass(frozen=True)
class CoreEvent:
    """A core going away or coming back at a given step.

    ``cores`` are *physical* ids of the model's base machine — the same
    numbering the remapper's dead-set tracks — independent of any
    renumbering a pruned machine performs.
    """

    step: int
    kind: str  # "loss" | "hotplug"
    cores: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("loss", "hotplug"):
            raise SimulationError(f"unknown core event kind {self.kind!r}")
        if not self.cores:
            raise SimulationError("core event needs at least one core")


@dataclass(frozen=True)
class ExecutionSample:
    """One observation window of a running nest.

    ``active_cores`` are physical core ids; ``core_cycles`` aligns with
    them.  ``sharing`` is the observed cross-core sharing fraction.
    """

    step: int
    nest: str
    phase: str
    active_cores: tuple[int, ...]
    core_cycles: tuple[int, ...]
    sharing: float

    def imbalance(self) -> float:
        """(max - mean) / mean of the per-core cycles."""
        if not self.core_cycles:
            return 0.0
        mean = sum(self.core_cycles) / len(self.core_cycles)
        if mean <= 0:
            return 0.0
        return (max(self.core_cycles) - mean) / mean


class BehaviorModel:
    """Deterministic phased execution stream for one nest.

    The per-core base load comes either from a real
    :func:`simulate_dynamic` run (:meth:`from_simulation`) or a flat
    synthetic vector; each phase modulates it with a linear skew sized
    to the phase's target imbalance plus small seeded jitter, so the
    watcher sees realistic, non-constant signals while the whole stream
    stays reproducible.
    """

    def __init__(
        self,
        nest_name: str,
        machine: Machine,
        phases: Sequence[PhaseSpec],
        core_events: Sequence[CoreEvent] = (),
        base_cycles: Sequence[int] | None = None,
        seed: int = 0,
    ):
        if not phases:
            raise SimulationError("behavior model needs at least one phase")
        self.nest_name = nest_name
        self.machine = machine
        self.phases = tuple(phases)
        self.core_events = tuple(sorted(core_events, key=lambda e: e.step))
        n = machine.num_cores
        if base_cycles is None:
            base_cycles = [10_000] * n
        if len(base_cycles) != n:
            raise SimulationError(
                f"base_cycles has {len(base_cycles)} entries for {n} cores"
            )
        self.base_cycles = tuple(int(c) for c in base_cycles)
        self.seed = seed

    @classmethod
    def from_simulation(
        cls,
        nest: LoopNest,
        machine: Machine,
        phases: Sequence[PhaseSpec],
        core_events: Sequence[CoreEvent] = (),
        seed: int = 0,
        **sim_kwargs,
    ) -> "BehaviorModel":
        """Seed the base per-core load from a real dynamic simulation."""
        result = simulate_dynamic(nest, machine, **sim_kwargs)
        return cls(
            nest.name,
            machine,
            phases,
            core_events,
            base_cycles=result.core_cycles,
            seed=seed,
        )

    def total_steps(self) -> int:
        return sum(p.steps for p in self.phases)

    def samples(self) -> Iterator[ExecutionSample]:
        """The observation stream, one sample per step."""
        rng = random.Random(self.seed)
        active = set(range(self.machine.num_cores))
        events = list(self.core_events)
        step = 0
        for phase in self.phases:
            for _ in range(phase.steps):
                while events and events[0].step <= step:
                    event = events.pop(0)
                    if event.kind == "loss":
                        active -= set(event.cores)
                    else:
                        active |= set(event.cores)
                if not active:
                    raise SimulationError(f"no active cores left at step {step}")
                cores = tuple(sorted(active))
                n = len(cores)
                # Linear skew across active cores: mean multiplier is 1,
                # max is 1 + imbalance (matching the phase's target),
                # plus ±2% seeded jitter.
                cycles = []
                for rank, core in enumerate(cores):
                    skew = phase.imbalance * (2 * rank / (n - 1) - 1) if n > 1 else 0.0
                    jitter = 1 + rng.uniform(-0.02, 0.02)
                    cycles.append(max(1, int(self.base_cycles[core] * (1 + skew) * jitter)))
                sharing = min(1.0, max(0.0, phase.sharing + rng.uniform(-0.02, 0.02)))
                yield ExecutionSample(
                    step=step,
                    nest=self.nest_name,
                    phase=phase.name,
                    active_cores=cores,
                    core_cycles=tuple(cycles),
                    sharing=sharing,
                )
                step += 1
