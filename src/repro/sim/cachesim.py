"""A single set-associative LRU cache component.

Addresses are pre-shifted to line numbers by the caller (the engine), so
the hot path is: index the set, dict lookup, LRU reorder.  Python dicts
preserve insertion order, which gives an O(1) LRU: re-inserting a key
moves it to the back; the front is the least recently used line.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.topology.cache import CacheSpec


class SetAssociativeCache:
    """LRU set-associative cache over line numbers."""

    __slots__ = ("spec", "num_sets", "ways", "sets", "hits", "misses", "evictions")

    def __init__(self, spec: CacheSpec):
        self.spec = spec
        self.num_sets = spec.num_sets
        self.ways = spec.associativity
        if self.num_sets <= 0:
            raise SimulationError(f"{spec.level}: no sets")
        self.sets: list[dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, line: int) -> bool:
        """Access a line; True on hit.  Misses allocate (fill) the line."""
        bucket = self.sets[line % self.num_sets]
        if line in bucket:
            # LRU touch: move to the most-recently-used position.
            del bucket[line]
            bucket[line] = None
            self.hits += 1
            return True
        self.misses += 1
        bucket[line] = None
        if len(bucket) > self.ways:
            del bucket[next(iter(bucket))]
            self.evictions += 1
        return False

    def contains(self, line: int) -> bool:
        """Non-destructive lookup (no LRU update, no counters)."""
        return line in self.sets[line % self.num_sets]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(bucket) for bucket in self.sets)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def flush(self) -> None:
        """Drop all contents (keeps statistics)."""
        for bucket in self.sets:
            bucket.clear()

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.spec.level}, {self.num_sets}x{self.ways}, "
            f"h={self.hits} m={self.misses})"
        )
