"""Memory layout and address-trace construction for executable plans.

A :class:`MemoryLayout` assigns each array a line-aligned base address.
:func:`build_traces` turns an :class:`~repro.mapping.distribute.ExecutablePlan`
into per-core, per-round flat lists of cache-line numbers: for each
iteration, the nest's references are issued in program order, each as one
access to the line holding the referenced element.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import SimulationError
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest
from repro.mapping.distribute import ExecutablePlan
from repro.util.mathutil import ceil_div


class MemoryLayout:
    """Line-aligned, densely packed base addresses for a set of arrays."""

    __slots__ = ("bases", "line_size", "total_bytes")

    def __init__(self, arrays: Sequence[Array], line_size: int, start: int = 0):
        if line_size <= 0 or line_size & (line_size - 1):
            raise SimulationError("line size must be a positive power of two")
        self.line_size = line_size
        self.bases: dict[str, int] = {}
        cursor = ceil_div(start, line_size) * line_size
        for array in arrays:
            if array.name in self.bases:
                raise SimulationError(f"duplicate array {array.name!r} in layout")
            self.bases[array.name] = cursor
            cursor += ceil_div(array.size_bytes, line_size) * line_size
        self.total_bytes = cursor

    @staticmethod
    def for_nest(nest: LoopNest, line_size: int) -> "MemoryLayout":
        return MemoryLayout(nest.arrays(), line_size)

    def address_of(self, array: Array, element_offset: int) -> int:
        return self.bases[array.name] + element_offset * array.element_size


def record_access_offsets(nest: LoopNest):
    """Deterministic per-iteration access trace of a nest.

    Yields ``(iteration, offsets)`` in execution order, where
    ``offsets[r]`` is the flat element offset touched by the nest's
    ``r``-th access.  This is the recorded execution the trace-based
    tagging fallback instruments: it is a pure function of the nest (and
    its index-array data), so replaying it is bit-reproducible.
    Validate bounds before calling — the evaluators are unchecked.
    """
    evaluators = [offset for _, offset, _ in nest.offset_evaluators()]
    for point in nest.iterations():
        yield point, tuple(offset(point) for offset in evaluators)


def build_traces(
    plan: ExecutablePlan, layout: MemoryLayout, line_shift: int
) -> list[list[list[int]]]:
    """``traces[core][round]`` = flat list of line numbers in issue order."""
    nest = plan.nest
    nest.validate_access_bounds()
    if not nest.is_affine():
        return _build_traces_concrete(plan, layout, line_shift)
    # Pre-resolve each access to a byte-address linear form so the hot
    # loop is pure integer arithmetic.
    resolved = []
    for access in nest.accesses:
        constant, coeffs = access.offset_form()
        elem = access.array.element_size
        base = layout.bases[access.array.name] + constant * elem
        resolved.append((base, tuple(c * elem for c in coeffs)))

    traces: list[list[list[int]]] = []
    for core_rounds in plan.rounds:
        core_trace: list[list[int]] = []
        for rnd in core_rounds:
            lines: list[int] = []
            append = lines.append
            for point in rnd:
                for base, coeffs in resolved:
                    addr = base
                    for c, x in zip(coeffs, point):
                        addr += c * x
                    append(addr >> line_shift)
            core_trace.append(lines)
        traces.append(core_trace)
    return traces


def _build_traces_concrete(
    plan: ExecutablePlan, layout: MemoryLayout, line_shift: int
) -> list[list[list[int]]]:
    """Trace construction for nests with indirect accesses.

    Same issue order and line numbering as the affine path, but each
    access is evaluated concretely (index-array lookups included) instead
    of through a closed linear form.
    """
    nest = plan.nest
    resolved = []
    for (name, offset_of, _), access in zip(nest.offset_evaluators(), nest.accesses):
        elem = access.array.element_size
        base = layout.bases[name]
        resolved.append((base, elem, offset_of))

    traces: list[list[list[int]]] = []
    for core_rounds in plan.rounds:
        core_trace: list[list[int]] = []
        for rnd in core_rounds:
            lines: list[int] = []
            append = lines.append
            for point in rnd:
                for base, elem, offset_of in resolved:
                    append((base + offset_of(point) * elem) >> line_shift)
            core_trace.append(lines)
        traces.append(core_trace)
    return traces
