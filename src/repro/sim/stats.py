"""Simulation results and accounting invariants."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class LevelStats:
    """Aggregated hit/miss counts for one cache level."""

    level: str
    hits: int
    misses: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __str__(self) -> str:
        return (
            f"{self.level}: {self.accesses} accesses, {self.misses} misses "
            f"({100 * self.miss_rate:.1f}%)"
        )


@dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one executable plan."""

    label: str
    machine_name: str
    cycles: int
    core_cycles: tuple[int, ...]
    levels: tuple[LevelStats, ...]
    memory_accesses: int
    total_accesses: int
    barriers: int
    barrier_cycles: int

    def level(self, name: str) -> LevelStats:
        for stats in self.levels:
            if stats.level == name:
                return stats
        raise SimulationError(f"no level {name!r} in result")

    def verify_conservation(self) -> None:
        """hits + misses == accesses per level; L(k+1) accesses == L(k) misses.

        The second invariant holds level-to-level because every access
        probes the next level exactly when the previous one missed, and
        all cores' paths traverse every level of a uniform hierarchy.
        Memory accesses equal last-level misses.
        """
        ordered = list(self.levels)
        if not ordered:
            return
        if ordered[0].accesses != self.total_accesses:
            raise SimulationError(
                f"L1 accesses {ordered[0].accesses} != issued {self.total_accesses}"
            )
        for upper, lower in zip(ordered, ordered[1:]):
            if upper.misses != lower.accesses:
                raise SimulationError(
                    f"{upper.level} misses {upper.misses} != "
                    f"{lower.level} accesses {lower.accesses}"
                )
        if ordered[-1].misses != self.memory_accesses:
            raise SimulationError(
                f"{ordered[-1].level} misses {ordered[-1].misses} != "
                f"memory accesses {self.memory_accesses}"
            )

    def summary(self) -> str:
        lines = [
            f"[{self.machine_name}] {self.label}: {self.cycles} cycles, "
            f"{self.total_accesses} accesses, {self.barriers} barriers"
        ]
        for stats in self.levels:
            lines.append(f"  {stats}")
        lines.append(f"  memory: {self.memory_accesses} accesses")
        return "\n".join(lines)
