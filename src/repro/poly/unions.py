"""Finite unions of convex integer sets.

Tag-defined iteration groups (Section 3.3) are generally *not* convex: the
set of iterations accessing data blocks {0, 1} and nothing else is a
difference of convex sets.  :class:`UnionSet` gives the library a closed
representation: unions support membership, enumeration without duplicates,
and (piecewise-convex) code generation.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.errors import PolyhedralError
from repro.poly.intset import IntSet


class UnionSet:
    """A union of convex :class:`IntSet` pieces over a common dim tuple."""

    __slots__ = ("dims", "pieces")

    def __init__(self, dims: Sequence[str], pieces: Iterable[IntSet] = ()):
        dims = tuple(dims)
        checked = []
        for piece in pieces:
            if piece.dims != dims:
                raise PolyhedralError(
                    f"piece dims {piece.dims} do not match union dims {dims}"
                )
            checked.append(piece)
        object.__setattr__(self, "dims", dims)
        object.__setattr__(self, "pieces", tuple(checked))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("UnionSet is immutable")

    @staticmethod
    def from_set(base: IntSet) -> UnionSet:
        return UnionSet(base.dims, [base])

    def union(self, other: UnionSet | IntSet) -> UnionSet:
        if isinstance(other, IntSet):
            other = UnionSet.from_set(other)
        if other.dims != self.dims:
            raise PolyhedralError(f"dimension mismatch: {self.dims} vs {other.dims}")
        return UnionSet(self.dims, self.pieces + other.pieces)

    def contains(self, point: Sequence[int] | Mapping[str, int]) -> bool:
        return any(piece.contains(point) for piece in self.pieces)

    def points(self) -> Iterator[tuple[int, ...]]:
        """Enumerate points of the union in lexicographic order, deduplicated.

        Uses a k-way merge over the (sorted) piece enumerations so memory
        stays proportional to the number of pieces, not the number of points.
        """
        merged = heapq.merge(*(piece.points() for piece in self.pieces))
        last: tuple[int, ...] | None = None
        for point in merged:
            if point != last:
                yield point
                last = point

    def count(self) -> int:
        return sum(1 for _ in self.points())

    def is_empty(self) -> bool:
        return all(piece.is_empty() for piece in self.pieces)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionSet):
            return NotImplemented
        if self.dims != other.dims:
            return False
        return set(self.pieces) == set(other.pieces)

    def __hash__(self) -> int:
        return hash((self.dims, frozenset(self.pieces)))

    def __repr__(self) -> str:
        return f"UnionSet({len(self.pieces)} pieces over {self.dims})"
