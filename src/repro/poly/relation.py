"""Affine maps between spaces (the paper's access relations ``R``).

An :class:`AffineMap` sends a point of an input space (an iteration vector)
to a point of an output space (an array index vector) through one affine
expression per output dimension, exactly like the reference

    R = {(i1, i2) -> (d1, d2) | d1 = i1 + 1 and d2 = i2 - 1}

in Section 3.2 of the paper.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import PolyhedralError
from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet


class AffineMap:
    """Affine mapping ``in_dims -> out_dims``.

    ``exprs[k]`` gives the value of ``out_dims[k]`` as an affine expression
    over ``in_dims``.
    """

    __slots__ = ("in_dims", "out_dims", "exprs")

    def __init__(
        self,
        in_dims: Sequence[str],
        out_dims: Sequence[str],
        exprs: Sequence[AffineExpr | int | str],
    ):
        in_dims = tuple(in_dims)
        out_dims = tuple(out_dims)
        if len(out_dims) != len(exprs):
            raise PolyhedralError(
                f"map has {len(out_dims)} output dims but {len(exprs)} expressions"
            )
        coerced = tuple(AffineExpr.coerce(e) for e in exprs)
        in_set = set(in_dims)
        for out_name, expr in zip(out_dims, coerced):
            extra = expr.variables() - in_set
            if extra:
                raise PolyhedralError(
                    f"expression for {out_name!r} uses {sorted(extra)} outside input dims"
                )
        object.__setattr__(self, "in_dims", in_dims)
        object.__setattr__(self, "out_dims", out_dims)
        object.__setattr__(self, "exprs", coerced)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("AffineMap is immutable")

    @staticmethod
    def identity(dims: Sequence[str], out_dims: Sequence[str] | None = None) -> AffineMap:
        out = tuple(out_dims) if out_dims is not None else tuple(f"{d}'" for d in dims)
        return AffineMap(dims, out, [AffineExpr.var(d) for d in dims])

    # -- application --------------------------------------------------------

    def apply(self, point: Sequence[int] | Mapping[str, int]) -> tuple[int, ...]:
        """Map an input point to the output point."""
        if isinstance(point, Mapping):
            env = dict(point)
        else:
            if len(point) != len(self.in_dims):
                raise PolyhedralError(
                    f"point has {len(point)} coordinates, map expects {len(self.in_dims)}"
                )
            env = dict(zip(self.in_dims, point))
        return tuple(expr.evaluate(env) for expr in self.exprs)

    def compose(self, inner: AffineMap) -> AffineMap:
        """``self o inner``: first apply ``inner``, then ``self``."""
        if inner.out_dims != self.in_dims:
            raise PolyhedralError(
                f"cannot compose: inner outputs {inner.out_dims} != outer inputs {self.in_dims}"
            )
        bindings = dict(zip(self.in_dims, inner.exprs))
        return AffineMap(
            inner.in_dims,
            self.out_dims,
            [expr.substitute(bindings) for expr in self.exprs],
        )

    def image(self, domain: IntSet) -> IntSet:
        """Rational image of ``domain`` under the map.

        Built by conjoining ``out == expr`` with the domain constraints and
        projecting onto the output dimensions.
        """
        if domain.dims != self.in_dims:
            raise PolyhedralError(
                f"domain dims {domain.dims} do not match map inputs {self.in_dims}"
            )
        clash = set(self.out_dims) & set(self.in_dims)
        if clash:
            raise PolyhedralError(f"output dims {sorted(clash)} clash with input dims")
        combined_dims = self.in_dims + self.out_dims
        cons = list(domain.constraints)
        for out_name, expr in zip(self.out_dims, self.exprs):
            cons.append(Constraint.eq(AffineExpr.var(out_name), expr))
        combined = IntSet(combined_dims, cons)
        return combined.project_onto(self.out_dims)

    def as_graph_set(self, domain: IntSet) -> IntSet:
        """The relation's graph {(in, out) | in in domain, out = f(in)}."""
        if domain.dims != self.in_dims:
            raise PolyhedralError(
                f"domain dims {domain.dims} do not match map inputs {self.in_dims}"
            )
        cons = list(domain.constraints)
        for out_name, expr in zip(self.out_dims, self.exprs):
            cons.append(Constraint.eq(AffineExpr.var(out_name), expr))
        return IntSet(self.in_dims + self.out_dims, cons)

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineMap):
            return NotImplemented
        return (
            self.in_dims == other.in_dims
            and self.out_dims == other.out_dims
            and self.exprs == other.exprs
        )

    def __hash__(self) -> int:
        return hash((self.in_dims, self.out_dims, self.exprs))

    def __repr__(self) -> str:
        body = ", ".join(f"{d} = {e}" for d, e in zip(self.out_dims, self.exprs))
        return f"AffineMap({{({', '.join(self.in_dims)}) -> ({', '.join(self.out_dims)}) | {body}}})"
