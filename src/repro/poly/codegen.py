"""Loop-nest code generation from integer sets (Omega ``codegen`` analogue).

Section 3.4 of the paper relies on the Omega Library's ``codegen`` utility
to emit, for each iteration group assigned to a core, a loop nest that
enumerates the group's iterations.  This module provides the same service:

* :func:`generate_loop_nest` renders Python source whose execution yields
  exactly the integer points of a convex :class:`IntSet` (or of each piece
  of a :class:`UnionSet`, deduplicated), in lexicographic order;
* :func:`compile_enumerator` compiles that source into a callable.

The generated code uses only integer arithmetic (``ceil_div``/``floor_div``
are inlined as ``-(-a//b)`` and ``a//b``), so it has no runtime dependency
on this library.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import PolyhedralError
from repro.poly.affine import AffineExpr
from repro.poly.intset import IntSet, LevelBounds
from repro.poly.unions import UnionSet

_INDENT = "    "


def _render_expr(expr: AffineExpr) -> str:
    """Render an affine expression as a Python arithmetic expression."""
    parts: list[str] = []
    for name in sorted(expr.coeffs):
        coeff = expr.coeffs[name]
        if coeff == 1:
            parts.append(name)
        elif coeff == -1:
            parts.append(f"-{name}")
        else:
            parts.append(f"{coeff}*{name}")
    if expr.constant or not parts:
        parts.append(str(expr.constant))
    text = parts[0]
    for part in parts[1:]:
        text += f" - {part[1:]}" if part.startswith("-") else f" + {part}"
    return text


def _ceil_term(c: int, e: AffineExpr) -> str:
    """Python source for ceil(e / c) with c > 0."""
    if c == 1:
        return f"({_render_expr(e)})"
    return f"(-((-({_render_expr(e)})) // {c}))"


def _floor_term(c: int, e: AffineExpr) -> str:
    """Python source for floor(e / c) with c > 0."""
    if c == 1:
        return f"({_render_expr(e)})"
    return f"(({_render_expr(e)}) // {c})"


def _emit_level(level: LevelBounds, depth: int, lines: list[str]) -> int:
    """Emit bound computation and the loop for one dimension.

    Returns the indentation depth of the loop body.
    """
    pad = _INDENT * depth
    name = level.dim
    lo_terms = [_ceil_term(c, e) for c, e in level.lowers]
    hi_terms = [_floor_term(c, e) for c, e in level.uppers]

    for idx, (c, e) in enumerate(level.equalities):
        num = f"_eqn_{name}_{idx}"
        lines.append(f"{pad}{num} = {_render_expr(e)}")
        lines.append(f"{pad}if {num} % {c} != 0:")
        lines.append(f"{pad}{_INDENT}{'return' if depth == 1 else 'pass'}")
        if depth != 1:
            # Inside a loop: skip this outer iteration.
            lines[-1] = f"{pad}{_INDENT}continue"
        lo_terms.append(f"(-{num} // {c})")
        hi_terms.append(f"(-{num} // {c})")

    if not lo_terms or not hi_terms:
        raise PolyhedralError(
            f"cannot generate code: dimension {name!r} is unbounded "
            f"({'below' if not lo_terms else 'above'})"
        )
    lo_src = lo_terms[0] if len(lo_terms) == 1 else "max(" + ", ".join(lo_terms) + ")"
    hi_src = hi_terms[0] if len(hi_terms) == 1 else "min(" + ", ".join(hi_terms) + ")"
    lines.append(f"{pad}_lo_{name} = {lo_src}")
    lines.append(f"{pad}_hi_{name} = {hi_src}")
    lines.append(f"{pad}for {name} in range(_lo_{name}, _hi_{name} + 1):")
    return depth + 1


def generate_loop_nest(
    space: IntSet | UnionSet, func_name: str = "enumerate_points"
) -> str:
    """Generate Python source for a generator that yields the set's points.

    For a convex set the generator is a single perfect loop nest yielding in
    lexicographic order.  For a union, each piece gets its own nest and
    duplicates are suppressed with a seen-set (pieces produced by the
    tagging machinery are disjoint, so the set stays empty-ish in practice).
    """
    if isinstance(space, IntSet):
        return _generate_convex(space, func_name)
    return _generate_union(space, func_name)


def _generate_convex(space: IntSet, func_name: str) -> str:
    lines = [f"def {func_name}():"]
    if not space.dims:
        ok = all(c.satisfied_by({}) for c in space.constraints)
        lines.append(f"{_INDENT}yield ()" if ok else f"{_INDENT}return\n{_INDENT}yield ()")
        return "\n".join(lines) + "\n"
    levels = space.level_bounds()
    depth = 1
    for level in levels:
        depth = _emit_level(level, depth, lines)
    pad = _INDENT * depth
    tuple_src = ", ".join(space.dims) + ("," if len(space.dims) == 1 else "")
    lines.append(f"{pad}yield ({tuple_src})")
    return "\n".join(lines) + "\n"


def _generate_union(space: UnionSet, func_name: str) -> str:
    lines = [f"def {func_name}():"]
    if not space.pieces:
        lines.append(f"{_INDENT}return")
        lines.append(f"{_INDENT}yield ()")
        return "\n".join(lines) + "\n"
    lines.append(f"{_INDENT}_seen = set()")
    tuple_src = ", ".join(space.dims) + ("," if len(space.dims) == 1 else "")
    for piece in space.pieces:
        if not space.dims:
            raise PolyhedralError("union codegen requires at least one dimension")
        levels = piece.level_bounds()
        depth = 1
        for level in levels:
            depth = _emit_level(level, depth, lines)
        pad = _INDENT * depth
        lines.append(f"{pad}_pt = ({tuple_src})")
        lines.append(f"{pad}if _pt not in _seen:")
        lines.append(f"{pad}{_INDENT}_seen.add(_pt)")
        lines.append(f"{pad}{_INDENT}yield _pt")
    return "\n".join(lines) + "\n"


def generate_point_list_enumerator(
    points: Sequence[tuple[int, ...]], func_name: str = "enumerate_points"
) -> str:
    """Codegen fallback for irregular iteration sets.

    Tag-defined iteration groups are not convex in general; when a group
    does not decompose into few convex pieces we emit its points as an
    explicit table (the compiled artifact a production compiler would place
    in rodata).
    """
    lines = [f"def {func_name}():"]
    lines.append(f"{_INDENT}_points = (")
    for point in points:
        lines.append(f"{_INDENT * 2}{point!r},")
    lines.append(f"{_INDENT})")
    lines.append(f"{_INDENT}yield from _points")
    return "\n".join(lines) + "\n"


def compile_enumerator(source: str, func_name: str = "enumerate_points"):
    """Compile generated source and return the named generator function."""
    namespace: dict[str, object] = {}
    exec(compile(source, f"<poly-codegen:{func_name}>", "exec"), namespace)
    func = namespace.get(func_name)
    if func is None:
        raise PolyhedralError(f"generated source does not define {func_name!r}")
    return func
