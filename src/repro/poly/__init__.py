"""Polyhedral substrate: integer sets, affine relations and code generation.

This package plays the role the Omega Library plays in the paper: it
represents iteration spaces ``K``, data spaces ``D`` and access relations
``R`` as systems of affine constraints over integer variables, and it can
generate loop nests that enumerate the integer points of a set (the
equivalent of Omega's ``codegen`` utility, Section 3.4 of the paper).

Public surface
--------------

:class:`~repro.poly.affine.AffineExpr`
    Immutable affine expression ``c0 + c1*x1 + ... + cn*xn``.
:class:`~repro.poly.constraints.Constraint`
    ``expr >= 0`` or ``expr == 0``.
:class:`~repro.poly.intset.IntSet`
    Convex set of integer points (conjunction of constraints).
:class:`~repro.poly.unions.UnionSet`
    Finite union of convex sets.
:class:`~repro.poly.relation.AffineMap`
    Affine mapping between spaces (array access functions).
:func:`~repro.poly.codegen.generate_loop_nest`
    Python source that enumerates a set's points (Omega ``codegen``).
"""

from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet
from repro.poly.relation import AffineMap
from repro.poly.unions import UnionSet
from repro.poly.codegen import compile_enumerator, generate_loop_nest

__all__ = [
    "AffineExpr",
    "Constraint",
    "IntSet",
    "AffineMap",
    "UnionSet",
    "compile_enumerator",
    "generate_loop_nest",
]
