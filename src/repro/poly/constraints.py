"""Affine constraints: ``expr >= 0`` and ``expr == 0``.

Constraints are normalized on construction: the GCD of the coefficients is
divided out (tightening inequality constants toward the feasible side, which
is exact over the integers), so structurally different but equivalent
constraints usually compare equal.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.errors import PolyhedralError
from repro.poly.affine import AffineExpr
from repro.util.mathutil import floor_div


class Constraint:
    """A single affine constraint.

    ``kind`` is ``'>='`` (meaning ``expr >= 0``) or ``'=='`` (meaning
    ``expr == 0``).
    """

    __slots__ = ("expr", "kind", "_hash")

    GE = ">="
    EQ = "=="

    def __init__(self, expr: AffineExpr, kind: str = GE):
        if kind not in (self.GE, self.EQ):
            raise PolyhedralError(f"unknown constraint kind {kind!r}")
        expr = _normalize(expr, kind)
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "_hash", hash((expr, kind)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Constraint is immutable")

    # -- convenience constructors -------------------------------------------

    @staticmethod
    def ge(lhs: AffineExpr | int | str, rhs: AffineExpr | int | str) -> Constraint:
        """``lhs >= rhs``."""
        return Constraint(AffineExpr.coerce(lhs) - AffineExpr.coerce(rhs), Constraint.GE)

    @staticmethod
    def le(lhs: AffineExpr | int | str, rhs: AffineExpr | int | str) -> Constraint:
        """``lhs <= rhs``."""
        return Constraint(AffineExpr.coerce(rhs) - AffineExpr.coerce(lhs), Constraint.GE)

    @staticmethod
    def eq(lhs: AffineExpr | int | str, rhs: AffineExpr | int | str) -> Constraint:
        """``lhs == rhs``."""
        return Constraint(AffineExpr.coerce(lhs) - AffineExpr.coerce(rhs), Constraint.EQ)

    @staticmethod
    def lt(lhs: AffineExpr | int | str, rhs: AffineExpr | int | str) -> Constraint:
        """``lhs < rhs`` (integer strictness: lhs <= rhs - 1)."""
        return Constraint(AffineExpr.coerce(rhs) - AffineExpr.coerce(lhs) - 1, Constraint.GE)

    @staticmethod
    def gt(lhs: AffineExpr | int | str, rhs: AffineExpr | int | str) -> Constraint:
        """``lhs > rhs`` (integer strictness: lhs >= rhs + 1)."""
        return Constraint(AffineExpr.coerce(lhs) - AffineExpr.coerce(rhs) - 1, Constraint.GE)

    # -- queries -------------------------------------------------------------

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def coeff(self, name: str) -> int:
        return self.expr.coeff(name)

    def is_tautology(self) -> bool:
        """Constant constraint that always holds."""
        if not self.expr.is_constant():
            return False
        if self.kind == self.EQ:
            return self.expr.constant == 0
        return self.expr.constant >= 0

    def is_contradiction(self) -> bool:
        """Constant constraint that never holds."""
        if not self.expr.is_constant():
            return False
        return not self.is_tautology()

    def satisfied_by(self, env: Mapping[str, int]) -> bool:
        value = self.expr.evaluate(env)
        return value == 0 if self.kind == self.EQ else value >= 0

    def substitute(self, bindings: Mapping[str, AffineExpr | int]) -> Constraint:
        return Constraint(self.expr.substitute(bindings), self.kind)

    def rename(self, mapping: Mapping[str, str]) -> Constraint:
        return Constraint(self.expr.rename(mapping), self.kind)

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.kind == other.kind and self.expr == other.expr

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constraint({self.expr} {self.kind} 0)"

    def __str__(self) -> str:
        return f"{self.expr} {self.kind} 0"


def _normalize(expr: AffineExpr, kind: str) -> AffineExpr:
    """Divide out the coefficient GCD.

    For ``>=`` the constant is floored toward the feasible side
    (``g*x + c >= 0`` iff ``x + floor(c/g) >= 0`` over the integers); for
    ``==`` an indivisible constant makes the constraint unsatisfiable, which
    we encode as the canonical contradiction ``-1 == 0``.
    """
    if not expr.coeffs:
        return expr
    g = 0
    for coeff in expr.coeffs.values():
        g = math.gcd(g, abs(coeff))
    if g <= 1:
        return expr
    coeffs = {n: c // g for n, c in expr.coeffs.items()}
    if kind == Constraint.EQ:
        if expr.constant % g != 0:
            return AffineExpr({}, -1)  # unsatisfiable marker
        return AffineExpr(coeffs, expr.constant // g)
    return AffineExpr(coeffs, floor_div(expr.constant, g))
