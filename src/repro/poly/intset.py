"""Convex sets of integer points (the paper's ``K``, ``D`` sets).

An :class:`IntSet` is an ordered tuple of dimension names plus a conjunction
of affine constraints.  The two fundamental services the mapping algorithms
need are

* **exact enumeration** of the integer points in lexicographic dimension
  order (used to tag iterations, Section 3.3), and
* **bound extraction** per dimension (used by :mod:`repro.poly.codegen` to
  emit loop nests, the Omega ``codegen`` analogue of Section 3.4).

Both are built on Fourier-Motzkin (FM) elimination.  FM over the rationals
is a relaxation, so we organize enumeration so that every *original*
constraint is enforced exactly (with integer ceil/floor) at the level of its
innermost variable; FM-derived constraints only prune the search.  The
result: enumeration is exact, while :meth:`IntSet.project_onto` (pure FM) is
a rational over-approximation, which is documented and sufficient for every
use in this library.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import EmptySetError, PolyhedralError, UnboundedSetError
from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint
from repro.util.mathutil import ceil_div, floor_div, sign


@dataclass(frozen=True)
class LevelBounds:
    """Bounds for one dimension given values for all outer dimensions.

    ``lowers`` holds pairs ``(c, e)`` meaning ``x >= ceil(e / c)`` with
    ``c > 0``; ``uppers`` holds pairs ``(c, e)`` meaning ``x <= floor(e / c)``
    with ``c > 0``; ``equalities`` holds pairs ``(c, e)`` meaning
    ``c * x + e == 0``.  Every expression ``e`` refers only to outer
    dimensions.
    """

    dim: str
    lowers: tuple[tuple[int, AffineExpr], ...] = ()
    uppers: tuple[tuple[int, AffineExpr], ...] = ()
    equalities: tuple[tuple[int, AffineExpr], ...] = ()

    def range_for(self, env: Mapping[str, int]) -> tuple[int, int] | None:
        """Inclusive integer range of the dimension under ``env``.

        Returns ``None`` when an equality is unsatisfiable (non-integral) at
        this point.  Raises :class:`UnboundedSetError` when a side has no
        bound and no equality pins the value.
        """
        lo: int | None = None
        hi: int | None = None
        for c, e in self.equalities:
            rest = e.evaluate(env)
            if rest % c != 0:
                return None
            value = -rest // c
            lo = value if lo is None else max(lo, value)
            hi = value if hi is None else min(hi, value)
        for c, e in self.lowers:
            bound = ceil_div(e.evaluate(env), c)
            lo = bound if lo is None else max(lo, bound)
        for c, e in self.uppers:
            bound = floor_div(e.evaluate(env), c)
            hi = bound if hi is None else min(hi, bound)
        if lo is None or hi is None:
            raise UnboundedSetError(
                f"dimension {self.dim!r} is unbounded "
                f"({'below' if lo is None else 'above'})"
            )
        return (lo, hi)


class IntSet:
    """A convex set of integer points over named dimensions."""

    __slots__ = ("dims", "constraints", "_levels", "_empty_cache")

    def __init__(self, dims: Sequence[str], constraints: Iterable[Constraint] = ()):
        dims = tuple(dims)
        if len(set(dims)) != len(dims):
            raise PolyhedralError(f"duplicate dimension names in {dims}")
        kept: list[Constraint] = []
        seen: set[Constraint] = set()
        for con in constraints:
            extra = con.variables() - set(dims)
            if extra:
                raise PolyhedralError(
                    f"constraint {con} uses variables {sorted(extra)} outside dims {dims}"
                )
            if con.is_tautology() or con in seen:
                continue
            seen.add(con)
            kept.append(con)
        object.__setattr__(self, "dims", dims)
        object.__setattr__(self, "constraints", tuple(kept))
        object.__setattr__(self, "_levels", None)
        object.__setattr__(self, "_empty_cache", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IntSet is immutable")

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def universe(dims: Sequence[str]) -> IntSet:
        return IntSet(dims)

    @staticmethod
    def empty(dims: Sequence[str]) -> IntSet:
        return IntSet(dims, [Constraint(AffineExpr.const(-1), Constraint.GE)])

    @staticmethod
    def box(dims: Sequence[str], ranges: Sequence[tuple[int, int]]) -> IntSet:
        """Axis-aligned box: ``ranges[k][0] <= dims[k] <= ranges[k][1]``."""
        if len(dims) != len(ranges):
            raise PolyhedralError("box: one (lo, hi) pair per dimension required")
        cons = []
        for name, (lo, hi) in zip(dims, ranges):
            cons.append(Constraint.ge(AffineExpr.var(name), lo))
            cons.append(Constraint.le(AffineExpr.var(name), hi))
        return IntSet(dims, cons)

    # -- algebra ----------------------------------------------------------------

    def with_constraints(self, extra: Iterable[Constraint]) -> IntSet:
        """This set intersected with additional constraints."""
        return IntSet(self.dims, list(self.constraints) + list(extra))

    def intersect(self, other: IntSet) -> IntSet:
        if self.dims != other.dims:
            raise PolyhedralError(f"dimension mismatch: {self.dims} vs {other.dims}")
        return self.with_constraints(other.constraints)

    def fix(self, name: str, value: int) -> IntSet:
        """Restrict a dimension to a single value (the dimension remains)."""
        if name not in self.dims:
            raise PolyhedralError(f"unknown dimension {name!r}")
        return self.with_constraints([Constraint.eq(AffineExpr.var(name), value)])

    def rename_dims(self, mapping: Mapping[str, str]) -> IntSet:
        new_dims = tuple(mapping.get(d, d) for d in self.dims)
        return IntSet(new_dims, [c.rename(mapping) for c in self.constraints])

    def eliminate(self, name: str) -> IntSet:
        """Fourier-Motzkin elimination of one dimension.

        The result is the rational shadow: every integer point of ``self``
        maps into it, but it may contain integer points with no integer
        pre-image (documented over-approximation).
        """
        if name not in self.dims:
            raise PolyhedralError(f"unknown dimension {name!r}")
        remaining, eliminated = _fm_eliminate(self.constraints, name)
        new_cons = remaining + eliminated
        return IntSet(tuple(d for d in self.dims if d != name), new_cons)

    def project_onto(self, keep: Sequence[str]) -> IntSet:
        """Eliminate every dimension not in ``keep`` (rational shadow)."""
        keep_set = set(keep)
        missing = keep_set - set(self.dims)
        if missing:
            raise PolyhedralError(f"unknown dimensions {sorted(missing)}")
        result = self
        for name in self.dims:
            if name not in keep_set:
                result = result.eliminate(name)
        # Reorder dims to the requested order.
        return IntSet(tuple(keep), result.constraints)

    # -- membership / enumeration ------------------------------------------------

    def contains(self, point: Sequence[int] | Mapping[str, int]) -> bool:
        env = self._env_of(point)
        return all(c.satisfied_by(env) for c in self.constraints)

    def _env_of(self, point: Sequence[int] | Mapping[str, int]) -> dict[str, int]:
        if isinstance(point, Mapping):
            return dict(point)
        if len(point) != len(self.dims):
            raise PolyhedralError(
                f"point has {len(point)} coordinates, set has {len(self.dims)} dims"
            )
        return dict(zip(self.dims, point))

    def level_bounds(self) -> tuple[LevelBounds, ...]:
        """Per-dimension bounds for lexicographic enumeration / codegen.

        Level ``k`` gives bounds for ``dims[k]`` as expressions in
        ``dims[:k]``.  Every original constraint is represented exactly at
        the level of its innermost dimension; FM-derived constraints are
        added at outer levels to prune infeasible prefixes early.
        """
        if self._levels is not None:
            return self._levels
        pool: list[Constraint] = [c for c in self.constraints if not c.is_tautology()]
        levels: list[LevelBounds] = []
        for k in range(len(self.dims) - 1, -1, -1):
            name = self.dims[k]
            inner = set(self.dims[k + 1 :])
            here = [c for c in pool if name in c.variables() and not (c.variables() & inner)]
            here_set = set(here)
            pool = [c for c in pool if c not in here_set]
            lowers: list[tuple[int, AffineExpr]] = []
            uppers: list[tuple[int, AffineExpr]] = []
            equalities: list[tuple[int, AffineExpr]] = []
            for con in here:
                c = con.coeff(name)
                rest = con.expr - AffineExpr({name: c})
                if con.kind == Constraint.EQ:
                    equalities.append((c, rest) if c > 0 else (-c, -rest))
                elif c > 0:
                    lowers.append((c, -rest))
                else:
                    uppers.append((-c, rest))
            levels.append(LevelBounds(name, tuple(lowers), tuple(uppers), tuple(equalities)))
            # FM-eliminate this dim from `here` to prune outer levels.
            _, derived = _fm_eliminate(here, name)
            for con in derived:
                if con.is_contradiction():
                    pool.append(con)
                elif not con.is_tautology() and con not in pool:
                    pool.append(con)
        # Constraints left in the pool involve no dims at all; constants.
        for con in pool:
            if con.variables():
                raise PolyhedralError(f"internal: leftover constraint {con}")
            if con.is_contradiction():
                # Encode emptiness as an impossible bound at the outermost level.
                outer = levels[-1]
                levels[-1] = LevelBounds(
                    outer.dim,
                    outer.lowers + ((1, AffineExpr.const(1)),),
                    outer.uppers + ((1, AffineExpr.const(0)),),
                    outer.equalities,
                )
        result = tuple(reversed(levels))
        object.__setattr__(self, "_levels", result)
        return result

    def points(self) -> Iterator[tuple[int, ...]]:
        """Enumerate integer points in lexicographic order of ``dims``.

        Raises :class:`UnboundedSetError` if the set is unbounded in any
        dimension reachable during the sweep.
        """
        if not self.dims:
            if all(c.satisfied_by({}) for c in self.constraints):
                yield ()
            return
        levels = self.level_bounds()

        def rec(k: int, env: dict[str, int], prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
            if k == len(levels):
                yield prefix
                return
            rng = levels[k].range_for(env)
            if rng is None:
                return
            lo, hi = rng
            name = levels[k].dim
            for value in range(lo, hi + 1):
                env[name] = value
                yield from rec(k + 1, env, prefix + (value,))
            env.pop(name, None)

        yield from rec(0, {}, ())

    def first_point(self) -> tuple[int, ...]:
        """Lexicographically smallest point; raises if the set is empty."""
        for point in self.points():
            return point
        raise EmptySetError(f"set over {self.dims} has no integer points")

    def is_empty(self) -> bool:
        """Exact integer emptiness (requires the set to be bounded)."""
        if self._empty_cache is None:
            try:
                self.first_point()
                result = False
            except EmptySetError:
                result = True
            object.__setattr__(self, "_empty_cache", result)
        return self._empty_cache

    def count(self) -> int:
        """Number of integer points (enumerates; requires boundedness)."""
        return sum(1 for _ in self.points())

    def bounding_box(self) -> list[tuple[int, int]]:
        """Per-dimension (lo, hi) ranges from the rational shadow.

        Sound over-approximation: every integer point of the set lies in
        the box.  Raises :class:`UnboundedSetError` for unbounded dims and
        :class:`EmptySetError` when a projection is empty.
        """
        box: list[tuple[int, int]] = []
        for name in self.dims:
            projection = self.project_onto([name])
            levels = projection.level_bounds()
            rng = levels[0].range_for({})
            if rng is None or rng[0] > rng[1]:
                raise EmptySetError(f"dimension {name!r} has an empty range")
            box.append(rng)
        return box

    def is_bounded(self) -> bool:
        """True if lexicographic enumeration never hits an unbounded level."""
        try:
            for _, __ in zip(self.points(), itertools.count()):
                pass
            return True
        except UnboundedSetError:
            return False

    # -- dunder -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntSet):
            return NotImplemented
        return self.dims == other.dims and set(self.constraints) == set(other.constraints)

    def __hash__(self) -> int:
        return hash((self.dims, frozenset(self.constraints)))

    def __repr__(self) -> str:
        cons = " and ".join(str(c) for c in self.constraints) or "true"
        return f"IntSet({{({', '.join(self.dims)}) | {cons}}})"


def _fm_eliminate(
    constraints: Iterable[Constraint], name: str
) -> tuple[list[Constraint], list[Constraint]]:
    """One FM elimination step.

    Returns ``(untouched, derived)``: constraints not mentioning ``name``
    and the new constraints implied by eliminating ``name``.
    """
    untouched: list[Constraint] = []
    lowers: list[Constraint] = []   # c > 0
    uppers: list[Constraint] = []   # c < 0
    equalities: list[Constraint] = []
    for con in constraints:
        c = con.coeff(name)
        if c == 0:
            untouched.append(con)
        elif con.kind == Constraint.EQ:
            equalities.append(con)
        elif c > 0:
            lowers.append(con)
        else:
            uppers.append(con)

    derived: list[Constraint] = []
    if equalities:
        eq = equalities[0]
        c = eq.coeff(name)
        cc, sgn = abs(c), sign(c)
        rest_all = lowers + uppers + equalities[1:]
        for con in rest_all:
            k = con.coeff(name)
            new_expr = con.expr * cc - eq.expr * (sgn * k)
            derived.append(Constraint(new_expr, con.kind))
        return untouched, [d for d in derived if not d.is_tautology()]

    for low in lowers:
        c1 = low.coeff(name)
        for up in uppers:
            c2 = -up.coeff(name)
            # c1*x + r1 >= 0 and -c2*x + r2 >= 0  =>  c2*r1 + c1*r2 >= 0
            r1 = low.expr - AffineExpr({name: c1})
            r2 = up.expr + AffineExpr({name: c2})
            derived.append(Constraint(r1 * c2 + r2 * c1, Constraint.GE))
    return untouched, [d for d in derived if not d.is_tautology()]
