"""Immutable affine expressions over named integer variables.

An :class:`AffineExpr` is ``constant + sum(coeff[v] * v)``.  Expressions are
the atoms from which constraints, sets and access maps are built; they
support the arithmetic needed by Fourier-Motzkin elimination and code
generation (addition, subtraction, integer scaling, substitution,
evaluation).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import PolyhedralError


class AffineExpr:
    """``constant + sum(coeffs[name] * name)`` with integer coefficients.

    Instances are immutable and hashable.  Zero coefficients are never
    stored, so structural equality coincides with mathematical equality.
    """

    __slots__ = ("coeffs", "constant", "_hash")

    def __init__(self, coeffs: Mapping[str, int] | None = None, constant: int = 0):
        cleaned = {}
        if coeffs:
            for name, coeff in coeffs.items():
                if not isinstance(coeff, int):
                    raise PolyhedralError(f"coefficient of {name!r} must be int, got {type(coeff).__name__}")
                if coeff != 0:
                    cleaned[name] = coeff
        if not isinstance(constant, int):
            raise PolyhedralError(f"constant must be int, got {type(constant).__name__}")
        object.__setattr__(self, "coeffs", cleaned)
        object.__setattr__(self, "constant", constant)
        object.__setattr__(self, "_hash", hash((frozenset(cleaned.items()), constant)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("AffineExpr is immutable")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def var(name: str) -> AffineExpr:
        """The expression consisting of the single variable ``name``."""
        return AffineExpr({name: 1})

    @staticmethod
    def const(value: int) -> AffineExpr:
        """A constant expression."""
        return AffineExpr({}, value)

    @staticmethod
    def coerce(value: AffineExpr | int | str) -> AffineExpr:
        """Coerce an int (constant) or str (variable) into an expression."""
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, int):
            return AffineExpr.const(value)
        if isinstance(value, str):
            return AffineExpr.var(value)
        raise PolyhedralError(f"cannot coerce {value!r} to AffineExpr")

    # -- queries -----------------------------------------------------------

    def variables(self) -> frozenset[str]:
        """The variables with non-zero coefficient."""
        return frozenset(self.coeffs)

    def coeff(self, name: str) -> int:
        """Coefficient of ``name`` (0 if absent)."""
        return self.coeffs.get(name, 0)

    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a full assignment of the expression's variables."""
        total = self.constant
        for name, coeff in self.coeffs.items():
            if name not in env:
                raise PolyhedralError(f"evaluate: no value for variable {name!r}")
            total += coeff * env[name]
        return total

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: AffineExpr | int) -> AffineExpr:
        other = AffineExpr.coerce(other)
        coeffs = dict(self.coeffs)
        for name, coeff in other.coeffs.items():
            coeffs[name] = coeffs.get(name, 0) + coeff
        return AffineExpr(coeffs, self.constant + other.constant)

    __radd__ = __add__

    def __neg__(self) -> AffineExpr:
        return AffineExpr({n: -c for n, c in self.coeffs.items()}, -self.constant)

    def __sub__(self, other: AffineExpr | int) -> AffineExpr:
        return self + (-AffineExpr.coerce(other))

    def __rsub__(self, other: AffineExpr | int) -> AffineExpr:
        return AffineExpr.coerce(other) - self

    def __mul__(self, factor: int) -> AffineExpr:
        if not isinstance(factor, int):
            raise PolyhedralError("AffineExpr can only be scaled by an int")
        return AffineExpr({n: c * factor for n, c in self.coeffs.items()}, self.constant * factor)

    __rmul__ = __mul__

    def substitute(self, bindings: Mapping[str, AffineExpr | int]) -> AffineExpr:
        """Replace variables by expressions (simultaneous substitution)."""
        result = AffineExpr.const(self.constant)
        for name, coeff in self.coeffs.items():
            if name in bindings:
                result = result + AffineExpr.coerce(bindings[name]) * coeff
            else:
                result = result + AffineExpr({name: coeff})
        return result

    def rename(self, mapping: Mapping[str, str]) -> AffineExpr:
        """Rename variables."""
        return AffineExpr(
            {mapping.get(n, n): c for n, c in self.coeffs.items()}, self.constant
        )

    # -- dunder plumbing ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.constant == other.constant

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"AffineExpr({self})"

    def __str__(self) -> str:
        parts = []
        for name in sorted(self.coeffs):
            coeff = self.coeffs[name]
            if coeff == 1:
                parts.append(f"+ {name}")
            elif coeff == -1:
                parts.append(f"- {name}")
            elif coeff < 0:
                parts.append(f"- {-coeff}*{name}")
            else:
                parts.append(f"+ {coeff}*{name}")
        if self.constant or not parts:
            parts.append(f"+ {self.constant}" if self.constant >= 0 else f"- {-self.constant}")
        text = " ".join(parts)
        return text[2:] if text.startswith("+ ") else "-" + text[2:] if text.startswith("- ") else text
