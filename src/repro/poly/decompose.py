"""Decomposing irregular point sets into boxes (for compact codegen).

Tag-defined iteration groups are rarely convex, but they are usually
*piecewise* rectangular: a handful of contiguous runs (1-D) or stacked
row segments (n-D).  Emitting one loop nest per box is far more compact
than a point table and matches what Omega's ``codegen`` produces for
unions.  :func:`boxes_from_points` computes a greedy exact box cover;
:func:`union_from_points` wraps it into a :class:`UnionSet` ready for
:func:`repro.poly.codegen.generate_loop_nest`.

The cover is exact (disjoint boxes, every point covered, no extras) and
deterministic.  The greedy strategy stacks maximal runs along the last
dimension, then merges identical consecutive rows along earlier
dimensions — optimal for the row-major-contiguous groups tagging
produces, and never worse than one box per point.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import PolyhedralError
from repro.poly.intset import IntSet
from repro.poly.unions import UnionSet

Box = tuple[tuple[int, int], ...]  # (lo, hi) per dimension, inclusive


def runs_1d(values: Sequence[int]) -> list[tuple[int, int]]:
    """Maximal runs of consecutive integers (input need not be sorted)."""
    if not values:
        return []
    ordered = sorted(set(values))
    runs: list[tuple[int, int]] = []
    start = prev = ordered[0]
    for v in ordered[1:]:
        if v == prev + 1:
            prev = v
            continue
        runs.append((start, prev))
        start = prev = v
    runs.append((start, prev))
    return runs


def boxes_from_points(points: Sequence[tuple[int, ...]]) -> list[Box]:
    """Exact disjoint box cover of a finite point set.

    Recursively: group points by their first coordinate, compute the box
    cover of each slice in the remaining dimensions, then merge slices
    with identical covers into ranges of the first coordinate.
    """
    if not points:
        return []
    dim = len(points[0])
    if any(len(p) != dim for p in points):
        raise PolyhedralError("points must share one dimensionality")
    if dim == 0:
        return [()]
    if dim == 1:
        return [((lo, hi),) for lo, hi in runs_1d([p[0] for p in points])]

    by_head: dict[int, list[tuple[int, ...]]] = {}
    for p in set(points):
        by_head.setdefault(p[0], []).append(p[1:])
    # Tail cover per head value.
    covers: dict[int, tuple[Box, ...]] = {
        head: tuple(sorted(boxes_from_points(tail))) for head, tail in by_head.items()
    }
    boxes: list[Box] = []
    for lo, hi in runs_1d(list(by_head)):
        # Split the run wherever the tail cover changes, merging equal
        # consecutive covers into one head range.
        start = lo
        current = covers[lo]
        for head in range(lo + 1, hi + 2):
            cover = covers.get(head) if head <= hi else None
            if cover != current:
                for tail_box in current:
                    boxes.append(((start, head - 1),) + tail_box)
                if head <= hi:
                    start = head
                    current = covers[head]
    return sorted(boxes)


def union_from_points(
    dims: Sequence[str], points: Sequence[tuple[int, ...]]
) -> UnionSet:
    """The point set as a union of integer boxes over named dims."""
    boxes = boxes_from_points(points)
    pieces = [IntSet.box(dims, list(box)) for box in boxes]
    return UnionSet(tuple(dims), pieces)


def cover_is_exact(points: Sequence[tuple[int, ...]], boxes: Sequence[Box]) -> bool:
    """Check that ``boxes`` cover exactly ``points`` (test helper)."""
    covered: set[tuple[int, ...]] = set()
    for box in boxes:
        slots: list[tuple[int, ...]] = [()]
        for lo, hi in box:
            slots = [s + (v,) for s in slots for v in range(lo, hi + 1)]
        for p in slots:
            if p in covered:
                return False  # overlap
            covered.add(p)
    return covered == set(points)
