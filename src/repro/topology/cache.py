"""Cache component descriptors."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import TopologyError


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and timing of one cache component.

    ``level`` is the architectural level name (``"L1"``, ``"L2"``, ...);
    ``latency`` is the access latency in core cycles.
    """

    level: str
    size_bytes: int
    associativity: int
    line_size: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise TopologyError(f"{self.level}: non-positive size {self.size_bytes}")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise TopologyError(f"{self.level}: line size must be a positive power of two")
        if self.size_bytes % self.line_size:
            raise TopologyError(f"{self.level}: size not a multiple of line size")
        lines = self.size_bytes // self.line_size
        if self.associativity <= 0 or lines % self.associativity:
            raise TopologyError(
                f"{self.level}: {lines} lines not divisible by associativity "
                f"{self.associativity}"
            )
        if self.latency <= 0:
            raise TopologyError(f"{self.level}: non-positive latency {self.latency}")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def scaled(self, factor: float) -> CacheSpec:
        """Spec with capacity scaled by ``factor`` (sets scale, ways fixed).

        Used by the Figure 19 experiment (halved capacities).  The result
        keeps the line size and associativity, so the scaled size must stay
        a positive multiple of ``line_size * associativity``.
        """
        new_size = int(self.size_bytes * factor)
        chunk = self.line_size * self.associativity
        new_size = max(chunk, (new_size // chunk) * chunk)
        return replace(self, size_bytes=new_size)

    def __str__(self) -> str:
        if self.size_bytes % (1024 * 1024) == 0:
            size = f"{self.size_bytes // (1024 * 1024)}MB"
        elif self.size_bytes % 1024 == 0:
            size = f"{self.size_bytes // 1024}KB"
        else:
            size = f"{self.size_bytes}B"
        return (
            f"{self.level} {size}, {self.associativity}-way, "
            f"{self.line_size}-byte line, {self.latency} cycle latency"
        )
