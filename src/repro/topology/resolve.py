"""One front door for every way to name a machine.

Every ``--machine`` flag in the tree (CLI, service, remapper, experiment
harness) accepts the same spec grammar, resolved here:

* ``harpertown`` — a builtin from :mod:`repro.topology.machines`,
  case-insensitive;
* ``zoo:<name>`` — a fixture-corpus machine (case-insensitive), see
  :mod:`repro.topology.ingest.zoo`;
* ``sysfs:<path>`` — ingest a live ``/sys``, a copied dump directory,
  or a ``.tar``/``.tar.gz`` archive of one;
* ``lscpu:<path>`` — ingest a saved ``lscpu -J`` document.

Unknown names raise :class:`UnknownMachineError` carrying the full menu
(builtins first, then ``zoo:`` entries), which CLIs turn into a usage
error (exit 2) instead of a generic failure.
"""

from __future__ import annotations

from repro.errors import TopologyError, UnknownMachineError
from repro.topology.tree import Machine


def known_machine_names() -> list[str]:
    """Builtin names plus ``zoo:<name>`` entries, in menu order."""
    from repro.topology.ingest.zoo import zoo_names
    from repro.topology.machines import builtin_names

    return list(builtin_names()) + [f"zoo:{name}" for name in zoo_names()]


def resolve_machine(spec: str, smt_policy: str | None = None) -> Machine:
    """Resolve a machine spec string to a :class:`Machine`.

    ``smt_policy`` overrides the sibling-folding policy for the
    ``sysfs:``/``lscpu:`` forms (zoo machines carry their policy in the
    manifest; builtins have no SMT).
    """
    spec = spec.strip()
    if not spec:
        raise UnknownMachineError(spec, known_machine_names())

    scheme, _, rest = spec.partition(":")
    scheme = scheme.lower()
    if scheme == "zoo" and rest:
        from repro.topology.ingest.zoo import zoo_entries, zoo_machine

        if rest.lower() not in {name.lower() for name in zoo_entries()}:
            raise UnknownMachineError(spec, known_machine_names())
        return zoo_machine(rest)
    if scheme in ("sysfs", "lscpu") and rest:
        from repro.topology.ingest import (
            NormalizeOptions,
            ingest_lscpu,
            ingest_sysfs,
        )

        options = NormalizeOptions(smt_policy=smt_policy) if smt_policy else None
        loader = ingest_sysfs if scheme == "sysfs" else ingest_lscpu
        return loader(rest, options)

    from repro.topology.machines import machine_by_name

    try:
        return machine_by_name(spec)
    except UnknownMachineError:
        raise
    except TopologyError:
        raise UnknownMachineError(spec, known_machine_names()) from None
