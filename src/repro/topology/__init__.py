"""Cache topology descriptions (the paper's architecture input ``A = {T, N}``).

:class:`~repro.topology.cache.CacheSpec` describes one cache component;
:class:`~repro.topology.tree.TopologyNode` /
:class:`~repro.topology.tree.Machine` form the cache hierarchy tree with the
last-level cache as root (off-chip memory becomes the root when there are
multiple last-level caches, exactly as the paper prescribes);
:mod:`repro.topology.machines` provides the three commercial machines of
Table 1, the deeper Arch-I / Arch-II topologies of Figure 12, and the
scaled variants used in the sensitivity studies.
"""

from repro.topology.cache import CacheSpec
from repro.topology.parser import parse_topology
from repro.topology.tree import Machine, TopologyNode
from repro.topology.machines import (
    arch_i,
    arch_ii,
    dunnington,
    dunnington_scaled,
    halve_caches,
    harpertown,
    machine_by_name,
    nehalem,
)

__all__ = [
    "CacheSpec",
    "Machine",
    "TopologyNode",
    "parse_topology",
    "arch_i",
    "arch_ii",
    "dunnington",
    "dunnington_scaled",
    "halve_caches",
    "harpertown",
    "machine_by_name",
    "nehalem",
]
