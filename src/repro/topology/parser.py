"""Parsing compact topology spec strings into machines.

Downstream users (and the CLI's ``--topology``) can describe a machine in
one line instead of building trees by hand::

    cores=8 clock=2.9 mem=174
    L1:32K/8/64@4 per 1; L2:256K/8/64@10 per 1; L3:8M/16/64@35 per 4

Grammar: ``cores=<n>``, ``clock=<GHz>``, ``mem=<cycles>`` in any order,
then one cache clause per level, innermost first:
``<level>:<size>/<ways>/<line>@<latency> per <cores-per-instance>``.
Sizes accept ``K``/``M`` suffixes.  Clauses are separated by ``;`` or
newlines.  The per-instance core counts must be non-decreasing and divide
the core count (level-uniform trees, like every machine in this library).
"""

from __future__ import annotations

import re

from repro.errors import TopologyError
from repro.topology.cache import CacheSpec
from repro.topology.machines import _uniform_tree
from repro.topology.tree import Machine

_SETTING = re.compile(r"^(cores|clock|mem|name)\s*=\s*([\w.\-]+)$")
_CACHE = re.compile(
    r"^(?P<level>\w+)\s*:\s*(?P<size>\d+(?:\.\d+)?)(?P<unit>[KMG]?)\s*/\s*"
    r"(?P<ways>\d+)\s*/\s*(?P<line>\d+)\s*@\s*(?P<latency>\d+)"
    r"(?:\s+per\s+(?P<per>\d+))?$"
)

_UNIT = {"": 1, "K": 1024, "M": 1024 * 1024, "G": 1024 * 1024 * 1024}

#: Expected token shapes of a cache clause, in order, for diagnosis.
_CACHE_SHAPE = (
    (r"\w+", "cache level name"),
    (r":", "':'"),
    (r"\d+(?:\.\d+)?[KMG]?", "size"),
    (r"/", "'/'"),
    (r"\d+", "associativity"),
    (r"/", "'/'"),
    (r"\d+", "line size"),
    (r"@", "'@'"),
    (r"\d+", "latency"),
)


def _normalize(clause: str) -> str:
    """Strip whitespace around separator tokens and collapse the rest.

    Lets humans write ``L1 : 32K / 8 / 64 @ 4  per 2`` — the grammar is
    about tokens, not spacing.
    """
    return " ".join(re.sub(r"\s*([:/@=])\s*", r"\1", clause).split())


def _offending_token(clause: str) -> tuple[str, int]:
    """The first token that breaks the clause grammar, and its offset."""
    tokens = [(m.group(), m.start()) for m in re.finditer(r"[:/@=]|[^\s:/@=]+", clause)]
    if not tokens:
        return "(empty clause)", 0
    if any(tok == "=" for tok, _ in tokens):
        key = tokens[0]
        if not re.fullmatch(r"cores|clock|mem|name", key[0]):
            return key
        eq = next(t for t in tokens if t[0] == "=")
        after = [t for t in tokens if t[1] > eq[1]]
        return after[0] if after else ("(missing value)", len(clause))
    for (token, offset), (pattern, _what) in zip(tokens, _CACHE_SHAPE):
        if not re.fullmatch(pattern, token):
            return token, offset
    if len(tokens) < len(_CACHE_SHAPE):
        return "(truncated clause)", len(clause)
    extra = tokens[len(_CACHE_SHAPE):]
    if extra and extra[0][0] != "per":
        return extra[0]
    if len(extra) >= 2 and not re.fullmatch(r"\d+", extra[1][0]):
        return extra[1]
    if len(extra) > 2:
        return extra[2]
    return tokens[0]


def parse_topology(spec: str) -> Machine:
    """Parse a topology spec string into a :class:`Machine`."""
    cores: int | None = None
    clock = 2.0
    memory_latency: int | None = None
    name = "custom"
    levels: list[tuple[CacheSpec, int]] = []

    clauses: list[tuple[str, int, int]] = []  # (clause, line, column)
    for line_no, line in enumerate(spec.splitlines(), start=1):
        column = 0
        for chunk in line.split(";"):
            stripped = chunk.strip()
            if stripped:
                clauses.append(
                    (stripped, line_no, column + chunk.index(stripped[0]) + 1)
                )
            column += len(chunk) + 1
    for raw_clause, line_no, column in clauses:
        clause = _normalize(raw_clause)
        setting = _SETTING.match(clause)
        if setting:
            key, value = setting.groups()
            if key == "cores":
                cores = int(value)
            elif key == "clock":
                clock = float(value)
            elif key == "mem":
                memory_latency = int(value)
            else:
                name = value
            continue
        cache = _CACHE.match(clause)
        if cache:
            size = int(float(cache["size"]) * _UNIT[cache["unit"]])
            spec_obj = CacheSpec(
                cache["level"],
                size,
                int(cache["ways"]),
                int(cache["line"]),
                int(cache["latency"]),
            )
            per = int(cache["per"]) if cache["per"] else 1
            levels.append((spec_obj, per))
            continue
        token, offset = _offending_token(clause)
        raise TopologyError(
            f"cannot parse topology clause {raw_clause!r} "
            f"(line {line_no}, column {column}): unexpected token {token!r} "
            f"at offset {offset}"
        )

    if cores is None:
        raise TopologyError("topology spec must set cores=<n>")
    if memory_latency is None:
        raise TopologyError("topology spec must set mem=<cycles>")
    if not levels:
        raise TopologyError("topology spec must define at least one cache level")
    pers = [per for _, per in levels]
    if pers != sorted(pers):
        raise TopologyError(
            "cache levels must be listed innermost first "
            "(non-decreasing 'per' counts)"
        )
    for _, per in levels:
        if cores % per:
            raise TopologyError(f"'per {per}' does not divide {cores} cores")
    root = _uniform_tree(cores, levels)
    sockets = max(1, cores // max(pers))
    return Machine(name, clock, memory_latency, root, sockets=sockets)
