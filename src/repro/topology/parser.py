"""Parsing compact topology spec strings into machines.

Downstream users (and the CLI's ``--topology``) can describe a machine in
one line instead of building trees by hand::

    cores=8 clock=2.9 mem=174
    L1:32K/8/64@4 per 1; L2:256K/8/64@10 per 1; L3:8M/16/64@35 per 4

Grammar: ``cores=<n>``, ``clock=<GHz>``, ``mem=<cycles>`` in any order,
then one cache clause per level, innermost first:
``<level>:<size>/<ways>/<line>@<latency> per <cores-per-instance>``.
Sizes accept ``K``/``M`` suffixes.  Clauses are separated by ``;`` or
newlines.  The per-instance core counts must be non-decreasing and divide
the core count (level-uniform trees, like every machine in this library).
"""

from __future__ import annotations

import re

from repro.errors import TopologyError
from repro.topology.cache import CacheSpec
from repro.topology.machines import _uniform_tree
from repro.topology.tree import Machine

_SETTING = re.compile(r"^(cores|clock|mem|name)\s*=\s*([\w.\-]+)$")
_CACHE = re.compile(
    r"^(?P<level>\w+)\s*:\s*(?P<size>\d+(?:\.\d+)?)(?P<unit>[KMG]?)\s*/\s*"
    r"(?P<ways>\d+)\s*/\s*(?P<line>\d+)\s*@\s*(?P<latency>\d+)"
    r"(?:\s+per\s+(?P<per>\d+))?$"
)

_UNIT = {"": 1, "K": 1024, "M": 1024 * 1024, "G": 1024 * 1024 * 1024}


def parse_topology(spec: str) -> Machine:
    """Parse a topology spec string into a :class:`Machine`."""
    cores: int | None = None
    clock = 2.0
    memory_latency: int | None = None
    name = "custom"
    levels: list[tuple[CacheSpec, int]] = []

    clauses = [c.strip() for chunk in spec.splitlines() for c in chunk.split(";")]
    for clause in clauses:
        if not clause:
            continue
        setting = _SETTING.match(clause)
        if setting:
            key, value = setting.groups()
            if key == "cores":
                cores = int(value)
            elif key == "clock":
                clock = float(value)
            elif key == "mem":
                memory_latency = int(value)
            else:
                name = value
            continue
        cache = _CACHE.match(clause)
        if cache:
            size = int(float(cache["size"]) * _UNIT[cache["unit"]])
            spec_obj = CacheSpec(
                cache["level"],
                size,
                int(cache["ways"]),
                int(cache["line"]),
                int(cache["latency"]),
            )
            per = int(cache["per"]) if cache["per"] else 1
            levels.append((spec_obj, per))
            continue
        raise TopologyError(f"cannot parse topology clause {clause!r}")

    if cores is None:
        raise TopologyError("topology spec must set cores=<n>")
    if memory_latency is None:
        raise TopologyError("topology spec must set mem=<cycles>")
    if not levels:
        raise TopologyError("topology spec must define at least one cache level")
    pers = [per for _, per in levels]
    if pers != sorted(pers):
        raise TopologyError(
            "cache levels must be listed innermost first "
            "(non-decreasing 'per' counts)"
        )
    for _, per in levels:
        if cores % per:
            raise TopologyError(f"'per {per}' does not divide {cores} cores")
    root = _uniform_tree(cores, levels)
    sockets = max(1, cores // max(pers))
    return Machine(name, clock, memory_latency, root, sockets=sockets)
