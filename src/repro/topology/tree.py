"""The cache hierarchy tree ``T`` and the machine description ``A = {T, N}``.

The tree's root is the last-level cache; when a machine has several
last-level caches (both sockets carry one), off-chip memory is the root —
this is exactly the convention of Figure 6 in the paper.  Leaves are cores.

:class:`Machine` offers the queries the algorithms need:

* :meth:`Machine.clustering_degrees` — the per-level branching used by the
  hierarchical descent ("NumClusters = degree of nodes at level");
* :meth:`Machine.affinity_level` — the latency of the fastest cache two
  cores share ("two cores have affinity at cache L if both have access to
  that cache", Section 2);
* :meth:`Machine.cache_path` — the chain of cache components a core's
  accesses traverse (drives the simulator wiring);
* :meth:`Machine.truncated` — a machine whose tree only distinguishes the
  first k cache levels (the L1+L2 / L1+L2+L3 versions of Figure 20).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.topology.cache import CacheSpec


@dataclass(frozen=True)
class TopologyNode:
    """One node of the cache hierarchy tree.

    ``kind`` is ``"memory"`` (only ever the root), ``"cache"`` or
    ``"core"``.  Cache nodes carry a :class:`CacheSpec`; core nodes carry a
    ``core_id``.  Every instance gets a unique ``uid`` so two same-spec
    caches remain distinct components.
    """

    kind: str
    spec: CacheSpec | None = None
    core_id: int | None = None
    children: tuple["TopologyNode", ...] = ()
    uid: int = field(default_factory=itertools.count().__next__)

    def __post_init__(self) -> None:
        if self.kind not in ("memory", "cache", "core"):
            raise TopologyError(f"unknown node kind {self.kind!r}")
        if self.kind == "cache" and self.spec is None:
            raise TopologyError("cache node requires a spec")
        if self.kind == "core":
            if self.core_id is None:
                raise TopologyError("core node requires a core_id")
            if self.children:
                raise TopologyError("core nodes are leaves")
        if self.kind in ("memory", "cache") and not self.children:
            raise TopologyError(f"{self.kind} node must have children")

    @staticmethod
    def core(core_id: int) -> "TopologyNode":
        return TopologyNode("core", core_id=core_id)

    @staticmethod
    def cache(spec: CacheSpec, children: Sequence["TopologyNode"]) -> "TopologyNode":
        return TopologyNode("cache", spec=spec, children=tuple(children))

    @staticmethod
    def memory(children: Sequence["TopologyNode"]) -> "TopologyNode":
        return TopologyNode("memory", children=tuple(children))

    def walk(self) -> Iterator["TopologyNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def cores_below(self) -> tuple[int, ...]:
        """Core ids in left-to-right order under this node."""
        if self.kind == "core":
            return (self.core_id,)
        out: list[int] = []
        for child in self.children:
            out.extend(child.cores_below())
        return tuple(out)


@dataclass(frozen=True)
class Machine:
    """A machine: name, clock, memory latency and the cache tree."""

    name: str
    clock_ghz: float
    memory_latency: int  # core cycles
    root: TopologyNode
    sockets: int = 2

    def __post_init__(self) -> None:
        cores = self.root.cores_below()
        if sorted(cores) != list(range(len(cores))):
            raise TopologyError(
                f"machine {self.name!r}: core ids must be 0..n-1 left to right, got {cores}"
            )
        if self.memory_latency <= 0:
            raise TopologyError(f"machine {self.name!r}: non-positive memory latency")

    # -- basic queries ---------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self.root.cores_below())

    def core_ids(self) -> tuple[int, ...]:
        return self.root.cores_below()

    def cache_levels(self) -> tuple[str, ...]:
        """Distinct cache level names, ordered from closest-to-core up."""
        names: list[str] = []
        for node in self.root.walk():
            if node.kind == "cache" and node.spec.level not in names:
                names.append(node.spec.level)
        return tuple(sorted(names, key=_level_rank))

    def cache_nodes(self) -> tuple[TopologyNode, ...]:
        return tuple(n for n in self.root.walk() if n.kind == "cache")

    def total_cache_bytes(self) -> int:
        return sum(n.spec.size_bytes for n in self.cache_nodes())

    def cache_path(self, core_id: int) -> tuple[TopologyNode, ...]:
        """Cache components a core's accesses traverse, L1 first."""
        path = self._path_to_core(core_id)
        caches = tuple(n for n in path if n.kind == "cache")
        return tuple(reversed(caches))

    def _path_to_core(self, core_id: int) -> tuple[TopologyNode, ...]:
        def rec(node: TopologyNode) -> tuple[TopologyNode, ...] | None:
            if node.kind == "core":
                return (node,) if node.core_id == core_id else None
            for child in node.children:
                sub = rec(child)
                if sub is not None:
                    return (node,) + sub
            return None

        path = rec(self.root)
        if path is None:
            raise TopologyError(f"no core {core_id} in machine {self.name!r}")
        return path

    # -- affinity ---------------------------------------------------------------

    def shared_cache(self, core_a: int, core_b: int) -> TopologyNode | None:
        """The fastest cache both cores access, or None (only memory shared)."""
        if core_a == core_b:
            path = self.cache_path(core_a)
            return path[0] if path else None
        path_a = self._path_to_core(core_a)
        path_b = self._path_to_core(core_b)
        set_b = {n.uid for n in path_b}
        shared = [n for n in path_a if n.kind == "cache" and n.uid in set_b]
        return shared[-1] if shared else None

    def affinity_level(self, core_a: int, core_b: int) -> int | None:
        """Latency of the fastest shared cache; None when none is shared."""
        node = self.shared_cache(core_a, core_b)
        return node.spec.latency if node is not None else None

    def have_affinity(self, core_a: int, core_b: int) -> bool:
        return self.shared_cache(core_a, core_b) is not None

    # -- clustering support -------------------------------------------------------

    def clustering_degrees(self) -> tuple[int, ...]:
        """Branching factors for the hierarchical descent of Figure 6.

        Element ``k`` is the number of children each node has at depth
        ``k`` of the cache tree (root = depth 0).  Requires the tree to be
        level-uniform, which all machines in this library are.
        """
        degrees: list[int] = []
        frontier: list[TopologyNode] = [self.root]
        while frontier and frontier[0].kind != "core":
            degs = {len(node.children) for node in frontier}
            kinds = {node.kind for node in frontier}
            if len(degs) != 1 or len(kinds) != 1:
                raise TopologyError(
                    f"machine {self.name!r}: non-uniform tree level "
                    f"(degrees {degs}, kinds {kinds})"
                )
            degrees.append(degs.pop())
            frontier = [c for node in frontier for c in node.children]
        return tuple(degrees)

    def first_shared_level_groups(self) -> tuple[tuple[int, ...], ...]:
        """Core groups under each first (closest-to-core) *shared* cache.

        The local scheduler (Figure 7) walks "each shared cache S at the
        first shared cache level"; this returns, for each such cache, the
        cores below it.  When every cache is private the grouping degrades
        to one singleton group per core.
        """
        shared_nodes: list[TopologyNode] = []

        def rec(node: TopologyNode) -> None:
            if node.kind == "core":
                return
            for child in node.children:
                rec(child)
            # A shared cache has more than one core below it; keep the
            # *deepest* such nodes (closest to the cores).
            if node.kind == "cache" and len(node.cores_below()) > 1:
                if not any(
                    child.kind == "cache" and len(child.cores_below()) > 1
                    for child in node.children
                ):
                    shared_nodes.append(node)

        rec(self.root)
        if not shared_nodes:
            return tuple((c,) for c in self.core_ids())
        groups = [node.cores_below() for node in shared_nodes]
        # On a pruned/asymmetric tree a core can sit under no shared
        # cache at all (its sharing siblings are gone) while others
        # still do; such stragglers schedule as singleton sets so the
        # grouping always partitions the cores.
        covered = {c for g in groups for c in g}
        groups.extend((c,) for c in self.core_ids() if c not in covered)
        return tuple(sorted(groups))

    def is_level_uniform(self) -> bool:
        """True when :meth:`clustering_degrees` is well defined.

        A machine stops being level-uniform when cores are removed
        (:meth:`without_cores`) or an asymmetric hierarchy is described
        directly; the mapper then falls back to the per-node tree
        descent instead of the flat per-level one.
        """
        frontier: list[TopologyNode] = [self.root]
        while frontier and frontier[0].kind != "core":
            if len({len(n.children) for n in frontier}) != 1:
                return False
            if len({n.kind for n in frontier}) != 1:
                return False
            frontier = [c for node in frontier for c in node.children]
        return all(n.kind == "core" for n in frontier)

    # -- derived machines -----------------------------------------------------------

    def without_cores(self, dead: Sequence[int]) -> Machine:
        """Machine with the given cores removed (core loss / offline).

        Dead core leaves are pruned, caches left with nothing below them
        disappear, and the survivors are renumbered ``0..n-1`` in
        left-to-right tree order (the invariant every mapper query
        relies on).  Core ``k`` of the derived machine is therefore the
        ``k``-th surviving physical core; callers that need to talk
        about physical ids again (hot-plug) must keep the dead set
        themselves and re-derive from the base machine.
        """
        dead_set = frozenset(dead)
        if not dead_set:
            return self
        present = set(self.core_ids())
        unknown = sorted(dead_set - present)
        if unknown:
            raise TopologyError(f"machine {self.name!r}: no such cores {unknown}")
        survivors = [c for c in self.core_ids() if c not in dead_set]
        if not survivors:
            raise TopologyError(f"machine {self.name!r}: cannot remove every core")
        renumber = {old: new for new, old in enumerate(survivors)}

        def rebuild(node: TopologyNode) -> TopologyNode | None:
            if node.kind == "core":
                if node.core_id in dead_set:
                    return None
                return TopologyNode.core(renumber[node.core_id])
            children = [r for c in node.children if (r := rebuild(c)) is not None]
            if not children:
                return None
            if node.kind == "cache":
                return TopologyNode.cache(node.spec, children)
            return TopologyNode.memory(children)

        root = rebuild(self.root)
        assert root is not None  # survivors is non-empty
        suffix = ",".join(str(c) for c in sorted(dead_set))
        return Machine(
            f"{self.name}-less{suffix}",
            self.clock_ghz,
            self.memory_latency,
            root,
            self.sockets,
        )

    def truncated(self, keep_levels: int) -> Machine:
        """Machine whose tree only models the first ``keep_levels`` cache levels.

        Deeper caches are removed from the tree (their children are spliced
        into the parent), so the mapper no longer distinguishes them — this
        is how the L1+L2 and L1+L2+L3 versions of Figure 20 are produced.
        The physical machine is unchanged; only the mapper's view shrinks.
        """
        keep = set(self.cache_levels()[:keep_levels])

        def rebuild(node: TopologyNode) -> list[TopologyNode]:
            if node.kind == "core":
                return [TopologyNode.core(node.core_id)]
            children = [g for child in node.children for g in rebuild(child)]
            if node.kind == "cache" and node.spec.level not in keep:
                return children
            if node.kind == "cache":
                return [TopologyNode.cache(node.spec, children)]
            return [TopologyNode.memory(children)]

        rebuilt = rebuild(self.root)
        root = rebuilt[0] if len(rebuilt) == 1 and rebuilt[0].kind != "core" else TopologyNode.memory(rebuilt)
        return Machine(
            f"{self.name}-top{keep_levels}",
            self.clock_ghz,
            self.memory_latency,
            root,
            self.sockets,
        )

    def with_scaled_caches(self, factor: float) -> Machine:
        """Machine with every cache capacity scaled by ``factor`` (Figure 19)."""

        def rebuild(node: TopologyNode) -> TopologyNode:
            if node.kind == "core":
                return TopologyNode.core(node.core_id)
            children = [rebuild(c) for c in node.children]
            if node.kind == "cache":
                return TopologyNode.cache(node.spec.scaled(factor), children)
            return TopologyNode.memory(children)

        return Machine(
            f"{self.name}-x{factor:g}",
            self.clock_ghz,
            self.memory_latency,
            rebuild(self.root),
            self.sockets,
        )

    def describe(self) -> str:
        """Human-readable summary (one line per distinct cache level)."""
        lines = [f"{self.name}: {self.num_cores} cores ({self.sockets} sockets), {self.clock_ghz}GHz"]
        by_level: dict[str, list[TopologyNode]] = {}
        for node in self.cache_nodes():
            by_level.setdefault(node.spec.level, []).append(node)
        for level in self.cache_levels():
            nodes = by_level[level]
            sharers = len(nodes[0].cores_below())
            shared = "private" if sharers == 1 else f"shared by {sharers} cores"
            lines.append(f"  {nodes[0].spec} x{len(nodes)} ({shared})")
        lines.append(f"  memory latency {self.memory_latency} cycles")
        return "\n".join(lines)


def _level_rank(level: str) -> int:
    try:
        return int(level.lstrip("L"))
    except ValueError:
        return 99
