"""Concrete machine descriptions.

The three commercial machines follow Table 1 and Figure 1 of the paper:

* **Harpertown** — 8 cores, 2 sockets, private L1, L2 shared per core pair,
  no L3 (four last-level caches, so memory is the tree root);
* **Nehalem** — 8 cores, 2 sockets, private L1 and L2, L3 shared per socket;
* **Dunnington** — 12 cores, 2 sockets, private L1, L2 shared per core
  pair, L3 shared per socket.

Off-chip latencies are converted from the nanoseconds of Table 1 to core
cycles at each machine's clock (100 ns * 3.2 GHz = 320 cycles, and so on).

Figure 12's Arch-I and Arch-II are the deeper hypothetical hierarchies of
the simulation study: the paper shows their shapes but not their
parameters, so we pick binary-tree topologies with 4 and 5 on-chip levels
(Figure 20 references an L4 for Arch-I) and monotone size/latency ladders.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.cache import CacheSpec
from repro.topology.tree import Machine, TopologyNode

KB = 1024
MB = 1024 * KB


def _group(spec: CacheSpec, children_groups: list[list[TopologyNode]]) -> list[TopologyNode]:
    return [TopologyNode.cache(spec, group) for group in children_groups]


def _chunks(items: list[TopologyNode], size: int) -> list[list[TopologyNode]]:
    if len(items) % size:
        raise TopologyError(f"cannot split {len(items)} nodes into groups of {size}")
    return [items[k : k + size] for k in range(0, len(items), size)]


def _uniform_tree(
    num_cores: int, level_specs: list[tuple[CacheSpec, int]]
) -> TopologyNode:
    """Build a level-uniform tree.

    ``level_specs`` lists (spec, cores_per_instance) from L1 upward.  The
    returned node is the memory root when more than one top-level cache
    remains, otherwise the single last-level cache.
    """
    nodes: list[TopologyNode] = [TopologyNode.core(c) for c in range(num_cores)]
    covered = 1
    for spec, per_instance in level_specs:
        if per_instance % covered:
            raise TopologyError(
                f"{spec.level} covers {per_instance} cores, not a multiple of {covered}"
            )
        nodes = _group(spec, _chunks(nodes, per_instance // covered))
        covered = per_instance
    if len(nodes) == 1:
        return nodes[0]
    return TopologyNode.memory(nodes)


def harpertown() -> Machine:
    """Intel Harpertown: 8 cores, L1 private, L2 per core pair, no L3."""
    l1 = CacheSpec("L1", 32 * KB, 8, 64, 3)
    l2 = CacheSpec("L2", 6 * MB, 24, 64, 15)
    root = _uniform_tree(8, [(l1, 1), (l2, 2)])
    return Machine("harpertown", 3.2, 320, root, sockets=2)


def nehalem() -> Machine:
    """Intel Nehalem: 8 cores, private L1/L2, L3 per 4-core socket."""
    l1 = CacheSpec("L1", 32 * KB, 8, 64, 4)
    l2 = CacheSpec("L2", 256 * KB, 8, 64, 10)
    l3 = CacheSpec("L3", 8 * MB, 16, 64, 35)
    root = _uniform_tree(8, [(l1, 1), (l2, 1), (l3, 4)])
    return Machine("nehalem", 2.9, 174, root, sockets=2)


def dunnington() -> Machine:
    """Intel Dunnington: 12 cores, L1 private, L2 per pair, L3 per socket."""
    return dunnington_scaled(12)


def dunnington_scaled(num_cores: int) -> Machine:
    """Dunnington extended socket by socket (Figure 17: 12, 18, 24 cores).

    The paper grows the Figure 1(c) architecture six cores at a time; each
    extra socket brings its own L3 and three more pairwise-shared L2s.
    """
    if num_cores % 6:
        raise TopologyError("Dunnington scales in 6-core sockets")
    l1 = CacheSpec("L1", 32 * KB, 8, 64, 4)
    l2 = CacheSpec("L2", 3 * MB, 12, 64, 10)
    l3 = CacheSpec("L3", 12 * MB, 16, 64, 36)
    root = _uniform_tree(num_cores, [(l1, 1), (l2, 2), (l3, 6)])
    name = "dunnington" if num_cores == 12 else f"dunnington{num_cores}"
    return Machine(name, 2.4, 120, root, sockets=num_cores // 6)


def arch_i() -> Machine:
    """Figure 12(a): 16 cores, four on-chip cache levels (binary fan-out)."""
    l1 = CacheSpec("L1", 32 * KB, 8, 64, 4)
    l2 = CacheSpec("L2", 512 * KB, 8, 64, 10)
    l3 = CacheSpec("L3", 4 * MB, 16, 64, 24)
    l4 = CacheSpec("L4", 16 * MB, 16, 64, 45)
    root = _uniform_tree(16, [(l1, 1), (l2, 2), (l3, 4), (l4, 8)])
    return Machine("arch-I", 2.4, 150, root, sockets=2)


def arch_ii() -> Machine:
    """Figure 12(b): 32 cores, five on-chip cache levels (binary fan-out)."""
    l1 = CacheSpec("L1", 32 * KB, 8, 64, 4)
    l2 = CacheSpec("L2", 512 * KB, 8, 64, 10)
    l3 = CacheSpec("L3", 2 * MB, 16, 64, 20)
    l4 = CacheSpec("L4", 8 * MB, 16, 64, 40)
    l5 = CacheSpec("L5", 32 * MB, 16, 64, 55)
    root = _uniform_tree(32, [(l1, 1), (l2, 2), (l3, 4), (l4, 8), (l5, 16)])
    return Machine("arch-II", 2.4, 170, root, sockets=2)


def halve_caches(machine: Machine) -> Machine:
    """Every cache capacity cut in half (the Figure 19 configuration)."""
    return machine.with_scaled_caches(0.5)


_REGISTRY = {
    "harpertown": harpertown,
    "nehalem": nehalem,
    "dunnington": dunnington,
    "arch-I": arch_i,
    "arch-II": arch_ii,
}


_REGISTRY_FOLDED = {name.lower(): builder for name, builder in _REGISTRY.items()}


def builtin_names() -> tuple[str, ...]:
    """The builtin machine names, in registry order."""
    return tuple(_REGISTRY)


def machine_by_name(name: str) -> Machine:
    """Look up a machine builder by name (case-insensitive)."""
    builder = _REGISTRY_FOLDED.get(name.strip().lower())
    if builder is not None:
        return builder()
    from repro.errors import UnknownMachineError
    from repro.topology.resolve import known_machine_names

    raise UnknownMachineError(name, known_machine_names())


def commercial_machines() -> tuple[Machine, Machine, Machine]:
    """The three Intel machines of the hardware evaluation."""
    return harpertown(), nehalem(), dunnington()
