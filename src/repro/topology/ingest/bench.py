"""Micro-benchmark: sysfs parse + normalize time per zoo fixture.

Ingestion sits on the interactive path (``repro map --machine
sysfs:/sys`` pays it before any mapping starts), so it has a latency
budget: parse+normalize of the *largest* fixture (epyc2p, 32 cpus, 72
cache instances) should stay under ~100 ms.  This module times every
fixture and writes ``BENCH_ingest.json`` in the shape
``scripts/bench_check.py`` reads; the suite is registered there as
*informational* — shared-runner noise on a millisecond-scale number
should never fail a build, but the trend is recorded on every CI run.

The ``speedup`` metric is ``budget_ms / measured_ms``: >1 means under
budget, and a regression means ingestion got slower relative to the
committed baseline.

Usage::

    PYTHONPATH=src python -m repro.topology.ingest.bench --out BENCH_ingest.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.topology.ingest.normalize import normalize
from repro.topology.ingest.sysfs import load_sysfs
from repro.topology.ingest.zoo import zoo_dir, zoo_entries

DEFAULT_BUDGET_MS = 100.0
DEFAULT_REPEATS = 5


def time_fixture(path: str, smt_policy: str, repeats: int) -> float:
    """Best-of-N wall time (ms) for load+normalize of one dump."""
    from repro.topology.ingest.normalize import NormalizeOptions

    options = NormalizeOptions(smt_policy=smt_policy)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        normalize(load_sysfs(path), options)
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best


def run(budget_ms: float = DEFAULT_BUDGET_MS, repeats: int = DEFAULT_REPEATS) -> dict:
    directory = zoo_dir()
    entries_out = []
    for name, entry in sorted(zoo_entries().items()):
        path = os.path.join(directory, entry.file)
        ms = time_fixture(path, entry.smt_policy, repeats)
        entries_out.append({
            "fixture": name,
            "ms": round(ms, 3),
            "budget_ms": budget_ms,
            "speedup": round(budget_ms / ms, 3) if ms else 0.0,
        })
    largest = max(entries_out, key=lambda e: e["ms"], default=None)
    return {
        "suite": "ingest",
        "config": {"repeats": repeats, "budget_ms": budget_ms},
        "entries": entries_out,
        "largest": largest,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_ingest.json")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--budget-ms", type=float, default=DEFAULT_BUDGET_MS)
    args = parser.parse_args(argv)

    report = run(budget_ms=args.budget_ms, repeats=args.repeats)
    if not report["entries"]:
        print("no fixture corpus found; run scripts/gen_zoo_fixtures.py",
              file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    for entry in report["entries"]:
        flag = "" if entry["ms"] <= args.budget_ms else "  OVER BUDGET"
        print(f"{entry['fixture']:<16} {entry['ms']:8.2f}ms "
              f"(budget {args.budget_ms:.0f}ms){flag}")
    largest = report["largest"]
    print(f"largest: {largest['fixture']} at {largest['ms']:.2f}ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
