"""Load ``lscpu -J`` output into a :class:`RawTopology`.

``lscpu`` reports *aggregate* geometry — counts per socket, total cache
capacity per level with an instance count — not a per-cpu sharing map.
The loader therefore reconstructs a **uniform** topology from the
counts: cpus are split into equal consecutive blocks per socket, SMT
siblings are consecutive blocks per core, and each cache level's
instances divide the cpus evenly.  That is correct for the symmetric
servers lscpu is usually run on and explicitly approximate for anything
asymmetric — which is why sysfs is the primary source and lscpu mainly
serves :func:`cross_validate`.

Accepted input is the JSON document ``lscpu -J`` prints: a top-level
``{"lscpu": [...]}`` list of ``{"field": ..., "data": ...}`` entries,
optionally nested under ``children`` (newer util-linux releases).
"""

from __future__ import annotations

import json
import re

from repro import obs
from repro.errors import TopologyError
from repro.topology.ingest.raw import (
    RawCache,
    RawTopology,
    parse_cpu_list,
    parse_size,
)

_CACHE_FIELD = re.compile(r"^L(\d+)([di]?) cache$", re.IGNORECASE)
_INSTANCES = re.compile(r"^(.*?)\s*\((\d+)\s+instances?\)\s*$")
_MODEL_GHZ = re.compile(r"@\s*(\d+(?:\.\d+)?)\s*GHz", re.IGNORECASE)


def _flatten(entries, fields: dict[str, str]) -> None:
    for entry in entries:
        field = str(entry.get("field", "")).strip().rstrip(":")
        data = entry.get("data")
        if field and data is not None and field not in fields:
            fields[field] = str(data)
        children = entry.get("children")
        if children:
            _flatten(children, fields)


def parse_lscpu_json(text: str, source: str = "lscpu") -> dict[str, str]:
    """The flattened ``field -> data`` table from an ``lscpu -J`` document."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise TopologyError(f"{source}: not valid JSON: {error}") from None
    entries = document.get("lscpu") if isinstance(document, dict) else None
    if not isinstance(entries, list):
        raise TopologyError(f"{source}: missing top-level 'lscpu' list")
    fields: dict[str, str] = {}
    _flatten(entries, fields)
    if not fields:
        raise TopologyError(f"{source}: no field entries")
    return fields


def _int_field(fields: dict[str, str], name: str, default: int | None = None) -> int | None:
    text = fields.get(name)
    if text is None:
        return default
    try:
        return int(text.strip())
    except ValueError:
        raise TopologyError(f"lscpu field {name!r}: malformed integer {text!r}") from None


def _cache_entries(fields: dict[str, str]) -> list[tuple[int, str, int, int]]:
    """``(level, type, per_instance_bytes, instances)`` from the cache rows."""
    out = []
    for field, data in fields.items():
        m = _CACHE_FIELD.match(field)
        if not m:
            continue
        level = int(m.group(1))
        suffix = m.group(2).lower()
        if suffix == "i":
            obs.count("topology.ingest.icache_dropped")
            continue
        ctype = "Data" if suffix == "d" else "Unified"
        text, instances = data, 1
        inst = _INSTANCES.match(data)
        if inst:
            text, instances = inst.group(1), int(inst.group(2))
        total = parse_size(text, what=f"lscpu {field}")
        instances = max(1, instances)
        out.append((level, ctype, max(1, total // instances), instances))
    return sorted(out)


def _clock_ghz(fields: dict[str, str]) -> float | None:
    model = fields.get("Model name", "")
    m = _MODEL_GHZ.search(model)
    if m:
        return float(m.group(1))
    for name in ("CPU max MHz", "CPU MHz"):
        text = fields.get(name)
        if text:
            try:
                return round(float(text) / 1000.0, 3)
            except ValueError:
                continue
    return None


def _blocks(cpus: list[int], count: int) -> list[frozenset[int]]:
    """Split cpus into ``count`` equal consecutive blocks (uniform guess)."""
    if count <= 0 or len(cpus) % count:
        return [frozenset(cpus)]
    per = len(cpus) // count
    return [frozenset(cpus[k : k + per]) for k in range(0, len(cpus), per)]


def load_lscpu(path: str) -> RawTopology:
    """Parse a saved ``lscpu -J`` document into a RawTopology."""
    with obs.span("topology.ingest.lscpu", path=path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as error:
            raise TopologyError(f"cannot read lscpu dump {path!r}: {error}") from None
        return parse_lscpu_text(text, source=f"lscpu:{path}")


def parse_lscpu_text(text: str, source: str = "lscpu") -> RawTopology:
    fields = parse_lscpu_json(text, source)

    ncpus = _int_field(fields, "CPU(s)")
    online_text = fields.get("On-line CPU(s) list")
    if online_text is not None:
        cpus = sorted(parse_cpu_list(online_text, what="On-line CPU(s) list"))
    elif ncpus:
        cpus = list(range(ncpus))
    else:
        raise TopologyError(f"{source}: neither 'CPU(s)' nor an online list present")
    if not cpus:
        raise TopologyError(f"{source}: no online cpus")
    obs.count("topology.ingest.cpus", len(cpus))

    threads = _int_field(fields, "Thread(s) per core", 1) or 1
    cores_per_socket = _int_field(fields, "Core(s) per socket", 0) or 0
    sockets = _int_field(fields, "Socket(s)", 1) or 1

    packages = {
        pkg: block for pkg, block in enumerate(_blocks(cpus, sockets))
    }
    siblings: dict[int, frozenset[int]] = {}
    if threads > 1 and len(cpus) % threads == 0:
        for block in _blocks(cpus, len(cpus) // threads):
            for cpu in block:
                siblings[cpu] = block
    else:
        for cpu in cpus:
            siblings[cpu] = frozenset((cpu,))

    caches = []
    for level, ctype, size, instances in _cache_entries(fields):
        for block in _blocks(cpus, instances):
            caches.append(
                RawCache(level=level, type=ctype, size_bytes=size, shared_cpus=block)
            )
    obs.count("topology.ingest.caches", len(caches))

    raw = RawTopology(
        source=source,
        cpus=tuple(cpus),
        packages=packages,
        core_siblings=siblings,
        caches=tuple(caches),
        clock_ghz=_clock_ghz(fields),
    )
    raw.validate()
    # Record the uniform reconstruction so reports can flag it.
    if cores_per_socket and sockets and threads:
        expected = cores_per_socket * sockets * threads
        if expected != len(cpus):
            obs.count("topology.ingest.lscpu_count_mismatch")
    return raw


def cross_validate(sysfs: RawTopology, lscpu: RawTopology) -> list[str]:
    """Compare a sysfs topology against an lscpu one; return discrepancies.

    A different cpu count is a hard error (the two dumps describe
    different machines); weaker disagreements — per-level capacity,
    package count, clock — come back as human-readable strings for the
    caller to print.  An empty list means the sources agree.
    """
    if len(sysfs.cpus) != len(lscpu.cpus):
        raise TopologyError(
            f"cross-validation failed: {sysfs.source} has {len(sysfs.cpus)} "
            f"online cpus but {lscpu.source} has {len(lscpu.cpus)}"
        )
    issues: list[str] = []
    if set(sysfs.cpus) != set(lscpu.cpus):
        issues.append(
            f"cpu id sets differ: sysfs {sorted(sysfs.cpus)} vs "
            f"lscpu {sorted(lscpu.cpus)}"
        )
    if len(sysfs.packages) != len(lscpu.packages):
        issues.append(
            f"package counts differ: sysfs {len(sysfs.packages)} vs "
            f"lscpu {len(lscpu.packages)}"
        )
    sys_bytes = sysfs.level_bytes()
    ls_bytes = lscpu.level_bytes()
    for level in sorted(set(sys_bytes) | set(ls_bytes)):
        a, b = sys_bytes.get(level), ls_bytes.get(level)
        if a is None or b is None:
            issues.append(
                f"L{level} present only in {'sysfs' if b is None else 'lscpu'}"
            )
        elif a != b:
            # Tolerate < 1% slack (lscpu rounds to whole KiB/MiB).
            if abs(a - b) * 100 > max(a, b):
                issues.append(
                    f"L{level} total capacity differs: sysfs {a} bytes vs "
                    f"lscpu {b} bytes"
                )
    if issues:
        obs.count("topology.ingest.crosscheck_issues", len(issues))
    return issues
