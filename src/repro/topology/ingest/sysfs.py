"""Load a Linux sysfs cpu topology into a :class:`RawTopology`.

Reads the attribute files the kernel exposes under
``/sys/devices/system/cpu``::

    cpu<N>/online
    cpu<N>/topology/{physical_package_id,package_cpus_list,core_cpus_list,
                     thread_siblings_list,core_siblings_list}
    cpu<N>/cache/index<K>/{level,type,size,shared_cpu_list,
                           coherency_line_size,ways_of_associativity}

from either the **live filesystem** (point it at ``/sys``), a **copied
directory dump**, or a **tar archive** of one (``.tar``, ``.tar.gz``,
``.tgz`` — the fixture corpus format).  The loader finds the cpu root
itself: the given path may be ``/sys``, ``/sys/devices/system/cpu``, or
a dump directory containing either layout.

Everything is read in *sorted* order and collected into sets, so the
result is independent of directory-listing or archive-member order —
the property the hypothesis round-trip suite pins.

The loader is deliberately forgiving about real-world gaps: offline
cpus have no readable topology or cache attributes (they are recorded
in ``offline`` and otherwise skipped), holey cpu numbering is kept
as-is, missing ``ways_of_associativity``/``coherency_line_size`` become
``None`` for the normalizer to default, and Instruction caches are
dropped (counted as ``topology.ingest.icache_dropped``).  What it does
*not* forgive is a dump with no cpus at all, or attribute files that
exist but cannot be parsed — those raise :class:`TopologyError` naming
the offending file.
"""

from __future__ import annotations

import os
import re
import tarfile
from dataclasses import dataclass

from repro import obs
from repro.errors import TopologyError
from repro.topology.ingest.raw import (
    RawCache,
    RawTopology,
    parse_cpu_list,
    parse_cpu_mask,
    parse_size,
)

#: Relative locations (under the dump root) where the cpu directory may
#: live; checked in order.
_CPU_ROOT_CANDIDATES = ("", "devices/system/cpu", "sys/devices/system/cpu")

_CPU_DIR = re.compile(r"^cpu(\d+)$")
_INDEX_DIR = re.compile(r"^index(\d+)$")

#: Archive suffixes the tar reader accepts.
TAR_SUFFIXES = (".tar", ".tar.gz", ".tgz")


class _DirSource:
    """File access over a plain directory tree (live /sys or a dump)."""

    def __init__(self, root: str):
        self.root = root
        self.label = root

    def listdir(self, rel: str) -> list[str]:
        path = os.path.join(self.root, rel) if rel else self.root
        try:
            return sorted(os.listdir(path))
        except OSError:
            return []

    def read(self, rel: str) -> str | None:
        try:
            with open(os.path.join(self.root, rel), "r", encoding="ascii") as fh:
                return fh.read()
        except OSError:
            return None
        except UnicodeDecodeError:
            return None


class _TarSource:
    """File access over a tar archive of a sysfs dump.

    Members are indexed up front (sorted), so lookups are O(1) and the
    member order inside the archive is irrelevant.
    """

    def __init__(self, path: str):
        self.label = path
        self._files: dict[str, str] = {}
        self._dirs: dict[str, set[str]] = {}
        try:
            with tarfile.open(path, "r:*") as tar:
                for member in tar.getmembers():
                    if not member.isfile():
                        continue
                    handle = tar.extractfile(member)
                    if handle is None:  # pragma: no cover - non-regular member
                        continue
                    name = member.name.lstrip("./")
                    try:
                        self._files[name] = handle.read().decode("ascii")
                    except UnicodeDecodeError:
                        continue
        except (tarfile.TarError, OSError) as error:
            raise TopologyError(f"cannot read sysfs archive {path!r}: {error}") from None
        for name in self._files:
            parts = name.split("/")
            for depth in range(len(parts)):
                parent = "/".join(parts[:depth])
                self._dirs.setdefault(parent, set()).add(parts[depth])

    def listdir(self, rel: str) -> list[str]:
        return sorted(self._dirs.get(rel.strip("/"), ()))

    def read(self, rel: str) -> str | None:
        return self._files.get(rel.strip("/"))


def _open_source(path: str):
    if os.path.isdir(path):
        return _DirSource(path)
    if path.endswith(TAR_SUFFIXES) and os.path.isfile(path):
        return _TarSource(path)
    raise TopologyError(
        f"sysfs dump {path!r} is neither a directory nor a {'/'.join(TAR_SUFFIXES)} archive"
    )


def _find_cpu_root(source) -> str:
    for candidate in _CPU_ROOT_CANDIDATES:
        names = source.listdir(candidate)
        if any(_CPU_DIR.match(name) for name in names):
            return candidate
    raise TopologyError(
        f"no cpu<N> directories under {source.label!r} "
        f"(looked in {', '.join(repr(c or '.') for c in _CPU_ROOT_CANDIDATES)})"
    )


def _join(*parts: str) -> str:
    return "/".join(p for p in parts if p)


def _read_int(source, rel: str) -> int | None:
    text = source.read(rel)
    if text is None or not text.strip():
        return None
    try:
        return int(text.strip())
    except ValueError:
        raise TopologyError(f"{source.label}: malformed integer in {rel!r}: {text.strip()!r}") from None


def _read_cpus(source, rel_list: str, rel_mask: str) -> frozenset[int] | None:
    """A cpu set from its ``*_list`` file, falling back to the hex mask."""
    text = source.read(rel_list)
    if text is not None:
        return parse_cpu_list(text, what=rel_list)
    text = source.read(rel_mask)
    if text is not None:
        return parse_cpu_mask(text, what=rel_mask)
    return None


def _is_online(source, cpu_dir: str, cpu: int) -> bool:
    # cpu0 usually has no ``online`` file (not hot-pluggable): treat a
    # missing file as online, the kernel's own convention.
    flag = _read_int(source, _join(cpu_dir, "online"))
    return True if flag is None else bool(flag)


def _load_cpu_caches(source, cpu_dir: str, cpu: int, online: frozenset[int]) -> list[RawCache]:
    caches: list[RawCache] = []
    cache_dir = _join(cpu_dir, "cache")
    for name in source.listdir(cache_dir):
        if not _INDEX_DIR.match(name):
            continue
        index_dir = _join(cache_dir, name)
        level = _read_int(source, _join(index_dir, "level"))
        ctype_text = source.read(_join(index_dir, "type"))
        size_text = source.read(_join(index_dir, "size"))
        if level is None or ctype_text is None or size_text is None:
            # Live sysfs occasionally exposes index dirs with unreadable
            # attributes (restricted containers); skip, don't invent.
            obs.count("topology.ingest.index_skipped")
            continue
        ctype = ctype_text.strip()
        if ctype == "Instruction":
            obs.count("topology.ingest.icache_dropped")
            continue
        shared = _read_cpus(
            source,
            _join(index_dir, "shared_cpu_list"),
            _join(index_dir, "shared_cpu_map"),
        )
        if shared is None:
            # No sharing information at all: private to this cpu.
            shared = frozenset((cpu,))
            obs.count("topology.ingest.shared_defaulted")
        caches.append(
            RawCache(
                level=level,
                type=ctype,
                size_bytes=parse_size(size_text, what=_join(index_dir, "size")),
                shared_cpus=shared & online or frozenset((cpu,)),
                line_size=_read_int(source, _join(index_dir, "coherency_line_size")),
                ways=_read_int(source, _join(index_dir, "ways_of_associativity")),
            )
        )
    return caches


@dataclass(frozen=True)
class SysfsDump:
    """Where a raw topology came from (for error messages and reports)."""

    path: str
    cpu_root: str


def load_sysfs(path: str) -> RawTopology:
    """Parse a sysfs tree (live, copied, or tarred) into a RawTopology."""
    with obs.span("topology.ingest.sysfs", path=path):
        source = _open_source(path)
        cpu_root = _find_cpu_root(source)

        cpu_ids = sorted(
            int(m.group(1))
            for name in source.listdir(cpu_root)
            if (m := _CPU_DIR.match(name))
        )
        online: list[int] = []
        offline: list[int] = []
        for cpu in cpu_ids:
            cpu_dir = _join(cpu_root, f"cpu{cpu}")
            (online if _is_online(source, cpu_dir, cpu) else offline).append(cpu)
        if not online:
            raise TopologyError(f"{source.label}: no online cpus in dump")
        online_set = frozenset(online)
        obs.count("topology.ingest.cpus", len(online))
        obs.count("topology.ingest.cpus_offline", len(offline))

        packages: dict[int, set[int]] = {}
        core_siblings: dict[int, frozenset[int]] = {}
        seen_caches: dict[tuple, RawCache] = {}
        for cpu in online:
            cpu_dir = _join(cpu_root, f"cpu{cpu}")
            topo = _join(cpu_dir, "topology")

            package = _read_int(source, _join(topo, "physical_package_id"))
            if package is None:
                pkg_cpus = _read_cpus(
                    source, _join(topo, "package_cpus_list"), _join(topo, "package_cpus")
                )
                if pkg_cpus:
                    # Synthesize a package id from the set's smallest member.
                    package = min(pkg_cpus)
                else:
                    package = 0
            packages.setdefault(package, set()).add(cpu)

            siblings = _read_cpus(
                source, _join(topo, "core_cpus_list"), _join(topo, "core_cpus")
            )
            if siblings is None:
                siblings = _read_cpus(
                    source,
                    _join(topo, "thread_siblings_list"),
                    _join(topo, "thread_siblings"),
                )
            if siblings is None:
                siblings = frozenset((cpu,))
            core_siblings[cpu] = (siblings & online_set) | {cpu}

            for cache in _load_cpu_caches(source, cpu_dir, cpu, online_set):
                key = (cache.level, cache.type, cache.shared_cpus)
                existing = seen_caches.get(key)
                if existing is not None and existing.size_bytes != cache.size_bytes:
                    raise TopologyError(
                        f"{source.label}: conflicting sizes for {cache.describe()}: "
                        f"{existing.size_bytes} vs {cache.size_bytes}"
                    )
                seen_caches.setdefault(key, cache)

        caches = tuple(
            sorted(
                seen_caches.values(),
                key=lambda c: (c.level, min(c.shared_cpus), c.type),
            )
        )
        obs.count("topology.ingest.caches", len(caches))

        # Clock from cpufreq when exposed (kHz); dumps often lack it, and
        # the normalizer has a default.
        clock_ghz = None
        for rel in (
            _join(cpu_root, f"cpu{online[0]}", "cpufreq", "cpuinfo_max_freq"),
            _join(cpu_root, f"cpu{online[0]}", "cpufreq", "scaling_max_freq"),
        ):
            khz = _read_int(source, rel)
            if khz:
                clock_ghz = round(khz / 1_000_000, 3)
                break

        raw = RawTopology(
            source=f"sysfs:{path}",
            cpus=tuple(online),
            offline=tuple(offline),
            packages={pkg: frozenset(cpus) for pkg, cpus in sorted(packages.items())},
            core_siblings=core_siblings,
            caches=caches,
            clock_ghz=clock_ghz,
        )
        raw.validate()
        return raw
