"""Real-hardware topology ingestion.

Three stages, deliberately separated:

* loaders (:mod:`.sysfs`, :mod:`.lscpu`) read a source faithfully into a
  :class:`~repro.topology.ingest.raw.RawTopology` — hardware-thread ids,
  per-instance sharing sets, nothing invented;
* the normalizer (:mod:`.normalize`) applies policy — SMT folding,
  latency defaults, geometry repair, tree validation — and emits the
  mapper's :class:`~repro.topology.tree.Machine`;
* the zoo (:mod:`.zoo`) is the committed fixture corpus behind
  ``--machine zoo:<name>``.

The two convenience entry points bundle load+normalize::

    machine = ingest_sysfs("/sys")                   # live machine
    machine = ingest_sysfs("dump.tar.gz")            # fixture archive
    machine = ingest_lscpu("lscpu.json")             # saved lscpu -J
"""

from __future__ import annotations

from repro.topology.ingest.lscpu import cross_validate, load_lscpu, parse_lscpu_text
from repro.topology.ingest.normalize import (
    NormalizeOptions,
    SMT_POLICIES,
    default_latency,
    normalize,
)
from repro.topology.ingest.raw import (
    RawCache,
    RawTopology,
    parse_cpu_list,
    parse_cpu_mask,
    parse_size,
)
from repro.topology.ingest.sysfs import load_sysfs
from repro.topology.ingest.zoo import ZooEntry, zoo_dir, zoo_entries, zoo_machine, zoo_names
from repro.topology.tree import Machine


def ingest_sysfs(path: str, options: NormalizeOptions | None = None) -> Machine:
    """Load a sysfs tree (live, copied, or tarred) and normalize it."""
    return normalize(load_sysfs(path), options)


def ingest_lscpu(path: str, options: NormalizeOptions | None = None) -> Machine:
    """Load a saved ``lscpu -J`` document and normalize it."""
    return normalize(load_lscpu(path), options)


__all__ = [
    "Machine",
    "NormalizeOptions",
    "RawCache",
    "RawTopology",
    "SMT_POLICIES",
    "ZooEntry",
    "cross_validate",
    "default_latency",
    "ingest_lscpu",
    "ingest_sysfs",
    "load_lscpu",
    "load_sysfs",
    "normalize",
    "parse_cpu_list",
    "parse_cpu_mask",
    "parse_lscpu_text",
    "parse_size",
    "zoo_dir",
    "zoo_entries",
    "zoo_machine",
    "zoo_names",
]
