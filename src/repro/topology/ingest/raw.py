"""Raw, source-shaped topology descriptions.

Both loaders (:mod:`repro.topology.ingest.sysfs` and
:mod:`repro.topology.ingest.lscpu`) parse their input into the same
intermediate form — :class:`RawTopology` — which still speaks in
*hardware thread ids* and per-instance sharing sets, exactly as the
kernel reports them.  The normalizer
(:mod:`repro.topology.ingest.normalize`) is the only place that turns
this into the mapper's :class:`~repro.topology.tree.Machine`.

The split keeps each loader dumb and testable: a loader's job is only
to read files faithfully (holey cpu numbering, offline cpus, split
L1i/L1d, missing attributes), never to decide topology policy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import TopologyError

#: Cache ``type`` values sysfs can report; anything else is rejected.
CACHE_TYPES = ("Data", "Instruction", "Unified")


def parse_cpu_list(text: str, what: str = "cpu list") -> frozenset[int]:
    """Parse a kernel cpu-list string (``"0-3,8,10-11"``) into a set.

    The empty string is an empty set (sysfs uses it for "no cpus").
    """
    cpus: set[int] = set()
    text = text.strip()
    if not text:
        return frozenset()
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        m = re.fullmatch(r"(\d+)(?:-(\d+))?", chunk)
        if not m:
            raise TopologyError(f"malformed {what} {text!r}: bad range {chunk!r}")
        lo = int(m.group(1))
        hi = int(m.group(2)) if m.group(2) is not None else lo
        if hi < lo:
            raise TopologyError(f"malformed {what} {text!r}: range {chunk!r} is reversed")
        cpus.update(range(lo, hi + 1))
    return frozenset(cpus)


def parse_cpu_mask(text: str, what: str = "cpu mask") -> frozenset[int]:
    """Parse a kernel hex cpumask (``"ff"``, ``"3,00000000"``) into a set."""
    text = text.strip().replace(",", "")
    if not text:
        return frozenset()
    try:
        value = int(text, 16)
    except ValueError:
        raise TopologyError(f"malformed {what} {text!r}") from None
    return frozenset(i for i in range(value.bit_length()) if value >> i & 1)


def parse_size(text: str, what: str = "cache size") -> int:
    """Parse a size string (``"32K"``, ``"6144K"``, ``"1M"``, ``"48 KiB"``)."""
    m = re.fullmatch(
        r"\s*(\d+(?:\.\d+)?)\s*([KMG]i?B?)?\s*", text, flags=re.IGNORECASE
    )
    if not m:
        raise TopologyError(f"malformed {what} {text!r}")
    value = float(m.group(1))
    unit = (m.group(2) or "").upper().rstrip("B").rstrip("I")
    factor = {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3}[unit]
    size = int(value * factor)
    if size <= 0:
        raise TopologyError(f"non-positive {what} {text!r}")
    return size


@dataclass(frozen=True)
class RawCache:
    """One physical cache instance as the source reported it.

    ``shared_cpus`` holds *hardware thread* ids.  ``line_size`` and
    ``ways`` are ``None`` when the dump lacks them (the normalizer
    substitutes defaults); ``ways == 0`` is the kernel's encoding of a
    fully-associative cache.
    """

    level: int
    type: str
    size_bytes: int
    shared_cpus: frozenset[int]
    line_size: int | None = None
    ways: int | None = None

    def __post_init__(self) -> None:
        if self.level < 1:
            raise TopologyError(f"cache level must be >= 1, got {self.level}")
        if self.type not in CACHE_TYPES:
            raise TopologyError(
                f"unknown cache type {self.type!r}; known: {CACHE_TYPES}"
            )
        if self.size_bytes <= 0:
            raise TopologyError(f"L{self.level}: non-positive size {self.size_bytes}")
        if not self.shared_cpus:
            raise TopologyError(f"L{self.level}: cache shared by no cpus")

    def describe(self) -> str:
        cpus = ",".join(str(c) for c in sorted(self.shared_cpus))
        return f"L{self.level} {self.type} {self.size_bytes}B cpus[{cpus}]"


@dataclass
class RawTopology:
    """What a loader saw: hardware threads, sibling sets, cache instances.

    * ``cpus`` — online hardware-thread ids, possibly holey (``0-5,8-13``);
    * ``offline`` — ids that exist in the dump but are offline;
    * ``packages`` — physical package id -> online cpus in it;
    * ``core_siblings`` — cpu -> SMT sibling set (always contains the
      cpu itself; singleton when there is no SMT);
    * ``caches`` — deduplicated cache instances (Instruction caches are
      already dropped by the loaders, with a counter);
    * ``clock_ghz`` — when the source states one (lscpu model names do).
    """

    source: str
    cpus: tuple[int, ...]
    offline: tuple[int, ...] = ()
    packages: dict[int, frozenset[int]] = field(default_factory=dict)
    core_siblings: dict[int, frozenset[int]] = field(default_factory=dict)
    caches: tuple[RawCache, ...] = ()
    clock_ghz: float | None = None

    def validate(self) -> None:
        """Source-independent sanity checks, before any normalization."""
        if not self.cpus:
            raise TopologyError(f"{self.source}: no online cpus")
        online = set(self.cpus)
        if len(self.cpus) != len(online):
            raise TopologyError(f"{self.source}: duplicate cpu ids")
        if online & set(self.offline):
            raise TopologyError(f"{self.source}: cpus both online and offline")
        for cpu, siblings in self.core_siblings.items():
            if cpu not in siblings:
                raise TopologyError(
                    f"{self.source}: cpu{cpu} missing from its own sibling set"
                )
        for cache in self.caches:
            stray = cache.shared_cpus - online
            if stray:
                raise TopologyError(
                    f"{self.source}: {cache.describe()} names offline/unknown "
                    f"cpus {sorted(stray)}"
                )

    def levels(self) -> tuple[int, ...]:
        return tuple(sorted({c.level for c in self.caches}))

    def level_bytes(self) -> dict[int, int]:
        """Total capacity per level (Data+Unified), for cross-validation."""
        totals: dict[int, int] = {}
        for cache in self.caches:
            totals[cache.level] = totals.get(cache.level, 0) + cache.size_bytes
        return totals
