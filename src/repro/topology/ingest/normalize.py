"""Turn a :class:`RawTopology` into the mapper's :class:`Machine`.

Real dumps differ from the hand-written machine library in four ways the
normalizer has to absorb:

* **SMT** — hardware threads are not cores.  The ``smt_policy`` knob
  picks between folding each sibling set into one logical core
  (``"merge"``, the default — the paper's machines are thread-per-core)
  and modelling every hardware thread as a core that shares its L1 with
  its siblings (``"threads"``).
* **Geometry gaps** — dumps carry sizes but rarely timings, sometimes no
  associativity, and occasionally sizes that violate the library's
  power-of-two line invariants.  Missing values get documented defaults
  (see ``docs/TOPOLOGY.md``); impossible ones are *adjusted* (and
  counted), never fatal.
* **Numbering** — cpu ids may be holey (``0-5,8-13``) and offline cpus
  absent.  Leaves are renumbered ``0..n-1`` in deterministic tree order,
  the invariant every mapper query relies on.
* **Shape** — the sharing sets must form a tree (a *laminar family*).
  A dump where two caches overlap without nesting is rejected with a
  precise :class:`TopologyError`; it cannot be mapped.

The output is deterministic: the same raw topology always yields the
same tree, child order, and core numbering, so fixture digests are
stable.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro import obs
from repro.errors import TopologyError
from repro.topology.cache import CacheSpec
from repro.topology.ingest.raw import RawCache, RawTopology
from repro.topology.tree import Machine, TopologyNode

KB = 1024
MB = 1024 * KB

#: SMT sibling folding policies.
SMT_POLICIES = ("merge", "threads")

#: Default access latency (core cycles) per cache level, for dumps that
#: carry no timing.  Values sit inside the ranges of the paper's Table 1
#: machines; sizes far from the reference adjust them (see
#: :func:`default_latency`).
BASE_LATENCY = {1: 4, 2: 12, 3: 30, 4: 45, 5: 55}

#: Reference capacity per level for the size adjustment.
REFERENCE_BYTES = {1: 32 * KB, 2: 512 * KB, 3: 8 * MB, 4: 16 * MB, 5: 32 * MB}

DEFAULT_LINE_SIZE = 64
DEFAULT_CLOCK_GHZ = 2.0
DEFAULT_MEMORY_NS = 100.0


@dataclass(frozen=True)
class NormalizeOptions:
    """Policy knobs for :func:`normalize`.

    ``memory_latency`` (cycles) wins over ``memory_latency_ns`` (which
    is converted at the machine's clock); both model the off-chip
    access the dump cannot describe.
    """

    smt_policy: str = "merge"
    name: str | None = None
    clock_ghz: float | None = None
    memory_latency: int | None = None
    memory_latency_ns: float = DEFAULT_MEMORY_NS

    def __post_init__(self) -> None:
        if self.smt_policy not in SMT_POLICIES:
            raise TopologyError(
                f"unknown smt policy {self.smt_policy!r}; known: {SMT_POLICIES}"
            )
        if self.memory_latency is not None and self.memory_latency <= 0:
            raise TopologyError("memory latency must be positive")
        if self.memory_latency_ns <= 0:
            raise TopologyError("memory latency (ns) must be positive")


def default_latency(level: int, size_bytes: int) -> int:
    """Latency default for a cache the dump gave no timing for.

    Base value per level, plus two cycles per doubling above the
    reference capacity (minus two per halving, floored at half the
    base): a 105 MB L3 should not be modelled as fast as an 8 MB one.
    """
    base = BASE_LATENCY.get(level, 55 + 12 * max(0, level - 5))
    ref = REFERENCE_BYTES.get(level, 32 * MB << max(0, (level - 5) * 2))
    delta = int(round(2 * math.log2(size_bytes / ref)))
    return max(1, max(base // 2, base + delta))


def _pick_line_size(line: int | None) -> int:
    if line is not None and line > 0 and not (line & (line - 1)):
        return line
    if line is not None:
        obs.count("topology.ingest.line_defaulted")
    return DEFAULT_LINE_SIZE


def _pick_ways(lines: int, ways: int | None) -> int:
    # ways == 0 is the kernel's encoding of a fully-associative cache.
    if ways == 0:
        return lines
    if ways is not None and ways > 0 and lines % ways == 0:
        return ways
    if ways is not None:
        obs.count("topology.ingest.ways_adjusted")
    for candidate in (16, 12, 8, 4, 2, 1):
        if lines % candidate == 0:
            return candidate
    return 1


def _cache_spec(cache: RawCache, latency: int) -> CacheSpec:
    line = _pick_line_size(cache.line_size)
    size = cache.size_bytes
    if size % line:
        # Real machines report sizes like 107520K that are still
        # line-aligned; anything that is not gets rounded down so the
        # geometry invariants hold.  The loss is < one line.
        size = max(line, size - size % line)
        obs.count("topology.ingest.size_adjusted")
    return CacheSpec(
        level=f"L{cache.level}",
        size_bytes=size,
        associativity=_pick_ways(size // line, cache.ways),
        line_size=line,
        latency=latency,
    )


def _sibling_groups(raw: RawTopology) -> dict[int, frozenset[int]]:
    """cpu -> its full SMT sibling group, transitively closed.

    Kernel sibling files are usually consistent, but a dump edited by
    hand (or taken mid-hotplug) may say ``{a,b}`` on a and ``{b,c}`` on
    b; union-find makes the groups well defined either way.
    """
    parent: dict[int, int] = {cpu: cpu for cpu in raw.cpus}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    online = set(raw.cpus)
    for cpu, siblings in raw.core_siblings.items():
        if cpu not in online:
            continue
        for sib in siblings & online:
            parent[find(sib)] = find(cpu)
    groups: dict[int, set[int]] = {}
    for cpu in raw.cpus:
        groups.setdefault(find(cpu), set()).add(cpu)
    return {cpu: frozenset(groups[find(cpu)]) for cpu in raw.cpus}


def _collapse_caches(
    raw: RawTopology, cpu_map: dict[int, int]
) -> list[tuple[int, frozenset[int], RawCache]]:
    """Project caches through the SMT folding and collapse duplicates.

    Returns ``(level, logical_cpu_set, raw_cache)`` entries with one
    entry per (level, set).  When a split L1 leaves both a Data and a
    Unified instance on the same set, the Data one wins (the paper's
    model is a data-cache hierarchy) and the collapse is counted.
    """
    chosen: dict[tuple[int, frozenset[int]], RawCache] = {}
    for cache in raw.caches:
        mapped = frozenset(cpu_map[c] for c in cache.shared_cpus if c in cpu_map)
        if not mapped:
            continue
        key = (cache.level, mapped)
        existing = chosen.get(key)
        if existing is None:
            chosen[key] = cache
        elif existing.type != cache.type:
            obs.count("topology.ingest.type_collapsed")
            if cache.type == "Data":
                chosen[key] = cache
        elif existing.size_bytes != cache.size_bytes:
            raise TopologyError(
                f"{raw.source}: conflicting sizes for L{cache.level} over "
                f"cpus {sorted(mapped)}: {existing.size_bytes} vs {cache.size_bytes}"
            )
    return [(level, cpus, cache) for (level, cpus), cache in sorted(
        chosen.items(), key=lambda kv: (kv[0][0], min(kv[0][1]))
    )]


def _check_laminar(
    source: str, entries: list[tuple[int, frozenset[int], RawCache]]
) -> None:
    """Reject sharing maps that do not form a tree.

    Every pair of cache cpu-sets must be disjoint or nested; two caches
    at the *same* level must be disjoint outright (same-level nesting
    would mean a cpu behind two different caches of one level).
    """
    for i, (level_a, set_a, cache_a) in enumerate(entries):
        for level_b, set_b, cache_b in entries[i + 1 :]:
            common = set_a & set_b
            if not common:
                continue
            if level_a == level_b:
                raise TopologyError(
                    f"{source}: non-tree sharing map: {cache_a.describe()} and "
                    f"{cache_b.describe()} are both L{level_a} but overlap on "
                    f"cpus {sorted(common)}"
                )
            if not (set_a <= set_b or set_b <= set_a):
                raise TopologyError(
                    f"{source}: non-tree sharing map: {cache_a.describe()} and "
                    f"{cache_b.describe()} overlap on cpus {sorted(common)} "
                    f"without nesting"
                )
            if level_a < level_b and not set_a <= set_b:
                raise TopologyError(
                    f"{source}: inverted sharing map: L{level_a} "
                    f"{sorted(set_a)} is wider than enclosing L{level_b} "
                    f"{sorted(set_b)}"
                )


def _sanitize_name(text: str) -> str:
    text = re.sub(r"[^A-Za-z0-9_.:-]+", "-", text).strip("-")
    return text or "ingested"


def normalize(raw: RawTopology, options: NormalizeOptions | None = None) -> Machine:
    """Build a mappable :class:`Machine` from a raw dump."""
    options = options or NormalizeOptions()
    with obs.span("topology.ingest.normalize", source=raw.source,
                  smt=options.smt_policy):
        raw.validate()
        siblings = _sibling_groups(raw)

        if options.smt_policy == "merge":
            # One logical core per sibling group, represented by its
            # smallest hardware-thread id.
            cpu_map = {cpu: min(group) for cpu, group in siblings.items()}
            folded = len(raw.cpus) - len(set(cpu_map.values()))
            if folded:
                obs.count("topology.ingest.smt_folded", folded)
        else:
            cpu_map = {cpu: cpu for cpu in raw.cpus}

        logical = sorted(set(cpu_map.values()))
        entries = _collapse_caches(raw, cpu_map)
        _check_laminar(raw.source, entries)

        clock = options.clock_ghz or raw.clock_ghz
        if clock is None:
            clock = DEFAULT_CLOCK_GHZ
            obs.count("topology.ingest.clock_defaulted")

        machine = _build_machine(raw, options, logical, entries, clock)
        obs.count("topology.ingest.machines")
        return machine


def _build_machine(
    raw: RawTopology,
    options: NormalizeOptions,
    logical: list[int],
    entries: list[tuple[int, frozenset[int], RawCache]],
    clock: float,
) -> Machine:
    # Containment forest over the laminar family: each cache's parent is
    # the smallest strictly-enclosing cache (ties broken by level, so a
    # same-set L3 encloses a same-set L2).
    order = {id(e): (len(e[1]), e[0]) for e in entries}
    parents: dict[int, tuple | None] = {}
    for entry in entries:
        best = None
        for other in entries:
            if other is entry:
                continue
            if entry[1] <= other[1] and order[id(other)] > order[id(entry)]:
                if best is None or order[id(other)] < order[id(best)]:
                    best = other
        parents[id(entry)] = best

    children: dict[int | None, list] = {}
    for entry in entries:
        parent = parents[id(entry)]
        children.setdefault(None if parent is None else id(parent), []).append(entry)

    # Each logical core hangs off the smallest cache containing it.
    core_parent: dict[int, tuple | None] = {}
    for core in logical:
        best = None
        for entry in entries:
            if core in entry[1] and (best is None or order[id(entry)] < order[id(best)]):
                best = entry
        core_parent[core] = best

    core_numbers: dict[int, int] = {}

    def build(entry) -> TopologyNode:
        level, cpus, cache = entry
        kids: list[tuple[int, object]] = []
        for child in children.get(id(entry), ()):
            kids.append((min(child[1]), child))
        for core in logical:
            if core_parent[core] is entry:
                kids.append((core, core))
        kids.sort(key=lambda item: item[0])
        built: list[TopologyNode] = []
        latency = default_latency(level, cache.size_bytes)
        for _, kid in kids:
            if isinstance(kid, int):
                core_numbers[kid] = len(core_numbers)
                built.append(TopologyNode.core(core_numbers[kid]))
            else:
                node = build(kid)
                # Latency must grow strictly up the tree even when the
                # per-level defaults collide (unusual size ratios).
                deepest = max(
                    (n.spec.latency for n in node.walk() if n.kind == "cache"),
                    default=0,
                )
                latency = max(latency, deepest + 1)
                built.append(node)
        return TopologyNode.cache(_cache_spec(cache, latency), built)

    tops: list[tuple[int, object]] = [
        (min(entry[1]), entry) for entry in children.get(None, ())
    ]
    tops.extend((core, core) for core in logical if core_parent[core] is None)
    tops.sort(key=lambda item: item[0])
    roots: list[TopologyNode] = []
    for _, top in tops:
        if isinstance(top, int):
            core_numbers[top] = len(core_numbers)
            roots.append(TopologyNode.core(core_numbers[top]))
        else:
            roots.append(build(top))

    if len(roots) == 1 and roots[0].kind == "cache":
        root = roots[0]
    else:
        root = TopologyNode.memory(roots)

    max_cache_latency = max(
        (n.spec.latency for n in root.walk() if n.kind == "cache"), default=0
    )
    memory_latency = options.memory_latency
    if memory_latency is None:
        memory_latency = max(1, int(round(options.memory_latency_ns * clock)))
    if memory_latency <= max_cache_latency:
        memory_latency = max_cache_latency + 1
        obs.count("topology.ingest.memory_latency_raised")

    name = options.name or _sanitize_name(raw.source.split(":", 1)[-1].rsplit("/", 1)[-1])
    return Machine(
        name=name,
        clock_ghz=clock,
        memory_latency=memory_latency,
        root=root,
        sockets=max(1, len(raw.packages)),
    )
