"""ASCII rendering of cache hierarchy trees (``repro topo show``)."""

from __future__ import annotations

from repro.topology.tree import Machine, TopologyNode


def _label(node: TopologyNode) -> str:
    if node.kind == "core":
        return f"core {node.core_id}"
    if node.kind == "memory":
        return "memory"
    spec = node.spec
    if spec.size_bytes % (1024 * 1024) == 0:
        size = f"{spec.size_bytes // (1024 * 1024)}MB"
    elif spec.size_bytes % 1024 == 0:
        size = f"{spec.size_bytes // 1024}KB"
    else:
        size = f"{spec.size_bytes}B"
    cores = node.cores_below()
    shared = "private" if len(cores) == 1 else f"cores {cores[0]}-{cores[-1]}"
    return (
        f"{spec.level} {size} {spec.associativity}-way "
        f"{spec.line_size}B/line {spec.latency}cy ({shared})"
    )


def render_tree(machine: Machine, max_cores_listed: int = 16) -> str:
    """The machine as an indented tree, one node per line.

    Runs of sibling core leaves longer than ``max_cores_listed`` are
    elided to a single ``core a..b`` line so a 256-core EPYC stays
    readable.
    """
    lines = [
        f"{machine.name}: {machine.num_cores} cores, {machine.sockets} socket(s), "
        f"{machine.clock_ghz}GHz, memory {machine.memory_latency}cy"
    ]

    def walk(node: TopologyNode, prefix: str, is_last: bool) -> None:
        branch = "`-- " if is_last else "|-- "
        lines.append(prefix + branch + _label(node))
        child_prefix = prefix + ("    " if is_last else "|   ")
        children = node.children
        core_children = [c for c in children if c.kind == "core"]
        if len(core_children) == len(children) and len(children) > max_cores_listed:
            first, last = children[0].core_id, children[-1].core_id
            lines.append(child_prefix + f"`-- core {first}..{last} ({len(children)} cores)")
            return
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1)

    walk(machine.root, "", True)
    return "\n".join(lines)
