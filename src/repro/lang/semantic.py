"""Static semantics for the affine loop language.

Responsibilities:

* bind ``param`` declarations to integer values (params may reference
  earlier params; the expressions must fold to constants);
* check array declarations (unique names, positive constant extents after
  param folding);
* check every loop nest: loop variables are unique within a nest, bounds
  are affine in *outer* loop variables and params, subscripts are affine in
  loop variables and params — or a one-level indirect reference
  ``idx[affine...]`` (``A[idx[i]]``), whose inner subscripts must be
  affine — and referenced arrays are declared with the right rank;
* provide :func:`to_affine`, the expression -> :class:`AffineExpr`
  converter used here and by lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    Name,
    Num,
    ProgramNode,
    UnaryOp,
)
from repro.poly.affine import AffineExpr


def to_affine(expr: Expr, params: dict[str, int], variables: set[str]) -> AffineExpr:
    """Convert an expression AST to an affine expression.

    ``params`` are folded to constants; names in ``variables`` stay
    symbolic.  Raises :class:`SemanticError` for non-affine shapes
    (variable * variable, division/modulo by non-constants or with a
    symbolic dividend, array references inside index expressions).
    """
    if isinstance(expr, Num):
        return AffineExpr.const(expr.value)
    if isinstance(expr, Name):
        if expr.ident in params:
            return AffineExpr.const(params[expr.ident])
        if expr.ident in variables:
            return AffineExpr.var(expr.ident)
        raise SemanticError(f"undeclared name {expr.ident!r}", expr.line)
    if isinstance(expr, UnaryOp):
        return -to_affine(expr.operand, params, variables)
    if isinstance(expr, ArrayRef):
        raise SemanticError(
            f"array reference {expr.array!r} not allowed in an affine position", expr.line
        )
    if isinstance(expr, BinOp):
        left = to_affine(expr.left, params, variables)
        right = to_affine(expr.right, params, variables)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_constant():
                return right * left.constant
            if right.is_constant():
                return left * right.constant
            raise SemanticError("non-affine product of two variables", expr.line)
        if expr.op in ("/", "%"):
            if not (left.is_constant() and right.is_constant()):
                raise SemanticError(
                    f"'{expr.op}' only allowed between constants in affine positions", expr.line
                )
            if right.constant == 0:
                raise SemanticError("division by zero", expr.line)
            value = (
                left.constant // right.constant
                if expr.op == "/"
                else left.constant % right.constant
            )
            return AffineExpr.const(value)
        raise SemanticError(f"unknown operator {expr.op!r}", expr.line)
    raise SemanticError(f"unsupported expression {expr!r}", getattr(expr, "line", 0))


@dataclass
class SemanticInfo:
    """Result of :func:`analyze`: the validated AST plus derived facts."""

    program: ProgramNode
    params: dict[str, int]
    array_extents: dict[str, tuple[int, ...]]
    loop_vars: dict[int, tuple[str, ...]] = field(default_factory=dict)
    """Loop variables of each top-level nest, outermost first, keyed by index."""


def _fold_constant(expr: Expr, params: dict[str, int], what: str) -> int:
    affine = to_affine(expr, params, set())
    if not affine.is_constant():
        raise SemanticError(f"{what} must be a constant expression", expr.line)
    return affine.constant


def analyze(program: ProgramNode) -> SemanticInfo:
    """Validate a parsed program and compute parameter/extent bindings."""
    params: dict[str, int] = {}
    for decl in program.params:
        if decl.name in params:
            raise SemanticError(f"duplicate param {decl.name!r}", decl.line)
        params[decl.name] = _fold_constant(decl.value, params, f"param {decl.name!r}")

    array_extents: dict[str, tuple[int, ...]] = {}
    for decl in program.arrays:
        if decl.name in array_extents:
            raise SemanticError(f"duplicate array {decl.name!r}", decl.line)
        if decl.name in params:
            raise SemanticError(
                f"array {decl.name!r} shadows a param of the same name", decl.line
            )
        extents = tuple(
            _fold_constant(e, params, f"extent of array {decl.name!r}") for e in decl.extents
        )
        for extent in extents:
            if extent <= 0:
                raise SemanticError(
                    f"array {decl.name!r} has non-positive extent {extent}", decl.line
                )
        array_extents[decl.name] = extents

    info = SemanticInfo(program, params, array_extents)
    for index, loop in enumerate(program.loops):
        vars_seen = _check_loop(loop, params, array_extents, outer_vars=())
        info.loop_vars[index] = vars_seen
    return info


def _check_loop(
    loop: ForLoop,
    params: dict[str, int],
    array_extents: dict[str, tuple[int, ...]],
    outer_vars: tuple[str, ...],
) -> tuple[str, ...]:
    """Validate one loop (recursively); returns all loop vars of the nest."""
    if loop.var in outer_vars:
        raise SemanticError(f"loop variable {loop.var!r} shadows an outer loop", loop.line)
    if loop.var in params:
        raise SemanticError(f"loop variable {loop.var!r} shadows a param", loop.line)
    if loop.var in array_extents:
        raise SemanticError(f"loop variable {loop.var!r} shadows an array", loop.line)
    outer_set = set(outer_vars)
    to_affine(loop.lower, params, outer_set)
    to_affine(loop.upper, params, outer_set)

    all_vars: tuple[str, ...] = outer_vars + (loop.var,)
    collected = all_vars
    inner_seen = False
    for stmt in loop.body:
        if isinstance(stmt, ForLoop):
            collected = _check_loop(stmt, params, array_extents, all_vars)
            inner_seen = True
        elif isinstance(stmt, Assign):
            _check_assign(stmt, params, array_extents, set(all_vars))
        else:
            raise SemanticError(f"unsupported statement {stmt!r}", stmt.line)
    if loop.parallel and outer_vars:
        raise SemanticError(
            "'parallel' is only allowed on the outermost loop of a nest", loop.line
        )
    return collected if inner_seen else all_vars


def _check_assign(
    stmt: Assign,
    params: dict[str, int],
    array_extents: dict[str, tuple[int, ...]],
    variables: set[str],
) -> None:
    for ref in _collect_refs(stmt):
        extents = array_extents.get(ref.array)
        if extents is None:
            raise SemanticError(f"undeclared array {ref.array!r}", ref.line)
        if len(ref.subscripts) != len(extents):
            raise SemanticError(
                f"array {ref.array!r} has rank {len(extents)}, "
                f"reference uses {len(ref.subscripts)} subscripts",
                ref.line,
            )
        for sub in ref.subscripts:
            if isinstance(sub, ArrayRef):
                # Indirect subscript A[idx[i]]: exactly one level of
                # nesting, and the inner subscripts must be affine.  The
                # nested ref itself is re-visited by _collect_refs, which
                # checks its declaration and rank.
                for inner in sub.subscripts:
                    if isinstance(inner, ArrayRef) or _contains_ref(inner):
                        raise SemanticError(
                            "indirect subscripts nest at most one level: "
                            f"{sub.array!r} is itself subscripted by an "
                            "array reference",
                            sub.line,
                        )
                continue
            to_affine(sub, params, variables)


def _contains_ref(expr: Expr) -> bool:
    if isinstance(expr, ArrayRef):
        return True
    if isinstance(expr, BinOp):
        return _contains_ref(expr.left) or _contains_ref(expr.right)
    if isinstance(expr, UnaryOp):
        return _contains_ref(expr.operand)
    return False


def _collect_refs(stmt: Assign) -> list[ArrayRef]:
    refs: list[ArrayRef] = [stmt.target]

    def walk(expr: Expr) -> None:
        if isinstance(expr, ArrayRef):
            refs.append(expr)
            for sub in expr.subscripts:
                walk(sub)
        elif isinstance(expr, BinOp):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, UnaryOp):
            walk(expr.operand)

    # The target's own subscripts may hold nested index references
    # (indirect writes like H[bin[i]]); those index reads are accesses too.
    for sub in stmt.target.subscripts:
        walk(sub)
    walk(stmt.value)
    return refs
