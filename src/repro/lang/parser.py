"""Recursive-descent parser for the affine loop language.

Grammar (EBNF, `{}` = repetition, `[]` = option)::

    program    = { param_decl | array_decl } { loop } EOF
    param_decl = "param" IDENT "=" expr ";"
    array_decl = ("array" | "int") IDENT "[" expr "]" { "[" expr "]" } ";"
    loop       = ["parallel"] "for" "(" IDENT "=" expr ";"
                 IDENT ("<" | "<=") expr ";" increment ")" stmt
    increment  = IDENT "++" | IDENT "+=" NUMBER
    stmt       = loop | assign | "{" { stmt } "}"
    assign     = array_ref ("=" | "+=" | "-=") expr ";"
    expr       = term { ("+" | "-") term }
    term       = factor { ("*" | "/" | "%") factor }
    factor     = NUMBER | array_ref | IDENT | "(" expr ")" | "-" factor
    array_ref  = IDENT "[" expr "]" { "[" expr "]" }
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast_nodes import (
    ArrayDeclNode,
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    Name,
    Num,
    ParamDecl,
    ProgramNode,
    Stmt,
    UnaryOp,
)
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType


class Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, ttype: TokenType) -> bool:
        return self._peek().type is ttype

    def _match(self, ttype: TokenType) -> Token | None:
        if self._check(ttype):
            return self._advance()
        return None

    def _expect(self, ttype: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not ttype:
            raise ParseError(
                f"expected {what}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    # -- grammar ------------------------------------------------------------------

    def parse_program(self) -> ProgramNode:
        params: list[ParamDecl] = []
        arrays: list[ArrayDeclNode] = []
        while True:
            if self._check(TokenType.PARAM):
                params.append(self._parse_param())
            elif self._check(TokenType.ARRAY):
                arrays.append(self._parse_array_decl())
            else:
                break
        loops: list[ForLoop] = []
        while not self._check(TokenType.EOF):
            stmt = self._parse_statement()
            if not isinstance(stmt, ForLoop):
                raise ParseError(
                    "top-level statements must be for loops", stmt.line
                )
            loops.append(stmt)
        line = params[0].line if params else (arrays[0].line if arrays else 1)
        return ProgramNode(line, tuple(params), tuple(arrays), tuple(loops))

    def _parse_param(self) -> ParamDecl:
        kw = self._expect(TokenType.PARAM, "'param'")
        name = self._expect(TokenType.IDENT, "parameter name")
        self._expect(TokenType.ASSIGN, "'='")
        value = self._parse_expr()
        self._expect(TokenType.SEMI, "';'")
        return ParamDecl(kw.line, name.text, value)

    def _parse_array_decl(self) -> ArrayDeclNode:
        kw = self._expect(TokenType.ARRAY, "'array'")
        name = self._expect(TokenType.IDENT, "array name")
        extents: list[Expr] = []
        self._expect(TokenType.LBRACKET, "'['")
        extents.append(self._parse_expr())
        self._expect(TokenType.RBRACKET, "']'")
        while self._match(TokenType.LBRACKET):
            extents.append(self._parse_expr())
            self._expect(TokenType.RBRACKET, "']'")
        self._expect(TokenType.SEMI, "';'")
        return ArrayDeclNode(kw.line, name.text, tuple(extents))

    def _parse_statement(self) -> Stmt:
        if self._check(TokenType.PARALLEL) or self._check(TokenType.FOR):
            return self._parse_for()
        if self._check(TokenType.LBRACE):
            raise ParseError(
                "bare blocks are only allowed as loop bodies",
                self._peek().line,
                self._peek().column,
            )
        return self._parse_assign()

    def _parse_for(self) -> ForLoop:
        parallel = self._match(TokenType.PARALLEL) is not None
        kw = self._expect(TokenType.FOR, "'for'")
        self._expect(TokenType.LPAREN, "'('")
        var = self._expect(TokenType.IDENT, "loop variable")
        self._expect(TokenType.ASSIGN, "'='")
        lower = self._parse_expr()
        self._expect(TokenType.SEMI, "';'")
        cond_var = self._expect(TokenType.IDENT, "loop variable in condition")
        if cond_var.text != var.text:
            raise ParseError(
                f"loop condition tests {cond_var.text!r}, expected {var.text!r}",
                cond_var.line,
                cond_var.column,
            )
        if self._match(TokenType.LT):
            strict = True
        elif self._match(TokenType.LE):
            strict = False
        else:
            token = self._peek()
            raise ParseError("expected '<' or '<='", token.line, token.column)
        upper = self._parse_expr()
        self._expect(TokenType.SEMI, "';'")
        step = self._parse_increment(var.text)
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_body()
        return ForLoop(kw.line, var.text, lower, upper, strict, step, body, parallel)

    def _parse_increment(self, var: str) -> int:
        token = self._expect(TokenType.IDENT, "loop variable in increment")
        if token.text != var:
            raise ParseError(
                f"increment updates {token.text!r}, expected {var!r}",
                token.line,
                token.column,
            )
        if self._match(TokenType.INCREMENT):
            return 1
        if self._match(TokenType.PLUS_ASSIGN):
            num = self._expect(TokenType.NUMBER, "step constant")
            step = num.value
            if step <= 0:
                raise ParseError("loop step must be positive", num.line, num.column)
            return step
        token = self._peek()
        raise ParseError("expected '++' or '+= <number>'", token.line, token.column)

    def _parse_body(self) -> tuple[Stmt, ...]:
        if self._match(TokenType.LBRACE):
            stmts: list[Stmt] = []
            while not self._check(TokenType.RBRACE):
                if self._check(TokenType.EOF):
                    token = self._peek()
                    raise ParseError("unterminated block", token.line, token.column)
                stmts.append(self._parse_statement())
            self._expect(TokenType.RBRACE, "'}'")
            return tuple(stmts)
        return (self._parse_statement(),)

    def _parse_assign(self) -> Assign:
        target = self._parse_array_ref()
        if self._match(TokenType.ASSIGN):
            op = "="
        elif self._match(TokenType.PLUS_ASSIGN):
            op = "+="
        elif self._match(TokenType.MINUS_ASSIGN):
            op = "-="
        else:
            token = self._peek()
            raise ParseError("expected '=', '+=' or '-='", token.line, token.column)
        value = self._parse_expr()
        self._expect(TokenType.SEMI, "';'")
        return Assign(target.line, target, value, op)

    def _parse_array_ref(self) -> ArrayRef:
        name = self._expect(TokenType.IDENT, "array name")
        subs: list[Expr] = []
        self._expect(TokenType.LBRACKET, "'['")
        subs.append(self._parse_expr())
        self._expect(TokenType.RBRACKET, "']'")
        while self._match(TokenType.LBRACKET):
            subs.append(self._parse_expr())
            self._expect(TokenType.RBRACKET, "']'")
        return ArrayRef(name.line, name.text, tuple(subs))

    # -- expressions --------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        left = self._parse_term()
        while True:
            if self._match(TokenType.PLUS):
                left = BinOp(left.line, "+", left, self._parse_term())
            elif self._match(TokenType.MINUS):
                left = BinOp(left.line, "-", left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while True:
            if self._match(TokenType.STAR):
                left = BinOp(left.line, "*", left, self._parse_factor())
            elif self._match(TokenType.SLASH):
                left = BinOp(left.line, "/", left, self._parse_factor())
            elif self._match(TokenType.PERCENT):
                left = BinOp(left.line, "%", left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expr:
        token = self._peek()
        if self._match(TokenType.MINUS):
            return UnaryOp(token.line, "-", self._parse_factor())
        if self._match(TokenType.NUMBER):
            return Num(token.line, token.value)
        if self._match(TokenType.LPAREN):
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN, "')'")
            return expr
        if self._check(TokenType.IDENT):
            if self._peek(1).type is TokenType.LBRACKET:
                return self._parse_array_ref()
            name = self._advance()
            return Name(name.line, name.text)
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)


def parse(source: str | list[Token]) -> ProgramNode:
    """Parse source text (or an existing token list) into an AST."""
    tokens = tokenize(source) if isinstance(source, str) else source
    return Parser(tokens).parse_program()
