"""Hand-written lexer for the affine loop language.

Supports ``//`` line comments and ``/* ... */`` block comments, decimal
integer literals, C identifiers, and the operator/punctuation set listed in
:mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenType

# Multi-character operators first so maximal munch works by length.
_OPERATORS = [
    ("++", TokenType.INCREMENT),
    ("--", TokenType.DECREMENT),
    ("+=", TokenType.PLUS_ASSIGN),
    ("-=", TokenType.MINUS_ASSIGN),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("==", TokenType.EQ),
    ("!=", TokenType.NE),
    ("+", TokenType.PLUS),
    ("-", TokenType.MINUS),
    ("*", TokenType.STAR),
    ("/", TokenType.SLASH),
    ("%", TokenType.PERCENT),
    ("=", TokenType.ASSIGN),
    ("<", TokenType.LT),
    (">", TokenType.GT),
    ("(", TokenType.LPAREN),
    (")", TokenType.RPAREN),
    ("[", TokenType.LBRACKET),
    ("]", TokenType.RBRACKET),
    ("{", TokenType.LBRACE),
    ("}", TokenType.RBRACE),
    (";", TokenType.SEMI),
    (",", TokenType.COMMA),
]


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; the result always ends with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)

    def column() -> int:
        return pos - line_start + 1

    while pos < n:
        ch = source[pos]
        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = n if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, column())
            for k in range(pos, end):
                if source[k] == "\n":
                    line += 1
                    line_start = k + 1
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            while pos < n and source[pos].isdigit():
                pos += 1
            if pos < n and (source[pos].isalpha() or source[pos] == "_"):
                raise LexError(
                    f"invalid number literal {source[start:pos + 1]!r}", line, start - line_start + 1
                )
            tokens.append(Token(TokenType.NUMBER, source[start:pos], line, start - line_start + 1))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            ttype = KEYWORDS.get(text, TokenType.IDENT)
            tokens.append(Token(ttype, text, line, start - line_start + 1))
            continue
        for text, ttype in _OPERATORS:
            if source.startswith(text, pos):
                tokens.append(Token(ttype, text, line, column()))
                pos += len(text)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column())

    tokens.append(Token(TokenType.EOF, "", line, column()))
    return tokens
