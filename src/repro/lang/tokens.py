"""Token definitions for the affine loop language."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories."""

    # literals / identifiers
    NUMBER = "number"
    IDENT = "ident"
    # keywords
    PARAM = "param"
    ARRAY = "array"
    FOR = "for"
    PARALLEL = "parallel"
    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    SEMI = ";"
    COMMA = ","
    # operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    INCREMENT = "++"
    DECREMENT = "--"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    # end of input
    EOF = "eof"


KEYWORDS = {
    "param": TokenType.PARAM,
    "array": TokenType.ARRAY,
    "int": TokenType.ARRAY,  # `int A[...]` is accepted as an array decl
    "for": TokenType.FOR,
    "parallel": TokenType.PARALLEL,
}


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (1-based line/column)."""

    type: TokenType
    text: str
    line: int
    column: int

    @property
    def value(self) -> int:
        """Integer value of a NUMBER token."""
        if self.type is not TokenType.NUMBER:
            raise ValueError(f"token {self.text!r} is not a number")
        return int(self.text)

    def __str__(self) -> str:
        return f"{self.type.name}({self.text!r})@{self.line}:{self.column}"
