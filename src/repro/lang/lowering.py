"""Lowering: validated AST -> loop-nest IR.

The lowering pass

* normalizes strided loops to unit-stride counters (``for (i = L; i < U;
  i += s)`` becomes counter ``i' >= 0`` with constraint ``s*i' <= U-1-L``
  and every use of ``i`` rewritten to ``L + s*i'`` — the constraint stays
  affine, so the iteration space remains a polyhedron);
* flattens each top-level ``for`` into one :class:`~repro.ir.loops.LoopNest`
  whose iteration space conjoins all level bounds;
* turns every textual array reference into an
  :class:`~repro.ir.accesses.ArrayAccess` — or an
  :class:`~repro.ir.accesses.IndirectAccess` when a subscript is a nested
  reference ``idx[i]`` into an index array whose contents arrive via
  ``index_data`` — with compound assignments contributing both a read and
  a write of the target, and nested index references contributing their
  own (affine) reads.

Supported shape: perfect nests — statements may appear only at the
innermost level.  This covers the paper's target programs (its examples,
Figures 4 and 5, are perfect nests) and keeps iteration tagging exact.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import IRError, SemanticError
from repro.ir.accesses import Access, ArrayAccess, IndirectAccess, IndirectExpr
from repro.ir.arrays import Array
from repro.ir.loops import LoopNest, Program
from repro.lang.ast_nodes import ArrayRef, Assign, ForLoop
from repro.lang.parser import parse
from repro.lang.semantic import SemanticInfo, analyze, to_affine
from repro.poly.affine import AffineExpr
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet


def compile_source(
    source: str,
    name: str = "program",
    element_size: int = 8,
    index_data: Mapping[str, Sequence[int]] | None = None,
) -> Program:
    """Full pipeline: source text -> :class:`~repro.ir.loops.Program`.

    ``index_data`` supplies concrete row-major contents for arrays used as
    *index arrays* in indirect subscripts (``A[idx[i]]``); without it such
    references cannot be lowered.
    """
    info = analyze(parse(source))
    return lower_program(
        info, name=name, element_size=element_size, index_data=index_data
    )


def lower_program(
    info: SemanticInfo,
    name: str = "program",
    element_size: int = 8,
    index_data: Mapping[str, Sequence[int]] | None = None,
) -> Program:
    """Lower a validated AST into the IR."""
    index_data = dict(index_data or {})
    unknown = sorted(set(index_data) - set(info.array_extents))
    if unknown:
        raise SemanticError(
            f"index data supplied for undeclared arrays: {', '.join(unknown)}"
        )
    arrays = {
        arr_name: Array(
            arr_name,
            extents,
            element_size,
            data=tuple(index_data[arr_name]) if arr_name in index_data else None,
        )
        for arr_name, extents in info.array_extents.items()
    }
    nests = []
    for index, loop in enumerate(info.program.loops):
        nest_name = f"{name}_nest{index}" if len(info.program.loops) > 1 else name
        nests.append(_lower_nest(loop, nest_name, info, arrays))
    return Program(name, list(arrays.values()), nests, info.params)


def _lower_nest(
    loop: ForLoop,
    nest_name: str,
    info: SemanticInfo,
    arrays: dict[str, Array],
) -> LoopNest:
    dims: list[str] = []
    constraints: list[Constraint] = []
    # Maps source variable name -> expression over normalized counters.
    substitution: dict[str, AffineExpr] = {}
    assigns: list[Assign] = []
    _walk_nest(loop, info, dims, constraints, substitution, assigns)

    space = IntSet(tuple(dims), constraints)
    accesses: list[Access] = []
    for stmt in assigns:
        accesses.extend(_lower_assign(stmt, info, arrays, tuple(dims), substitution))
    return LoopNest(nest_name, space, accesses, parallel=loop.parallel)


def _walk_nest(
    loop: ForLoop,
    info: SemanticInfo,
    dims: list[str],
    constraints: list[Constraint],
    substitution: dict[str, AffineExpr],
    assigns: list[Assign],
) -> None:
    variables = set(substitution)
    lower = to_affine(loop.lower, info.params, variables).substitute(substitution)
    upper = to_affine(loop.upper, info.params, variables).substitute(substitution)
    if loop.upper_strict:
        upper = upper - 1

    var = loop.var
    dims.append(var)
    if loop.step == 1:
        substitution[var] = AffineExpr.var(var)
        constraints.append(Constraint.ge(AffineExpr.var(var), lower))
        constraints.append(Constraint.le(AffineExpr.var(var), upper))
    else:
        # Normalized counter: source value is lower + step * var.
        substitution[var] = lower + AffineExpr.var(var) * loop.step
        constraints.append(Constraint.ge(AffineExpr.var(var), 0))
        constraints.append(Constraint.le(AffineExpr.var(var) * loop.step, upper - lower))

    inner_loops = [s for s in loop.body if isinstance(s, ForLoop)]
    inner_assigns = [s for s in loop.body if isinstance(s, Assign)]
    if inner_loops and inner_assigns:
        raise SemanticError(
            "imperfect nest: statements and loops mixed at the same level "
            "(only perfect nests are supported)",
            loop.line,
        )
    if len(inner_loops) > 1:
        raise SemanticError(
            "sibling loops inside a nest are not supported; "
            "split them into separate top-level nests",
            inner_loops[1].line,
        )
    if inner_loops:
        _walk_nest(inner_loops[0], info, dims, constraints, substitution, assigns)
    else:
        assigns.extend(inner_assigns)


def _lower_assign(
    stmt: Assign,
    info: SemanticInfo,
    arrays: dict[str, Array],
    dims: tuple[str, ...],
    substitution: dict[str, AffineExpr],
) -> list[Access]:
    variables = set(substitution)
    accesses: list[Access] = []

    def affine_of(sub) -> AffineExpr:
        return to_affine(sub, info.params, variables).substitute(substitution)

    def lower_ref(ref: ArrayRef, is_write: bool) -> Access:
        subscripts: list[AffineExpr | IndirectExpr] = []
        indirect = False
        for sub in ref.subscripts:
            if isinstance(sub, ArrayRef):
                indirect = True
                inner = [affine_of(s) for s in sub.subscripts]
                try:
                    subscripts.append(IndirectExpr(arrays[sub.array], inner))
                except IRError as error:
                    raise SemanticError(str(error), sub.line) from error
            else:
                subscripts.append(affine_of(sub))
        if indirect:
            return IndirectAccess(arrays[ref.array], dims, subscripts, is_write=is_write)
        return ArrayAccess(arrays[ref.array], dims, subscripts, is_write=is_write)

    accesses.append(lower_ref(stmt.target, True))
    if stmt.op in ("+=", "-="):
        accesses.append(lower_ref(stmt.target, False))

    from repro.lang.semantic import _collect_refs

    for ref in _collect_refs(stmt)[1:]:
        accesses.append(lower_ref(ref, False))
    return accesses
