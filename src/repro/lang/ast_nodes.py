"""AST node definitions for the affine loop language.

All nodes carry the source line of their first token for diagnostics.
Expression nodes form a conventional arithmetic tree; statements are
assignments (possibly compound ``+=``/``-=``) and ``for`` loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    line: int


# -- expressions ----------------------------------------------------------------


@dataclass(frozen=True)
class Expr(Node):
    pass


@dataclass(frozen=True)
class Num(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Name(Expr):
    ident: str

    def __str__(self) -> str:
        return self.ident


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # '+', '-', '*', '/', '%'
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-'
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class ArrayRef(Expr):
    array: str
    subscripts: tuple[Expr, ...]

    def __str__(self) -> str:
        subs = "".join(f"[{s}]" for s in self.subscripts)
        return f"{self.array}{subs}"


# -- statements -------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt(Node):
    pass


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = value`` (or ``target op= value`` desugared with ``op``)."""

    target: ArrayRef
    value: Expr
    op: str = "="  # '=', '+=', '-='

    def __str__(self) -> str:
        return f"{self.target} {self.op} {self.value};"


@dataclass(frozen=True)
class ForLoop(Stmt):
    """``for (var = lower; var < upper; var += step) body``.

    ``upper_strict`` records whether the source wrote ``<`` (True) or
    ``<=`` (False).  ``parallel`` marks an explicitly parallel loop
    (``parallel for``).
    """

    var: str
    lower: Expr
    upper: Expr
    upper_strict: bool
    step: int
    body: tuple[Stmt, ...]
    parallel: bool = False

    def __str__(self) -> str:
        cmp = "<" if self.upper_strict else "<="
        head = "parallel for" if self.parallel else "for"
        inc = f"{self.var}++" if self.step == 1 else f"{self.var} += {self.step}"
        body = " ".join(str(s) for s in self.body)
        return f"{head} ({self.var} = {self.lower}; {self.var} {cmp} {self.upper}; {inc}) {{ {body} }}"


# -- declarations / program --------------------------------------------------------


@dataclass(frozen=True)
class ParamDecl(Node):
    """``param N = 100;`` — a compile-time integer constant."""

    name: str
    value: Expr

    def __str__(self) -> str:
        return f"param {self.name} = {self.value};"


@dataclass(frozen=True)
class ArrayDeclNode(Node):
    """``array A[E1][E2];`` — extents are affine in previously bound params."""

    name: str
    extents: tuple[Expr, ...]

    def __str__(self) -> str:
        dims = "".join(f"[{e}]" for e in self.extents)
        return f"array {self.name}{dims};"


@dataclass(frozen=True)
class ProgramNode(Node):
    params: tuple[ParamDecl, ...]
    arrays: tuple[ArrayDeclNode, ...]
    loops: tuple[ForLoop, ...] = field(default=())

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        parts += [str(a) for a in self.arrays]
        parts += [str(loop) for loop in self.loops]
        return "\n".join(parts)
