"""Frontend for a C-like affine loop language.

The paper implements its pass inside Microsoft Phoenix; this package is our
stand-in frontend.  It accepts the pseudo-C the paper writes its examples in
(Figures 4 and 5):

.. code-block:: c

    param Q1 = 8;
    param Q2 = 16;
    array A[Q1 + 1][Q2 + 2];

    parallel for (i1 = 0; i1 < Q1; i1++)
      for (i2 = 2; i2 < Q2 + 2; i2++)
        A[i1 + 1][i2 - 1] = A[i1 + 1][i2 - 1] + 1;

and produces the loop-nest IR of :mod:`repro.ir`: iteration spaces as
polyhedral :class:`~repro.poly.intset.IntSet` objects and array references
as affine maps, which is exactly the view the paper's middle-end pass
consumes.

Pipeline: :func:`tokenize` -> :func:`parse` -> :func:`analyze` ->
:func:`~repro.lang.lowering.lower_program`.  :func:`compile_source` runs the
whole pipeline.
"""

from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.semantic import analyze
from repro.lang.lowering import compile_source, lower_program

__all__ = ["tokenize", "parse", "analyze", "compile_source", "lower_program"]
