"""Loop nests and whole programs in the middle-end IR.

A :class:`LoopNest` is the unit the paper's pass operates on: an iteration
space ``K`` (a bounded :class:`~repro.poly.intset.IntSet` whose dims are
the loop variables, outermost first) plus the affine accesses each
iteration performs.  Strided source loops are normalized to unit stride by
the frontend before reaching this IR.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.errors import IRError
from repro.ir.accesses import Access, IndirectAccess, IndirectExpr
from repro.ir.arrays import Array
from repro.poly.intset import IntSet


class LoopNest:
    """One parallel candidate loop nest."""

    __slots__ = ("name", "dims", "space", "accesses", "parallel")

    def __init__(
        self,
        name: str,
        space: IntSet,
        accesses: Sequence[Access],
        parallel: bool = True,
    ):
        accesses = tuple(accesses)
        for access in accesses:
            if access.loop_dims != space.dims:
                raise IRError(
                    f"access {access!r} is over dims {access.loop_dims}, "
                    f"nest {name!r} has dims {space.dims}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "dims", space.dims)
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "accesses", accesses)
        object.__setattr__(self, "parallel", parallel)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LoopNest is immutable")

    @property
    def depth(self) -> int:
        return len(self.dims)

    def iterations(self) -> Iterator[tuple[int, ...]]:
        """Iterations of ``K`` in original (lexicographic) execution order."""
        return self.space.points()

    def iteration_count(self) -> int:
        return self.space.count()

    def arrays(self) -> tuple[Array, ...]:
        """Distinct arrays referenced by this nest, in first-use order.

        Index arrays read through indirect subscripts count as referenced
        even when no standalone access names them.
        """
        seen: dict[str, Array] = {}
        for access in self.accesses:
            seen.setdefault(access.array.name, access.array)
            if isinstance(access, IndirectAccess):
                for index_array in access.index_arrays():
                    seen.setdefault(index_array.name, index_array)
        return tuple(seen.values())

    def is_affine(self) -> bool:
        """True when every access has an affine closed form.

        The access-analysis seam dispatches on this: affine nests keep the
        paper's static path, others fall back to trace-based tagging.
        """
        return all(a.is_affine for a in self.accesses)

    def offset_evaluators(self):
        """``(array name, iteration -> flat element offset, is_write)`` per access.

        Affine accesses use their closed offset form, indirect accesses
        their concrete evaluator; both are the unchecked fast path —
        validate with :meth:`validate_access_bounds` first.
        """
        evaluators = []
        for access in self.accesses:
            if access.is_affine:
                constant, coeffs = access.offset_form()

                def offset(point, constant=constant, coeffs=coeffs):
                    total = constant
                    for coeff, coord in zip(coeffs, point):
                        total += coeff * coord
                    return total

                evaluators.append((access.array.name, offset, access.is_write))
            else:
                evaluators.append(
                    (access.array.name, access.offset_evaluator(), access.is_write)
                )
        return evaluators

    def reads(self) -> tuple[Access, ...]:
        return tuple(a for a in self.accesses if not a.is_write)

    def writes(self) -> tuple[Access, ...]:
        return tuple(a for a in self.accesses if a.is_write)

    def validate_access_bounds(self) -> None:
        """Prove every reference stays inside its array, or raise.

        Uses the iteration space's (sound, over-approximating) bounding
        box, so a pass here guarantees the unchecked fast offset path
        (:meth:`~repro.ir.accesses.ArrayAccess.offset_form`) never
        aliases; a raise may be spurious for non-rectangular spaces but is
        never unsafely silent.
        """
        box = self.space.bounding_box()

        def affine_span(subscript) -> tuple[int, int]:
            lo = hi = subscript.constant
            for k, dim in enumerate(self.dims):
                coeff = subscript.coeff(dim)
                lo += min(coeff * box[k][0], coeff * box[k][1])
                hi += max(coeff * box[k][0], coeff * box[k][1])
            return lo, hi

        for access in self.accesses:
            for dim_index, subscript in enumerate(access.subscripts):
                extent = access.array.extents[dim_index]
                if isinstance(subscript, IndirectExpr):
                    index_array = subscript.array
                    for inner_dim, inner in enumerate(subscript.subscripts):
                        lo, hi = affine_span(inner)
                        inner_extent = index_array.extents[inner_dim]
                        if lo < 0 or hi >= inner_extent:
                            raise IRError(
                                f"nest {self.name!r}: index reference {subscript} "
                                f"dimension {inner_dim} spans [{lo}, {hi}] outside "
                                f"[0, {inner_extent - 1}]"
                            )
                    # Any stored index value may be selected, so all of
                    # them must land inside the target dimension (sound;
                    # at worst conservative for unreachable entries).
                    lo, hi = min(index_array.data), max(index_array.data)
                    if lo < 0 or hi >= extent:
                        raise IRError(
                            f"nest {self.name!r}: index array {index_array.name!r} "
                            f"holds values spanning [{lo}, {hi}], outside "
                            f"[0, {extent - 1}] of {access.array.name!r} "
                            f"dimension {dim_index}"
                        )
                    continue
                lo, hi = affine_span(subscript)
                if lo < 0 or hi >= extent:
                    raise IRError(
                        f"nest {self.name!r}: reference {access!r} dimension "
                        f"{dim_index} spans [{lo}, {hi}] outside [0, {extent - 1}]"
                    )

    def touched_elements(self, iteration: tuple[int, ...]) -> list[tuple[str, tuple[int, ...], bool]]:
        """(array name, element index, is_write) for each access at ``iteration``."""
        return [(a.array.name, a.element(iteration), a.is_write) for a in self.accesses]

    def __repr__(self) -> str:
        return (
            f"LoopNest({self.name!r}, dims={self.dims}, "
            f"{len(self.accesses)} accesses, parallel={self.parallel})"
        )


class Program:
    """A compiled program: declared arrays plus its loop nests."""

    __slots__ = ("name", "arrays", "nests", "params")

    def __init__(
        self,
        name: str,
        arrays: Sequence[Array],
        nests: Sequence[LoopNest],
        params: dict[str, int] | None = None,
    ):
        array_map: dict[str, Array] = {}
        for array in arrays:
            if array.name in array_map:
                raise IRError(f"duplicate array {array.name!r}")
            array_map[array.name] = array
        for nest in nests:
            for access in nest.accesses:
                referenced = [access.array]
                if isinstance(access, IndirectAccess):
                    referenced.extend(access.index_arrays())
                for array in referenced:
                    declared = array_map.get(array.name)
                    if declared is None:
                        raise IRError(
                            f"nest {nest.name!r} references undeclared array {array.name!r}"
                        )
                    if declared != array:
                        raise IRError(
                            f"nest {nest.name!r} disagrees with declaration of {array.name!r}"
                        )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "arrays", dict(array_map))
        object.__setattr__(self, "nests", tuple(nests))
        object.__setattr__(self, "params", dict(params or {}))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Program is immutable")

    def total_data_bytes(self) -> int:
        """Size of all declared data (the paper's 'total data manipulated')."""
        return sum(a.size_bytes for a in self.arrays.values())

    def nest(self, name: str) -> LoopNest:
        for nest in self.nests:
            if nest.name == name:
                return nest
        raise IRError(f"no nest named {name!r}")

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self.arrays)} arrays, {len(self.nests)} nests)"
