"""Array declarations and data spaces.

An :class:`Array` owns a rectangular data space ``D`` (the paper's
``D = {(d1, d2) | 0 <= d1 <= D1-1 and 0 <= d2 <= D2-1}``) and knows how to
linearize an element index into a flat element offset (row-major), which
the data-block partitioner and the cache simulator build on.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.poly.intset import IntSet


class Array:
    """A declared array: name, extents, element size in bytes.

    ``data`` optionally records the array's (integer) contents, element by
    element in row-major order.  It exists for *index arrays* — arrays whose
    values subscript other arrays (``A[idx[i]]``) — where the mapper must
    evaluate the reference concretely because no affine form exists.
    Ordinary data arrays leave it ``None``.
    """

    __slots__ = ("name", "extents", "element_size", "data", "_strides")

    def __init__(
        self,
        name: str,
        extents: tuple[int, ...] | list[int],
        element_size: int = 8,
        data: tuple[int, ...] | list[int] | None = None,
    ):
        extents = tuple(extents)
        if not extents:
            raise IRError(f"array {name!r} must have at least one dimension")
        if any(e <= 0 for e in extents):
            raise IRError(f"array {name!r} has non-positive extent in {extents}")
        if element_size <= 0:
            raise IRError(f"array {name!r} has non-positive element size {element_size}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "extents", extents)
        object.__setattr__(self, "element_size", element_size)
        strides = [1] * len(extents)
        for k in range(len(extents) - 2, -1, -1):
            strides[k] = strides[k + 1] * extents[k + 1]
        object.__setattr__(self, "_strides", tuple(strides))
        if data is not None:
            data = tuple(data)
            size = self.size_elements
            if len(data) != size:
                raise IRError(
                    f"array {name!r} has {size} elements, data supplies {len(data)}"
                )
            if any(not isinstance(v, int) for v in data):
                raise IRError(f"array {name!r} data must be integers")
        object.__setattr__(self, "data", data)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Array is immutable")

    @property
    def rank(self) -> int:
        return len(self.extents)

    @property
    def size_elements(self) -> int:
        total = 1
        for extent in self.extents:
            total *= extent
        return total

    @property
    def size_bytes(self) -> int:
        return self.size_elements * self.element_size

    def data_space(self, dim_names: tuple[str, ...] | None = None) -> IntSet:
        """The data space D as an integer box."""
        if dim_names is None:
            dim_names = tuple(f"{self.name}_d{k}" for k in range(self.rank))
        if len(dim_names) != self.rank:
            raise IRError(f"need {self.rank} dim names, got {len(dim_names)}")
        return IntSet.box(dim_names, [(0, e - 1) for e in self.extents])

    def contains(self, index: tuple[int, ...]) -> bool:
        if len(index) != self.rank:
            return False
        return all(0 <= v < e for v, e in zip(index, self.extents))

    def linear_offset(self, index: tuple[int, ...]) -> int:
        """Row-major element offset of an index (bounds-checked)."""
        if len(index) != self.rank:
            raise IRError(
                f"array {self.name!r} has rank {self.rank}, index has {len(index)} coords"
            )
        offset = 0
        for value, extent, stride in zip(index, self.extents, self._strides):
            if not 0 <= value < extent:
                raise IRError(f"index {index} out of bounds for array {self.name!r} {self.extents}")
            offset += value * stride
        return offset

    def index_of_offset(self, offset: int) -> tuple[int, ...]:
        """Inverse of :meth:`linear_offset`."""
        if not 0 <= offset < self.size_elements:
            raise IRError(f"offset {offset} out of range for array {self.name!r}")
        index = []
        for stride in self._strides:
            index.append(offset // stride)
            offset %= stride
        return tuple(index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Array):
            return NotImplemented
        return (
            self.name == other.name
            and self.extents == other.extents
            and self.element_size == other.element_size
            and self.data == other.data
        )

    def __hash__(self) -> int:
        return hash((self.name, self.extents, self.element_size, self.data))

    def __repr__(self) -> str:
        dims = "".join(f"[{e}]" for e in self.extents)
        tail = ", indexed" if self.data is not None else ""
        return f"Array({self.name}{dims}, {self.element_size}B{tail})"
