"""Dependence analysis for affine loop nests.

Two layers, as in classical compilers:

* :func:`gcd_filter` — the cheap GCD test.  ``False`` proves independence;
  ``True`` means "may depend".
* the exact polyhedral test — build the dependence polyhedron
  ``{(I, I') | I, I' in K, R1(I) = R2(I'), I lex< I'}`` level by level and
  check integer emptiness (exact, because our enumeration is exact).

:func:`has_loop_carried_dependence` is what the parallelization step uses
to decide whether a nest is fully parallel (Section 3.1: 86% of parallel
loops in the paper's benchmarks are).  :func:`iteration_dependences`
enumerates the actual (source, sink) pairs; the group dependence graph of
Section 3.5.2 is built from it.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import DependenceError
from repro.ir.accesses import ArrayAccess
from repro.ir.loops import LoopNest
from repro.poly.constraints import Constraint
from repro.poly.intset import IntSet


@dataclass(frozen=True)
class DependencePair:
    """An ordered dependence: ``sink`` must execute after ``source``."""

    source: tuple[int, ...]
    sink: tuple[int, ...]
    array: str
    kind: str  # 'flow', 'anti', or 'output'

    @property
    def distance(self) -> tuple[int, ...]:
        return tuple(b - a for a, b in zip(self.source, self.sink))


def gcd_filter(a1: ArrayAccess, a2: ArrayAccess) -> bool:
    """GCD dependence test.

    Returns ``False`` when the Diophantine system ``R1(I) = R2(I')`` has no
    integer solution at all (hence no dependence); ``True`` otherwise.
    Indirect accesses have no Diophantine form, so any same-array pair
    involving one is conservatively "may depend".
    """
    if a1.array != a2.array:
        return False
    if not (a1.is_affine and a2.is_affine):
        return True
    for s1, s2 in zip(a1.subscripts, a2.subscripts):
        coeffs = list(s1.coeffs.values()) + list(s2.coeffs.values())
        if not coeffs:
            if s1.constant != s2.constant:
                return False
            continue
        g = 0
        for c in coeffs:
            g = math.gcd(g, abs(c))
        if (s2.constant - s1.constant) % g != 0:
            return False
    return True


def _primed(name: str) -> str:
    return f"{name}__p"


def dependence_polyhedron(
    nest: LoopNest, a1: ArrayAccess, a2: ArrayAccess, level: int
) -> IntSet:
    """Dependence polyhedron at carrying ``level``.

    Points ``(I, I')`` with both iterations in ``K``, ``R1(I) = R2(I')``,
    equal on the first ``level`` loop dims and ``I[level] < I'[level]``.
    """
    if not (a1.is_affine and a2.is_affine):
        raise DependenceError(
            "dependence polyhedra exist only for affine access pairs; "
            "indirect nests use the concrete enumeration"
        )
    dims = nest.dims
    pdims = tuple(_primed(d) for d in dims)
    rename = dict(zip(dims, pdims))
    cons = list(nest.space.constraints)
    cons += [c.rename(rename) for c in nest.space.constraints]
    for s1, s2 in zip(a1.subscripts, a2.subscripts):
        cons.append(Constraint.eq(s1, s2.rename(rename)))
    for k in range(level):
        cons.append(Constraint.eq(dims[k], _primed(dims[k])))
    cons.append(Constraint.lt(dims[level], _primed(dims[level])))
    return IntSet(dims + pdims, cons)


def _dependence_kind(a1: ArrayAccess, a2: ArrayAccess) -> str | None:
    if a1.is_write and a2.is_write:
        return "output"
    if a1.is_write:
        return "flow"
    if a2.is_write:
        return "anti"
    return None  # read-read: not a dependence


def has_loop_carried_dependence(nest: LoopNest) -> bool:
    """True if some pair of accesses forms a loop-carried dependence."""
    if not nest.is_affine():
        return next(_concrete_dependences(nest, limit=1), None) is not None
    for a1 in nest.accesses:
        for a2 in nest.accesses:
            if _dependence_kind(a1, a2) is None:
                continue
            if not gcd_filter(a1, a2):
                continue
            for level in range(nest.depth):
                if not dependence_polyhedron(nest, a1, a2, level).is_empty():
                    return True
    return False


def iteration_dependences(
    nest: LoopNest, limit: int | None = None
) -> Iterator[DependencePair]:
    """Enumerate loop-carried dependence pairs (source lex< sink).

    Pairs are deduplicated across access pairs and carrying levels; when
    the same iteration pair is both a flow and an anti dependence, the
    first kind encountered wins (the schedulers only need the edge).
    ``limit`` caps the number of yielded pairs.

    Nests with indirect accesses have no dependence polyhedra; they take
    the concrete path: every access is evaluated in execution order and
    the exact per-element chains (write -> reads, read -> next write,
    write -> next write) are emitted.  The chains order every conflicting
    iteration pair transitively, which is all the group dependence graph
    and the schedulers consume.
    """
    if not nest.is_affine():
        yield from _concrete_dependences(nest, limit)
        return
    seen: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
    yielded = 0
    depth = nest.depth
    for a1 in nest.accesses:
        for a2 in nest.accesses:
            kind = _dependence_kind(a1, a2)
            if kind is None or not gcd_filter(a1, a2):
                continue
            for level in range(depth):
                poly = dependence_polyhedron(nest, a1, a2, level)
                for point in poly.points():
                    source, sink = point[:depth], point[depth:]
                    key = (source, sink)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield DependencePair(source, sink, a1.array.name, kind)
                    yielded += 1
                    if limit is not None and yielded >= limit:
                        return


def _concrete_dependences(
    nest: LoopNest, limit: int | None = None
) -> Iterator[DependencePair]:
    """Exact dependence chains from concrete evaluation.

    Walks the iteration space in execution order, tracking per touched
    element the last write and the reads since it.  Each write emits an
    output edge from the previous write and anti edges from those reads;
    each read emits a flow edge from the last write.  Same-iteration
    conflicts are not loop-carried and are skipped.
    """
    evaluators = nest.offset_evaluators()
    last_write: dict[tuple[str, int], tuple[int, ...]] = {}
    readers: dict[tuple[str, int], list[tuple[int, ...]]] = {}
    seen: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
    yielded = 0
    for point in nest.iterations():
        for name, offset_of, is_write in evaluators:
            key = (name, offset_of(point))
            if is_write:
                sources: list[tuple[tuple[int, ...], str]] = []
                previous = last_write.get(key)
                if previous is not None and previous != point:
                    sources.append((previous, "output"))
                for reader in readers.get(key, ()):
                    if reader != point:
                        sources.append((reader, "anti"))
                for source, kind in sources:
                    pair_key = (source, point)
                    if pair_key in seen:
                        continue
                    seen.add(pair_key)
                    yield DependencePair(source, point, name, kind)
                    yielded += 1
                    if limit is not None and yielded >= limit:
                        return
                last_write[key] = point
                readers[key] = []
            else:
                previous = last_write.get(key)
                if previous is not None and previous != point:
                    pair_key = (previous, point)
                    if pair_key not in seen:
                        seen.add(pair_key)
                        yield DependencePair(previous, point, name, "flow")
                        yielded += 1
                        if limit is not None and yielded >= limit:
                            return
                bucket = readers.setdefault(key, [])
                if not bucket or bucket[-1] != point:
                    bucket.append(point)
