"""Loop-nest intermediate representation.

This is the middle-end view of a program that the paper's pass consumes:

* :class:`~repro.ir.arrays.Array` — a declared array and its data space
  ``D`` (Section 3.2);
* :class:`~repro.ir.accesses.ArrayAccess` — an affine reference ``R``
  mapping iterations to array elements — and its non-affine sibling
  :class:`~repro.ir.accesses.IndirectAccess` (``A[idx[i]]``), both under
  the :class:`~repro.ir.accesses.Access` interface;
* :class:`~repro.ir.loops.LoopNest` — a perfect/imperfect nest flattened to
  its iteration space ``K`` (an :class:`~repro.poly.intset.IntSet`) plus the
  accesses executed by each iteration;
* :class:`~repro.ir.loops.Program` — arrays + nests;
* :mod:`repro.ir.dependences` — dependence testing (GCD filter plus exact
  polyhedral test) used by the parallelization step and by the
  dependence-aware scheduler of Section 3.5.2.
"""

from repro.ir.arrays import Array
from repro.ir.accesses import (
    Access,
    AffineAccess,
    ArrayAccess,
    IndirectAccess,
    IndirectExpr,
)
from repro.ir.loops import LoopNest, Program
from repro.ir.dependences import (
    DependencePair,
    gcd_filter,
    has_loop_carried_dependence,
    iteration_dependences,
)

__all__ = [
    "Access",
    "AffineAccess",
    "Array",
    "ArrayAccess",
    "IndirectAccess",
    "IndirectExpr",
    "LoopNest",
    "Program",
    "DependencePair",
    "gcd_filter",
    "has_loop_carried_dependence",
    "iteration_dependences",
]
