"""Affine array references (the paper's mappings ``R``)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import IRError
from repro.ir.arrays import Array
from repro.poly.affine import AffineExpr
from repro.poly.relation import AffineMap


class ArrayAccess:
    """One textual array reference inside a loop nest.

    ``subscripts[k]`` gives array dimension ``k`` as an affine expression
    over the nest's loop variables; ``is_write`` distinguishes the
    assignment target from the uses.  ``R(I)`` in the paper is
    :meth:`element`.
    """

    __slots__ = ("array", "loop_dims", "subscripts", "is_write", "_map")

    def __init__(
        self,
        array: Array,
        loop_dims: Sequence[str],
        subscripts: Sequence[AffineExpr | int | str],
        is_write: bool = False,
    ):
        loop_dims = tuple(loop_dims)
        coerced = tuple(AffineExpr.coerce(s) for s in subscripts)
        if len(coerced) != array.rank:
            raise IRError(
                f"array {array.name!r} has rank {array.rank}, got {len(coerced)} subscripts"
            )
        loop_set = set(loop_dims)
        for expr in coerced:
            extra = expr.variables() - loop_set
            if extra:
                raise IRError(
                    f"subscript {expr} of {array.name!r} uses non-loop variables {sorted(extra)}"
                )
        out_dims = tuple(f"{array.name}_d{k}" for k in range(array.rank))
        object.__setattr__(self, "array", array)
        object.__setattr__(self, "loop_dims", loop_dims)
        object.__setattr__(self, "subscripts", coerced)
        object.__setattr__(self, "is_write", is_write)
        object.__setattr__(self, "_map", AffineMap(loop_dims, out_dims, coerced))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ArrayAccess is immutable")

    @property
    def access_map(self) -> AffineMap:
        """The reference as an affine map from iterations to array indices."""
        return self._map

    def element(self, iteration: Sequence[int]) -> tuple[int, ...]:
        """Array element touched by ``iteration`` (R(I))."""
        return self._map.apply(tuple(iteration))

    def element_offset(self, iteration: Sequence[int]) -> int:
        """Flat element offset within the array for ``iteration``."""
        return self.array.linear_offset(self.element(iteration))

    def offset_form(self) -> tuple[int, tuple[int, ...]]:
        """Flat element offset as a linear form over the loop dims.

        Returns ``(constant, coeffs)`` with ``offset(I) = constant +
        sum(coeffs[k] * I[k])``.  This is the unchecked fast path for hot
        loops (tagging, trace generation); validate the nest with
        :meth:`repro.ir.loops.LoopNest.validate_access_bounds` first.
        """
        strides = self.array._strides
        constant = 0
        coeffs = [0] * len(self.loop_dims)
        for subscript, stride in zip(self.subscripts, strides):
            constant += subscript.constant * stride
            for k, dim in enumerate(self.loop_dims):
                coeffs[k] += subscript.coeff(dim) * stride
        return constant, tuple(coeffs)

    def is_uniform_with(self, other: ArrayAccess) -> bool:
        """True if the two references differ only by a constant vector.

        Uniform reference pairs (e.g. ``A[i][j]`` and ``A[i+1][j-1]``)
        admit constant dependence distances.
        """
        if self.array != other.array or self.loop_dims != other.loop_dims:
            return False
        return all(
            (a - b).is_constant() for a, b in zip(self.subscripts, other.subscripts)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrayAccess):
            return NotImplemented
        return (
            self.array == other.array
            and self.loop_dims == other.loop_dims
            and self.subscripts == other.subscripts
            and self.is_write == other.is_write
        )

    def __hash__(self) -> int:
        return hash((self.array, self.loop_dims, self.subscripts, self.is_write))

    def __repr__(self) -> str:
        subs = "".join(f"[{s}]" for s in self.subscripts)
        kind = "W" if self.is_write else "R"
        return f"ArrayAccess({kind}:{self.array.name}{subs})"
